"""Tests for global (NW) and semi-global alignment."""

import pytest

from repro.core import get_engine
from repro.core.global_align import global_align, semiglobal_align
from repro.scoring import BLOSUM62, GapModel, match_mismatch_matrix, paper_gap_model
from tests.conftest import random_protein
from tests.test_core_traceback import rescore

MM = match_mismatch_matrix(5, -4)


def global_rescore(tb, matrix, gaps) -> int:
    """Re-score a global alignment (terminal gaps included)."""
    return rescore(tb, matrix, gaps)


class TestGlobalKnownValues:
    def test_identical_sequences(self):
        tb = global_align("WCHK", "WCHK", BLOSUM62, paper_gap_model())
        assert tb.score == sum(BLOSUM62.score(c, c) for c in "WCHK")
        assert tb.aligned_query == "WCHK"
        assert tb.identity == 1.0

    def test_forced_terminal_gap(self):
        # Global must pay for the trailing database residues.
        g = GapModel(2, 1)
        tb = global_align("AAA", "AAATT", MM, g)
        assert tb.score == 15 - (2 + 2)
        assert tb.aligned_query == "AAA--"
        assert tb.aligned_db == "AAATT"

    def test_negative_score_possible(self):
        tb = global_align("WWWW", "CCCC", BLOSUM62, paper_gap_model())
        assert tb.score < 0

    def test_internal_gap(self):
        g = GapModel(0, 1)
        tb = global_align("AAATTT", "AAAGTTT", MM, g)
        assert tb.score == 30 - 1
        assert tb.aligned_query == "AAA-TTT"

    def test_consumes_both_sequences(self, rng):
        g = paper_gap_model()
        a = random_protein(rng, 15)
        b = random_protein(rng, 22)
        tb = global_align(a, b, BLOSUM62, g)
        assert tb.aligned_query.replace("-", "") == a
        assert tb.aligned_db.replace("-", "") == b

    def test_rescore_matches(self, rng):
        g = paper_gap_model()
        for _ in range(10):
            a = random_protein(rng, int(rng.integers(2, 20)))
            b = random_protein(rng, int(rng.integers(2, 20)))
            tb = global_align(a, b, BLOSUM62, g)
            assert global_rescore(tb, BLOSUM62, g) == tb.score


class TestSemiGlobal:
    def test_query_embedded_in_database(self):
        g = paper_gap_model()
        tb = semiglobal_align("WCHK", "AAAAWCHKAAAA", BLOSUM62, g)
        # Free database ends: full score, no gap columns.
        assert tb.score == sum(BLOSUM62.score(c, c) for c in "WCHK")
        assert tb.aligned_query == "WCHK"
        assert (tb.start_db, tb.end_db) == (5, 8)

    def test_whole_query_must_align(self):
        g = paper_gap_model()
        # Local alignment would drop the mismatching tail; semi-global
        # cannot.
        tb = semiglobal_align("WCHKPPP", "WCHKGGG", BLOSUM62, g)
        assert tb.aligned_query.replace("-", "") == "WCHKPPP"
        local = get_engine("scalar").score_pair(
            "WCHKPPP", "WCHKGGG", BLOSUM62, g
        )
        assert tb.score < local.score

    def test_rescore_matches(self, rng):
        g = paper_gap_model()
        for _ in range(10):
            a = random_protein(rng, int(rng.integers(2, 12)))
            b = random_protein(rng, int(rng.integers(8, 30)))
            tb = semiglobal_align(a, b, BLOSUM62, g)
            assert rescore(tb, BLOSUM62, g) == tb.score
            assert tb.aligned_query.replace("-", "") == a


class TestModeOrdering:
    @pytest.mark.parametrize("trial", range(8))
    def test_local_ge_semiglobal_ge_global(self, trial, rng):
        # Local may skip anything; semi-global must keep the query;
        # global must keep both — each restriction can only lower the
        # optimum.
        g = paper_gap_model()
        a = random_protein(rng, int(rng.integers(3, 18)))
        b = random_protein(rng, int(rng.integers(3, 25)))
        local = get_engine("scalar").score_pair(a, b, BLOSUM62, g).score
        semi = semiglobal_align(a, b, BLOSUM62, g).score
        glob = global_align(a, b, BLOSUM62, g).score
        assert local >= semi >= glob

    def test_all_modes_agree_on_identical_pair(self):
        g = paper_gap_model()
        s = "WCHKWCHK"
        expect = sum(BLOSUM62.score(c, c) for c in s)
        assert get_engine("scalar").score_pair(s, s, BLOSUM62, g).score == expect
        assert semiglobal_align(s, s, BLOSUM62, g).score == expect
        assert global_align(s, s, BLOSUM62, g).score == expect
