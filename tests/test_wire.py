"""Round-trip tests for the serving-layer wire codec (repro.serve.wire).

The wire contract: every typed object crossing the HTTP boundary
serialises to plain JSON and deserialises back *equal* — options,
requests, hits (including unnamed headers and materialised alignments),
streaming/partial outcomes — and every public exception class maps to
one canonical HTTP status and back to the same class.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.exceptions as exceptions_mod
from repro.alphabet import Alphabet
from repro.core.types import Traceback
from repro.db import SyntheticSwissProt
from repro.devices.openmp import Schedule
from repro.exceptions import (
    DeadlineExceeded,
    FastaError,
    ParallelError,
    ReproError,
    ServiceOverloaded,
    WireError,
    error_class,
    status_for,
)
from repro.faults import Deadline, FaultInjector, FaultPlan
from repro.scoring import BLOSUM62, GapModel, SubstitutionMatrix
from repro.search import (
    Hit,
    PartialResult,
    SearchOptions,
    SearchPipeline,
    SearchRequest,
    StreamingResult,
)
from repro.serve import WIRE_SCHEMA_VERSION, RemoteSearchResult
from repro.serve import wire


def roundtrip(encode, decode, value):
    """Encode, force through real JSON text, decode."""
    return decode(json.loads(json.dumps(encode(value))))


def assert_options_equal(a: SearchOptions, b: SearchOptions) -> None:
    """Field-wise semantic equality (ndarray fields break dataclass ==)."""
    if a.matrix is None or b.matrix is None:
        assert a.matrix is None and b.matrix is None
    else:
        assert a.matrix.name == b.matrix.name
        assert a.matrix.alphabet.letters == b.matrix.alphabet.letters
        assert a.matrix.alphabet.wildcard == b.matrix.alphabet.wildcard
        assert np.array_equal(a.matrix.data, b.matrix.data)
    assert a.gaps == b.gaps
    assert a.lanes == b.lanes
    assert a.kernel == b.kernel
    assert a.profile == b.profile
    assert Schedule.parse(a.schedule) is Schedule.parse(b.schedule)
    assert a.threads == b.threads
    assert a.top_k == b.top_k
    assert a.chunk_size == b.chunk_size
    assert a.alphabet.letters == b.alphabet.letters
    assert a.alphabet.wildcard == b.alphabet.wildcard
    assert a.deadline == b.deadline


class TestEnvelope:
    def test_envelope_stamps_version_and_kind(self):
        doc = wire.envelope("request", {"x": 1})
        assert doc == {
            "schema_version": WIRE_SCHEMA_VERSION, "kind": "request", "x": 1,
        }

    @pytest.mark.parametrize("side", ["server", "client"])
    def test_version_mismatch_rejected_on_both_ends(self, side):
        stale = {"schema_version": WIRE_SCHEMA_VERSION + 1, "kind": "request"}
        with pytest.raises(WireError, match=f"{side}.*mismatch"):
            wire.check_schema_version(stale, side=side)

    @pytest.mark.parametrize("doc", [{}, {"kind": "request"}, [], "x", None])
    def test_missing_or_malformed_envelope_rejected(self, doc):
        with pytest.raises(WireError):
            wire.check_schema_version(doc, side="server")

    def test_current_version_accepted(self):
        wire.check_schema_version(wire.envelope("outcome", {}), side="client")


class TestOptionsRoundTrip:
    def test_defaults(self):
        opts = SearchOptions()
        assert_options_equal(
            opts, roundtrip(wire.encode_options, wire.decode_options, opts)
        )

    def test_top_k_zero(self):
        opts = SearchOptions(top_k=0)
        back = roundtrip(wire.encode_options, wire.decode_options, opts)
        assert back.top_k == 0
        assert_options_equal(opts, back)

    def test_explicit_matrix_gaps_and_deadline(self):
        opts = SearchOptions(
            matrix=BLOSUM62,
            gaps=GapModel(12, 3),
            lanes=16,
            kernel="numpy",
            profile="query",
            schedule="guided",
            threads=7,
            top_k=3,
            chunk_size=64,
            deadline=Deadline(expires_at=123.5),
        )
        back = roundtrip(wire.encode_options, wire.decode_options, opts)
        assert_options_equal(opts, back)
        assert back.deadline.expires_at == 123.5

    def test_custom_alphabet_and_matrix(self):
        dna = Alphabet("ACGTN", wildcard="N")
        data = np.full((5, 5), -3, dtype=np.int32)
        np.fill_diagonal(data, 5)
        opts = SearchOptions(
            matrix=SubstitutionMatrix("dna5", dna, data), alphabet=dna,
        )
        back = roundtrip(wire.encode_options, wire.decode_options, opts)
        assert_options_equal(opts, back)

    def test_injector_refused(self):
        injector = FaultInjector(FaultPlan(seed=1, corrupt_rate=0.5))
        with pytest.raises(WireError, match="injector"):
            wire.encode_options(SearchOptions(injector=injector))

    def test_malformed_doc_raises_wire_error(self):
        with pytest.raises(WireError, match="malformed"):
            wire.decode_options({"matrix": None})

    def test_kernel_round_trip_and_v1_interop(self):
        # kernel was added after schema v1 froze: it must survive a
        # round trip, and a doc from an older peer (no kernel key at
        # all) must decode to the "inherit server default" spelling.
        for kernel in ("python", "numpy", None):
            doc = wire.encode_options(SearchOptions(kernel=kernel))
            assert doc["kernel"] == kernel
            assert wire.decode_options(doc).kernel == kernel
        legacy = wire.encode_options(SearchOptions())
        del legacy["kernel"]
        assert wire.decode_options(legacy).kernel is None

    @given(
        top_k=st.integers(min_value=0, max_value=50),
        threads=st.integers(min_value=1, max_value=64),
        chunk=st.integers(min_value=1, max_value=4096),
        schedule=st.sampled_from(["static", "dynamic", "guided"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_scalar_fields_survive(self, top_k, threads, chunk,
                                            schedule):
        opts = SearchOptions(
            top_k=top_k, threads=threads, chunk_size=chunk, schedule=schedule,
        )
        assert_options_equal(
            opts, roundtrip(wire.encode_options, wire.decode_options, opts)
        )


class TestRequestRoundTrip:
    def test_full_request(self):
        req = SearchRequest(
            query="MKVLILACLVALALA",
            name="sp|P99999|TEST",
            top_k=5,
            traceback=True,
            deadline=Deadline(expires_at=42.0),
        )
        assert roundtrip(wire.encode_request, wire.decode_request, req) == req

    def test_defaults_and_sparse_doc(self):
        req = SearchRequest(query="ACDEF")
        assert roundtrip(wire.encode_request, wire.decode_request, req) == req
        # A minimal doc decodes with the dataclass defaults.
        assert wire.decode_request({"query": "ACDEF"}) == req

    def test_top_k_zero_distinct_from_inherit(self):
        explicit = roundtrip(
            wire.encode_request, wire.decode_request,
            SearchRequest(query="A", top_k=0),
        )
        inherit = roundtrip(
            wire.encode_request, wire.decode_request,
            SearchRequest(query="A", top_k=None),
        )
        assert explicit.top_k == 0
        assert inherit.top_k is None

    def test_encoded_query_array_refused(self):
        req = SearchRequest(query=np.array([0, 1, 2], dtype=np.uint8))
        with pytest.raises(WireError, match="residue string"):
            wire.encode_request(req)

    @given(st.text(alphabet="ACDEFGHIKLMNPQRSTVWY", min_size=1, max_size=40),
           st.text(max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_property_query_and_name_survive(self, query, name):
        req = SearchRequest(query=query, name=name)
        assert roundtrip(wire.encode_request, wire.decode_request, req) == req


class TestHitRoundTrip:
    def test_plain_hit(self):
        hit = Hit(index=3, header="sp|P12345|ALBU_HUMAN Serum albumin",
                  length=120, score=987)
        back = roundtrip(wire.encode_hit, wire.decode_hit, hit)
        assert back == hit
        assert back.accession == "sp|P12345|ALBU_HUMAN"

    def test_unnamed_header(self):
        hit = Hit(index=0, header="", length=5, score=1)
        back = roundtrip(wire.encode_hit, wire.decode_hit, hit)
        assert back == hit
        assert back.accession == "<unnamed>"

    def test_alignment_survives(self):
        tb = Traceback(
            score=21, aligned_query="AC-DE", aligned_db="ACQDE",
            start_query=1, end_query=4, start_db=7, end_db=11,
        )
        hit = Hit(index=1, header="h", length=11, score=21, alignment=tb)
        back = roundtrip(wire.encode_hit, wire.decode_hit, hit)
        assert back == hit
        assert back.alignment.identity == tb.identity

    def test_alignment_omitted_from_doc_when_absent(self):
        assert "alignment" not in wire.encode_hit(
            Hit(index=0, header="h", length=1, score=0)
        )

    def test_malformed_doc_raises_wire_error(self):
        with pytest.raises(WireError, match="malformed wire Hit"):
            wire.decode_hit({"index": 0, "header": "h"})

    @given(
        index=st.integers(min_value=0, max_value=10**6),
        header=st.text(max_size=40),
        length=st.integers(min_value=0, max_value=10**5),
        score=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_fields_survive(self, index, header, length, score):
        hit = Hit(index=index, header=header, length=length, score=score)
        assert roundtrip(wire.encode_hit, wire.decode_hit, hit) == hit


def _hits(n=3):
    return [
        Hit(index=i, header=f"seq{i}", length=10 + i, score=50 - 10 * i)
        for i in range(n)
    ]


class TestOutcomeRoundTrip:
    def test_streaming_exact(self):
        out = StreamingResult(
            query_name="q", query_length=15, hits=_hits(),
            sequences_scanned=200, cells=12345, chunks=4,
            wall_seconds=0.25, corrupted_redone=1, database_name="db",
        )
        back = roundtrip(wire.encode_outcome, wire.decode_outcome, out)
        assert isinstance(back, StreamingResult)
        assert not isinstance(back, PartialResult)
        assert back == out

    def test_partial_exact_with_completion(self):
        out = PartialResult(
            query_name="q", query_length=15, hits=_hits(),
            sequences_scanned=150, cells=999, chunks=3,
            wall_seconds=0.1, corrupted_redone=0, database_name="db",
            total_records=600, shards_merged=2,
        )
        back = roundtrip(wire.encode_outcome, wire.decode_outcome, out)
        assert isinstance(back, PartialResult)
        assert back.completion() == out.completion() == 0.25
        assert back.shards_merged == 2
        # journal_path is process-local and deliberately not shipped.
        assert back.journal_path is None

    def test_partial_unknown_total_records(self):
        out = PartialResult(
            query_name="q", query_length=3, hits=[],
            sequences_scanned=10, cells=30, chunks=1, wall_seconds=0.0,
        )
        back = roundtrip(wire.encode_outcome, wire.decode_outcome, out)
        assert back.total_records is None
        assert back.completion() is None

    def test_search_result_decodes_to_remote(self):
        db = SyntheticSwissProt().generate(scale=0.0001)
        result = SearchPipeline().search("MKVLILACLVALALA", db)
        back = roundtrip(wire.encode_outcome, wire.decode_outcome, result)
        assert isinstance(back, RemoteSearchResult)
        assert list(back.hits) == result.hits           # bit-identical
        assert back.best_score() == result.best_score()
        assert back.cells == result.cells
        assert back.sequences == len(result.scores)
        assert back.gcups == result.gcups
        assert back.provenance["remote"] is True
        assert back.top(2) == result.hits[:2]
        assert "[remote]" in back.summary()

    def test_remote_result_reencodes_identically(self):
        db = SyntheticSwissProt().generate(scale=0.0001)
        result = SearchPipeline().search("MKVLILACLVALALA", db)
        doc = wire.encode_outcome(result)
        again = wire.encode_outcome(wire.decode_outcome(doc))
        # Identical except for the client-side remote provenance marker.
        assert again == {
            **doc, "provenance": {**doc["provenance"], "remote": True},
        }

    def test_unknown_outcome_kind(self):
        with pytest.raises(WireError, match="outcome_kind"):
            wire.decode_outcome({"outcome_kind": "bogus"})

    def test_unencodable_outcome(self):
        with pytest.raises(WireError, match="no wire encoding"):
            wire.encode_outcome(object())


def _public_error_classes():
    return [
        obj for name in exceptions_mod.__all__
        if isinstance(obj := getattr(exceptions_mod, name), type)
        and issubclass(obj, ReproError)
    ]


class TestErrorTaxonomyOnTheWire:
    @pytest.mark.parametrize(
        "cls", _public_error_classes(), ids=lambda c: c.__name__,
    )
    def test_every_public_class_round_trips(self, cls):
        """Table-driven over the whole taxonomy: name, message, status."""
        doc = json.loads(json.dumps(wire.encode_error(cls("boom"))))
        assert doc["error"] == cls.__name__
        assert doc["status"] == status_for(cls("boom"))
        back = wire.decode_error(doc)
        assert type(back) is cls
        assert str(back) == "boom"

    @pytest.mark.parametrize("cls,status", [
        (ServiceOverloaded, 429),
        (DeadlineExceeded, 504),
        (FastaError, 400),
        (ParallelError, 500),
        (WireError, 400),
    ])
    def test_canonical_statuses(self, cls, status):
        assert wire.encode_error(cls("x"))["status"] == status

    def test_non_repro_error_ships_as_base_class(self):
        doc = wire.encode_error(ValueError("internal detail"))
        assert doc["error"] == "ReproError"
        assert doc["status"] == 500
        assert type(wire.decode_error(doc)) is ReproError

    def test_unknown_name_decodes_to_base_class(self):
        back = wire.decode_error(
            {"error": "FutureV9Error", "message": "m", "status": 500}
        )
        assert type(back) is ReproError
        assert error_class("FutureV9Error") is ReproError

    def test_malformed_error_body(self):
        with pytest.raises(WireError, match="malformed"):
            wire.decode_error({"message": "no name"})


class TestJsonSafety:
    def test_search_outcome_doc_is_json_clean(self):
        db = SyntheticSwissProt().generate(scale=0.0001)
        result = SearchPipeline().search("MKVLILACLVALALA", db)
        result.trace = {"span": np.int64(7), "name": "root"}
        doc = wire.encode_outcome(result)
        text = json.dumps(doc)  # would raise on numpy scalars
        assert json.loads(text) == doc

    def test_options_doc_is_json_clean(self):
        doc = wire.encode_options(SearchOptions(matrix=BLOSUM62))
        assert json.loads(json.dumps(doc)) == doc
