"""Property-based tests (hypothesis) for the core invariants.

These are the load-bearing correctness guarantees of the library:
engine agreement on arbitrary inputs, the algebraic invariants of
Smith-Waterman scores, FASTA round-tripping, scheduler conservation and
split conservation.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import get_engine
from repro.db import parse_fasta_text, write_fasta
from repro.db.fasta import FastaRecord
from repro.devices import ParallelFor, Schedule
from repro.runtime import split_lengths
from repro.scoring import BLOSUM62, GapModel, match_mismatch_matrix

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

protein_text = st.text(alphabet="ARNDCQEGHILKMFPSTWYVBZX", min_size=1, max_size=48)
short_protein = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=24)
gap_models = st.tuples(
    st.integers(min_value=0, max_value=20), st.integers(min_value=1, max_value=6)
).map(lambda t: GapModel(*t))

MM = match_mismatch_matrix(5, -4)


class TestEngineAgreement:
    @SETTINGS
    @given(a=protein_text, b=protein_text, gaps=gap_models)
    def test_all_engines_equal_scalar(self, a, b, gaps):
        oracle = get_engine("scalar").score_pair(a, b, BLOSUM62, gaps).score
        for name in ("scan", "diagonal", "intertask"):
            assert get_engine(name).score_pair(a, b, BLOSUM62, gaps).score == oracle

    @SETTINGS
    @given(a=protein_text, b=protein_text, gaps=gap_models,
           lanes=st.integers(min_value=1, max_value=9))
    def test_striped_equals_scalar(self, a, b, gaps, lanes):
        oracle = get_engine("scalar").score_pair(a, b, BLOSUM62, gaps).score
        assert (
            get_engine("striped", lanes=lanes).score_pair(a, b, BLOSUM62, gaps).score
            == oracle
        )

    @SETTINGS
    @given(a=protein_text, b=protein_text,
           block=st.integers(min_value=1, max_value=60))
    def test_blocking_invisible(self, a, b, block):
        from repro.scoring import paper_gap_model

        g = paper_gap_model()
        plain = get_engine("intertask").score_pair(a, b, BLOSUM62, g).score
        blocked = get_engine("intertask", block_cols=block).score_pair(
            a, b, BLOSUM62, g
        ).score
        assert plain == blocked


class TestScoreAlgebra:
    @SETTINGS
    @given(a=protein_text, b=protein_text, gaps=gap_models)
    def test_symmetry(self, a, b, gaps):
        # BLOSUM62 is symmetric, so score(A,B) == score(B,A).
        eng = get_engine("scan")
        assert (
            eng.score_pair(a, b, BLOSUM62, gaps).score
            == eng.score_pair(b, a, BLOSUM62, gaps).score
        )

    @SETTINGS
    @given(a=short_protein, gaps=gap_models)
    def test_self_alignment_is_diagonal_sum(self, a, gaps):
        # Over the 20 standard residues every self-substitution is
        # positive and its row maximum, so aligning a sequence with
        # itself scores the full diagonal sum.  (Not true of the
        # ambiguity codes: X-X is negative.)
        eng = get_engine("scan")
        expect = sum(BLOSUM62.score(c, c) for c in a)
        assert eng.score_pair(a, a, BLOSUM62, gaps).score == expect

    @SETTINGS
    @given(a=protein_text, b=protein_text, gaps=gap_models)
    def test_score_non_negative_and_bounded(self, a, b, gaps):
        s = get_engine("scan").score_pair(a, b, BLOSUM62, gaps).score
        assert 0 <= s <= min(len(a), len(b)) * BLOSUM62.max_score

    @SETTINGS
    @given(a=short_protein, b=short_protein, extra=short_protein, gaps=gap_models)
    def test_monotone_under_concatenation(self, a, b, extra, gaps):
        # Appending database residues can only reveal better local
        # alignments, never destroy existing ones.
        eng = get_engine("scan")
        base = eng.score_pair(a, b, BLOSUM62, gaps).score
        assert eng.score_pair(a, b + extra, BLOSUM62, gaps).score >= base

    @SETTINGS
    @given(a=short_protein, b=short_protein)
    def test_higher_gap_costs_never_raise_score(self, a, b):
        eng = get_engine("scan")
        cheap = eng.score_pair(a, b, BLOSUM62, GapModel(2, 1)).score
        pricey = eng.score_pair(a, b, BLOSUM62, GapModel(12, 3)).score
        assert pricey <= cheap

    @SETTINGS
    @given(a=short_protein, b=short_protein, gaps=gap_models)
    def test_substring_hit_guarantee(self, a, b, gaps):
        # b embedded in a database sequence scores at least its self-hit.
        eng = get_engine("scan")
        db = a + b + a
        self_hit = sum(BLOSUM62.score(c, c) for c in b)
        assert eng.score_pair(b, db, BLOSUM62, gaps).score >= self_hit


class TestTracebackProperties:
    @SETTINGS
    @given(a=short_protein, b=short_protein, gaps=gap_models)
    def test_traceback_rescores_exactly(self, a, b, gaps):
        from repro.core import align_pair
        from tests.test_core_traceback import rescore

        tb = align_pair(a, b, BLOSUM62, gaps)
        if tb.score:
            assert rescore(tb, BLOSUM62, gaps) == tb.score
            assert tb.aligned_query.replace("-", "") == a[tb.start_query - 1 : tb.end_query]
            assert tb.aligned_db.replace("-", "") == b[tb.start_db - 1 : tb.end_db]


class TestFastaRoundtrip:
    header_text = st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1, max_size=30,
    )

    @SETTINGS
    @given(
        records=st.lists(
            st.tuples(header_text, protein_text), min_size=1, max_size=8
        ),
        width=st.sampled_from([0, 1, 7, 60, 1000]),
    )
    def test_write_then_parse_is_identity(self, records, width):
        import io

        recs = [FastaRecord(h, s) for h, s in records]
        buf = io.StringIO()
        write_fasta(recs, buf, width=width)
        assert parse_fasta_text(buf.getvalue()) == recs


class TestSchedulerProperties:
    costs_strategy = st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=0, max_size=120,
    )

    @SETTINGS
    @given(costs=costs_strategy, threads=st.integers(min_value=1, max_value=16),
           schedule=st.sampled_from(list(Schedule)))
    def test_conservation_and_bounds(self, costs, threads, schedule):
        arr = np.asarray(costs)
        res = ParallelFor(threads, schedule).run(arr)
        # Every iteration assigned exactly once.
        assert len(res.assignment) == len(arr)
        if len(arr):
            assert (res.assignment >= 0).all()
            assert (res.assignment < threads).all()
        # Work conservation.
        assert res.thread_loads.sum() == pytest.approx(arr.sum())
        # Makespan bounds (relative tolerance: loads are accumulated
        # floating-point sums).
        if len(arr):
            lower = max(arr.max(initial=0.0), arr.sum() / threads)
            assert res.makespan >= lower * (1 - 1e-9) - 1e-9
            assert res.makespan <= arr.sum() * (1 + 1e-9) + 1e-9

    @SETTINGS
    @given(costs=st.lists(st.integers(min_value=1, max_value=1000),
                          min_size=1, max_size=100),
           threads=st.integers(min_value=1, max_value=8))
    def test_dynamic_never_worse_than_twice_optimal(self, costs, threads):
        # Greedy list scheduling is a 2-approximation of the optimum.
        arr = np.asarray(costs, dtype=float)
        res = ParallelFor(threads, Schedule.DYNAMIC).run(arr)
        lower = max(arr.max(), arr.sum() / threads)
        assert res.makespan <= 2 * lower


class TestSplitProperties:
    @SETTINGS
    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=40_000),
                         min_size=2, max_size=300),
        fraction=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_split_conserves_and_approximates(self, lengths, fraction):
        arr = np.asarray(lengths, dtype=np.int64)
        host, dev = split_lengths(arr, fraction)
        assert host.sum() + dev.sum() == arr.sum()
        assert len(host) + len(dev) == len(arr)
        # Achieved fraction within half the largest element of target.
        tolerance = max(arr.max() / arr.sum(), 0.02)
        assert abs(dev.sum() / arr.sum() - fraction) <= tolerance + 1e-9


class TestLaneGroupProperties:
    @SETTINGS
    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=200),
                         min_size=1, max_size=60),
        lanes=st.integers(min_value=1, max_value=16),
    )
    def test_groups_partition_input(self, lengths, lanes):
        from repro.core import build_lane_groups

        gen = np.random.default_rng(0)
        seqs = [gen.integers(0, 20, n).astype(np.uint8) for n in lengths]
        groups = build_lane_groups(seqs, lanes)
        indices = sorted(int(i) for g in groups for i in g.indices)
        assert indices == list(range(len(seqs)))
        total = sum(int(g.lengths.sum()) for g in groups)
        assert total == sum(lengths)
        for g in groups:
            assert g.n_max == int(g.lengths.max())
