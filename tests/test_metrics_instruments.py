"""Typed metric instruments and the registry that serves them."""

from __future__ import annotations

import pytest

from repro import METRICS, MetricsRegistry, SearchOptions, SearchRequest, SearchService, SequenceDatabase
from repro.db.fasta import FastaRecord
from repro.metrics import DEFAULT_TIME_BUCKETS, Gauge, Histogram, Timer

from tests.conftest import random_protein


class TestGauge:
    def test_set_and_value(self):
        g = Gauge()
        assert g.value == 0.0
        g.set(3.5)
        assert g.value == 3.5
        assert g.snapshot() == 3.5

    def test_add_moves_both_ways(self):
        g = Gauge()
        assert g.add(2.0) == 2.0
        assert g.add(-0.5) == 1.5
        assert g.value == 1.5


class TestHistogram:
    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram([])
        with pytest.raises(ValueError):
            Histogram([1.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])

    def test_default_buckets_are_the_latency_ladder(self):
        h = Histogram()
        assert h.bounds == DEFAULT_TIME_BUCKETS
        assert h.bounds[0] == pytest.approx(1e-5)
        assert h.bounds[-1] == pytest.approx(500.0)

    def test_count_and_sum(self):
        h = Histogram([10.0])
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(6.0)

    def test_percentiles_interpolate_within_buckets(self):
        h = Histogram([25.0, 50.0, 75.0, 100.0])
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(0.50) == pytest.approx(50.0)
        assert h.percentile(0.95) == pytest.approx(95.0)
        assert h.percentile(0.25) == pytest.approx(25.0)

    def test_percentile_clamped_to_observed_range(self):
        # A single huge bucket must not inflate the estimate past max.
        h = Histogram([1000.0])
        h.observe(5.0)
        h.observe(7.0)
        assert h.percentile(0.99) == pytest.approx(7.0)
        assert h.percentile(0.0) == pytest.approx(5.0)

    def test_overflow_bucket_clamps_to_max(self):
        h = Histogram([1.0])
        h.observe(10.0)
        assert h.percentile(0.5) == pytest.approx(10.0)

    def test_empty_percentile_is_zero(self):
        h = Histogram([1.0])
        assert h.percentile(0.5) == 0.0
        assert h.snapshot() == {
            "count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_quantile_out_of_range(self):
        h = Histogram([1.0])
        with pytest.raises(ValueError):
            h.percentile(1.5)
        with pytest.raises(ValueError):
            h.percentile(-0.1)

    def test_snapshot_shape(self):
        h = Histogram([10.0, 20.0])
        for v in (2.0, 4.0, 12.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(18.0)
        assert snap["mean"] == pytest.approx(6.0)
        assert snap["min"] == 2.0
        assert snap["max"] == 12.0
        assert 2.0 <= snap["p50"] <= 12.0


class TestTimer:
    def test_time_context_manager_observes(self):
        t = Timer()
        with t.time():
            pass
        assert t.count == 1
        assert t.total >= 0.0

    def test_observes_even_on_exception(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            with t.time():
                raise RuntimeError
        assert t.count == 1

    def test_kind(self):
        assert Timer().kind == "timer"
        assert Histogram([1.0]).kind == "histogram"
        assert Gauge().kind == "gauge"


class TestRegistry:
    def test_counters_keep_integer_semantics(self):
        reg = MetricsRegistry()
        assert reg.increment("hits") == 1
        assert reg.increment("hits", 4) == 5
        assert reg.get("hits") == 5
        assert reg.get("never") == 0

    def test_instruments_create_or_fetch(self):
        reg = MetricsRegistry()
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.timer("t") is reg.timer("t")
        assert reg.histogram("h", buckets=[1.0]) is reg.histogram("h")

    def test_kind_collisions_raise(self):
        reg = MetricsRegistry()
        reg.increment("c")
        with pytest.raises(ValueError):
            reg.gauge("c")
        reg.gauge("g")
        with pytest.raises(ValueError):
            reg.increment("g")
        with pytest.raises(ValueError):
            reg.timer("g")

    def test_observe_and_set_gauge_helpers(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.25)
        reg.set_gauge("depth", 7.0)
        snap = reg.snapshot()
        assert snap["lat"]["count"] == 1
        assert snap["depth"] == 7.0

    def test_snapshot_merges_and_sorts(self):
        reg = MetricsRegistry()
        reg.increment("b.count")
        reg.set_gauge("a.gauge", 1.0)
        reg.observe("c.seconds", 0.1)
        assert list(reg.snapshot()) == ["a.gauge", "b.count", "c.seconds"]

    def test_prefix_is_component_aware(self):
        # Regression: "service" must not match the sibling component
        # "service_v2" (previously a raw str.startswith match did).
        reg = MetricsRegistry()
        reg.increment("service.requests")
        reg.increment("service_v2.requests")
        reg.increment("service")
        reg.set_gauge("service.depth", 1.0)
        reg.set_gauge("service_v2.depth", 2.0)
        snap = reg.snapshot(prefix="service")
        assert set(snap) == {"service", "service.requests", "service.depth"}

    def test_reset_is_component_aware(self):
        reg = MetricsRegistry()
        reg.increment("service.requests")
        reg.increment("service_v2.requests")
        reg.observe("service.seconds", 0.1)
        reg.reset("service")
        assert set(reg.snapshot()) == {"service_v2.requests"}
        reg.reset()
        assert reg.snapshot() == {}

    def test_render_formats_each_kind(self):
        reg = MetricsRegistry()
        reg.increment("hits", 3)
        reg.set_gauge("share", 0.25)
        reg.observe("lat", 0.5)
        text = reg.render()
        assert "  hits  3" in text
        assert "  share  0.25" in text
        assert "count=1" in text
        assert "p99=" in text


class TestIsolatedRegistryPlumbing:
    """Regression for the batch stats bug: a caller-supplied registry
    must receive *all* pipeline/cache metrics, and the global METRICS
    must stay untouched."""

    def test_service_batch_reports_into_caller_registry_only(self, rng):
        db = SequenceDatabase.from_records(
            [FastaRecord(f"M{k}", random_protein(rng, 60)) for k in range(8)],
            name="m-db",
        )
        requests = [
            SearchRequest(query=random_protein(rng, 40), name=f"q{k}")
            for k in range(3)
        ]
        before_pipeline = METRICS.snapshot("pipeline")
        before_service = METRICS.snapshot("service")

        registry = MetricsRegistry()
        service = SearchService(SearchOptions(top_k=2), metrics=registry)
        service.run(requests, db)

        snap = registry.snapshot()
        assert snap["service.requests"] == 3
        assert snap["service.batches"] == 1
        assert snap["pipeline.searches"] == 3
        assert snap["pipeline.search.seconds"]["count"] == 3
        assert snap["service.request.seconds"]["count"] == 3
        assert (
            snap["service.preprocess_cache.hits"]
            + snap["service.preprocess_cache.misses"]
        ) == 3

        # Nothing leaked into the process-global registry.
        assert METRICS.snapshot("pipeline") == before_pipeline
        assert METRICS.snapshot("service") == before_service
