"""Unit tests for the shared-resource contention model."""

import pytest

from repro.devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
from repro.devices.threading_model import contention_factor
from repro.exceptions import DeviceError


class TestContentionFactor:
    def test_single_thread_is_free(self):
        assert contention_factor(XEON_E5_2670_DUAL, 1, 0.12) == 1.0

    def test_full_cores_pay_full_coefficient(self):
        assert contention_factor(XEON_E5_2670_DUAL, 16, 0.12) == pytest.approx(0.88)

    def test_smt_threads_do_not_add_contention(self):
        # Beyond one thread per core, demand is already priced by the
        # SMT yield — the factor saturates.
        at_cores = contention_factor(XEON_E5_2670_DUAL, 16, 0.12)
        at_full = contention_factor(XEON_E5_2670_DUAL, 32, 0.12)
        assert at_cores == at_full

    def test_monotone_decreasing_in_threads(self):
        values = [
            contention_factor(XEON_PHI_57XX, t, 0.04) for t in range(1, 241)
        ]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_zero_coefficient_disables(self):
        assert contention_factor(XEON_E5_2670_DUAL, 32, 0.0) == 1.0

    def test_invalid_coefficient(self):
        with pytest.raises(DeviceError):
            contention_factor(XEON_E5_2670_DUAL, 4, 1.0)
        with pytest.raises(DeviceError):
            contention_factor(XEON_E5_2670_DUAL, 4, -0.1)

    def test_invalid_threads(self):
        with pytest.raises(DeviceError):
            contention_factor(XEON_E5_2670_DUAL, 0, 0.1)
