"""The perf-trajectory gate: snapshots, comparison maths, CLI exit codes.

No real benchmarks run here (those are the slow lane / CI smoke); these
tests pin the *gating semantics* — direction-aware tolerance, skip and
mode handling, schema conformance of synthetic snapshots, and the
``repro bench --compare`` contract of exiting non-zero on a doctored
regression.
"""

import copy
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    MetricSpec,
    _entry,
    build_snapshot,
    build_suite,
    compare_snapshots,
    default_snapshot_path,
    latest_snapshot,
    load_snapshot,
    write_snapshot,
)
from repro.exceptions import PipelineError

REPO = Path(__file__).resolve().parent.parent


def _spec(name, *, hib, tol=0.5, unit="GCUPS", tags=("engine",)):
    return MetricSpec(
        name=name, unit=unit, higher_is_better=hib, tolerance=tol, tags=tags
    )


def _snapshot(metrics, mode="quick"):
    return build_snapshot(metrics, mode=mode)


@pytest.fixture()
def baseline():
    return _snapshot({
        "engine.gcups": _entry(_spec("engine.gcups", hib=True), 10.0),
        "serve.p95_ms": _entry(
            _spec("serve.p95_ms", hib=False, unit="ms", tags=("serve",)),
            20.0,
        ),
        "parallel.speedup_2w": _entry(
            _spec("parallel.speedup_2w", hib=True, tags=("parallel",)),
            None, skipped=True, reason="single-core runner",
        ),
    })


class TestCompare:
    def test_within_tolerance_passes_both_directions(self, baseline):
        candidate = copy.deepcopy(baseline)
        candidate["metrics"]["engine.gcups"]["value"] = 6.0   # -40%, tol 50%
        candidate["metrics"]["serve.p95_ms"]["value"] = 29.0  # +45%, tol 50%
        regressions, lines = compare_snapshots(baseline, candidate)
        assert regressions == []
        assert sum(line.startswith("ok") for line in lines) == 2

    def test_higher_is_better_regression_detected(self, baseline):
        candidate = copy.deepcopy(baseline)
        candidate["metrics"]["engine.gcups"]["value"] = 4.0  # -60% > 50% tol
        regressions, _ = compare_snapshots(baseline, candidate)
        assert [r["name"] for r in regressions] == ["engine.gcups"]

    def test_lower_is_better_regression_detected(self, baseline):
        candidate = copy.deepcopy(baseline)
        candidate["metrics"]["serve.p95_ms"]["value"] = 31.0  # +55% > 50%
        regressions, lines = compare_snapshots(baseline, candidate)
        assert [r["name"] for r in regressions] == ["serve.p95_ms"]
        assert any(line.startswith("REGR serve.p95_ms") for line in lines)

    def test_improvement_never_gates(self, baseline):
        candidate = copy.deepcopy(baseline)
        candidate["metrics"]["engine.gcups"]["value"] = 100.0
        candidate["metrics"]["serve.p95_ms"]["value"] = 0.1
        regressions, _ = compare_snapshots(baseline, candidate)
        assert regressions == []

    def test_skipped_metrics_report_but_never_gate(self, baseline):
        regressions, lines = compare_snapshots(baseline, baseline)
        assert regressions == []
        assert any(line.startswith("skip parallel.speedup_2w") for line in lines)

    def test_metric_new_to_candidate_never_gates(self, baseline):
        candidate = copy.deepcopy(baseline)
        candidate["metrics"]["sharded.peak_mb"] = _entry(
            _spec("sharded.peak_mb", hib=False, unit="MB", tags=("memory",)),
            50.0,
        )
        regressions, lines = compare_snapshots(baseline, candidate)
        assert regressions == []
        assert any("no baseline" in line for line in lines)

    def test_baseline_skip_becomes_new_not_gate(self, baseline):
        candidate = copy.deepcopy(baseline)
        candidate["metrics"]["parallel.speedup_2w"].update(
            value=1.7, skipped=False
        )
        regressions, lines = compare_snapshots(baseline, candidate)
        assert regressions == []
        assert any("baseline skipped" in line for line in lines)

    def test_mode_mismatch_is_hard_error(self, baseline):
        candidate = _snapshot(copy.deepcopy(baseline["metrics"]), mode="full")
        with pytest.raises(PipelineError, match="matching mode"):
            compare_snapshots(baseline, candidate)


class TestSnapshots:
    def test_round_trip_and_sorted_keys(self, baseline, tmp_path):
        path = write_snapshot(baseline, tmp_path / "BENCH_x.json")
        assert load_snapshot(path) == baseline
        raw = path.read_text(encoding="utf-8")
        assert raw.endswith("\n")
        assert raw == json.dumps(baseline, indent=2, sort_keys=True) + "\n"

    def test_load_rejects_garbage_and_wrong_version(self, tmp_path):
        bad = tmp_path / "nope.json"
        with pytest.raises(PipelineError, match="cannot read"):
            load_snapshot(bad)
        bad.write_text("not json{", encoding="utf-8")
        with pytest.raises(PipelineError, match="not valid JSON"):
            load_snapshot(bad)
        bad.write_text(
            json.dumps({"schema_version": BENCH_SCHEMA_VERSION + 1}),
            encoding="utf-8",
        )
        with pytest.raises(PipelineError, match="schema_version"):
            load_snapshot(bad)

    def test_latest_snapshot_picks_newest_and_honours_exclude(
        self, baseline, tmp_path
    ):
        assert latest_snapshot(tmp_path) is None
        older = write_snapshot(baseline, tmp_path / "BENCH_2026-01-01.json")
        newer = write_snapshot(baseline, tmp_path / "BENCH_2026-02-01.json")
        assert latest_snapshot(tmp_path) == newer
        assert latest_snapshot(tmp_path, exclude=newer) == older

    def test_default_snapshot_path_shape(self, tmp_path):
        path = default_snapshot_path(tmp_path)
        assert path.name.startswith("BENCH_")
        assert path.suffix == ".json"

    def test_synthetic_snapshot_validates_against_schema(
        self, baseline, tmp_path
    ):
        sys.path.insert(0, str(REPO / "tools"))
        try:
            from validate_bench import validate_snapshot
        finally:
            sys.path.pop(0)
        schema = json.loads(
            (REPO / "schemas" / "bench_trajectory.schema.json").read_text()
        )
        assert validate_snapshot(baseline, schema) == []
        doctored = copy.deepcopy(baseline)
        doctored["metrics"]["engine.gcups"]["value"] = "fast"
        assert validate_snapshot(doctored, schema)
        lying_skip = copy.deepcopy(baseline)
        lying_skip["metrics"]["parallel.speedup_2w"]["value"] = 3.0
        assert any(
            "value null" in err
            for err in validate_snapshot(lying_skip, schema)
        )

    def test_suite_metric_names_are_unique(self):
        names = [
            s.name for specs, _ in build_suite() for s in specs
        ]
        assert len(names) == len(set(names))


class TestCli:
    def _bench(self, *argv, cwd=REPO):
        return subprocess.run(
            [sys.executable, "-m", "repro", "bench", *argv],
            capture_output=True, text=True, cwd=cwd,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
            timeout=120,
        )

    def test_compare_doctored_regression_exits_nonzero(
        self, baseline, tmp_path
    ):
        base_path = write_snapshot(baseline, tmp_path / "BENCH_base.json")
        doctored = copy.deepcopy(baseline)
        doctored["metrics"]["engine.gcups"]["value"] = 1.0  # -90%
        cand_path = write_snapshot(doctored, tmp_path / "BENCH_cand.json")
        proc = self._bench(
            "--compare", str(base_path), "--candidate", str(cand_path),
        )
        assert proc.returncode == 1, proc.stderr
        assert "REGR engine.gcups" in proc.stdout
        assert "regressed beyond tolerance" in proc.stderr

    def test_compare_identical_exits_zero(self, baseline, tmp_path):
        base_path = write_snapshot(baseline, tmp_path / "BENCH_base.json")
        cand_path = write_snapshot(baseline, tmp_path / "BENCH_cand.json")
        proc = self._bench(
            "--compare", str(base_path), "--candidate", str(cand_path),
        )
        assert proc.returncode == 0, proc.stderr
        assert "no regressions beyond tolerance" in proc.stdout

    def test_compare_without_baseline_is_a_clean_error(
        self, baseline, tmp_path
    ):
        cand_path = write_snapshot(baseline, tmp_path / "BENCH_cand.json")
        proc = self._bench(
            "--compare", "--candidate", str(cand_path),
            "--dir", str(tmp_path / "empty"),
        )
        assert proc.returncode == 1
        assert "no baseline" in proc.stderr

    def test_candidate_only_renders_table_and_exits_zero(
        self, baseline, tmp_path
    ):
        cand_path = write_snapshot(baseline, tmp_path / "BENCH_cand.json")
        proc = self._bench("--candidate", str(cand_path))
        assert proc.returncode == 0, proc.stderr
        assert "engine.gcups" in proc.stdout
        assert "skipped" in proc.stdout  # the skip row is visible


@pytest.mark.slow
def test_quick_engine_suite_end_to_end(tmp_path):
    """One real (tiny) suite run through the CLI, schema-validated."""
    out = tmp_path / "BENCH_live.json"
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "bench", "--quick",
            "--tags", "engine", "--out", str(out),
            "--benchmarks-dir", str(REPO / "benchmarks"),
        ],
        capture_output=True, text=True, cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    doc = load_snapshot(out)
    assert doc["mode"] == "quick"
    assert doc["metrics"]["engine.intertask.gcups"]["value"] > 0
    sys.path.insert(0, str(REPO / "tools"))
    try:
        from validate_bench import validate_snapshot
    finally:
        sys.path.pop(0)
    schema = json.loads(
        (REPO / "schemas" / "bench_trajectory.schema.json").read_text()
    )
    assert validate_snapshot(doc, schema) == []
