"""The headline acceptance test: every paper target reproduces."""

import pytest

from repro.exceptions import ModelError
from repro.perfmodel import PAPER_TARGETS, PaperTarget, validate_against_paper


class TestTargetTable:
    def test_every_target_has_section_reference(self):
        for t in PAPER_TARGETS:
            assert t.section.startswith("V-")
            assert t.value > 0
            assert 0 < t.tolerance < 0.2

    def test_check_semantics_relative(self):
        t = PaperTarget("x", "V-C1", "d", 100.0, 0.10)
        assert t.check(105.0)
        assert not t.check(115.0)

    def test_check_semantics_absolute_for_efficiency(self):
        t = PaperTarget("efficiency.x", "V-C1", "d", 0.88, 0.05)
        assert t.check(0.815 + 0.02)
        assert not t.check(0.80)

    def test_zero_target_rejected(self):
        t = PaperTarget("x", "V-C1", "d", 1.0, 0.1)
        object.__setattr__(t, "value", 0.0)
        with pytest.raises(ModelError):
            t.check(1.0)


class TestFullValidation:
    @pytest.fixture(scope="class")
    def record(self):
        return validate_against_paper()

    def test_all_targets_reproduced(self, record):
        failures = {k: v for k, v in record.items() if not v["ok"]}
        assert not failures, failures

    def test_record_covers_every_target(self, record):
        assert set(record) == {t.key for t in PAPER_TARGETS}

    def test_anchors_exact(self, record):
        # The two anchored numbers are exact by construction.
        assert record["xeon.intrinsic_sp.peak"]["measured"] == pytest.approx(32.0)
        assert record["phi.intrinsic_sp"]["measured"] == pytest.approx(34.9)
