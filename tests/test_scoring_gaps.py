"""Unit tests for the affine gap model (paper Eq. 5)."""

import pytest

from repro.exceptions import GapModelError
from repro.scoring import GapModel, LinearGapModel, paper_gap_model


class TestGapModel:
    def test_paper_values(self):
        g = paper_gap_model()
        assert g.open == 10
        assert g.extend == 2
        assert g.first_gap_cost == 12

    def test_penalty_formula(self):
        g = GapModel(10, 2)
        # g(x) = q + r*x per Eq. 5
        assert g.penalty(1) == 12
        assert g.penalty(5) == 20
        assert g.penalty(0) == 0

    def test_penalty_monotone_in_length(self):
        g = GapModel(7, 3)
        values = [g.penalty(x) for x in range(1, 20)]
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    def test_negative_length_rejected(self):
        with pytest.raises(GapModelError):
            GapModel(10, 2).penalty(-1)

    def test_negative_penalties_rejected(self):
        with pytest.raises(GapModelError):
            GapModel(-1, 2)
        with pytest.raises(GapModelError):
            GapModel(1, -2)

    def test_zero_zero_rejected(self):
        with pytest.raises(GapModelError, match="degenerate"):
            GapModel(0, 0)

    def test_linear_model(self):
        g = LinearGapModel(3)
        assert g.is_linear
        assert g.open == 0
        assert g.penalty(4) == 12

    def test_affine_is_not_linear(self):
        assert not paper_gap_model().is_linear

    def test_frozen(self):
        g = paper_gap_model()
        with pytest.raises(AttributeError):
            g.open = 5
