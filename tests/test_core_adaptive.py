"""Unit tests for the adaptive-precision (SWIPE ladder) engine."""

import pytest

from repro.core import get_engine
from repro.core.adaptive import AdaptivePrecisionEngine
from repro.exceptions import EngineError
from repro.scoring import BLOSUM62, paper_gap_model
from tests.conftest import random_protein


@pytest.fixture(scope="module")
def oracle():
    return get_engine("scalar")


class TestLadderCorrectness:
    def test_scores_exact_on_mixed_batch(self, rng, oracle):
        # Unrelated random pairs (small scores, resolved at 8 bits)
        # mixed with near-identical pairs (saturate 8 and 16 bits).
        g = paper_gap_model()
        q = "ACDEFGHIKLMNPQRSTVWY" * 20  # 400 aa, self-score ~2000
        batch = [random_protein(rng, int(rng.integers(20, 120)))
                 for _ in range(20)]
        batch.insert(3, q)            # saturates int8 and int16? (2036 < 32767: resolves at 16)
        batch.insert(7, q * 9)        # self-score ~18k, still int16
        engine = AdaptivePrecisionEngine(register_bits=256)
        result = engine.score_batch(q, batch, BLOSUM62, g)
        for k, s in enumerate(batch):
            expect = oracle.score_pair(q, s, BLOSUM62, g).score
            assert result.scores[k] == expect, k

    def test_int16_saturation_reaches_32bit_stage(self, oracle):
        g = paper_gap_model()
        base = "ACDEFGHIKLMNPQRSTVWY" * 400  # 8000 aa, self-score ~40k > 32767
        engine = AdaptivePrecisionEngine(register_bits=512)
        result = engine.score_batch(base, [base, "AAAA"], BLOSUM62, g)
        assert [s.element_bits for s in result.stages] == [8, 16, 32]
        expect = oracle.score_pair(base[:100], base[:100], BLOSUM62, g).score
        # cross-check just the small entry exactly; the big one via scan
        scan = get_engine("scan")
        assert result.scores[0] == scan.score_pair(base, base, BLOSUM62, g).score
        assert result.scores[0] > 32767  # genuinely beyond int16

    def test_all_narrow_when_nothing_saturates(self, rng):
        g = paper_gap_model()
        q = random_protein(rng, 30)
        batch = [random_protein(rng, 30) for _ in range(12)]
        result = AdaptivePrecisionEngine().score_batch(q, batch, BLOSUM62, g)
        assert len(result.stages) >= 1
        assert result.stages[0].saturated == 0 or len(result.stages) > 1
        assert result.narrow_fraction == pytest.approx(
            result.stages[0].cells / result.total_cells
        )


class TestLadderAccounting:
    def test_lane_counts_follow_register_width(self):
        eng = AdaptivePrecisionEngine(register_bits=512)
        assert eng._stage_engine(8).lanes == 64
        assert eng._stage_engine(16).lanes == 32
        assert eng._stage_engine(32).lanes == 16

    def test_stage_cells_sum_to_total(self, rng, oracle):
        g = paper_gap_model()
        q = random_protein(rng, 40)
        batch = [random_protein(rng, 50) for _ in range(8)]
        batch.append("ACDEFGHIKLMNPQRSTVWY" * 15)  # saturates int8
        result = AdaptivePrecisionEngine().score_batch(q, batch, BLOSUM62, g)
        assert result.total_cells == sum(s.cells for s in result.stages)
        # Recomputation means total >= the plain batch cell count.
        assert result.total_cells >= result.batch.cells

    def test_effective_speedup_above_one_on_clean_batch(self, rng):
        g = paper_gap_model()
        q = random_protein(rng, 25)
        batch = [random_protein(rng, 40) for _ in range(10)]
        result = AdaptivePrecisionEngine(register_bits=256).score_batch(
            q, batch, BLOSUM62, g
        )
        # Everything resolved at int8 -> 32 lanes vs 8 base lanes = 4x.
        assert result.effective_lane_speedup(base_lanes=8) == pytest.approx(4.0)

    def test_resolved_counts(self, rng):
        g = paper_gap_model()
        q = random_protein(rng, 30)
        batch = [random_protein(rng, 30) for _ in range(5)]
        result = AdaptivePrecisionEngine().score_batch(q, batch, BLOSUM62, g)
        stage = result.stages[0]
        assert stage.resolved == stage.sequences - stage.saturated

    def test_invalid_register_width(self):
        with pytest.raises(EngineError):
            AdaptivePrecisionEngine(register_bits=100)
        with pytest.raises(EngineError):
            AdaptivePrecisionEngine(register_bits=16)


class TestNoRecomputeFlag:
    def test_clamped_scores_without_recompute(self, oracle):
        from repro.core import InterTaskEngine

        g = paper_gap_model()
        seq = "ACDEFGHIKLMNPQRSTVWY" * 10  # self-score ~1000 > 127
        eng = InterTaskEngine(lanes=4, saturate_bits=8)
        clamped = eng.score_batch(
            seq, [seq], BLOSUM62, g, recompute_saturated=False
        )
        assert clamped.saturated == [0]
        assert clamped.scores[0] == 127  # pinned at the int8 cap
        exact = eng.score_batch(seq, [seq], BLOSUM62, g)
        assert exact.scores[0] == oracle.score_pair(seq, seq, BLOSUM62, g).score
