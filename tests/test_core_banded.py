"""Unit tests for the banded Smith-Waterman engine."""

import numpy as np
import pytest

from repro.alphabet import PROTEIN
from repro.core import get_engine
from repro.core.banded import BandedEngine
from repro.exceptions import EngineError
from repro.scoring import BLOSUM62, GapModel, match_mismatch_matrix, paper_gap_model
from tests.conftest import random_protein

MM = match_mismatch_matrix(5, -4)


def banded_reference(query, db, matrix, gaps, width, offset):
    """Full-matrix affine DP with cells outside the band masked.

    The band-local engine's boundary conventions, spelled out on the
    full matrix: an out-of-band cell reads as ``H = 0`` (a local
    alignment may trivially restart there) and ``E = F = -inf`` (no gap
    may be *extended* through it).  Returns (score, end_i, end_j,
    cells) with the engine's scan-order tie-breaking.
    """
    q = PROTEIN.encode(query) if isinstance(query, str) else query
    d = PROTEIN.encode(db) if isinstance(db, str) else db
    m, n = len(q), len(d)
    neg = -(1 << 40)
    go, ge = gaps.first_gap_cost, gaps.extend
    sub = matrix.data
    H = np.zeros((m + 1, n + 1), dtype=np.int64)
    E = np.full((m + 1, n + 1), neg, dtype=np.int64)
    F = np.full((m + 1, n + 1), neg, dtype=np.int64)
    best = 0
    bi = bj = 0
    cells = 0
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            if abs(j - i - offset) > width:
                continue  # out of band: H stays 0, E/F stay -inf
            e = max(H[i][j - 1] - go, E[i][j - 1] - ge)
            f = max(H[i - 1][j] - go, F[i - 1][j] - ge)
            h = max(0, H[i - 1][j - 1] + int(sub[q[i - 1], d[j - 1]]), e, f)
            H[i][j], E[i][j], F[i][j] = h, e, f
            cells += 1
            if h > best:
                best, bi, bj = h, i, j
    return int(best), bi, bj, cells


@pytest.fixture(scope="module")
def oracle():
    return get_engine("scalar")


class TestWideBandExactness:
    def test_full_width_band_equals_scalar(self, rng, oracle):
        g = paper_gap_model()
        for _ in range(10):
            a = random_protein(rng, int(rng.integers(2, 40)))
            b = random_protein(rng, int(rng.integers(2, 40)))
            wide = BandedEngine(width=max(len(a), len(b)) + 1)
            assert (
                wide.score_pair(a, b, BLOSUM62, g).score
                == oracle.score_pair(a, b, BLOSUM62, g).score
            )

    def test_band_covering_optimal_path_is_exact(self, oracle):
        # One small gap: a band of width >= gap size suffices.
        g = GapModel(2, 1)
        a, b = "AAATTTCCC", "AAAGTTTCCC"
        exact = oracle.score_pair(a, b, MM, g).score
        assert BandedEngine(width=2).score_pair(a, b, MM, g).score == exact


class TestNarrowBandLowerBound:
    def test_never_exceeds_exact_score(self, rng, oracle):
        g = paper_gap_model()
        for width in (0, 1, 3, 6):
            a = random_protein(rng, 30)
            b = random_protein(rng, 30)
            banded = BandedEngine(width=width).score_pair(a, b, BLOSUM62, g)
            exact = oracle.score_pair(a, b, BLOSUM62, g)
            assert banded.score <= exact.score

    def test_monotone_in_width(self, rng):
        g = paper_gap_model()
        a = random_protein(rng, 40)
        b = random_protein(rng, 40)
        scores = [
            BandedEngine(width=w).score_pair(a, b, BLOSUM62, g).score
            for w in (0, 2, 4, 8, 16, 45)
        ]
        assert scores == sorted(scores)

    def test_zero_width_is_pure_diagonal(self, oracle):
        # width 0, offset 0: only the main diagonal — no gaps possible.
        g = paper_gap_model()
        a = b = "WCHKWCHK"
        banded = BandedEngine(width=0).score_pair(a, b, BLOSUM62, g)
        assert banded.score == sum(BLOSUM62.score(c, c) for c in a)


class TestOffset:
    def test_offset_band_finds_shifted_alignment(self):
        g = paper_gap_model()
        # The true alignment lies on diagonal +5.
        core = "WCHKWCHKWCHK"
        query = core
        db = "AAAAA" + core
        on_diag = BandedEngine(width=1, offset=5).score_pair(
            query, db, BLOSUM62, g
        )
        off_diag = BandedEngine(width=1, offset=0).score_pair(
            query, db, BLOSUM62, g
        )
        expect = sum(BLOSUM62.score(c, c) for c in core)
        assert on_diag.score == expect
        assert off_diag.score < expect

    def test_negative_offset(self):
        g = paper_gap_model()
        core = "WCHKWCHKWCHK"
        query = "AAAAA" + core
        db = core
        banded = BandedEngine(width=1, offset=-5).score_pair(
            query, db, BLOSUM62, g
        )
        assert banded.score == sum(BLOSUM62.score(c, c) for c in core)


class TestBandEdgeReference:
    """The rolling band-local DP equals the masked full-matrix DP.

    These pin the boundary behaviour the slot arithmetic relies on —
    including the ``j - 1 == 0`` column, whose previous-row slot is
    never written and must read as the padding zero (the reason the old
    ``if j - 1 >= 0`` guard was dead).
    """

    # Widths/offsets chosen so the band clips the top, bottom, left and
    # right matrix edges, collapses to a single diagonal (width=0), and
    # leaves leading/trailing rows empty (lo > hi).
    EDGES = [
        (0, 0), (0, 4), (0, -4),
        (1, -8), (2, 12), (3, -15),
        (5, 0), (16, 9), (2, 23),
    ]

    @pytest.mark.parametrize("width,offset", EDGES)
    def test_matches_masked_reference(self, rng, width, offset):
        g = paper_gap_model()
        a = random_protein(rng, 20)
        b = random_protein(rng, 25)
        res = BandedEngine(width=width, offset=offset).score_pair(
            a, b, BLOSUM62, g
        )
        score, bi, bj, cells = banded_reference(
            a, b, BLOSUM62, g, width, offset
        )
        assert res.score == score
        assert res.cells == cells
        assert (res.end_query, res.end_db) == (bi, bj)

    @pytest.mark.parametrize("width,offset", EDGES)
    def test_matches_reference_uneven_lengths(self, rng, width, offset):
        # Rectangular matrices clip the band differently on each edge.
        g = GapModel(2, 1)
        a = random_protein(rng, 31)
        b = random_protein(rng, 9)
        res = BandedEngine(width=width, offset=offset).score_pair(
            a, b, MM, g
        )
        score, bi, bj, cells = banded_reference(a, b, MM, g, width, offset)
        assert res.score == score
        assert res.cells == cells
        assert (res.end_query, res.end_db) == (bi, bj)

    def test_band_entirely_off_matrix(self, rng):
        # offset beyond the database length: every row has lo > hi.
        g = paper_gap_model()
        a = random_protein(rng, 12)
        b = random_protein(rng, 8)
        res = BandedEngine(width=2, offset=30).score_pair(a, b, BLOSUM62, g)
        assert res.score == 0
        assert res.cells == 0

    def test_leading_rows_empty_then_band_enters(self, rng):
        # Strongly negative offset: the first rows are lo > hi and the
        # band only enters the matrix lower down; the row state must
        # reset cleanly across the empty rows.
        g = paper_gap_model()
        a = random_protein(rng, 24)
        b = random_protein(rng, 24)
        width, offset = 1, -18
        res = BandedEngine(width=width, offset=offset).score_pair(
            a, b, BLOSUM62, g
        )
        score, _, _, cells = banded_reference(
            a, b, BLOSUM62, g, width, offset
        )
        assert res.score == score
        assert res.cells == cells
        assert cells > 0

    def test_first_column_boundary_width_zero(self):
        # width=0, offset=0 touches column 1 in row 1: its h_diag read
        # is the previous row's never-written column-0 slot, which must
        # be the padding zero (H(0, 0)), not garbage.
        g = paper_gap_model()
        res = BandedEngine(width=0).score_pair("W", "W", BLOSUM62, g)
        assert res.score == BLOSUM62.score("W", "W")
        assert res.cells == 1


class TestAccounting:
    def test_band_cells_bound(self):
        eng = BandedEngine(width=2)
        # Row i visits at most 2w+1 columns.
        assert eng.band_cells(10, 100) <= 10 * 5
        assert eng.band_cells(10, 3) <= 30

    def test_cells_reported_matches_band(self, rng):
        g = paper_gap_model()
        a = random_protein(rng, 25)
        b = random_protein(rng, 30)
        eng = BandedEngine(width=4)
        res = eng.score_pair(a, b, BLOSUM62, g)
        assert res.cells == eng.band_cells(25, 30)
        assert res.cells < 25 * 30

    def test_invalid_parameters(self):
        with pytest.raises(EngineError):
            BandedEngine(width=-1)
        with pytest.raises(EngineError):
            BandedEngine(width=2).band_cells(0, 5)
