"""Unit tests for the banded Smith-Waterman engine."""

import pytest

from repro.core import get_engine
from repro.core.banded import BandedEngine
from repro.exceptions import EngineError
from repro.scoring import BLOSUM62, GapModel, match_mismatch_matrix, paper_gap_model
from tests.conftest import random_protein

MM = match_mismatch_matrix(5, -4)


@pytest.fixture(scope="module")
def oracle():
    return get_engine("scalar")


class TestWideBandExactness:
    def test_full_width_band_equals_scalar(self, rng, oracle):
        g = paper_gap_model()
        for _ in range(10):
            a = random_protein(rng, int(rng.integers(2, 40)))
            b = random_protein(rng, int(rng.integers(2, 40)))
            wide = BandedEngine(width=max(len(a), len(b)) + 1)
            assert (
                wide.score_pair(a, b, BLOSUM62, g).score
                == oracle.score_pair(a, b, BLOSUM62, g).score
            )

    def test_band_covering_optimal_path_is_exact(self, oracle):
        # One small gap: a band of width >= gap size suffices.
        g = GapModel(2, 1)
        a, b = "AAATTTCCC", "AAAGTTTCCC"
        exact = oracle.score_pair(a, b, MM, g).score
        assert BandedEngine(width=2).score_pair(a, b, MM, g).score == exact


class TestNarrowBandLowerBound:
    def test_never_exceeds_exact_score(self, rng, oracle):
        g = paper_gap_model()
        for width in (0, 1, 3, 6):
            a = random_protein(rng, 30)
            b = random_protein(rng, 30)
            banded = BandedEngine(width=width).score_pair(a, b, BLOSUM62, g)
            exact = oracle.score_pair(a, b, BLOSUM62, g)
            assert banded.score <= exact.score

    def test_monotone_in_width(self, rng):
        g = paper_gap_model()
        a = random_protein(rng, 40)
        b = random_protein(rng, 40)
        scores = [
            BandedEngine(width=w).score_pair(a, b, BLOSUM62, g).score
            for w in (0, 2, 4, 8, 16, 45)
        ]
        assert scores == sorted(scores)

    def test_zero_width_is_pure_diagonal(self, oracle):
        # width 0, offset 0: only the main diagonal — no gaps possible.
        g = paper_gap_model()
        a = b = "WCHKWCHK"
        banded = BandedEngine(width=0).score_pair(a, b, BLOSUM62, g)
        assert banded.score == sum(BLOSUM62.score(c, c) for c in a)


class TestOffset:
    def test_offset_band_finds_shifted_alignment(self):
        g = paper_gap_model()
        # The true alignment lies on diagonal +5.
        core = "WCHKWCHKWCHK"
        query = core
        db = "AAAAA" + core
        on_diag = BandedEngine(width=1, offset=5).score_pair(
            query, db, BLOSUM62, g
        )
        off_diag = BandedEngine(width=1, offset=0).score_pair(
            query, db, BLOSUM62, g
        )
        expect = sum(BLOSUM62.score(c, c) for c in core)
        assert on_diag.score == expect
        assert off_diag.score < expect

    def test_negative_offset(self):
        g = paper_gap_model()
        core = "WCHKWCHKWCHK"
        query = "AAAAA" + core
        db = core
        banded = BandedEngine(width=1, offset=-5).score_pair(
            query, db, BLOSUM62, g
        )
        assert banded.score == sum(BLOSUM62.score(c, c) for c in core)


class TestAccounting:
    def test_band_cells_bound(self):
        eng = BandedEngine(width=2)
        # Row i visits at most 2w+1 columns.
        assert eng.band_cells(10, 100) <= 10 * 5
        assert eng.band_cells(10, 3) <= 30

    def test_cells_reported_matches_band(self, rng):
        g = paper_gap_model()
        a = random_protein(rng, 25)
        b = random_protein(rng, 30)
        eng = BandedEngine(width=4)
        res = eng.score_pair(a, b, BLOSUM62, g)
        assert res.cells == eng.band_cells(25, 30)
        assert res.cells < 25 * 30

    def test_invalid_parameters(self):
        with pytest.raises(EngineError):
            BandedEngine(width=-1)
        with pytest.raises(EngineError):
            BandedEngine(width=2).band_cells(0, 5)
