"""Tests for matrix-file loading, reverse complement and all-pairs."""

import numpy as np
import pytest

from repro.alphabet import DNA, PROTEIN, reverse_complement
from repro.core.allpairs import score_all_pairs, similarity_matrix
from repro.exceptions import AlphabetError, EngineError, ScoringError
from repro.scoring import BLOSUM62, load_matrix_file, paper_gap_model
from tests.conftest import random_protein


class TestLoadMatrixFile:
    def _write(self, tmp_path, text, name="custom.mat"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_reordered_columns_accepted(self, tmp_path):
        # Columns in a different order than the alphabet.
        path = self._write(tmp_path, "\n".join([
            "   C  A  R",
            "C  9  0 -3",
            "A  0  4 -1",
            "R -3 -1  5",
        ]))
        m = load_matrix_file(path)
        assert m.score("A", "A") == 4
        assert m.score("C", "C") == 9
        assert m.score("A", "R") == -1
        assert m.name == "CUSTOM"

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = self._write(tmp_path, "# a comment\n\n  A\nA 7\n")
        m = load_matrix_file(path, name="SINGLE")
        assert m.score("A", "A") == 7

    def test_missing_letters_get_minimum(self, tmp_path):
        path = self._write(tmp_path, "  A C\nA 4 0\nC 0 9\n")
        m = load_matrix_file(path)
        # W is absent from the file -> the file minimum (0).
        assert m.score("W", "W") == 0

    def test_asymmetric_file_symmetrised_conservatively(self, tmp_path):
        path = self._write(tmp_path, "  A C\nA 4 2\nC 1 9\n")
        m = load_matrix_file(path)
        assert m.score("A", "C") == m.score("C", "A") == 1

    def test_bad_header_rejected(self, tmp_path):
        path = self._write(tmp_path, " AB C\nA 1 2\n")
        with pytest.raises(ScoringError):
            load_matrix_file(path)

    def test_row_width_mismatch_rejected(self, tmp_path):
        path = self._write(tmp_path, "  A C\nA 4\n")
        with pytest.raises(ScoringError):
            load_matrix_file(path)

    def test_empty_file_rejected(self, tmp_path):
        path = self._write(tmp_path, "# nothing\n")
        with pytest.raises(ScoringError, match="empty"):
            load_matrix_file(path)

    def test_roundtrip_of_bundled_matrix(self, tmp_path):
        # Writing BLOSUM62 out in alphabet order and reloading must give
        # back the identical table.
        lines = ["  " + " ".join(PROTEIN.letters)]
        for i, a in enumerate(PROTEIN.letters):
            lines.append(
                a + " " + " ".join(str(int(v)) for v in BLOSUM62.data[i])
            )
        path = self._write(tmp_path, "\n".join(lines))
        m = load_matrix_file(path)
        assert np.array_equal(m.data, BLOSUM62.data)


class TestReverseComplement:
    def test_known_value(self):
        assert DNA.decode(reverse_complement(DNA.encode("AACGT"))) == "ACGTT"

    def test_involution(self, rng):
        codes = rng.integers(0, 5, 50).astype(np.uint8)
        twice = reverse_complement(reverse_complement(codes))
        assert np.array_equal(twice, codes)

    def test_n_maps_to_n(self):
        assert DNA.decode(reverse_complement(DNA.encode("NNN"))) == "NNN"

    def test_rejects_non_dna_codes(self):
        with pytest.raises(AlphabetError):
            reverse_complement(np.array([7], dtype=np.uint8))

    def test_mapping_score_invariance(self, rng):
        # A read and its reverse complement align equally well to the
        # reference and its reverse complement, respectively.
        from repro.core import get_engine
        from repro.scoring import GapModel, match_mismatch_matrix

        mm = match_mismatch_matrix(2, -3, alphabet=DNA)
        g = GapModel(5, 2)
        eng = get_engine("scan", alphabet=DNA)
        ref = rng.integers(0, 4, 80).astype(np.uint8)
        read = ref[20:50]
        fwd = eng.score_pair(read, ref, mm, g).score
        rev = eng.score_pair(
            reverse_complement(read), reverse_complement(ref), mm, g
        ).score
        assert fwd == rev


class TestAllPairs:
    def test_matrix_symmetric_with_self_diagonal(self, rng):
        g = paper_gap_model()
        seqs = [random_protein(rng, int(rng.integers(10, 40)))
                for _ in range(6)]
        scores = score_all_pairs(seqs, BLOSUM62, g)
        assert np.array_equal(scores, scores.T)
        for k, s in enumerate(seqs):
            assert scores[k, k] == sum(BLOSUM62.score(c, c) for c in s)

    def test_matches_pairwise_engine(self, rng):
        from repro.core import get_engine

        g = paper_gap_model()
        seqs = [random_protein(rng, 20) for _ in range(4)]
        scores = score_all_pairs(seqs, BLOSUM62, g)
        scan = get_engine("scan")
        for i in range(4):
            for j in range(4):
                assert scores[i, j] == scan.score_pair(
                    seqs[i], seqs[j], BLOSUM62, g
                ).score

    def test_similarity_properties(self, rng):
        g = paper_gap_model()
        base = random_protein(rng, 60)
        seqs = [base, base, random_protein(rng, 60)]
        sim = similarity_matrix(seqs, BLOSUM62, g)
        assert sim[0, 1] == pytest.approx(1.0)   # identical pair
        assert np.diag(sim) == pytest.approx(1.0)
        assert sim[0, 2] < 0.5                   # unrelated pair
        assert (sim >= 0).all() and (sim <= 1.0 + 1e-9).all()

    def test_containment_reads_high(self, rng):
        g = paper_gap_model()
        long_seq = random_protein(rng, 100)
        short_seq = long_seq[30:60]
        sim = similarity_matrix([long_seq, short_seq], BLOSUM62, g)
        assert sim[0, 1] == pytest.approx(1.0)

    def test_empty_input_rejected(self):
        with pytest.raises(EngineError):
            score_all_pairs([], BLOSUM62, paper_gap_model())
