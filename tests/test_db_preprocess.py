"""Unit tests for database pre-processing (Algorithm 1/2 step 2)."""

import numpy as np
import pytest

from repro.db import SyntheticSwissProt, preprocess_database, split_database
from repro.exceptions import DatabaseError


@pytest.fixture(scope="module")
def small_db():
    return SyntheticSwissProt().generate(scale=0.0005)


class TestPreprocess:
    def test_database_sorted(self, small_db):
        pre = preprocess_database(small_db, lanes=8)
        lengths = pre.database.lengths
        assert np.array_equal(lengths, np.sort(lengths))

    def test_residues_conserved(self, small_db):
        pre = preprocess_database(small_db, lanes=8)
        assert pre.total_residues == small_db.total_residues

    def test_group_count(self, small_db):
        pre = preprocess_database(small_db, lanes=8)
        assert len(pre.groups) == -(-len(small_db) // 8)

    def test_padding_small_after_sorting(self, small_db):
        pre = preprocess_database(small_db, lanes=8)
        assert pre.padding_fraction < 0.5

    def test_group_cells_scale_with_query(self, small_db):
        pre = preprocess_database(small_db, lanes=8)
        c1 = pre.group_cells(100)
        c2 = pre.group_cells(200)
        assert np.array_equal(2 * c1, c2)
        assert c1.sum() == 100 * small_db.total_residues


class TestSplit:
    def test_partition_is_exact(self, small_db):
        host, dev = split_database(small_db, 0.55)
        assert len(host) + len(dev) == len(small_db)
        assert host.total_residues + dev.total_residues == small_db.total_residues

    def test_fraction_respected_by_residues(self, small_db):
        host, dev = split_database(small_db, 0.55)
        frac = dev.total_residues / small_db.total_residues
        assert abs(frac - 0.55) < 0.02

    @pytest.mark.parametrize("fraction", [0.1, 0.3, 0.5, 0.7, 0.9])
    def test_various_fractions(self, small_db, fraction):
        host, dev = split_database(small_db, fraction)
        frac = dev.total_residues / small_db.total_residues
        assert abs(frac - fraction) < 0.05

    def test_zero_fraction_all_host(self, small_db):
        host, dev = split_database(small_db, 0.0)
        assert len(dev) == 0
        assert len(host) == len(small_db)

    def test_full_fraction_all_device(self, small_db):
        host, dev = split_database(small_db, 1.0)
        assert len(host) == 0
        assert len(dev) == len(small_db)

    def test_no_sequence_duplicated(self, small_db):
        host, dev = split_database(small_db, 0.4)
        host_h = set(host.headers)
        dev_h = set(dev.headers)
        assert not host_h & dev_h
        assert host_h | dev_h == set(small_db.headers)

    def test_invalid_fraction(self, small_db):
        with pytest.raises(DatabaseError):
            split_database(small_db, 1.5)
        with pytest.raises(DatabaseError):
            split_database(small_db, -0.1)

    def test_both_sides_get_long_sequences(self, small_db):
        # The greedy walk interleaves long entries so both halves keep a
        # similar length profile (the paper's balanced static split).
        host, dev = split_database(small_db, 0.5)
        assert host.max_length > 0.3 * small_db.max_length
        assert dev.max_length > 0.3 * small_db.max_length
