"""Unit tests for the calibrated performance model.

These tests pin the *shapes* the paper reports — orderings, ratios,
crossovers — rather than exact third-party numbers (only the per-device
anchor is exact by construction).
"""

import numpy as np
import pytest

from repro.db import SyntheticSwissProt
from repro.devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
from repro.exceptions import ModelError
from repro.perfmodel import (
    CALIBRATIONS, DevicePerformanceModel, RunConfig, Workload,
    calibration_for, efficiency_table, thread_sweep,
)


@pytest.fixture(scope="module")
def lengths():
    return SyntheticSwissProt().lengths()


@pytest.fixture(scope="module")
def xeon(lengths):
    return DevicePerformanceModel(XEON_E5_2670_DUAL)


@pytest.fixture(scope="module")
def phi():
    return DevicePerformanceModel(XEON_PHI_57XX)


@pytest.fixture(scope="module")
def wl_xeon(lengths):
    return Workload.from_lengths(lengths, 8)


@pytest.fixture(scope="module")
def wl_phi(lengths):
    return Workload.from_lengths(lengths, 16)


class TestWorkload:
    def test_cells(self, wl_xeon, lengths):
        assert wl_xeon.cells(100) == 100 * int(lengths.sum())

    def test_group_structure(self, lengths):
        wl = Workload.from_lengths(lengths, 16)
        assert len(wl.group_residues) == -(-len(lengths) // 16)
        assert wl.group_residues.sum() == lengths.sum()

    def test_fingerprint_distinguishes_workloads(self, lengths):
        a = Workload.from_lengths(lengths[:1000], 8)
        b = Workload.from_lengths(lengths[1000:2000], 8)
        assert a.fingerprint != b.fingerprint

    def test_fingerprint_stable(self, lengths):
        a = Workload.from_lengths(lengths[:1000], 8)
        b = Workload.from_lengths(lengths[:1000].copy(), 8)
        assert a.fingerprint == b.fingerprint

    def test_invalid_inputs(self):
        with pytest.raises(ModelError):
            Workload.from_lengths(np.array([], dtype=np.int64), 8)
        with pytest.raises(ModelError):
            Workload.from_lengths(np.array([0]), 8)
        with pytest.raises(ModelError):
            Workload.from_lengths(np.array([10]), 0)
        with pytest.raises(ModelError):
            Workload.from_lengths(np.array([10]), 8).cells(0)


class TestCalibration:
    def test_lookup(self):
        assert calibration_for("xeon-e5-2670x2") is CALIBRATIONS["xeon-e5-2670x2"]

    def test_unknown_device(self):
        with pytest.raises(ModelError):
            calibration_for("gpu-9000")

    def test_anchor_targets_are_paper_numbers(self):
        assert CALIBRATIONS["xeon-e5-2670x2"].anchor_target_gcups == 32.0
        assert CALIBRATIONS["xeon-phi-60c"].anchor_target_gcups == 34.9


class TestAnchoredHeadlines:
    def test_xeon_intrinsic_sp_hits_anchor(self, xeon, wl_xeon):
        g = xeon.gcups(wl_xeon, 5478, RunConfig())
        assert g == pytest.approx(32.0, rel=1e-6)

    def test_phi_intrinsic_sp_hits_anchor(self, phi, wl_phi):
        g = phi.gcups(wl_phi, 5478, RunConfig())
        assert g == pytest.approx(34.9, rel=1e-6)


class TestVariantOrdering:
    """Figure 3/5 orderings: intrinsic > simd > no-vec; SP >= QP."""

    @pytest.mark.parametrize("model_name,lanes", [("xeon", 8), ("phi", 16)])
    def test_vectorization_ordering(self, model_name, lanes, xeon, phi, lengths):
        model = {"xeon": xeon, "phi": phi}[model_name]
        wl = Workload.from_lengths(lengths, lanes)
        g = {
            vec: model.gcups(wl, 5478, RunConfig(vectorization=vec))
            for vec in ("novec", "simd", "intrinsic")
        }
        assert g["intrinsic"] > g["simd"] > g["novec"]
        assert g["novec"] < 3.0  # "hardly offer performances"

    @pytest.mark.parametrize("model_name,lanes", [("xeon", 8), ("phi", 16)])
    def test_sp_beats_qp(self, model_name, lanes, xeon, phi, lengths):
        model = {"xeon": xeon, "phi": phi}[model_name]
        wl = Workload.from_lengths(lengths, lanes)
        sp = model.gcups(wl, 5478, RunConfig(profile="sequence"))
        qp = model.gcups(wl, 5478, RunConfig(profile="query"))
        assert sp > qp

    def test_qp_penalty_larger_on_xeon(self, xeon, phi, wl_xeon, wl_phi):
        # Section V-C2: the Phi's gather makes QP hurt less there.
        xeon_ratio = (
            xeon.gcups(wl_xeon, 5478, RunConfig(profile="sequence"))
            / xeon.gcups(wl_xeon, 5478, RunConfig(profile="query"))
        )
        phi_ratio = (
            phi.gcups(wl_phi, 5478, RunConfig(profile="sequence"))
            / phi.gcups(wl_phi, 5478, RunConfig(profile="query"))
        )
        assert xeon_ratio > phi_ratio

    def test_guided_penalty_larger_on_phi(self, xeon, phi, wl_xeon, wl_phi):
        # Fig. 3 vs Fig. 5: simd-SP is ~78% of intrinsic-SP on the Xeon
        # but only ~42% on the Phi.
        xeon_ratio = (
            xeon.gcups(wl_xeon, 5478, RunConfig(vectorization="simd"))
            / xeon.gcups(wl_xeon, 5478, RunConfig())
        )
        phi_ratio = (
            phi.gcups(wl_phi, 5478, RunConfig(vectorization="simd"))
            / phi.gcups(wl_phi, 5478, RunConfig())
        )
        assert phi_ratio < 0.55 < xeon_ratio

    def test_paper_simd_values_approximate(self, xeon, phi, wl_xeon, wl_phi):
        # Fig. 4: simd-SP 25.1 on Xeon; Fig. 5: 13.6/14.5 QP/SP on Phi.
        assert xeon.gcups(wl_xeon, 5478, RunConfig(vectorization="simd")) == pytest.approx(25.1, rel=0.10)
        assert phi.gcups(wl_phi, 5478, RunConfig(vectorization="simd")) == pytest.approx(14.5, rel=0.10)
        assert phi.gcups(wl_phi, 5478, RunConfig(vectorization="simd", profile="query")) == pytest.approx(13.6, rel=0.10)

    def test_paper_intrinsic_qp_phi(self, phi, wl_phi):
        # Section V-C2: intrinsic-QP reaches 27.1 GCUPS.
        g = phi.gcups(wl_phi, 5478, RunConfig(profile="query"))
        assert g == pytest.approx(27.1, rel=0.10)


class TestThreadScaling:
    def test_xeon_monotone_and_saturating(self, xeon, wl_xeon):
        sweep = thread_sweep(xeon, wl_xeon, 1000, RunConfig(), [1, 2, 4, 8, 16, 32])
        values = list(sweep.values())
        assert all(b >= a for a, b in zip(values, values[1:]))
        # HT region gains less than physical-core region.
        assert sweep[32] / sweep[16] < sweep[16] / sweep[8]

    def test_xeon_efficiency_matches_paper_quotes(self, xeon, wl_xeon):
        # Section V-C1: ~99% at 4 threads, ~88% at 16, ~70% at 32.
        eff = efficiency_table(xeon, wl_xeon, 1000, RunConfig(), [4, 16, 32])
        assert eff[4] == pytest.approx(0.99, abs=0.03)
        assert eff[16] == pytest.approx(0.88, abs=0.12)
        assert eff[32] == pytest.approx(0.70, abs=0.07)

    def test_phi_scales_to_240(self, phi, wl_phi):
        sweep = thread_sweep(phi, wl_phi, 1000, RunConfig(), [30, 60, 120, 240])
        values = list(sweep.values())
        assert all(b > a for a, b in zip(values, values[1:]))


class TestQueryLengthEffect:
    def test_phi_gains_strongly_with_length(self, phi, wl_phi):
        # Fig. 6: "as the query length is longer, there is more
        # performance achieved".
        short = phi.gcups(wl_phi, 144, RunConfig())
        long = phi.gcups(wl_phi, 5478, RunConfig())
        assert long > short * 1.15

    def test_xeon_gains_mildly(self, xeon, wl_xeon):
        # Fig. 4: "practically no impact ... light improvement trend".
        short = xeon.gcups(wl_xeon, 144, RunConfig())
        long = xeon.gcups(wl_xeon, 5478, RunConfig())
        assert 1.0 < long / short < 1.2

    def test_monotone_in_query_length(self, phi, wl_phi):
        values = [phi.gcups(wl_phi, q, RunConfig()) for q in (144, 464, 1000, 2504, 5478)]
        assert all(b > a for a, b in zip(values, values[1:]))


class TestBlocking:
    def test_blocking_helps_both_devices(self, xeon, phi, wl_xeon, wl_phi):
        for model, wl in ((xeon, wl_xeon), (phi, wl_phi)):
            on = model.gcups(wl, 5478, RunConfig(blocking=True))
            off = model.gcups(wl, 5478, RunConfig(blocking=False))
            assert on > off

    def test_blocking_helps_phi_more(self, xeon, phi, wl_xeon, wl_phi):
        # Fig. 7: "larger improvement in the Intel Xeon Phi because its
        # cache size is lower".
        gain_x = (
            xeon.gcups(wl_xeon, 5478, RunConfig())
            / xeon.gcups(wl_xeon, 5478, RunConfig(blocking=False))
        )
        gain_p = (
            phi.gcups(wl_phi, 5478, RunConfig())
            / phi.gcups(wl_phi, 5478, RunConfig(blocking=False))
        )
        assert gain_p > gain_x > 1.0


class TestSchedulePolicies:
    def test_dynamic_at_least_as_good_as_static(self, xeon, wl_xeon):
        dyn = xeon.gcups(wl_xeon, 1000, RunConfig(schedule="dynamic"))
        sta = xeon.gcups(wl_xeon, 1000, RunConfig(schedule="static"))
        assert dyn >= sta

    def test_run_config_labels(self):
        assert RunConfig(vectorization="novec").label == "no-vec"
        assert RunConfig(vectorization="simd", profile="query").label == "simd-QP"
        assert RunConfig().label == "intrinsic-SP"


class TestProjection:
    def test_projection_keeps_anchor(self, phi, wl_phi):
        from dataclasses import replace as dc_replace

        from repro.devices import XEON_PHI_57XX

        bigger = dc_replace(XEON_PHI_57XX, name="knc-120c", cores=120)
        projected = phi.project(bigger)
        assert projected.anchor() == phi.anchor()
        assert projected.cal is phi.cal

    def test_more_cores_more_gcups(self, phi, wl_phi, lengths):
        from dataclasses import replace as dc_replace

        from repro.devices import XEON_PHI_57XX
        from repro.perfmodel import Workload

        bigger = phi.project(
            dc_replace(XEON_PHI_57XX, name="knc-90c", cores=90)
        )
        wl = Workload.from_lengths(lengths, 16)
        assert bigger.gcups(wl, 5478, RunConfig()) > phi.gcups(
            wl, 5478, RunConfig()
        )

    def test_knl_projection_in_plausible_range(self, phi, lengths):
        from repro.devices.spec import XEON_PHI_KNL_PROJECTION
        from repro.perfmodel import Workload

        knl = phi.project(XEON_PHI_KNL_PROJECTION)
        wl = Workload.from_lengths(lengths, 16)
        g = knl.gcups(wl, 5478, RunConfig())
        # KNL-generation SW implementations reached ~50-60 GCUPS.
        assert 40 < g < 70
