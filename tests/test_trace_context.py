"""Cross-wire trace propagation: one stitched trace across the socket.

Header round-trips and ``adopt_spans`` grafting are unit-tested first;
then a live ``SearchServer``/``SearchClient`` pair proves the real
contract — with tracing enabled on the client, the server's spans come
back on the wire, land in the *client's* collector under the RPC span,
and the search result itself stays bit-identical to the untraced path.
"""

import pytest

from repro.db import SyntheticSwissProt
from repro.exceptions import WireError
from repro.metrics import MetricsRegistry
from repro.obs import (
    TRACE_HEADER,
    TraceContext,
    Tracer,
    adopt_spans,
    current_context,
    to_chrome_trace,
    use_tracer,
)
from repro.serve import SearchClient, SearchServer

QUERY = "MKVLILACLVALALA"


@pytest.fixture(scope="module")
def db():
    return SyntheticSwissProt().generate(scale=0.0001)


@pytest.fixture(scope="module")
def server(db):
    with SearchServer(db, metrics=MetricsRegistry()) as srv:
        yield srv


class TestTraceContext:
    def test_header_round_trip(self):
        ctx = TraceContext(trace_id="a3f9c2d1b4e8f701", parent_span_id=17)
        assert ctx.to_header() == "a3f9c2d1b4e8f701/17"
        assert TraceContext.from_header(ctx.to_header()) == ctx

    @pytest.mark.parametrize("value", [
        "", "justtraceid", "abc/", "/12", "XYZ/1", "abc/notanumber",
        "abc/1/2x",
    ])
    def test_malformed_header_is_wire_error(self, value):
        with pytest.raises(WireError, match="trace"):
            TraceContext.from_header(value)

    def test_non_string_header_is_wire_error(self):
        with pytest.raises(WireError, match="string"):
            TraceContext.from_header(12345)

    def test_current_context_requires_enabled_tracer_and_open_span(self):
        assert current_context() is None  # default NullTracer
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_context() is None  # no open span
            with tracer.span("rpc") as sp:
                ctx = current_context()
                assert ctx == TraceContext(tracer.trace_id, sp.span_id)

    def test_header_name_constant(self):
        assert TRACE_HEADER == "X-Repro-Trace"


class TestAdoptSpans:
    def _foreign_docs(self):
        remote = Tracer(trace_id="feedface00000000")
        with remote.span("serve.request") as root:
            with remote.span("pipeline.search"):
                pass
            root.add_event("checkpoint", detail=1)
        return [s.to_dict() for s in remote.collector.spans()]

    def test_grafted_under_local_parent_with_fresh_ids(self):
        docs = self._foreign_docs()
        local = Tracer()
        with local.span("serve.client.request") as rpc:
            adopted = adopt_spans(local, docs, parent=rpc)
        by_name = {s.name: s for s in adopted}
        root = by_name["serve.request"]
        child = by_name["pipeline.search"]
        assert root.parent_id == rpc.span_id
        assert child.parent_id == root.span_id
        local_ids = {s.span_id for s in local.collector.spans()}
        assert len(local_ids) == 3  # rpc + two grafted, no collisions
        assert root.attributes["origin"] == "server"
        assert "remote_span_id" in root.attributes  # original id preserved
        assert child.thread_id < 0  # foreign threads get their own track

    def test_window_rebases_foreign_timeline(self):
        docs = self._foreign_docs()
        local = Tracer()
        with local.span("serve.client.request") as rpc:
            pass
        # A window comfortably wider than the foreign interval: every
        # grafted span must land strictly inside it (centred).
        window = (rpc.start_wall, rpc.start_wall + 60.0)
        adopted = adopt_spans(local, docs, parent=rpc, window=window)
        for span in adopted:
            assert span.start_wall >= window[0] - 1e-9
            assert span.end_wall <= window[1] + 1e-9


class TestLiveStitching:
    def test_client_and_server_spans_share_one_trace(self, server):
        client = SearchClient(server.url, metrics=MetricsRegistry())
        tracer = Tracer()
        with use_tracer(tracer):
            traced = client.search(QUERY)
        names = {s.name for s in tracer.collector.spans()}
        assert "serve.client.request" in names
        assert "serve.request" in names  # the server's root, grafted
        origins = {
            s.attributes.get("origin") for s in tracer.collector.spans()
        }
        assert "server" in origins

        rpc = tracer.collector.find("serve.client.request")[0]
        remote_root = tracer.collector.find("serve.request")[0]
        assert remote_root.parent_id == rpc.span_id
        assert remote_root.attributes["endpoint"] == "/v1/submit"
        # Every grafted span sits inside the RPC span's wall window.
        for span in tracer.collector.descendants(rpc):
            assert span.start_wall >= rpc.start_wall - 1e-9

        prov = traced.provenance["trace"]
        assert prov["trace_id"] == tracer.trace_id
        assert prov["server_root_span_id"] in prov["server_span_ids"]
        assert len(prov["server_span_ids"]) >= 2

    def test_traced_search_bit_identical_to_untraced(self, server):
        client = SearchClient(server.url, metrics=MetricsRegistry())
        plain = client.search(QUERY)
        with use_tracer(Tracer()):
            traced = client.search(QUERY)
        assert list(traced.hits) == list(plain.hits)
        assert traced.best_score() == plain.best_score()
        assert traced.cells == plain.cells
        assert "trace" not in plain.provenance

    def test_chrome_export_holds_both_halves(self, server):
        client = SearchClient(server.url, metrics=MetricsRegistry())
        tracer = Tracer()
        with use_tracer(tracer):
            client.search(QUERY)
        doc = to_chrome_trace(tracer.collector)
        names = {
            ev["name"] for ev in doc["traceEvents"] if ev["ph"] == "X"
        }
        assert {"serve.client.request", "serve.request"} <= names

    def test_untraced_request_sends_no_header_and_no_trace(self, server):
        client = SearchClient(server.url, metrics=MetricsRegistry())
        result = client.search(QUERY)
        assert "trace" not in result.provenance

    def test_malformed_wire_header_rejected_as_wire_error(self, server):
        import json
        import urllib.error
        import urllib.request

        from repro.serve.wire import WIRE_SCHEMA_VERSION

        req = urllib.request.Request(
            f"{server.url}/v1/submit",
            data=json.dumps({
                "schema_version": WIRE_SCHEMA_VERSION, "kind": "request",
                "request": {"query": QUERY},
            }).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                TRACE_HEADER: "not hex!/x",
            },
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10.0)
        assert err.value.code == 400
        assert json.loads(err.value.read())["error"] == "WireError"

    def test_batch_and_stream_carry_traces_too(self, server):
        client = SearchClient(server.url, metrics=MetricsRegistry())
        tracer = Tracer()
        with use_tracer(tracer):
            client.run([QUERY, QUERY[::-1]])
            list(client.stream(QUERY, page_size=3))
        grafted = [
            s for s in tracer.collector.spans()
            if s.attributes.get("origin") == "server"
        ]
        endpoints = {
            s.attributes.get("endpoint") for s in grafted
            if s.name == "serve.request"
        }
        assert "/v1/batch" in endpoints
        assert "/v1/stream" in endpoints
