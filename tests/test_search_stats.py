"""Tests for the Karlin-Altschul / Gumbel statistics extension."""

import math

import numpy as np
import pytest

from repro.db import SyntheticSwissProt
from repro.db.mutate import plant_homologs
from repro.exceptions import ModelError
from repro.scoring import BLOSUM62, PAM250, match_mismatch_matrix
from repro.search import SearchPipeline
from repro.search.stats import (
    GumbelFit, attach_statistics, bitscore, evalue, ungapped_lambda,
)


class TestUngappedLambda:
    def test_blosum62_lambda_near_literature_value(self):
        # Ungapped BLOSUM62 with standard background: lambda ~ 0.318
        # (the canonical BLAST value is 0.3176).
        lam = ungapped_lambda(BLOSUM62)
        assert lam == pytest.approx(0.318, abs=0.01)

    def test_lambda_satisfies_defining_equation(self):
        from repro.db.synthetic import ROBINSON_FREQUENCIES

        lam = ungapped_lambda(BLOSUM62)
        p = ROBINSON_FREQUENCIES / ROBINSON_FREQUENCIES.sum()
        s = BLOSUM62.data[:20, :20]
        total = float(
            (np.outer(p, p) * np.exp(lam * s)).sum()
        )
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_different_matrices_different_lambda(self):
        assert ungapped_lambda(BLOSUM62) != pytest.approx(
            ungapped_lambda(PAM250), abs=1e-3
        )

    def test_positive_expectation_rejected(self):
        # match/mismatch +2/-1 over uniform background has E[s] > 0.
        always_positive = match_mismatch_matrix(5, 4)
        with pytest.raises(ModelError, match="negative"):
            ungapped_lambda(always_positive, np.full(20, 1 / 20))

    def test_bad_frequency_shape(self):
        with pytest.raises(ModelError):
            ungapped_lambda(BLOSUM62, np.full(4, 0.25))


class TestGumbelFit:
    def test_recovers_parameters_from_synthetic_gumbel(self, rng):
        # Draw from a known Gumbel and check the moments fit recovers it.
        lam_true = 0.25
        mu_true = 40.0
        sample = rng.gumbel(mu_true, 1.0 / lam_true, size=20_000)
        fit = GumbelFit.from_scores(sample, query_len=100, db_residues=100 * 20_000)
        assert fit.lam == pytest.approx(lam_true, rel=0.05)
        # K encodes mu: exp(lam*mu)/(m*n_mean).
        k_true = math.exp(lam_true * mu_true) / (100 * 100)
        assert fit.k == pytest.approx(k_true, rel=0.5)

    def test_too_few_samples(self):
        with pytest.raises(ModelError, match="at least 10"):
            GumbelFit.from_scores(np.ones(5), 10, 100)

    def test_degenerate_scores(self):
        with pytest.raises(ModelError, match="degenerate"):
            GumbelFit.from_scores(np.full(100, 7.0), 10, 100)

    def test_invalid_parameters(self):
        with pytest.raises(ModelError):
            GumbelFit(lam=-1.0, k=0.1)
        with pytest.raises(ModelError):
            GumbelFit(lam=0.3, k=0.0)


class TestEvalue:
    FIT = GumbelFit(lam=0.3, k=0.04)

    def test_higher_score_lower_evalue(self):
        e1 = evalue(50, 100, 1_000_000, self.FIT)
        e2 = evalue(100, 100, 1_000_000, self.FIT)
        assert e2 < e1

    def test_bigger_database_higher_evalue(self):
        e_small = evalue(80, 100, 1_000_000, self.FIT)
        e_big = evalue(80, 100, 100_000_000, self.FIT)
        assert e_big == pytest.approx(100 * e_small)

    def test_bitscore_monotone(self):
        assert bitscore(100, self.FIT) > bitscore(50, self.FIT)

    def test_invalid_space(self):
        with pytest.raises(ModelError):
            evalue(10, 0, 100, self.FIT)


class TestAttachStatistics:
    @pytest.fixture(scope="class")
    def search_result(self):
        bg = SyntheticSwissProt().generate(scale=0.0003)
        rng = np.random.default_rng(11)
        query = rng.integers(0, 20, 120).astype(np.uint8)
        db, planted = plant_homologs(bg, {"q": query}, [0.15], per_rate=1)
        result = SearchPipeline().search(query, db, top_k=10)
        return result, planted

    def test_planted_homolog_is_significant(self, search_result):
        result, planted = search_result
        stats = attach_statistics(result)
        by_index = {h.index: (e, b) for h, e, b in stats}
        e_homolog, _ = by_index[planted[0].index]
        assert e_homolog < 1e-3  # far beyond chance

    def test_background_hits_not_significant(self, search_result):
        result, _ = search_result
        stats = attach_statistics(result)
        # The weakest of the top-10 hits is background noise: E >= ~0.01.
        weakest_e = stats[-1][1]
        assert weakest_e > 1e-2

    def test_order_matches_hits(self, search_result):
        result, _ = search_result
        stats = attach_statistics(result)
        assert [h.index for h, _, _ in stats] == [h.index for h in result.hits]
        evalues = [e for _, e, _ in stats]
        assert evalues == sorted(evalues)  # scores desc -> evalues asc

    def test_explicit_fit_respected(self, search_result):
        result, _ = search_result
        fit = GumbelFit(lam=0.3, k=0.05)
        stats = attach_statistics(result, fit)
        h0 = result.hits[0]
        db_residues = result.cells // result.query_length
        assert stats[0][1] == pytest.approx(
            evalue(h0.score, result.query_length, db_residues, fit)
        )
