"""Tests for the real-compute heterogeneous search pipeline."""

import numpy as np
import pytest

from repro.db import SyntheticSwissProt
from repro.devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
from repro.exceptions import PipelineError
from repro.perfmodel import DevicePerformanceModel
from repro.search import SearchPipeline
from repro.search.hybrid_pipeline import HybridSearchPipeline
from tests.conftest import random_protein


@pytest.fixture(scope="module")
def pipeline():
    return HybridSearchPipeline(
        DevicePerformanceModel(XEON_E5_2670_DUAL),
        DevicePerformanceModel(XEON_PHI_57XX),
    )


@pytest.fixture(scope="module")
def db():
    return SyntheticSwissProt().generate(scale=0.0002)


class TestCorrectness:
    def test_merged_scores_equal_whole_database_search(self, pipeline, db, rng):
        q = random_protein(rng, 40)
        hybrid = pipeline.search(q, db, device_fraction=0.55)
        whole = SearchPipeline().search(q, db)
        assert np.array_equal(hybrid.result.scores, whole.scores)

    @pytest.mark.parametrize("fraction", [0.0, 0.3, 1.0])
    def test_any_fraction_same_scores(self, pipeline, db, rng, fraction):
        q = random_protein(rng, 25)
        hybrid = pipeline.search(q, db, device_fraction=fraction)
        whole = SearchPipeline().search(q, db)
        assert np.array_equal(hybrid.result.scores, whole.scores)

    def test_hits_ranked(self, pipeline, db, rng):
        q = random_protein(rng, 30)
        hybrid = pipeline.search(q, db, top_k=8)
        scores = [h.score for h in hybrid.result.hits]
        assert scores == sorted(scores, reverse=True)
        for h in hybrid.result.hits:
            assert db.headers[h.index] == h.header

    def test_empty_database_rejected(self, pipeline):
        from repro.db import SequenceDatabase

        with pytest.raises(PipelineError):
            pipeline.search("ACDEF", SequenceDatabase("e", [], []))


class TestModeledTiming:
    def test_both_sides_report_time(self, pipeline, db, rng):
        q = random_protein(rng, 30)
        hybrid = pipeline.search(q, db, device_fraction=0.5)
        assert hybrid.host_modeled_seconds > 0
        assert hybrid.device_modeled_seconds > 0
        assert hybrid.modeled_makespan == max(
            hybrid.host_modeled_seconds, hybrid.device_modeled_seconds
        )

    def test_host_only_run(self, pipeline, db, rng):
        q = random_protein(rng, 20)
        hybrid = pipeline.search(q, db, device_fraction=0.0)
        assert hybrid.device_modeled_seconds == 0.0
        assert hybrid.modeled_makespan == hybrid.host_modeled_seconds

    def test_gcups_accounting(self, pipeline, db, rng):
        q = random_protein(rng, 20)
        hybrid = pipeline.search(q, db, device_fraction=0.5)
        assert hybrid.modeled_gcups == pytest.approx(
            hybrid.result.cells / hybrid.modeled_makespan / 1e9
        )
