"""Unit and behavioural tests for the seed-and-extend heuristic."""

import numpy as np
import pytest

from repro.alphabet import PROTEIN
from repro.db import SequenceDatabase, SyntheticSwissProt
from repro.db.fasta import FastaRecord
from repro.db.mutate import plant_homologs
from repro.exceptions import EngineError, PipelineError
from repro.heuristic import (
    KmerWordCoder, MiniBlast, Seed,
    build_query_word_table, gapped_extend, neighborhood_words,
    ungapped_extend,
)
from repro.scoring import BLOSUM62, paper_gap_model
from repro.search import SearchPipeline
from tests.conftest import random_codes


class TestWordCoder:
    def test_roundtrip(self, rng):
        coder = KmerWordCoder(3)
        for _ in range(10):
            kmer = random_codes(rng, 3)
            assert np.array_equal(coder.decode(coder.encode(kmer)), kmer)

    def test_words_of_rolls_correctly(self, rng):
        coder = KmerWordCoder(3)
        seq = random_codes(rng, 12)
        words = coder.words_of(seq)
        assert len(words) == 10
        for i in range(10):
            assert words[i] == coder.encode(seq[i : i + 3])

    def test_short_sequence_no_words(self, rng):
        assert KmerWordCoder(3).words_of(random_codes(rng, 2)).size == 0

    def test_invalid_k(self):
        with pytest.raises(EngineError):
            KmerWordCoder(0)

    def test_encode_length_check(self, rng):
        with pytest.raises(EngineError):
            KmerWordCoder(3).encode(random_codes(rng, 4))


class TestNeighborhood:
    def test_self_word_included_at_default_threshold(self, rng):
        coder = KmerWordCoder(3)
        # Use a high-scoring kmer (self-score WWW = 33 >= 11).
        kmer = PROTEIN.encode("WCH")
        words = neighborhood_words(kmer, BLOSUM62, 11, coder=coder)
        assert coder.encode(kmer) in words

    def test_all_neighbours_meet_threshold(self, rng):
        coder = KmerWordCoder(3)
        kmer = random_codes(rng, 3)
        threshold = 9
        for word in neighborhood_words(kmer, BLOSUM62, threshold, coder=coder):
            other = coder.decode(word)
            score = int(BLOSUM62.lookup(kmer, other).sum())
            assert score >= threshold

    def test_enumeration_complete_against_brute_force(self, rng):
        coder = KmerWordCoder(2)
        kmer = random_codes(rng, 2)
        threshold = 6
        fast = set(neighborhood_words(kmer, BLOSUM62, threshold, coder=coder))
        brute = set()
        for a in range(20):
            for b in range(20):
                s = int(BLOSUM62.data[kmer[0], a] + BLOSUM62.data[kmer[1], b])
                if s >= threshold:
                    brute.add(a * 24 + b)
        assert fast == brute

    def test_higher_threshold_fewer_words(self, rng):
        kmer = PROTEIN.encode("LIV")
        lo = neighborhood_words(kmer, BLOSUM62, 8)
        hi = neighborhood_words(kmer, BLOSUM62, 13)
        assert set(hi) <= set(lo)
        assert len(hi) < len(lo)

    def test_word_table_maps_words_to_positions(self):
        q = PROTEIN.encode("WCHWCH")
        table = build_query_word_table(q, BLOSUM62, k=3, threshold=11)
        coder = KmerWordCoder(3)
        wch = coder.encode(PROTEIN.encode("WCH"))
        assert 0 in table[wch] and 3 in table[wch]


class TestExtension:
    def test_ungapped_recovers_exact_region(self):
        q = PROTEIN.encode("WCHKWCHK")
        d = PROTEIN.encode("AAWCHKWCHKAA")
        ext = ungapped_extend(q, d, Seed(qpos=0, dpos=2, length=3), BLOSUM62)
        assert ext.score == sum(BLOSUM62.score(c, c) for c in "WCHKWCHK")
        assert (ext.qstart, ext.qend) == (0, 8)
        assert (ext.dstart, ext.dend) == (2, 10)

    def test_xdrop_stops_extension(self, rng):
        # A wall of mismatches after the match region must stop the
        # extension rather than crawling to the end.
        q = PROTEIN.encode("WCHK" + "P" * 30)
        d = PROTEIN.encode("WCHK" + "G" * 30)
        ext = ungapped_extend(q, d, Seed(0, 0, 3), BLOSUM62, x_drop=10)
        assert ext.qend < 15

    def test_seed_bounds_checked(self, rng):
        q = random_codes(rng, 10)
        d = random_codes(rng, 10)
        with pytest.raises(EngineError):
            ungapped_extend(q, d, Seed(qpos=9, dpos=0, length=3), BLOSUM62)

    def test_gapped_handles_indel(self):
        g = paper_gap_model()
        q = PROTEIN.encode("WCHKWCHKWCHK")
        d = PROTEIN.encode("WCHKWACHKWCHK")  # one insertion in db
        ext = gapped_extend(q, d, Seed(0, 0, 3), BLOSUM62, g, band=4)
        ungapped = ungapped_extend(q, d, Seed(0, 0, 3), BLOSUM62)
        assert ext.score > ungapped.score

    def test_gapped_cells_bounded_by_band(self):
        g = paper_gap_model()
        q = random_codes(np.random.default_rng(0), 100)
        d = random_codes(np.random.default_rng(1), 100)
        ext = gapped_extend(q, d, Seed(40, 40, 3), BLOSUM62, g,
                            window=30, band=5)
        assert ext.cells < 63 * (2 * 5 + 1) + 63  # rows x band width


class TestMiniBlast:
    @pytest.fixture(scope="class")
    def planted_setup(self):
        bg = SyntheticSwissProt().generate(scale=0.0001)
        rng = np.random.default_rng(17)
        query = rng.integers(0, 20, 150).astype(np.uint8)
        db, planted = plant_homologs(
            bg, {"q": query}, rates=[0.1, 0.3], per_rate=2, seed=3
        )
        return query, db, planted

    def test_finds_close_homologs(self, planted_setup):
        query, db, planted = planted_setup
        result = MiniBlast().search(query, db)
        for p in planted:
            if p.rate <= 0.3:
                assert result.scores[p.index] > 100, p

    def test_close_homolog_score_matches_exact(self, planted_setup):
        query, db, planted = planted_setup
        heuristic = MiniBlast().search(query, db)
        exact = SearchPipeline().search(query, db)
        close = [p for p in planted if p.rate == 0.1]
        for p in close:
            assert heuristic.scores[p.index] == exact.scores[p.index]

    def test_substantial_cell_savings(self, planted_setup):
        query, db, _ = planted_setup
        result = MiniBlast().search(query, db)
        assert result.cell_savings > 0.5
        assert result.cells_computed < result.exact_cells

    def test_never_scores_above_exact(self, planted_setup):
        # The heuristic explores a subset of the DP space, so its score
        # can never exceed the exact optimum.
        query, db, _ = planted_setup
        heuristic = MiniBlast().search(query, db)
        exact = SearchPipeline().search(query, db)
        assert (heuristic.scores <= exact.scores).all()

    def test_work_accounting_consistent(self, planted_setup):
        query, db, _ = planted_setup
        result = MiniBlast().search(query, db)
        assert result.seeds_found >= result.ungapped_extensions
        assert result.ungapped_extensions >= result.gapped_extensions
        # Every positive score became a hit, and every hit came from
        # either a gapped refinement or an ungapped fallback.
        positives = int((result.scores > 0).sum())
        assert positives == len(result.hits)
        assert (
            result.gapped_extensions + result.ungapped_fallbacks >= positives
        )
        assert result.ungapped_fallbacks >= 0

    def test_top_hits_sorted(self, planted_setup):
        query, db, _ = planted_setup
        result = MiniBlast().search(query, db)
        top = result.top(5)
        assert [h.score for h in top] == sorted(
            [h.score for h in top], reverse=True
        )

    def test_short_query_rejected(self):
        db = SequenceDatabase.from_records([FastaRecord("x", "WCHKWCHK")])
        with pytest.raises(PipelineError, match="word size"):
            MiniBlast(k=3).search("WC", db)

    def test_empty_database_rejected(self):
        with pytest.raises(PipelineError):
            MiniBlast().search("WCHKW", SequenceDatabase("e", [], []))


class TestUngappedFallback:
    """Sub-trigger HSPs report their ungapped score instead of 0."""

    def test_sub_trigger_hsp_reports_ungapped_score(self):
        # "AAA" scores 12 against itself (3 x 4): above the T=11
        # seeding threshold but below the default gapped_trigger=22, so
        # before the fallback fix the sequence silently scored 0
        # despite the "best score per sequence" contract.
        db = SequenceDatabase.from_records([FastaRecord("t", "AAA")])
        result = MiniBlast().search("AAA", db)
        assert result.gapped_extensions == 0
        assert result.ungapped_fallbacks == 1
        assert result.scores[0] == 12
        assert len(result.hits) == 1
        assert result.hits[0].score == 12
        assert (result.hits[0].qstart, result.hits[0].qend) == (0, 3)

    def test_fallback_score_never_above_exact(self):
        db = SequenceDatabase.from_records([FastaRecord("t", "AAA")])
        heuristic = MiniBlast().search("AAA", db)
        exact = SearchPipeline().search("AAA", db)
        assert (heuristic.scores <= exact.scores).all()

    def test_triggered_sequences_unaffected(self, rng):
        # A sequence above the trigger still takes the gapped path.
        db = SequenceDatabase.from_records([FastaRecord("t", "WCHKWCHK")])
        result = MiniBlast().search("WCHKWCHK", db)
        assert result.gapped_extensions == 1
        assert result.ungapped_fallbacks == 0


class TestNeighborhoodMemoization:
    """Repeated query k-mers share one neighbourhood enumeration."""

    def test_repeated_kmers_enumerated_once(self, monkeypatch):
        import repro.heuristic.kmer as kmer_mod

        real = kmer_mod.neighborhood_words
        calls: list[bytes] = []

        def counting(kmer, matrix, threshold, **kwargs):
            calls.append(kmer.tobytes())
            return real(kmer, matrix, threshold, **kwargs)

        monkeypatch.setattr(kmer_mod, "neighborhood_words", counting)
        # k-mers of WCHWCHWCH: WCH, CHW, HWC, WCH, CHW, HWC, WCH —
        # three distinct words over seven positions.
        q = PROTEIN.encode("WCHWCHWCH")
        table = build_query_word_table(q, BLOSUM62, k=3, threshold=11)
        assert len(calls) == 3, "one enumeration per distinct k-mer"
        assert len(set(calls)) == len(calls)

        # The memoized table is identical to per-occurrence enumeration.
        coder = KmerWordCoder(3)
        expected: dict[int, list[int]] = {}
        for i in range(len(q) - 2):
            for word in real(q[i : i + 3], BLOSUM62, 11, coder=coder):
                expected.setdefault(word, []).append(i)
        assert table == expected


class TestTwoHitSeeding:
    @pytest.fixture(scope="class")
    def planted(self):
        bg = SyntheticSwissProt().generate(scale=0.0002)
        rng = np.random.default_rng(23)
        query = rng.integers(0, 20, 200).astype(np.uint8)
        db, planted = plant_homologs(
            bg, {"q": query}, rates=[0.1, 0.2], per_rate=2, seed=6
        )
        return query, db, planted

    def test_two_hit_reduces_extension_work(self, planted):
        query, db, _ = planted
        one = MiniBlast(two_hit=False).search(query, db)
        two = MiniBlast(two_hit=True).search(query, db)
        assert two.ungapped_extensions < one.ungapped_extensions
        assert two.cells_computed < one.cells_computed

    def test_two_hit_keeps_close_homologs(self, planted):
        query, db, planted_list = planted
        two = MiniBlast(two_hit=True).search(query, db)
        for p in planted_list:
            assert two.scores[p.index] > 100, p

    def test_two_hit_scores_subset_of_exact(self, planted):
        query, db, _ = planted
        two = MiniBlast(two_hit=True).search(query, db)
        exact = SearchPipeline().search(query, db)
        assert (two.scores <= exact.scores).all()

    def test_invalid_window(self):
        from repro.exceptions import PipelineError as PE

        with pytest.raises(PE):
            MiniBlast(two_hit=True, two_hit_window=0)
