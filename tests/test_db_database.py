"""Unit tests for the SequenceDatabase container."""

import numpy as np
import pytest

from repro.db import SequenceDatabase, write_fasta
from repro.db.fasta import FastaRecord
from repro.exceptions import DatabaseError


def make_db(lengths=(5, 3, 9, 1)):
    recs = [
        FastaRecord(f"S{i} test", "ACDEFGHIKL" * 5)
        for i in range(len(lengths))
    ]
    recs = [
        FastaRecord(f"S{i} test", ("ACDEFGHIKL" * 5)[:n])
        for i, n in enumerate(lengths)
    ]
    return SequenceDatabase.from_records(recs, name="toy")


class TestConstruction:
    def test_from_records(self):
        db = make_db()
        assert len(db) == 4
        assert db.total_residues == 18
        assert db.max_length == 9
        assert db.mean_length == 4.5

    def test_header_sequence_count_mismatch(self):
        with pytest.raises(DatabaseError):
            SequenceDatabase("x", [np.array([1], dtype=np.uint8)], [])

    def test_empty_entry_rejected(self):
        with pytest.raises(DatabaseError, match="empty"):
            SequenceDatabase("x", [np.array([], dtype=np.uint8)], ["h"])

    def test_unknown_residues_map_to_x(self):
        db = SequenceDatabase.from_records([FastaRecord("h", "MK1L")])
        from repro.alphabet import PROTEIN

        assert PROTEIN.decode(db.sequences[0]) == "MKXL"

    def test_from_fasta_file(self, tmp_path):
        path = tmp_path / "small.fasta"
        write_fasta([FastaRecord("a", "MKVL"), FastaRecord("b", "ACD")], path)
        db = SequenceDatabase.from_fasta(path)
        assert db.name == "small"
        assert len(db) == 2


class TestStats:
    def test_stats_dict(self):
        stats = make_db().stats()
        assert stats["sequences"] == 4
        assert stats["total_residues"] == 18
        assert stats["max_length"] == 9

    def test_lengths_array(self):
        assert list(make_db().lengths) == [5, 3, 9, 1]

    def test_empty_database_stat_errors(self):
        db = SequenceDatabase("e", [], [])
        with pytest.raises(DatabaseError):
            db.max_length
        with pytest.raises(DatabaseError):
            db.mean_length


class TestSortingSubsetting:
    def test_sorted_by_length_ascending(self):
        db = make_db().sorted_by_length()
        assert list(db.lengths) == [1, 3, 5, 9]

    def test_sorted_descending(self):
        db = make_db().sorted_by_length(descending=True)
        assert list(db.lengths) == [9, 5, 3, 1]

    def test_sort_is_stable(self):
        db = make_db(lengths=(4, 4, 4))
        order = db.length_order()
        assert list(order) == [0, 1, 2]

    def test_subset_preserves_order_and_headers(self):
        db = make_db()
        sub = db.subset(np.array([2, 0]))
        assert list(sub.lengths) == [9, 5]
        assert sub.headers[0].startswith("S2")

    def test_subset_out_of_range(self):
        with pytest.raises(DatabaseError):
            make_db().subset(np.array([7]))

    def test_get_by_accession(self):
        header, seq = make_db().get("S2")
        assert header.startswith("S2")
        assert len(seq) == 9

    def test_get_missing_accession(self):
        with pytest.raises(DatabaseError, match="not found"):
            make_db().get("NOPE")

    def test_iteration_yields_sequences(self):
        assert [len(s) for s in make_db()] == [5, 3, 9, 1]
