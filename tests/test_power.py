"""Unit tests for the power/energy extension (paper future work)."""

import pytest

from repro.db import SyntheticSwissProt
from repro.devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
from repro.exceptions import ModelError
from repro.perfmodel import DevicePerformanceModel
from repro.perfmodel.power import (
    DevicePower, energy_sweep, hybrid_energy, optimal_splits,
)
from repro.runtime import HybridExecutor


@pytest.fixture(scope="module")
def executor():
    return HybridExecutor(
        DevicePerformanceModel(XEON_E5_2670_DUAL),
        DevicePerformanceModel(XEON_PHI_57XX),
    )


@pytest.fixture(scope="module")
def lengths():
    # Full-scale: the paper's Fig. 8 regime.  Small scales are
    # tail-dominated on 240 threads (one outlier group per thread) and
    # fixed-overhead-dominated, which flips the optima.
    return SyntheticSwissProt().lengths()


class TestDevicePower:
    def test_busy_power_is_paper_tdp(self):
        assert DevicePower(XEON_E5_2670_DUAL).busy_watts == 240.0
        assert DevicePower(XEON_PHI_57XX).busy_watts == 240.0

    def test_idle_power_fraction(self):
        p = DevicePower(XEON_PHI_57XX, idle_fraction=0.25)
        assert p.idle_watts == pytest.approx(60.0)

    def test_energy_split_between_states(self):
        p = DevicePower(XEON_PHI_57XX, idle_fraction=0.5)
        # 2 s busy at 240 W + 3 s idle at 120 W.
        assert p.energy_joules(2.0, 5.0) == pytest.approx(2 * 240 + 3 * 120)

    def test_fully_busy_run(self):
        p = DevicePower(XEON_E5_2670_DUAL)
        assert p.energy_joules(4.0, 4.0) == pytest.approx(4 * 240)

    def test_invalid_times(self):
        p = DevicePower(XEON_E5_2670_DUAL)
        with pytest.raises(ModelError):
            p.energy_joules(-1.0, 2.0)
        with pytest.raises(ModelError):
            p.energy_joules(3.0, 2.0)

    def test_invalid_idle_fraction(self):
        with pytest.raises(ModelError):
            DevicePower(XEON_E5_2670_DUAL, idle_fraction=1.5)


class TestHybridEnergy:
    def test_energy_accounting_consistent(self, executor, lengths):
        r = executor.run(lengths, 5478, 0.5)
        e = hybrid_energy(
            r, DevicePower(XEON_E5_2670_DUAL), DevicePower(XEON_PHI_57XX)
        )
        # Bounds: between all-idle and all-busy both devices.
        lo = r.total_seconds * (240 * 0.35 + 240 * 0.35)
        hi = r.total_seconds * (240 + 240)
        assert lo <= e.joules <= hi
        assert e.average_watts == pytest.approx(e.joules / r.total_seconds)
        assert e.energy_delay_product == pytest.approx(e.joules * r.total_seconds)

    def test_balanced_split_wastes_least_idle(self, executor, lengths):
        # At a very lopsided split one device idles most of the run, so
        # energy per cell is worse than at the balanced optimum.  (Run
        # with the longest paper query so compute, not the Phi's fixed
        # launch overhead, dominates — the regime of Fig. 8.)
        sweep = energy_sweep(executor, lengths, 5478, [0.1, 0.5, 0.9])
        assert sweep[0.5].cells_per_joule > sweep[0.1].cells_per_joule
        assert sweep[0.5].cells_per_joule > sweep[0.9].cells_per_joule

    def test_optimal_splits_structure(self, executor, lengths):
        opt = optimal_splits(executor, lengths, 5478, resolution=0.1)
        assert set(opt) == {"performance", "energy", "edp"}
        perf = opt["performance"]
        # The throughput optimum can never beat the energy optimum on
        # cells/joule, by definition of the argmax.
        assert opt["energy"].cells_per_joule >= perf.cells_per_joule
        assert opt["edp"].energy_delay_product <= perf.energy_delay_product

    def test_invalid_resolution(self, executor, lengths):
        with pytest.raises(ModelError):
            optimal_splits(executor, lengths, 100, resolution=0.0)

    def test_host_only_energy_includes_idle_phi(self, executor, lengths):
        # Even a host-only run pays the idle coprocessor's power — the
        # cost argument for buying the accelerator only if you use it.
        sweep = energy_sweep(executor, lengths, 5478, [0.0])
        e = sweep[0.0]
        idle_phi_joules = e.result.total_seconds * 240 * 0.35
        assert e.joules > idle_phi_joules
