"""The sharding layer and the sharded out-of-core parallel scan.

The load-bearing guarantee: a ``workers > 1`` sharded scan is
bit-identical to the serial :class:`StreamingSearch` on the same
stream — same hits, same tie order, same ``corrupted_redone`` under a
seeded fault plan — while only bounded shards are ever resident.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import SequenceDatabase, ShardSpec, iter_shards, write_fasta
from repro.db.fasta import FastaRecord
from repro.db.shards import encode_record
from repro.db.synthetic import SyntheticSwissProt
from repro.exceptions import DatabaseError, PipelineError
from repro.faults import FaultInjector, FaultPlan
from repro.metrics import MetricsRegistry
from repro.search import (
    SearchOptions,
    SearchRequest,
    ShardedStreamingSearch,
    StreamingSearch,
)
from repro.service import SearchService
from tests.conftest import random_protein

QUERY = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ"


@pytest.fixture(scope="module")
def db() -> SequenceDatabase:
    return SyntheticSwissProt(seed=17).generate(scale=0.0008)


def hit_tuples(result):
    return [
        (h.score, h.index, h.header, h.length) for h in result.hits
    ]


class TestShardSpec:
    def test_needs_a_bound(self):
        with pytest.raises(DatabaseError, match="max_residues"):
            ShardSpec()

    @pytest.mark.parametrize(
        "kwargs", [dict(max_residues=0), dict(max_records=-3)]
    )
    def test_rejects_non_positive_bounds(self, kwargs):
        with pytest.raises(DatabaseError, match="positive"):
            ShardSpec(**kwargs)

    def test_overflow_checks_each_bound(self):
        spec = ShardSpec(max_residues=100, max_records=10)
        assert not spec.would_overflow(100, 10)
        assert spec.would_overflow(101, 1)
        assert spec.would_overflow(1, 11)


class TestIterShards:
    def records(self, lengths):
        return [
            FastaRecord(f"r{i}", "A" * n) for i, n in enumerate(lengths)
        ]

    def test_partition_is_complete_and_ordered(self, db):
        shards = list(iter_shards(
            zip(db.headers, db.sequences), ShardSpec(max_residues=9000)
        ))
        assert len(shards) > 1
        assert [s.shard_id for s in shards] == list(range(len(shards)))
        headers = [h for s in shards for h in s.headers]
        assert headers == db.headers
        # base_index is the running record offset.
        base = 0
        for s in shards:
            assert s.base_index == base
            base += s.n_records
        assert sum(s.residues for s in shards) == db.total_residues

    def test_residue_bound_respected(self):
        shards = list(iter_shards(
            self.records([40] * 20), ShardSpec(max_residues=100)
        ))
        assert all(s.residues <= 100 for s in shards)

    def test_record_bound_respected(self):
        shards = list(iter_shards(
            self.records([5] * 23), ShardSpec(max_records=4)
        ))
        assert [s.n_records for s in shards] == [4, 4, 4, 4, 4, 3]

    def test_alignment_multiples(self):
        shards = list(iter_shards(
            self.records([10] * 50), ShardSpec(max_residues=75),
            align_records=4,
        ))
        # Every boundary except the stream end is a multiple of 4.
        for s in shards[:-1]:
            assert s.n_records % 4 == 0
        assert all(s.base_index % 4 == 0 for s in shards)
        assert sum(s.n_records for s in shards) == 50

    def test_oversized_block_becomes_own_shard(self):
        shards = list(iter_shards(
            self.records([500, 5, 5]), ShardSpec(max_residues=50)
        ))
        assert shards[0].n_records == 1
        assert shards[0].residues == 500

    def test_bad_alignment_rejected(self):
        with pytest.raises(DatabaseError, match="align_records"):
            list(iter_shards(
                self.records([5]), ShardSpec(max_records=4),
                align_records=0,
            ))

    def test_encode_record_accepts_mixed_items(self, alphabet):
        h1, c1 = encode_record(FastaRecord("a", "WCHK"), alphabet)
        h2, c2 = encode_record(("b", "WCHK"), alphabet)
        assert h1 == "a" and h2 == "b"
        assert np.array_equal(c1, c2)
        pre = alphabet.encode("WCHK")
        h3, c3 = encode_record(("c", pre), alphabet)
        assert c3 is pre
        with pytest.raises(DatabaseError, match="stream items"):
            encode_record(42, alphabet)


class TestShardedEqualsSerial:
    """The acceptance criterion: bit-identical to the serial scan."""

    @pytest.mark.parametrize("shard_residues", [3000, 9000, 10_000_000])
    def test_identical_hits_and_accounting(self, db, shard_residues):
        opts = SearchOptions(chunk_size=32, top_k=9)
        serial = StreamingSearch(opts).search_database(QUERY, db)
        with ShardedStreamingSearch(
            opts, workers=2, shard_residues=shard_residues
        ) as sharded:
            par = sharded.search_database(QUERY, db)
        assert hit_tuples(par) == hit_tuples(serial)
        assert par.sequences_scanned == serial.sequences_scanned
        assert par.cells == serial.cells
        assert par.chunks == serial.chunks

    def test_identical_under_seeded_faults(self, db):
        # Redo counts must replay bit for bit: fault units are global
        # chunk indices on both paths.
        plan = FaultPlan(seed=1234, corrupt_rate=0.35)
        opts = SearchOptions(
            chunk_size=16, top_k=7, injector=FaultInjector(plan)
        )
        serial = StreamingSearch(opts).search_database(QUERY, db)
        assert serial.corrupted_redone > 0  # the plan actually fired
        with ShardedStreamingSearch(
            opts, workers=2, shard_residues=5000
        ) as sharded:
            par = sharded.search_database(QUERY, db)
        assert hit_tuples(par) == hit_tuples(serial)
        assert par.corrupted_redone == serial.corrupted_redone

    def test_streaming_search_workers_delegates(self, db):
        opts = SearchOptions(chunk_size=32, top_k=5)
        serial = StreamingSearch(opts).search_database(QUERY, db)
        with StreamingSearch(
            opts, workers=2, shard_residues=6000
        ) as search:
            par = search.search_database(QUERY, db)
        assert hit_tuples(par) == hit_tuples(serial)

    def test_fasta_path_identical(self, db, tmp_path):
        path = tmp_path / "shards.fasta"
        from repro.alphabet import PROTEIN

        records = [
            FastaRecord(h, PROTEIN.decode(seq))
            for h, seq in zip(db.headers, db.sequences)
        ]
        write_fasta(records, path)
        opts = SearchOptions(chunk_size=32, top_k=6)
        serial = StreamingSearch(opts).search_fasta(QUERY, path)
        with StreamingSearch(opts, workers=2, shard_residues=6000) as s:
            par = s.search_fasta(QUERY, path)
        assert hit_tuples(par) == hit_tuples(serial)

    def test_top_k_zero_scores_only(self, db):
        opts = SearchOptions(chunk_size=32, top_k=0)
        with ShardedStreamingSearch(
            opts, workers=2, shard_residues=6000
        ) as sharded:
            result = sharded.search_database(QUERY, db)
        assert result.hits == []
        assert result.sequences_scanned == len(db)

    def test_empty_stream_rejected(self):
        with ShardedStreamingSearch(
            SearchOptions(), workers=2, shard_records=8
        ) as sharded:
            with pytest.raises(PipelineError, match="empty"):
                sharded.search_records(QUERY, iter([]))

    def test_invalid_workers_rejected(self):
        with pytest.raises(PipelineError, match="positive"):
            ShardedStreamingSearch(SearchOptions(), workers=0)

    def test_shard_metrics_emitted(self, db):
        registry = MetricsRegistry()
        with ShardedStreamingSearch(
            SearchOptions(chunk_size=32, top_k=5),
            workers=2, shard_residues=6000, metrics=registry,
        ) as sharded:
            sharded.search_database(QUERY, db)
        snap = registry.snapshot()
        assert snap["streaming.shard.count"] > 1
        assert snap["streaming.shard.records"] == len(db)
        assert snap["streaming.searches"] == 1

    def test_fallback_to_serial_when_pool_cannot_start(
        self, db, monkeypatch
    ):
        from repro.exceptions import ParallelError
        from repro.search import sharded as sharded_mod

        def boom(self):
            raise ParallelError("no pool for you")

        monkeypatch.setattr(
            sharded_mod.ShardedStreamingSearch, "start", boom
        )
        registry = MetricsRegistry()
        opts = SearchOptions(chunk_size=32, top_k=5)
        serial = StreamingSearch(opts).search_database(QUERY, db)
        search = StreamingSearch(
            opts, workers=2, shard_residues=6000, metrics=registry
        )
        result = search.search_database(QUERY, db)
        assert hit_tuples(result) == hit_tuples(serial)
        assert registry.snapshot()["streaming.fallback"] == 1


class TestServiceShardedExecutor:
    def test_routes_big_databases_through_shards(self, db):
        registry = MetricsRegistry()
        opts = SearchOptions(chunk_size=32, top_k=5)
        with SearchService(
            opts, executor="sharded", workers=2,
            shard_residues=6000, metrics=registry,
        ) as service:
            outcome = service.search(SearchRequest(query=QUERY), db)
        # The streamed result type proves the sharded route ran.
        assert outcome.provenance["kind"] == "streaming"
        serial = StreamingSearch(opts).search_database(QUERY, db)
        assert hit_tuples(outcome) == hit_tuples(serial)
        assert registry.snapshot()["streaming.shard.count"] > 1

    def test_small_databases_take_the_resident_pipeline(self, db):
        small = db.subset(np.arange(10), name="small")
        with SearchService(
            SearchOptions(top_k=5), executor="sharded", workers=2,
            shard_residues=10_000_000,
        ) as service:
            outcome = service.search(SearchRequest(query=QUERY), small)
        assert outcome.provenance["kind"] == "search"

    def test_traceback_requests_take_the_resident_pipeline(self, db):
        with SearchService(
            SearchOptions(chunk_size=32, top_k=3), executor="sharded",
            workers=2, shard_residues=6000,
        ) as service:
            outcome = service.search(
                SearchRequest(query=QUERY, traceback=True), db
            )
        assert outcome.provenance["kind"] == "search"
        assert any(h.alignment is not None for h in outcome.hits)

    def test_sharded_requires_local_scheduler(self):
        with pytest.raises(PipelineError, match="sharded"):
            SearchService(executor="sharded", scheduler="queue")

    def test_invalid_shard_residues_rejected(self):
        with pytest.raises(PipelineError, match="shard_residues"):
            SearchService(executor="sharded", shard_residues=0)
