"""Trace exporters: Chrome trace-event JSON and the JSONL span log."""

from __future__ import annotations

import json

from repro.obs import Tracer, to_chrome_trace, to_jsonl, write_chrome_trace, write_jsonl
from repro.obs.export import PID_VIRTUAL, PID_WALL


def build_trace() -> Tracer:
    tracer = Tracer()
    with tracer.span("root", query="q0") as root:
        with tracer.span("child-a") as a:
            a.add_event("fault", kind="corrupt", attempt=1)
        with tracer.span("child-b", worker="device") as b:
            b.set_virtual(0.0, 2.5)
        root.set_virtual(0.0, 4.0)
    return tracer


class TestChromeExport:
    def test_round_trip_is_valid_json(self):
        trace = to_chrome_trace(build_trace().collector)
        again = json.loads(json.dumps(trace))
        assert again == trace
        assert isinstance(trace["traceEvents"], list)

    def test_complete_events_cover_every_finished_span(self):
        collector = build_trace().collector
        trace = to_chrome_trace(collector)
        wall = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == PID_WALL
        ]
        assert sorted(e["name"] for e in wall) == [
            "child-a", "child-b", "root",
        ]
        for e in wall:
            assert e["ts"] >= 0.0
            assert e["dur"] >= 0.0
            assert "span_id" in e["args"]

    def test_wall_events_nest_within_parent_not_overlap_siblings(self):
        trace = to_chrome_trace(build_trace().collector)
        wall = {
            e["name"]: e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == PID_WALL
        }
        root, a, b = wall["root"], wall["child-a"], wall["child-b"]
        # Children sit inside the parent interval...
        for child in (a, b):
            assert child["ts"] >= root["ts"]
            assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1e-6
        # ...and the siblings' intervals are disjoint (monotone per track).
        assert a["ts"] + a["dur"] <= b["ts"] + 1e-6

    def test_span_events_become_instant_events(self):
        trace = to_chrome_trace(build_trace().collector)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        (fault,) = instants
        assert fault["name"] == "fault"
        assert fault["args"] == {"kind": "corrupt", "attempt": 1}

    def test_virtual_timeline_tracks_by_worker(self):
        trace = to_chrome_trace(build_trace().collector)
        virtual = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == PID_VIRTUAL
        ]
        assert sorted(e["name"] for e in virtual) == ["child-b", "root"]
        thread_names = {
            e["args"]["name"] for e in trace["traceEvents"]
            if e["ph"] == "M" and e["pid"] == PID_VIRTUAL
            and e["name"] == "thread_name"
        }
        assert thread_names == {"main", "device"}

    def test_process_metadata_and_custom_metadata(self):
        trace = to_chrome_trace(
            build_trace().collector, metadata={"database": "db0"}
        )
        process_names = {
            e["args"]["name"] for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert process_names == {"wall-clock", "virtual-time"}
        assert trace["otherData"] == {"database": "db0"}

    def test_empty_collector_exports_cleanly(self):
        trace = to_chrome_trace(Tracer().collector)
        assert all(e["ph"] == "M" for e in trace["traceEvents"])

    def test_non_json_attributes_are_coerced(self):
        tracer = Tracer()
        with tracer.span("op") as sp:
            sp.set_attribute("obj", object())
        trace = to_chrome_trace(tracer.collector)
        (event,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert isinstance(event["args"]["obj"], str)
        json.dumps(trace)

    def test_write_chrome_trace_to_disk(self, tmp_path):
        path = tmp_path / "trace.json"
        returned = write_chrome_trace(build_trace().collector, path)
        on_disk = json.loads(path.read_text())
        assert on_disk == returned


class TestJsonlExport:
    def test_one_record_per_span(self):
        collector = build_trace().collector
        lines = to_jsonl(collector).splitlines()
        assert len(lines) == len(collector)
        records = [json.loads(line) for line in lines]
        assert {r["name"] for r in records} == {"root", "child-a", "child-b"}

    def test_records_carry_tree_and_events(self):
        records = [
            json.loads(line)
            for line in to_jsonl(build_trace().collector).splitlines()
        ]
        by_name = {r["name"]: r for r in records}
        assert by_name["child-a"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["child-a"]["events"][0]["attributes"]["kind"] == "corrupt"
        assert by_name["child-b"]["virtual_end"] == 2.5

    def test_write_jsonl_returns_count(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        count = write_jsonl(build_trace().collector, path)
        assert count == 3
        assert len(path.read_text().splitlines()) == 3
