"""Unit tests for query/sequence profile construction."""

import numpy as np
import pytest

from repro.core.profiles import ProfileKind, QueryProfile, SequenceProfile
from repro.exceptions import EngineError
from repro.scoring import BLOSUM62
from tests.conftest import random_codes


class TestProfileKind:
    def test_parse_strings(self):
        assert ProfileKind.parse("query") is ProfileKind.QUERY
        assert ProfileKind.parse("sequence") is ProfileKind.SEQUENCE

    def test_parse_passthrough(self):
        assert ProfileKind.parse(ProfileKind.QUERY) is ProfileKind.QUERY

    def test_parse_invalid(self):
        with pytest.raises(EngineError):
            ProfileKind.parse("stripey")


class TestQueryProfile:
    def test_rows_match_matrix(self, rng):
        q = random_codes(rng, 12)
        qp = QueryProfile.build(q, BLOSUM62)
        assert qp.length == 12
        for i in range(12):
            assert np.array_equal(qp.data[i], BLOSUM62.data[q[i]])

    def test_row_scores_gather(self, rng):
        q = random_codes(rng, 5)
        d = random_codes(rng, 9)
        qp = QueryProfile.build(q, BLOSUM62)
        expect = BLOSUM62.data[q[2]][d.astype(np.intp)]
        assert np.array_equal(qp.row_scores(2, d), expect)

    def test_memory_is_query_by_alphabet(self, rng):
        qp = QueryProfile.build(random_codes(rng, 100), BLOSUM62)
        # |Q| x |E| x 4 bytes — the paper calls this negligible.
        assert qp.nbytes == 100 * 24 * 4

    def test_data_contiguous(self, rng):
        qp = QueryProfile.build(random_codes(rng, 7), BLOSUM62)
        assert qp.data.flags["C_CONTIGUOUS"]


class TestSequenceProfile:
    def test_planes_match_matrix(self, rng):
        group = rng.integers(0, 20, (15, 4)).astype(np.uint8)
        sp = SequenceProfile.build(group, BLOSUM62)
        for c in (0, 5, 23):
            assert np.array_equal(
                sp.row_scores(c), BLOSUM62.data[c][group.astype(np.intp)]
            )

    def test_memory_is_alphabet_times_group(self, rng):
        group = rng.integers(0, 20, (10, 8)).astype(np.uint8)
        sp = SequenceProfile.build(group, BLOSUM62)
        # |E| x N x L x 4 — the memory cost the paper notes for SP.
        assert sp.nbytes == 24 * 10 * 8 * 4

    def test_rejects_non_2d_group(self, rng):
        with pytest.raises(EngineError, match="n_max, lanes"):
            SequenceProfile.build(random_codes(rng, 10), BLOSUM62)

    def test_plane_contiguous(self, rng):
        group = rng.integers(0, 20, (6, 4)).astype(np.uint8)
        sp = SequenceProfile.build(group, BLOSUM62)
        assert sp.data.flags["C_CONTIGUOUS"]
        assert sp.row_scores(3).base is sp.data  # a view, no copy
