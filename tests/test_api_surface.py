"""The unified public API: surface snapshot, options, kwargs, protocol."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro import (
    BLOSUM62,
    XEON_E5_2670_DUAL,
    XEON_PHI_57XX,
    DevicePerformanceModel,
    GapModel,
    HybridSearchPipeline,
    MultiQueryExecutor,
    SearchOptions,
    SearchOutcome,
    SearchPipeline,
    SearchRequest,
    SequenceDatabase,
    StreamingSearch,
)
from repro.db.fasta import FastaRecord
from repro.exceptions import PipelineError

from tests.conftest import random_protein

# The names `import repro` promises.  Additions are deliberate API
# changes: extend this snapshot in the same commit.
PUBLIC_API = {
    # alphabet
    "PROTEIN", "DNA", "Alphabet", "encode", "decode",
    # engines
    "AlignmentEngine", "AlignmentResult", "BatchResult", "Traceback",
    "ScalarEngine", "ScanEngine", "DiagonalEngine", "StripedEngine",
    "InterTaskEngine", "VectorizedEngine", "BandedEngine",
    "AdaptivePrecisionEngine",
    "LaneGroup", "build_lane_groups",
    "global_align", "semiglobal_align", "MiniBlast",
    "available_engines", "get_engine", "sw_score", "align_pair",
    "waterman_eggert",
    # scoring
    "SubstitutionMatrix", "GapModel", "paper_gap_model", "get_matrix",
    "BLOSUM45", "BLOSUM50", "BLOSUM62", "BLOSUM80", "BLOSUM90",
    "PAM30", "PAM70", "PAM250",
    # db
    "SequenceDatabase", "SyntheticSwissProt", "PAPER_QUERIES",
    "make_query_set", "read_fasta", "write_fasta",
    "preprocess_database", "split_database",
    "ShardSpec", "iter_shards",
    # devices / model / runtime
    "DeviceSpec", "XEON_E5_2670_DUAL", "XEON_PHI_57XX",
    "ParallelFor", "Schedule",
    "DevicePerformanceModel", "RunConfig", "Workload",
    "HybridExecutor", "PCIE_GEN2_X16",
    # faults / resilience
    "FaultPlan", "FaultInjector", "RetryPolicy", "Timeout", "Deadline",
    "CircuitBreaker", "ResilientHybridExecutor", "ResilientResult",
    # search
    "SearchOptions", "SearchRequest", "SearchOutcome",
    "SearchPipeline", "SearchResult", "gcups",
    "StreamingSearch", "StreamingResult", "ShardedStreamingSearch",
    "TieredSearch", "TieredSearchResult",
    "PartialResult", "ScanJournal", "ScanState",
    "HybridSearchPipeline", "HybridSearchResult",
    "MultiQueryExecutor", "MultiQueryOutcome",
    # service
    "SearchService", "ServiceBatchResult",
    "WorkQueueScheduler", "QueueSearchOutcome", "PreprocessCache",
    # serving layer
    "SearchServer", "SearchClient", "RemoteSearchResult",
    "WIRE_SCHEMA_VERSION",
    # parallel execution
    "ProcessPoolBackend", "PackedDatabase",
    # observability
    "Tracer", "NullTracer", "Span", "TraceCollector",
    "get_tracer", "set_tracer", "use_tracer",
    "to_chrome_trace", "write_chrome_trace", "to_jsonl", "write_jsonl",
    "TraceContext", "TRACE_HEADER", "current_context", "adopt_spans",
    "MetricsRegistry", "METRICS",
    "to_prometheus", "StatsdEmitter",
    "append_jsonl_snapshot", "read_jsonl_snapshots",
    # errors
    "ReproError",
    "__version__",
}

OPTION_FIELDS = (
    "matrix", "gaps", "lanes", "kernel", "profile", "mode", "schedule",
    "threads", "top_k", "chunk_size", "alphabet", "injector", "deadline",
)


def tiny_db(rng, n=12) -> SequenceDatabase:
    return SequenceDatabase.from_records(
        [
            FastaRecord(f"sp|A{k:04d}|TEST{k}", random_protein(
                rng, int(rng.integers(30, 120))))
            for k in range(n)
        ],
        name="api-tiny",
    )


# ---------------------------------------------------------------------------
# surface snapshot
# ---------------------------------------------------------------------------
class TestSurface:
    def test_all_matches_snapshot(self):
        assert set(repro.__all__) == PUBLIC_API

    def test_all_has_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_every_name_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_options_field_names_frozen(self):
        assert SearchOptions.field_names() == OPTION_FIELDS

    def test_entrypoints_take_options_first(self):
        import inspect

        assert (
            list(inspect.signature(SearchPipeline).parameters)[0] == "options"
        )
        assert (
            list(inspect.signature(StreamingSearch).parameters)[0] == "options"
        )
        for cls in (HybridSearchPipeline, MultiQueryExecutor):
            assert list(inspect.signature(cls).parameters)[2] == "options"


# ---------------------------------------------------------------------------
# SearchOptions semantics
# ---------------------------------------------------------------------------
class TestSearchOptions:
    def test_defaults_resolve_to_paper_scheme(self):
        opts = SearchOptions()
        assert opts.resolved_matrix().name == "BLOSUM62"
        assert opts.resolved_gaps() == GapModel(10, 2)
        assert opts.resolved_lanes(8) == 8
        assert opts.resolved_lanes(16) == 16

    def test_explicit_lanes_beat_consumer_default(self):
        assert SearchOptions(lanes=4).resolved_lanes(16) == 4

    def test_merged_overrides_without_mutating(self):
        base = SearchOptions(top_k=3)
        derived = base.merged(lanes=16)
        assert derived.lanes == 16 and derived.top_k == 3
        assert base.lanes is None

    @pytest.mark.parametrize(
        "bad",
        [
            dict(lanes=0),
            dict(threads=0),
            dict(top_k=-1),
            dict(chunk_size=0),
            dict(profile="diagonal"),
            dict(schedule="fifo"),
        ],
    )
    def test_invalid_options_rejected(self, bad):
        # Bad schedule specs surface as ScheduleError, the rest as
        # PipelineError — both are ReproError.
        with pytest.raises(repro.ReproError):
            SearchOptions(**bad)

    def test_frozen(self):
        with pytest.raises(Exception):
            SearchOptions().top_k = 99

    def test_request_validates_top_k(self):
        with pytest.raises(PipelineError):
            SearchRequest(query="ACDE", top_k=-1)


# ---------------------------------------------------------------------------
# legacy kwargs are gone: one spelling of every option, enforced hard
# ---------------------------------------------------------------------------
class TestLegacyKwargsRemoved:
    def test_pipeline_legacy_kwargs_raise_with_migration(self):
        with pytest.raises(TypeError, match=r"SearchOptions\(lanes=\.\.\.\)"):
            SearchPipeline(lanes=4)
        with pytest.raises(TypeError, match="removed"):
            SearchPipeline(matrix=BLOSUM62, gaps=GapModel(10, 2))

    def test_pipeline_legacy_positional_matrix_raises(self):
        with pytest.raises(TypeError, match=r"SearchOptions\(matrix=\.\.\.\)"):
            SearchPipeline(BLOSUM62)

    def test_streaming_legacy_kwargs_raise_with_migration(self):
        with pytest.raises(
            TypeError, match=r"SearchOptions\(chunk_size=\.\.\., top_k=\.\.\.\)"
        ):
            StreamingSearch(chunk_size=4, top_k=3)

    def test_hybrid_legacy_kwargs_raise(self):
        host = DevicePerformanceModel(XEON_E5_2670_DUAL)
        phi = DevicePerformanceModel(XEON_PHI_57XX)
        with pytest.raises(TypeError, match="HybridSearchPipeline"):
            HybridSearchPipeline(host, phi, matrix=BLOSUM62)

    def test_multiquery_legacy_kwargs_raise(self):
        host = DevicePerformanceModel(XEON_E5_2670_DUAL)
        phi = DevicePerformanceModel(XEON_PHI_57XX)
        with pytest.raises(TypeError, match="MultiQueryExecutor"):
            MultiQueryExecutor(host, phi, matrix=BLOSUM62)

    def test_unknown_kwarg_still_reads_like_python(self):
        # Non-option junk keywords get the standard unexpected-keyword
        # message, not migration advice for a field that never existed.
        with pytest.raises(
            TypeError, match="unexpected keyword argument 'bogus'"
        ):
            SearchPipeline(bogus=1)

    def test_new_style_never_warns(self, rng):
        db = tiny_db(rng)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SearchPipeline(SearchOptions(lanes=4)).search(
                random_protein(rng, 30), db
            )
            StreamingSearch(SearchOptions(chunk_size=8))

    def test_options_slot_rejects_junk(self):
        with pytest.raises(PipelineError, match="SearchOptions"):
            SearchPipeline({"matrix": "BLOSUM62"})


# ---------------------------------------------------------------------------
# the SearchOutcome protocol
# ---------------------------------------------------------------------------
class TestOutcomeProtocol:
    def test_all_result_types_satisfy_protocol(self, rng):
        db = tiny_db(rng)
        query = random_protein(rng, 40)
        host = DevicePerformanceModel(XEON_E5_2670_DUAL)
        phi = DevicePerformanceModel(XEON_PHI_57XX)

        outcomes = [
            SearchPipeline(SearchOptions(top_k=3)).search(query, db),
            StreamingSearch(SearchOptions(chunk_size=4)).search_records(
                query,
                iter([FastaRecord("S0", random_protein(rng, 35))]),
            ),
            HybridSearchPipeline(host, phi).search(query, db, top_k=3),
            MultiQueryExecutor(host, phi).run({"q": query}, db, top_k=3),
            repro.WorkQueueScheduler(host, phi, chunks=3).search(query, db),
            repro.SearchService(SearchOptions(top_k=3)).run([query], db),
        ]
        for outcome in outcomes:
            assert isinstance(outcome, SearchOutcome), type(outcome).__name__
            assert outcome.best_score() >= 0
            assert outcome.gcups >= 0.0
            assert "kind" in outcome.provenance
            for hit in outcome.hits:
                assert hit.score >= 0

    def test_provenance_kinds_distinct(self, rng):
        db = tiny_db(rng)
        query = random_protein(rng, 40)
        host = DevicePerformanceModel(XEON_E5_2670_DUAL)
        phi = DevicePerformanceModel(XEON_PHI_57XX)
        kinds = {
            SearchPipeline().search(query, db).provenance["kind"],
            HybridSearchPipeline(host, phi)
            .search(query, db).provenance["kind"],
            MultiQueryExecutor(host, phi)
            .run({"q": query}, db).provenance["kind"],
            repro.WorkQueueScheduler(host, phi, chunks=3)
            .search(query, db).provenance["kind"],
        }
        assert len(kinds) == 4


# ---------------------------------------------------------------------------
# scheduler determinism
# ---------------------------------------------------------------------------
class TestSchedulerDeterminism:
    def test_same_config_same_plan_and_scores(self, rng):
        db = tiny_db(rng, n=20)
        query = random_protein(rng, 80)
        host = DevicePerformanceModel(XEON_E5_2670_DUAL)
        phi = DevicePerformanceModel(XEON_PHI_57XX)
        sched = repro.WorkQueueScheduler(host, phi, chunks=5)
        first = sched.search(query, db)
        second = sched.search(query, db)
        assert np.array_equal(first.result.scores, second.result.scores)
        assert [
            (a.chunk_id, a.worker, a.indices.tolist())
            for a in first.plan.assignments
        ] == [
            (a.chunk_id, a.worker, a.indices.tolist())
            for a in second.plan.assignments
        ]
        assert first.modeled_makespan == second.modeled_makespan

    def test_hybrid_queue_scheduler_flag(self, rng):
        db = tiny_db(rng, n=16)
        query = random_protein(rng, 60)
        host = DevicePerformanceModel(XEON_E5_2670_DUAL)
        phi = DevicePerformanceModel(XEON_PHI_57XX)
        static = HybridSearchPipeline(host, phi).search(query, db, top_k=4)
        queued = HybridSearchPipeline(
            host, phi, scheduler="queue", chunks=4
        ).search(query, db, top_k=4)
        assert queued.scheduler == "queue"
        assert queued.static_modeled_makespan is not None
        assert np.array_equal(queued.result.scores, static.result.scores)
        with pytest.raises(PipelineError):
            HybridSearchPipeline(host, phi, scheduler="lottery")
