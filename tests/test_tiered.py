"""Behavioural tests for the tiered search path (seed -> verify -> SW).

The tiered contract under test:

* every *returned* hit's score is bit-identical to what the exhaustive
  scan reports for that sequence (stage-3 rescoring is per-sequence
  independent exact SW);
* the survivor set is per-sequence deterministic, so chunking and
  streaming never change the result;
* ``sensitive`` recalls at least as much as ``fast`` on mutated
  homologs (the funnels nest: fast's thresholds are strictly harsher);
* the mode plumbing validates loudly — bad modes, fault injectors,
  non-local schedulers and too-short queries are typed errors, never
  silent behaviour changes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import SequenceDatabase, SyntheticSwissProt
from repro.db.fasta import FastaRecord
from repro.db.mutate import plant_homologs
from repro.exceptions import DeadlineExceeded, PipelineError
from repro.faults import Deadline, FaultInjector, FaultPlan
from repro.metrics import MetricsRegistry
from repro.obs import Tracer, use_tracer
from repro.search import (
    PartialResult,
    SearchOptions,
    SearchPipeline,
    StreamingSearch,
    TieredSearch,
    TieredSearchResult,
)
from repro.search.tiered import TIER_PRESETS
from repro.service import SearchService
from tests.conftest import random_protein

SCALE = 0.0004
RATES = [0.1, 0.3]


@pytest.fixture(scope="module")
def planted():
    """Background + known homologs of a fixed 120aa query."""
    bg = SyntheticSwissProt(seed=47).generate(scale=SCALE)
    rng = np.random.default_rng(12)
    query = random_protein(rng, 120)
    db, homologs = plant_homologs(
        bg, {"q": __import__("repro").PROTEIN.encode(query)},
        rates=RATES, per_rate=3, seed=5,
    )
    return query, db, homologs


@pytest.fixture(scope="module")
def exhaustive(planted):
    query, db, _ = planted
    return SearchPipeline(SearchOptions(top_k=10)).search(query, db)


class TestScoreExactness:
    @pytest.mark.parametrize("mode", ["sensitive", "fast"])
    def test_returned_scores_bit_identical_to_exhaustive(
        self, planted, exhaustive, mode
    ):
        query, db, _ = planted
        result = SearchPipeline(
            SearchOptions(mode=mode, top_k=10)
        ).search(query, db)
        assert isinstance(result, TieredSearchResult)
        assert result.hits, "tiered search returned no hits at all"
        for hit in result.hits:
            assert hit.score == int(exhaustive.scores[hit.index]), (
                f"{mode}: hit {hit.index} score {hit.score} != exhaustive "
                f"{int(exhaustive.scores[hit.index])}"
            )

    def test_close_homologs_recalled(self, planted):
        query, db, homologs = planted
        result = SearchPipeline(
            SearchOptions(mode="sensitive", top_k=10)
        ).search(query, db)
        returned = {h.index for h in result.hits}
        for hom in homologs:
            assert hom.index in returned, hom

    def test_rank_order_matches_exhaustive_on_survivors(
        self, planted, exhaustive
    ):
        # Survivors rank exactly as the exhaustive stable argsort ranks
        # them: the tiered top list is a subsequence of the exhaustive
        # ranking.
        query, db, _ = planted
        result = SearchPipeline(
            SearchOptions(mode="sensitive", top_k=10)
        ).search(query, db)
        exhaustive_order = [h.index for h in exhaustive.hits]
        tiered_order = [
            h.index for h in result.hits if h.index in set(exhaustive_order)
        ]
        positions = [exhaustive_order.index(i) for i in tiered_order]
        assert positions == sorted(positions)

    def test_funnel_accounting(self, planted):
        query, db, _ = planted
        result = SearchPipeline(
            SearchOptions(mode="sensitive", top_k=10)
        ).search(query, db)
        tier = result.tier
        assert tier.candidates == len(db)
        assert tier.candidates >= tier.seed_survivors >= tier.verify_survivors
        assert tier.verify_survivors >= len(result.hits)
        assert tier.rescore_cells < tier.exhaustive_cells
        assert tier.exact_cell_reduction > 1.0
        assert result.cells == tier.total_cells
        prov = result.provenance
        assert prov["mode"] == "sensitive"
        assert prov["tiered"]["candidates"] == len(db)


class TestRecallOrdering:
    def test_sensitive_recall_ge_fast_seeded_fuzz(self):
        # Seeded fuzz lane: across queries, backgrounds and divergence
        # levels, sensitive must never recall fewer exhaustive-top-10
        # members than fast (its funnel is strictly wider).
        for seed in (3, 17, 29):
            rng = np.random.default_rng(seed)
            query = random_protein(rng, 100)
            bg = SyntheticSwissProt(seed=seed + 100).generate(scale=0.0003)
            from repro.alphabet import PROTEIN

            db, _ = plant_homologs(
                bg, {"q": PROTEIN.encode(query)},
                rates=[0.2, 0.4, 0.6], per_rate=2, seed=seed,
            )
            exact = SearchPipeline(SearchOptions(top_k=10)).search(query, db)
            ref = [h.index for h in exact.hits]
            recall = {}
            for mode in ("sensitive", "fast"):
                result = SearchPipeline(
                    SearchOptions(mode=mode, top_k=10)
                ).search(query, db)
                got = {h.index for h in result.hits}
                recall[mode] = sum(1 for i in ref if i in got) / len(ref)
            assert recall["sensitive"] >= recall["fast"], (seed, recall)

    def test_fast_thresholds_not_looser_than_sensitive(self):
        # The nesting that backs the fuzz assertion: fast must prune at
        # least as hard as sensitive at every stage.
        s, f = TIER_PRESETS["sensitive"], TIER_PRESETS["fast"]
        assert f.threshold >= s.threshold
        assert f.seed_min_score >= s.seed_min_score
        assert f.verify_min_score >= s.verify_min_score
        assert f.band <= s.band


class TestStreamingInvariance:
    def test_chunking_invariant(self, planted):
        query, db, _ = planted
        results = []
        for chunk_size in (7, 64, 1000):
            search = StreamingSearch(SearchOptions(
                mode="sensitive", top_k=10, chunk_size=chunk_size
            ))
            results.append(search.search_database(query, db))
        first = [(h.index, h.score) for h in results[0].hits]
        for r in results[1:]:
            assert [(h.index, h.score) for h in r.hits] == first

    def test_streaming_matches_resident(self, planted):
        query, db, _ = planted
        resident = SearchPipeline(
            SearchOptions(mode="sensitive", top_k=10)
        ).search(query, db)
        streamed = StreamingSearch(
            SearchOptions(mode="sensitive", top_k=10, chunk_size=50)
        ).search_database(query, db)
        assert [(h.index, h.score) for h in streamed.hits] == [
            (h.index, h.score) for h in resident.hits
        ]

    def test_sharded_routes_to_tiered(self, planted):
        # workers > 1 with a tiered mode runs the same in-driver filter
        # (survivor sets are sharding-invariant; no pool is needed).
        query, db, _ = planted
        with StreamingSearch(
            SearchOptions(mode="sensitive", top_k=10, chunk_size=50),
            workers=2, shard_residues=5_000,
        ) as sharded:
            result = sharded.search_database(query, db)
        serial = StreamingSearch(
            SearchOptions(mode="sensitive", top_k=10, chunk_size=50)
        ).search_database(query, db)
        assert [(h.index, h.score) for h in result.hits] == [
            (h.index, h.score) for h in serial.hits
        ]

    def test_deadline_returns_partial(self, planted):
        import time

        query, db, _ = planted
        search = StreamingSearch(SearchOptions(
            mode="sensitive", top_k=10, chunk_size=10,
            deadline=Deadline(expires_at=time.time() - 1.0),
        ))
        result = search.search_database(query, db)
        assert isinstance(result, PartialResult)
        assert result.sequences_scanned < len(db)

    def test_resident_deadline_raises(self, planted):
        import time

        query, db, _ = planted
        pipe = SearchPipeline(SearchOptions(
            mode="sensitive", top_k=10,
            deadline=Deadline(expires_at=time.time() - 1.0),
        ))
        with pytest.raises(DeadlineExceeded):
            pipe.search(query, db)


class TestValidation:
    def test_invalid_mode_rejected(self):
        with pytest.raises(PipelineError, match="mode"):
            SearchOptions(mode="approximate")

    def test_tiered_rejects_exact_mode(self):
        with pytest.raises(PipelineError, match="exact"):
            TieredSearch(SearchOptions(mode="exact"))

    def test_injector_rejected_on_tiered_path(self):
        injector = FaultInjector(FaultPlan.parse("seed=7,corrupt=0.2"))
        with pytest.raises(PipelineError, match="fault injection"):
            TieredSearch(SearchOptions(mode="fast", injector=injector))

    def test_short_query_rejected(self, planted):
        _, db, _ = planted
        pipe = SearchPipeline(SearchOptions(mode="sensitive"))
        with pytest.raises(PipelineError, match="word size"):
            pipe.search("WC", db)

    def test_service_requires_local_scheduler(self):
        with pytest.raises(PipelineError, match="local scheduler"):
            SearchService(SearchOptions(mode="sensitive"), scheduler="static")
        # The local scheduler accepts tiered options.
        SearchService(SearchOptions(mode="sensitive"), scheduler="local")

    def test_empty_database_rejected(self):
        pipe = SearchPipeline(SearchOptions(mode="fast"))
        with pytest.raises(PipelineError):
            pipe.search("WCHKWCHK", SequenceDatabase("e", [], []))

    def test_empty_stream_rejected(self):
        search = StreamingSearch(SearchOptions(mode="fast"))
        with pytest.raises(PipelineError, match="empty"):
            search.search_records("WCHKWCHK", iter([]))


class TestObservability:
    def test_metrics_and_spans(self, planted):
        query, db, _ = planted
        registry = MetricsRegistry()
        tracer = Tracer()
        pipe = SearchPipeline(
            SearchOptions(mode="sensitive", top_k=5), metrics=registry
        )
        with use_tracer(tracer):
            result = pipe.search(query, db)
        snap = registry.snapshot()
        assert snap["tiered.searches"] == 1
        assert snap["tiered.candidates"] == len(db)
        assert snap["tiered.seed.survivors"] == result.tier.seed_survivors
        assert snap["tiered.rescore.cells"] == result.tier.rescore_cells
        names = [s.name for s in tracer.collector.spans()]
        for stage in ("tiered.search", "tiered.seed", "tiered.verify",
                      "tiered.rescore"):
            assert stage in names, names

    def test_small_database_smoke(self):
        # A tiny fully-identical database: the homolog must survive all
        # three stages and come back with its exact score.
        db = SequenceDatabase.from_records([
            FastaRecord("self", "WCHKWCHKWCHKWCHK"),
            FastaRecord("noise", "PGPGPGPGPGPGPGPG"),
        ])
        result = SearchPipeline(
            SearchOptions(mode="sensitive", top_k=5)
        ).search("WCHKWCHKWCHKWCHK", db)
        exact = SearchPipeline(SearchOptions(top_k=5)).search(
            "WCHKWCHKWCHKWCHK", db
        )
        assert result.hits
        assert result.hits[0].index == 0
        assert result.hits[0].score == exact.hits[0].score
