"""Regression tests for the result/top-k correctness sweep.

Four audited bugs: stale preprocessed databases silently scoring the
wrong content, ``Hit.accession`` crashing on empty headers, top-k=0
being rejected in one place and relied on in another, and zero-duration
GCUPS blowing up after a successful search.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import SequenceDatabase, preprocess_database
from repro.db.synthetic import SyntheticSwissProt
from repro.exceptions import PipelineError
from repro.search import (
    Hit,
    SearchOptions,
    SearchPipeline,
    SearchRequest,
    SearchResult,
    StreamingSearch,
)
from repro.search.streaming import StreamingResult
from repro.service import SearchService

QUERY = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ"


@pytest.fixture(scope="module")
def db() -> SequenceDatabase:
    return SyntheticSwissProt(seed=5).generate(scale=0.0003)


class TestPreprocessedFingerprint:
    def test_matching_preprocessed_is_accepted(self, db):
        pipe = SearchPipeline(SearchOptions(top_k=5))
        pre = preprocess_database(db, lanes=pipe.lanes)
        direct = pipe.search(QUERY, db)
        reused = pipe.search(QUERY, db, preprocessed=pre)
        assert [h.score for h in reused.hits] == [
            h.score for h in direct.hits
        ]

    def test_same_shape_different_content_rejected(self, db, rng):
        # Same entry count, same lengths even — but different residues.
        other = SequenceDatabase(
            name="evil-twin",
            sequences=[
                rng.integers(0, 20, len(s)).astype(np.uint8)
                for s in db.sequences
            ],
            headers=list(db.headers),
        )
        pipe = SearchPipeline(SearchOptions(top_k=5))
        pre = preprocess_database(other, lanes=pipe.lanes)
        with pytest.raises(PipelineError, match="fingerprint"):
            pipe.search(QUERY, db, preprocessed=pre)

    def test_hand_built_preprocessed_skips_the_check(self, db):
        # A PreprocessedDatabase without provenance (source_fingerprint
        # None) keeps the legacy shape-only validation.
        from repro.db import PreprocessedDatabase

        pipe = SearchPipeline(SearchOptions(top_k=5))
        pre = preprocess_database(db, lanes=pipe.lanes)
        bare = PreprocessedDatabase(
            database=pre.database, groups=pre.groups, lanes=pre.lanes
        )
        result = pipe.search(QUERY, db, preprocessed=bare)
        assert result.hits

    def test_service_cache_path_still_works(self, db):
        with SearchService(SearchOptions(top_k=4)) as service:
            first = service.search(SearchRequest(query=QUERY), db)
            second = service.search(SearchRequest(query=QUERY), db)
        assert [h.score for h in first.hits] == [
            h.score for h in second.hits
        ]
        assert service.cache.stats()["hits"] >= 1


class TestEmptyHeaderAccession:
    @pytest.mark.parametrize("header", ["", "   ", "\t"])
    def test_accession_placeholder(self, header):
        hit = Hit(index=0, header=header, length=4, score=11)
        assert hit.accession == "<unnamed>"

    def test_normal_header_unchanged(self):
        hit = Hit(index=0, header="sp|P1 some description", length=4,
                  score=11)
        assert hit.accession == "sp|P1"

    def test_reports_survive_empty_headers(self, rng):
        # An otherwise-successful search must format its reports even
        # when the database carried blank headers.
        db = SequenceDatabase(
            name="anon",
            sequences=[rng.integers(0, 20, 30).astype(np.uint8)
                       for _ in range(6)],
            headers=[""] * 6,
        )
        result = SearchPipeline(SearchOptions(top_k=3)).search(QUERY, db)
        assert "<unnamed>" in result.to_tsv()
        assert "<unnamed>" in result.summary()


class TestTopKZero:
    def test_options_allow_zero(self):
        assert SearchOptions(top_k=0).top_k == 0
        with pytest.raises(PipelineError, match="non-negative"):
            SearchOptions(top_k=-1)

    def test_request_allows_zero(self):
        assert SearchRequest(query=QUERY, top_k=0).top_k == 0

    def test_pipeline_scores_only(self, db):
        result = SearchPipeline(SearchOptions(top_k=0)).search(QUERY, db)
        assert result.hits == []
        assert len(result.scores) == len(db)
        assert result.best_score() > 0

    def test_streaming_scores_only(self, db):
        result = StreamingSearch(SearchOptions(top_k=0)).search_database(
            QUERY, db
        )
        assert result.hits == []
        assert result.sequences_scanned == len(db)

    def test_service_request_override(self, db):
        with SearchService(SearchOptions(top_k=5)) as service:
            outcome = service.search(
                SearchRequest(query=QUERY, top_k=0), db
            )
        assert outcome.hits == []


class TestZeroWallTimeGcups:
    def test_search_result_degrades_to_zero(self):
        result = SearchResult(
            query_name="q", query_length=10, database_name="d",
            scores=np.array([3], dtype=np.int64),
            hits=[Hit(index=0, header="h", length=5, score=3)],
            cells=50, wall_seconds=0.0,
        )
        assert result.wall_gcups == 0.0
        assert result.gcups == 0.0
        assert "0.0000 GCUPS" in result.summary()

    def test_streaming_result_degrades_to_zero(self):
        result = StreamingResult(
            query_name="q", query_length=10, hits=[],
            sequences_scanned=1, cells=50, chunks=1, wall_seconds=0.0,
        )
        assert result.wall_gcups == 0.0
        assert result.gcups == 0.0
        assert result.summary()

    def test_negative_time_still_raises(self):
        result = StreamingResult(
            query_name="q", query_length=10, hits=[],
            sequences_scanned=1, cells=50, chunks=1, wall_seconds=-1.0,
        )
        with pytest.raises(PipelineError):
            result.wall_gcups
