"""Unit tests for FASTA I/O."""

import io

import pytest

from repro.db import FastaRecord, parse_fasta_text, read_fasta, write_fasta
from repro.exceptions import FastaError


class TestParsing:
    def test_basic_two_records(self):
        recs = parse_fasta_text(">a desc one\nMKV\nLLL\n>b\nACD\n")
        assert len(recs) == 2
        assert recs[0].header == "a desc one"
        assert recs[0].sequence == "MKVLLL"
        assert recs[1].accession == "b"

    def test_wrapped_lines_joined(self):
        recs = parse_fasta_text(">x\nAC\nDE\nFG\n")
        assert recs[0].sequence == "ACDEFG"

    def test_blank_lines_skipped(self):
        recs = parse_fasta_text("\n>x\n\nACDE\n\n>y\nMK\n")
        assert [r.sequence for r in recs] == ["ACDE", "MK"]

    def test_crlf_handled(self):
        recs = parse_fasta_text(">x\r\nACDE\r\n")
        assert recs[0].sequence == "ACDE"

    def test_data_before_header_rejected(self):
        with pytest.raises(FastaError, match="before any"):
            parse_fasta_text("ACDE\n>x\nMK\n")

    def test_empty_header_rejected(self):
        with pytest.raises(FastaError, match="empty FASTA header"):
            parse_fasta_text(">\nACDE\n")

    def test_record_without_sequence_rejected(self):
        with pytest.raises(FastaError, match="empty sequence"):
            parse_fasta_text(">x\n>y\nMK\n")

    def test_empty_input_yields_nothing(self):
        assert parse_fasta_text("") == []

    def test_internal_whitespace_stripped(self):
        recs = parse_fasta_text(">x\n  ACDE  \n")
        assert recs[0].sequence == "ACDE"


class TestRecord:
    def test_len(self):
        assert len(FastaRecord("h", "ACDE")) == 4

    def test_accession_first_token(self):
        assert FastaRecord("sp|P1234|NAME description", "MK").accession == "sp|P1234|NAME"

    def test_whitespace_in_sequence_rejected(self):
        with pytest.raises(FastaError, match="whitespace"):
            FastaRecord("h", "AC DE")

    def test_blank_header_rejected(self):
        with pytest.raises(FastaError, match="non-empty header"):
            FastaRecord("   ", "ACDE")


class TestWriting:
    def test_roundtrip_through_buffer(self):
        recs = [FastaRecord("a one", "MKVLLL"), FastaRecord("b", "ACD")]
        buf = io.StringIO()
        count = write_fasta(recs, buf)
        assert count == 2
        assert parse_fasta_text(buf.getvalue()) == recs

    def test_wrapping_width(self):
        buf = io.StringIO()
        write_fasta([FastaRecord("x", "A" * 130)], buf, width=60)
        lines = buf.getvalue().splitlines()
        assert [len(l) for l in lines[1:]] == [60, 60, 10]

    def test_width_zero_single_line(self):
        buf = io.StringIO()
        write_fasta([FastaRecord("x", "A" * 130)], buf, width=0)
        assert len(buf.getvalue().splitlines()) == 2

    def test_negative_width_rejected(self):
        with pytest.raises(FastaError):
            write_fasta([], io.StringIO(), width=-1)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "db.fasta"
        recs = [FastaRecord(f"seq{i}", "ACDEFGHIKL" * (i + 1)) for i in range(5)]
        write_fasta(recs, path)
        assert list(read_fasta(path)) == recs
