"""Unit tests for residue alphabets and sequence encoding."""

import numpy as np
import pytest

from repro.alphabet import PROTEIN, Alphabet, UnknownPolicy, decode, encode
from repro.exceptions import AlphabetError, SequenceError


class TestAlphabetConstruction:
    def test_canonical_alphabet_has_24_letters(self):
        assert PROTEIN.size == 24
        assert PROTEIN.letters == "ARNDCQEGHILKMFPSTWYV" + "BZX*"

    def test_duplicate_letters_rejected(self):
        with pytest.raises(AlphabetError, match="duplicate"):
            Alphabet("AAB", wildcard="B")

    def test_empty_alphabet_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("", wildcard="X")

    def test_wildcard_must_be_member(self):
        with pytest.raises(AlphabetError, match="wildcard"):
            Alphabet("ABC", wildcard="X")

    def test_code_of_requires_single_character(self):
        with pytest.raises(AlphabetError, match="single character"):
            PROTEIN.code_of("AB")

    def test_code_of_unknown_letter(self):
        with pytest.raises(AlphabetError, match="not in the alphabet"):
            PROTEIN.code_of("7")


class TestEncoding:
    def test_roundtrip_exact(self):
        seq = "MKVLILACLVALALARE"
        assert decode(encode(seq)) == seq

    def test_lowercase_folds_to_uppercase(self):
        assert np.array_equal(encode("mkvl"), encode("MKVL"))
        assert decode(encode("mkvl")) == "MKVL"

    def test_codes_are_matrix_order(self):
        assert PROTEIN.code_of("A") == 0
        assert PROTEIN.code_of("R") == 1
        assert PROTEIN.code_of("V") == 19
        assert PROTEIN.code_of("*") == 23

    def test_empty_sequence_rejected(self):
        with pytest.raises(SequenceError, match="empty"):
            encode("")

    def test_unknown_raises_by_default(self):
        with pytest.raises(AlphabetError, match="position 2"):
            encode("MK7VL")

    def test_unknown_maps_to_x_under_policy(self):
        codes = encode("MK7VL", unknown=UnknownPolicy.MAP_TO_X)
        assert decode(codes) == "MKXVL"

    def test_encode_returns_uint8_contiguous(self):
        codes = encode("MKVL")
        assert codes.dtype == np.uint8
        assert codes.flags["C_CONTIGUOUS"]

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(AlphabetError, match="out of range"):
            decode(np.array([0, 200], dtype=np.uint8))

    def test_is_valid(self):
        assert PROTEIN.is_valid("ACDEFGHIKLMNPQRSTVWY")
        assert PROTEIN.is_valid("BZX*")
        assert not PROTEIN.is_valid("AC1")
        assert not PROTEIN.is_valid("")

    def test_unicode_letter_rejected(self):
        with pytest.raises(AlphabetError):
            encode("MKΩVL")


class TestWildcard:
    def test_wildcard_code(self):
        assert PROTEIN.wildcard_code == PROTEIN.letters.index("X")

    def test_custom_alphabet_encoding(self):
        dna = Alphabet("ACGTN", wildcard="N")
        assert dna.size == 5
        codes = dna.encode("acgtn")
        assert dna.decode(codes) == "ACGTN"
        mapped = dna.encode("ACGTQ", unknown=UnknownPolicy.MAP_TO_X)
        assert dna.decode(mapped) == "ACGTN"
