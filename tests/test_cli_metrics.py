"""Tests for the CLI entry points and the reporting helpers."""


from repro.cli import build_parser, main
from repro.metrics import format_series, format_table, paper_comparison


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [("a", 1.5), ("bb", 20)])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.50" in text and "20" in text

    def test_format_table_title(self):
        text = format_table(["x"], [(1,)], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_format_series_bars(self):
        text = format_series({1: 3.0, 2: 6.0}, x_label="threads")
        assert "###" in text
        assert "######" in text

    def test_paper_comparison_ratio(self):
        text = paper_comparison([("fig3", 30.4, 32.0)])
        assert "1.05x" in text

    def test_paper_comparison_non_numeric_paper_value(self):
        text = paper_comparison([("fig3", "~1-2", 1.7)])
        assert "~1-2" in text


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("search", "model", "hybrid", "info"):
            args = parser.parse_args([cmd] if cmd != "search" else ["search"])
            assert args.command == cmd

    def test_search_defaults(self):
        args = build_parser().parse_args(["search", "--query", "MKV"])
        assert args.matrix == "BLOSUM62"
        assert args.gap_open == 10 and args.gap_extend == 2


class TestMain:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "intertask" in out
        assert "BLOSUM62" in out
        assert "xeon-phi-60c" in out

    def test_search_synthetic(self, capsys):
        code = main([
            "search", "--query", "MKVLILACLVALALA",
            "--synthetic-scale", "0.0001", "--top", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "#1" in out and "GCUPS" in out

    def test_search_fasta_files(self, tmp_path, capsys):
        db = tmp_path / "db.fasta"
        db.write_text(">s1\nMKVLILACLVALALA\n>s2\nWWWWCCCC\n")
        q = tmp_path / "q.fasta"
        q.write_text(">myq\nMKVLILAC\n")
        code = main([
            "search", "--query-fasta", str(q), "--db-fasta", str(db),
            "--top", "2", "--traceback",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "myq" in out
        assert "s1" in out
        assert "score=" in out  # traceback rendering

    def test_search_missing_inputs(self, capsys):
        assert main(["search", "--query", "MKV"]) == 2
        assert main(["search", "--synthetic-scale", "0.0001"]) == 2

    def test_search_bad_matrix_reports_error(self, tmp_path, capsys):
        code = main([
            "search", "--query", "MKV", "--synthetic-scale", "0.0001",
            "--matrix", "NOPE",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_model_scaled(self, capsys):
        code = main(["model", "--query-length", "464", "--scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "intrinsic-SP" in out and "no-vec" in out

    def test_hybrid_coarse(self, capsys):
        code = main(["hybrid", "--query-length", "1000", "--step", "0.25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best split" in out


class TestAlignCommand:
    def test_local_alignment_output(self, capsys):
        assert main(["align", "WCHKWCHK", "AAWCHKGWCHKAA"]) == 0
        out = capsys.readouterr().out
        assert "local alignment" in out
        assert "CIGAR" in out

    def test_global_mode(self, capsys):
        assert main(["align", "AAATTT", "AAAGTTT", "--mode", "global",
                     "--gap-open", "0", "--gap-extend", "1"]) == 0
        out = capsys.readouterr().out
        assert "global alignment" in out
        assert "3M1D3M" in out

    def test_semiglobal_mode(self, capsys):
        assert main(["align", "WCHK", "AAWCHKAA", "--mode", "semiglobal"]) == 0
        assert "semiglobal alignment" in capsys.readouterr().out

    def test_no_positive_alignment(self, capsys):
        assert main(["align", "AAA", "TTT", "--matrix", "BLOSUM62"]) == 0
        assert "no alignment" in capsys.readouterr().out


class TestBlastCommand:
    def test_blast_synthetic(self, capsys):
        query = "MKVLILACLVALALARELEELNVPGEIVESLSSSEESITRINKKIE" * 2
        assert main(["blast", "--query", query,
                     "--synthetic-scale", "0.0001", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "seeds" in out and "skipped" in out

    def test_blast_needs_database(self, capsys):
        assert main(["blast", "--query", "WCHKWCHK"]) == 2


class TestSearchEvalues:
    def test_evalue_table(self, capsys):
        assert main([
            "search", "--query", "MKVLILACLVALALARELEELNVPGEIVESLSSS",
            "--synthetic-scale", "0.0003", "--evalues", "--top", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "E-value" in out
        assert "bits" in out


class TestReportCommand:
    def test_report_writes_markdown(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["report", "--output", str(out_file),
                     "--query-length", "1000"]) == 0
        text = out_file.read_text()
        assert "# Reproduction report" in text
        assert "Figure 3" in text and "Figure 8" in text
        assert "intrinsic-SP" in text

    def test_report_to_stdout(self, capsys):
        assert main(["report", "--query-length", "1000"]) == 0
        out = capsys.readouterr().out
        assert "Headline summary" in out


class TestFailureHandling:
    def test_missing_db_fasta_reports_error(self, capsys):
        code = main(["search", "--query", "MKV",
                     "--db-fasta", "/nonexistent/db.fasta"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_malformed_fasta_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.fasta"
        bad.write_text("ACDE\n>late header\nMK\n")
        code = main(["search", "--query", "MKV", "--db-fasta", str(bad)])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_blast_missing_file(self, capsys):
        code = main(["blast", "--query", "WCHKWCHK",
                     "--db-fasta", "/nope.fasta"])
        assert code == 1


class TestValidateCommand:
    def test_validate_reports_all_targets(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "12/12 targets reproduced" in out
        assert "V-C3/Fig.8" in out


class TestTsvOutput:
    def test_search_tsv(self, capsys):
        assert main([
            "search", "--query", "MKVLILACLVALALARELEELNVPGEIVESL",
            "--synthetic-scale", "0.0001", "--top", "3", "--tsv",
        ]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 3
        assert all(line.count("\t") >= 3 for line in out)
