"""Property-based tests for the extension modules.

Same style as test_properties.py, covering the invariants of the banded
engine, the alignment-mode ordering, the adaptive ladder and the
heuristic's subset property.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import get_engine
from repro.core.adaptive import AdaptivePrecisionEngine
from repro.core.banded import BandedEngine
from repro.core.global_align import global_align, semiglobal_align
from repro.scoring import BLOSUM62, GapModel

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

short_protein = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=20)
gap_models = st.tuples(
    st.integers(min_value=0, max_value=15), st.integers(min_value=1, max_value=5)
).map(lambda t: GapModel(*t))


class TestBandedProperties:
    @SETTINGS
    @given(a=short_protein, b=short_protein, gaps=gap_models,
           width=st.integers(min_value=0, max_value=25))
    def test_banded_is_a_lower_bound(self, a, b, gaps, width):
        exact = get_engine("scalar").score_pair(a, b, BLOSUM62, gaps).score
        banded = BandedEngine(width=width).score_pair(a, b, BLOSUM62, gaps).score
        assert 0 <= banded <= exact

    @SETTINGS
    @given(a=short_protein, b=short_protein, gaps=gap_models)
    def test_full_band_is_exact(self, a, b, gaps):
        exact = get_engine("scalar").score_pair(a, b, BLOSUM62, gaps).score
        wide = BandedEngine(width=len(a) + len(b)).score_pair(
            a, b, BLOSUM62, gaps
        ).score
        assert wide == exact

    @SETTINGS
    @given(a=short_protein, b=short_protein, gaps=gap_models,
           w1=st.integers(min_value=0, max_value=10),
           w2=st.integers(min_value=0, max_value=10))
    def test_wider_band_never_worse(self, a, b, gaps, w1, w2):
        lo, hi = sorted((w1, w2))
        s_lo = BandedEngine(width=lo).score_pair(a, b, BLOSUM62, gaps).score
        s_hi = BandedEngine(width=hi).score_pair(a, b, BLOSUM62, gaps).score
        assert s_hi >= s_lo


class TestModeOrderingProperties:
    @SETTINGS
    @given(a=short_protein, b=short_protein, gaps=gap_models)
    def test_local_semiglobal_global_ordering(self, a, b, gaps):
        local = get_engine("scalar").score_pair(a, b, BLOSUM62, gaps).score
        semi = semiglobal_align(a, b, BLOSUM62, gaps).score
        glob = global_align(a, b, BLOSUM62, gaps).score
        assert local >= semi >= glob

    @SETTINGS
    @given(a=short_protein, b=short_protein, gaps=gap_models)
    def test_global_consumes_everything(self, a, b, gaps):
        tb = global_align(a, b, BLOSUM62, gaps)
        assert tb.aligned_query.replace("-", "") == a
        assert tb.aligned_db.replace("-", "") == b

    @SETTINGS
    @given(a=short_protein, b=short_protein, gaps=gap_models)
    def test_semiglobal_consumes_query(self, a, b, gaps):
        tb = semiglobal_align(a, b, BLOSUM62, gaps)
        assert tb.aligned_query.replace("-", "") == a

    @SETTINGS
    @given(a=short_protein, gaps=gap_models)
    def test_modes_coincide_on_self(self, a, gaps):
        expect = sum(BLOSUM62.score(c, c) for c in a)
        assert global_align(a, a, BLOSUM62, gaps).score == expect
        assert semiglobal_align(a, a, BLOSUM62, gaps).score == expect


class TestAdaptiveLadderProperties:
    @SETTINGS
    @given(
        seqs=st.lists(short_protein, min_size=1, max_size=8),
        query=short_protein,
        gaps=gap_models,
    )
    def test_ladder_always_exact(self, seqs, query, gaps):
        oracle = get_engine("scalar")
        ladder = AdaptivePrecisionEngine(register_bits=128)
        result = ladder.score_batch(query, seqs, BLOSUM62, gaps)
        for k, s in enumerate(seqs):
            assert result.scores[k] == oracle.score_pair(
                query, s, BLOSUM62, gaps
            ).score

    @SETTINGS
    @given(
        seqs=st.lists(short_protein, min_size=1, max_size=6),
        query=short_protein,
    )
    def test_stage_accounting_conserves(self, seqs, query):
        gaps = GapModel(10, 2)
        result = AdaptivePrecisionEngine().score_batch(
            query, seqs, BLOSUM62, gaps
        )
        # Stage 1 processed every sequence.
        assert result.stages[0].sequences == len(seqs)
        # Later stages only what saturated before.
        for prev, nxt in zip(result.stages, result.stages[1:]):
            assert nxt.sequences == prev.saturated


class TestHeuristicSubsetProperty:
    @SETTINGS
    @given(
        query=st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=6, max_size=24),
        seqs=st.lists(
            st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=4, max_size=40),
            min_size=1, max_size=5,
        ),
    )
    def test_heuristic_never_exceeds_exact(self, query, seqs):
        from repro.db import SequenceDatabase
        from repro.db.fasta import FastaRecord
        from repro.heuristic import MiniBlast
        from repro.scoring import paper_gap_model

        db = SequenceDatabase.from_records(
            [FastaRecord(f"s{i}", s) for i, s in enumerate(seqs)]
        )
        heuristic = MiniBlast().search(query, db)
        oracle = get_engine("scalar")
        g = paper_gap_model()
        for i, s in enumerate(seqs):
            exact = oracle.score_pair(query, s, BLOSUM62, g).score
            assert heuristic.scores[i] <= exact
