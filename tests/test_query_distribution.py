"""Tests for the query-distribution hybrid strategy extension."""

import pytest

from repro.db import PAPER_QUERIES, SyntheticSwissProt
from repro.devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
from repro.exceptions import OffloadError
from repro.perfmodel import DevicePerformanceModel
from repro.runtime.query_distribution import (
    QueryDistributor, compare_strategies,
)


@pytest.fixture(scope="module")
def models():
    return (
        DevicePerformanceModel(XEON_E5_2670_DUAL),
        DevicePerformanceModel(XEON_PHI_57XX),
    )


@pytest.fixture(scope="module")
def lengths():
    return SyntheticSwissProt().lengths(scale=0.02)


@pytest.fixture(scope="module")
def paper_query_set():
    return {q.accession: q.length for q in PAPER_QUERIES}


class TestPlan:
    def test_every_query_assigned_exactly_once(self, models, lengths,
                                               paper_query_set):
        plan = QueryDistributor(*models).plan(paper_query_set, lengths)
        names = [a.name for a in plan.assignments]
        assert sorted(names) == sorted(paper_query_set)

    def test_both_sides_used_on_paper_set(self, models, lengths,
                                          paper_query_set):
        plan = QueryDistributor(*models).plan(paper_query_set, lengths)
        assert plan.queries_on("host")
        assert plan.queries_on("device")

    def test_loads_sum_to_assigned_costs(self, models, lengths,
                                         paper_query_set):
        plan = QueryDistributor(*models).plan(paper_query_set, lengths)
        host_sum = sum(a.seconds for a in plan.assignments
                       if a.device == "host")
        dev_sum = sum(a.seconds for a in plan.assignments
                      if a.device == "device")
        assert host_sum == pytest.approx(plan.host_seconds)
        assert dev_sum == pytest.approx(plan.device_seconds)

    def test_makespan_includes_transfer(self, models, lengths,
                                        paper_query_set):
        plan = QueryDistributor(*models).plan(paper_query_set, lengths)
        assert plan.makespan >= plan.device_seconds + plan.transfer_seconds \
            or plan.makespan == plan.host_seconds
        assert plan.transfer_seconds > 0

    def test_lpt_balances_loads(self, models, lengths, paper_query_set):
        # The two sides' finish times should be within the largest
        # single job of each other (the LPT guarantee flavour).
        plan = QueryDistributor(*models).plan(paper_query_set, lengths)
        finish_h = plan.host_seconds
        finish_d = plan.device_seconds + plan.transfer_seconds
        biggest = max(a.seconds for a in plan.assignments)
        assert abs(finish_h - finish_d) <= biggest + 1e-9

    def test_single_query_runs_on_faster_side(self, models, lengths):
        plan = QueryDistributor(*models).plan({"q": 5478}, lengths)
        assert len(plan.assignments) == 1
        # With only one job there is no parallelism; it lands wherever
        # it finishes earliest.
        assert plan.makespan == pytest.approx(
            min(
                plan.host_seconds
                or plan.device_seconds + plan.transfer_seconds,
                plan.host_seconds
                + (plan.device_seconds + plan.transfer_seconds),
            )
        )

    def test_empty_query_set_rejected(self, models, lengths):
        with pytest.raises(OffloadError):
            QueryDistributor(*models).plan({}, lengths)

    def test_gcups_positive(self, models, lengths, paper_query_set):
        plan = QueryDistributor(*models).plan(paper_query_set, lengths)
        assert plan.gcups > 0
        assert 0.0 < plan.device_share < 1.0


class TestStrategyComparison:
    def test_comparison_structure(self, models, lengths):
        queries = {q.accession: q.length for q in PAPER_QUERIES[:6]}
        out = compare_strategies(*models, queries, lengths,
                                 split_resolution=0.25)
        assert set(out) == {
            "db_split_gcups", "query_split_gcups", "query_split_device_share"
        }
        assert out["db_split_gcups"] > 0
        assert out["query_split_gcups"] > 0

    def test_query_split_wins_on_many_short_queries(self, models, lengths):
        # Many short queries: the db-split pays BOTH devices' fixed
        # launch costs per query; query distribution pays one each.
        queries = {f"short{i}": 144 for i in range(12)}
        out = compare_strategies(*models, queries, lengths,
                                 split_resolution=0.25)
        assert out["query_split_gcups"] > out["db_split_gcups"]
