"""The process-parallel backend: identity, determinism, resilience.

The backend's whole contract is that real multiprocess execution is an
implementation detail: scores (and fault-injection redo counts) must be
bit-identical to the serial path for any worker count or chunking, and
a pool that cannot start must degrade to in-process execution instead
of failing the search.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.parallel.backend as backend_mod
from repro.alphabet import PROTEIN
from repro.db.database import SequenceDatabase
from repro.db.preprocess import preprocess_database
from repro.exceptions import ParallelError, PipelineError
from repro.faults.injection import FaultInjector, FaultPlan
from repro.metrics import MetricsRegistry
from repro.parallel import ProcessPoolBackend, default_chunk_size
from repro.parallel.worker import EngineConfig
from repro.search import SearchOptions, SearchPipeline
from repro.service import SearchService
from repro.service.scheduler import WorkQueueScheduler
from tests.conftest import random_protein


def make_db(rng, n=29, lo=4, hi=70, name="par-db") -> SequenceDatabase:
    seqs = [random_protein(rng, int(k)) for k in rng.integers(lo, hi, n)]
    return SequenceDatabase(
        name, [PROTEIN.encode(s) for s in seqs],
        [f"s{i}" for i in range(n)],
    )


@pytest.fixture
def db(rng) -> SequenceDatabase:
    return make_db(rng)


@pytest.fixture
def query(rng) -> str:
    return random_protein(rng, 36)


def corrupting_options(**extra) -> SearchOptions:
    # lanes is pinned: fault units are lane-group ids, and the seeded
    # plan must corrupt the same units whichever kernel (and therefore
    # kernel-specific lane default) the run resolves to.
    extra.setdefault("lanes", 8)
    return SearchOptions(
        injector=FaultInjector(FaultPlan(seed=7, corrupt_rate=0.4)), **extra
    )


class TestScoreIdentity:
    def test_matches_serial_across_worker_counts(self, db, query):
        serial = SearchPipeline(SearchOptions()).search(query, db)
        for workers in (1, 2, 4):
            with SearchPipeline(SearchOptions(), workers=workers) as pipe:
                par = pipe.search(query, db)
            np.testing.assert_array_equal(
                par.scores, serial.scores, err_msg=f"workers={workers}"
            )
            assert par.saturated_recomputed == serial.saturated_recomputed

    def test_chunk_size_invariance(self, db, query):
        serial = SearchPipeline(corrupting_options()).search(query, db)
        for chunk_size in (1, 3, None):
            with SearchPipeline(
                corrupting_options(), workers=2,
                parallel_chunk_size=chunk_size,
            ) as pipe:
                par = pipe.search(query, db)
            np.testing.assert_array_equal(par.scores, serial.scores)
            # Fault units are global group ids, so redo counts are
            # chunking-invariant too.
            assert par.corrupted_redone == serial.corrupted_redone

    def test_backend_scatter_matches_pipeline(self, db, query):
        # Drive the backend directly: sorted-order scores scattered
        # through length_order() must equal the pipeline's output.
        pre = preprocess_database(db, lanes=8)
        serial = SearchPipeline(SearchOptions()).search(query, db)
        with ProcessPoolBackend(pre, workers=2) as backend:
            q = PROTEIN.encode(query)
            opts = SearchOptions()
            sorted_scores, sat, redone, results = backend.score_groups(
                q, opts.resolved_matrix(), opts.resolved_gaps(),
                EngineConfig(lanes=8),
            )
        full = np.zeros(len(db), dtype=np.int64)
        full[db.length_order()] = sorted_scores
        np.testing.assert_array_equal(full, serial.scores)
        assert redone == 0
        assert sum(len(r.positions) for r in results) == len(db)

    def test_pool_reuse_and_database_switch(self, rng, db, query):
        other = make_db(rng, n=17, name="other-db")
        with SearchPipeline(SearchOptions(), workers=2) as pipe:
            first = pipe.search(query, db)
            again = pipe.search(query, db)     # same pool, same broadcast
            switched = pipe.search(query, other)  # re-broadcast
        np.testing.assert_array_equal(first.scores, again.scores)
        np.testing.assert_array_equal(
            switched.scores,
            SearchPipeline(SearchOptions()).search(query, other).scores,
        )


class TestFaultDeterminism:
    def test_redo_counts_match_serial(self, db, query):
        serial = SearchPipeline(corrupting_options()).search(query, db)
        with SearchPipeline(corrupting_options(), workers=2) as pipe:
            par = pipe.search(query, db)
        assert serial.corrupted_redone > 0  # the plan really fires
        assert par.corrupted_redone == serial.corrupted_redone
        np.testing.assert_array_equal(par.scores, serial.scores)


class TestKernelParity:
    """The numpy kernel survives every parallel execution mode.

    Worker processes rebuild their engine from the broadcast
    :class:`EngineConfig`; if the kernel (or its kernel-specific lane
    default) failed to ride along, scores would still come back — from
    the wrong engine.  These tests pin process-parallel and serial
    numpy-kernel runs to the python-kernel serial reference.
    """

    def test_numpy_parallel_matches_python_serial(self, db, query):
        ref = SearchPipeline(SearchOptions(kernel="python")).search(
            query, db
        )
        serial = SearchPipeline(SearchOptions(kernel="numpy")).search(
            query, db
        )
        np.testing.assert_array_equal(serial.scores, ref.scores)
        for workers in (2, 4):
            with SearchPipeline(
                SearchOptions(kernel="numpy"), workers=workers
            ) as pipe:
                par = pipe.search(query, db)
            np.testing.assert_array_equal(
                par.scores, ref.scores, err_msg=f"workers={workers}"
            )
            assert [(h.index, h.score) for h in par.hits] \
                == [(h.index, h.score) for h in ref.hits]

    def test_numpy_fault_redo_matches_its_serial(self, db, query):
        # Corruption units are group ids, which depend on lane packing
        # — pinning lanes=8 gives both kernels the identical group
        # structure, so the seeded plan corrupts the same units and the
        # redo counts must agree across kernels, not just within one.
        ref = SearchPipeline(
            corrupting_options(kernel="python", lanes=8)
        ).search(query, db)
        serial = SearchPipeline(
            corrupting_options(kernel="numpy", lanes=8)
        ).search(query, db)
        with SearchPipeline(
            corrupting_options(kernel="numpy", lanes=8), workers=2
        ) as pipe:
            par = pipe.search(query, db)
        assert ref.corrupted_redone > 0  # the plan really fires
        assert serial.corrupted_redone == ref.corrupted_redone
        assert par.corrupted_redone == ref.corrupted_redone
        np.testing.assert_array_equal(serial.scores, ref.scores)
        np.testing.assert_array_equal(par.scores, ref.scores)

    def test_env_var_selects_kernel_in_workers(self, db, query,
                                               monkeypatch):
        # REPRO_KERNEL is resolved once by SearchOptions on the driver;
        # the resolved kernel must then survive the worker broadcast.
        ref = SearchPipeline(SearchOptions(kernel="python")).search(
            query, db
        )
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        with SearchPipeline(SearchOptions(), workers=2) as pipe:
            assert pipe.kernel == "numpy"
            par = pipe.search(query, db)
        np.testing.assert_array_equal(par.scores, ref.scores)


class TestFallback:
    def test_broken_pool_falls_back_to_serial(
        self, db, query, monkeypatch
    ):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes today")

        monkeypatch.setattr(
            backend_mod, "ProcessPoolExecutor", ExplodingPool
        )
        metrics = MetricsRegistry()
        pipe = SearchPipeline(SearchOptions(), metrics=metrics, workers=2)
        result = pipe.search(query, db)
        baseline = SearchPipeline(SearchOptions()).search(query, db)
        np.testing.assert_array_equal(result.scores, baseline.scores)
        assert metrics.snapshot()["parallel.fallback"] >= 1

    def test_backend_startup_failure_is_parallel_error(
        self, db, monkeypatch
    ):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes today")

        monkeypatch.setattr(
            backend_mod, "ProcessPoolExecutor", ExplodingPool
        )
        pre = preprocess_database(db, lanes=8)
        with pytest.raises(ParallelError):
            ProcessPoolBackend(pre, workers=2)


class TestServiceAndQueue:
    def test_service_process_executor_matches_inprocess(self, db, query):
        requests = [query, query[::-1]]
        base = SearchService(SearchOptions()).run(requests, db)
        with SearchService(
            SearchOptions(), executor="process", workers=2
        ) as svc:
            batch = svc.run(requests, db)
        for a, b in zip(batch.outcomes, base.outcomes):
            np.testing.assert_array_equal(a.scores, b.scores)

    def test_workers_imply_process_executor(self):
        svc = SearchService(SearchOptions(), workers=2)
        assert svc.executor == "process"
        svc.close()

    def test_static_scheduler_rejects_process_executor(self):
        with pytest.raises(PipelineError):
            SearchService(
                SearchOptions(), scheduler="static", executor="process"
            )

    def test_queue_scheduler_parallel_matches_serial(self, db, query):
        from repro.devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
        from repro.perfmodel.model import DevicePerformanceModel

        hm = DevicePerformanceModel(XEON_E5_2670_DUAL)
        dm = DevicePerformanceModel(XEON_PHI_57XX)
        serial = WorkQueueScheduler(
            hm, dm, corrupting_options()
        ).search(query, db)
        with WorkQueueScheduler(
            hm, dm, corrupting_options(), workers=2
        ) as queue:
            par = queue.search(query, db)
        np.testing.assert_array_equal(
            par.result.scores, serial.result.scores
        )
        assert par.plan.makespan == serial.plan.makespan


class TestLifecycleAndValidation:
    def test_backend_close_is_idempotent(self, db):
        pre = preprocess_database(db, lanes=8)
        backend = ProcessPoolBackend(pre, workers=2)
        backend.close()
        backend.close()
        assert backend.closed
        with pytest.raises(ParallelError):
            backend.submit_tasks([])

    def test_pipeline_survives_close(self, db, query):
        pipe = SearchPipeline(SearchOptions(), workers=2)
        first = pipe.search(query, db)
        pipe.close()
        pipe.close()
        second = pipe.search(query, db)  # starts a fresh pool
        pipe.close()
        np.testing.assert_array_equal(first.scores, second.scores)

    def test_invalid_parameters(self, db):
        pre = preprocess_database(db, lanes=8)
        with pytest.raises(ParallelError):
            ProcessPoolBackend(pre, workers=0)
        with pytest.raises(ParallelError):
            ProcessPoolBackend(pre, workers=2, chunk_size=0)
        with pytest.raises(ParallelError):
            ProcessPoolBackend(pre, workers=2, broadcast="telepathy")
        with pytest.raises(PipelineError):
            SearchPipeline(SearchOptions(), workers=0)
        with pytest.raises(PipelineError):
            SearchService(SearchOptions(), workers=0)

    def test_default_chunk_size_shape(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(16, 2) == 2
        # All groups covered, no empty chunks.
        pre_groups = 13
        size = default_chunk_size(pre_groups, 4)
        chunks = [
            tuple(range(k, min(k + size, pre_groups)))
            for k in range(0, pre_groups, size)
        ]
        assert sum(len(c) for c in chunks) == pre_groups
        assert all(chunks)

    def test_worker_metrics_recorded(self, db, query):
        metrics = MetricsRegistry()
        with SearchPipeline(
            SearchOptions(), metrics=metrics, workers=2
        ) as pipe:
            pipe.search(query, db)
        snap = metrics.snapshot()
        assert snap["parallel.chunks"] >= 1
        assert snap["parallel.workers"] == 2.0
        assert any(k.startswith("parallel.worker.") for k in snap)
