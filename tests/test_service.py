"""The service layer: cache, batching, and the work-queue scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    XEON_E5_2670_DUAL,
    XEON_PHI_57XX,
    DevicePerformanceModel,
    PreprocessCache,
    SearchOptions,
    SearchPipeline,
    SearchRequest,
    SearchService,
    SequenceDatabase,
    WorkQueueScheduler,
)
from repro.db.fasta import FastaRecord
from repro.exceptions import ModelError, PipelineError
from repro.metrics import MetricsRegistry
from repro.perfmodel import build_chunks, compare_scheduling, plan_work_queue

from tests.conftest import random_protein


def make_db(rng, n=24, lo=30, hi=200, name="svc-db") -> SequenceDatabase:
    return SequenceDatabase.from_records(
        [
            FastaRecord(f"sp|S{k:04d}|SVC{k}", random_protein(
                rng, int(rng.integers(lo, hi))))
            for k in range(n)
        ],
        name=name,
    )


@pytest.fixture
def host():
    return DevicePerformanceModel(XEON_E5_2670_DUAL)


@pytest.fixture
def phi():
    return DevicePerformanceModel(XEON_PHI_57XX)


# ---------------------------------------------------------------------------
# database fingerprint
# ---------------------------------------------------------------------------
class TestFingerprint:
    def test_equal_content_equal_fingerprint(self, rng):
        db = make_db(rng, n=6)
        clone = SequenceDatabase(
            name="other-name",
            sequences=[s.copy() for s in db.sequences],
            headers=list(db.headers),
        )
        assert db.fingerprint() == clone.fingerprint()

    def test_different_content_different_fingerprint(self, rng):
        a = make_db(rng, n=6)
        b = a.subset(np.arange(len(a) - 1))
        assert a.fingerprint() != b.fingerprint()

    def test_order_sensitive(self, rng):
        db = make_db(rng, n=6)
        reordered = db.subset(np.arange(len(db))[::-1])
        assert db.fingerprint() != reordered.fingerprint()


# ---------------------------------------------------------------------------
# PreprocessCache
# ---------------------------------------------------------------------------
class TestPreprocessCache:
    def test_hit_on_same_content(self, rng):
        db = make_db(rng)
        cache = PreprocessCache(metrics=MetricsRegistry())
        first = cache.get(db, lanes=8)
        second = cache.get(db, lanes=8)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lane_width_separates_entries(self, rng):
        db = make_db(rng)
        cache = PreprocessCache(metrics=MetricsRegistry())
        assert cache.get(db, lanes=8) is not cache.get(db, lanes=16)
        assert cache.misses == 2

    def test_lru_eviction(self, rng):
        dbs = [make_db(rng, n=4, name=f"db{k}") for k in range(3)]
        cache = PreprocessCache(capacity=2, metrics=MetricsRegistry())
        for db in dbs:
            cache.get(db, lanes=8)
        assert cache.evictions == 1 and len(cache) == 2
        # dbs[0] was evicted: fetching it again misses.
        cache.get(dbs[0], lanes=8)
        assert cache.misses == 4

    def test_lru_refresh_on_hit(self, rng):
        dbs = [make_db(rng, n=4, name=f"db{k}") for k in range(3)]
        cache = PreprocessCache(capacity=2, metrics=MetricsRegistry())
        cache.get(dbs[0], lanes=8)
        cache.get(dbs[1], lanes=8)
        cache.get(dbs[0], lanes=8)  # refresh: dbs[1] is now the LRU
        cache.get(dbs[2], lanes=8)  # evicts dbs[1]
        cache.get(dbs[0], lanes=8)
        assert cache.hits == 2

    def test_metrics_registry_counters(self, rng):
        registry = MetricsRegistry()
        cache = PreprocessCache(metrics=registry)
        db = make_db(rng, n=4)
        cache.get(db, lanes=8)
        cache.get(db, lanes=8)
        snap = registry.snapshot("service.preprocess_cache")
        assert snap["service.preprocess_cache.misses"] == 1
        assert snap["service.preprocess_cache.hits"] == 1

    def test_invalid_capacity(self):
        with pytest.raises(PipelineError):
            PreprocessCache(0)


# ---------------------------------------------------------------------------
# preprocess hoisting in search_many
# ---------------------------------------------------------------------------
class TestPreprocessOnce:
    def test_search_many_preprocesses_exactly_once(self, rng, monkeypatch):
        import repro.search.pipeline as pipeline_mod

        db = make_db(rng)
        queries = {
            f"q{k}": random_protein(rng, 40 + 10 * k) for k in range(4)
        }
        calls = []
        real = pipeline_mod.preprocess_database

        def counting(database, *, lanes):
            calls.append(database.name)
            return real(database, lanes=lanes)

        monkeypatch.setattr(pipeline_mod, "preprocess_database", counting)
        results = SearchPipeline().search_many(queries, db)
        assert len(calls) == 1
        assert set(results) == set(queries)

    def test_search_many_scores_match_individual_searches(self, rng):
        db = make_db(rng)
        queries = {f"q{k}": random_protein(rng, 50) for k in range(3)}
        pipe = SearchPipeline(SearchOptions(top_k=5))
        batched = pipe.search_many(queries, db)
        for name, query in queries.items():
            solo = pipe.search(query, db, query_name=name)
            assert np.array_equal(batched[name].scores, solo.scores)
            assert (
                [h.score for h in batched[name].hits]
                == [h.score for h in solo.hits]
            )

    def test_preprocessed_lane_mismatch_rejected(self, rng):
        from repro.db import preprocess_database

        db = make_db(rng, n=6)
        pre16 = preprocess_database(db, lanes=16)
        with pytest.raises(PipelineError, match="lanes"):
            SearchPipeline(SearchOptions(lanes=8)).search(
                "ACDEFGH", db, preprocessed=pre16
            )


# ---------------------------------------------------------------------------
# work-queue planning (virtual time)
# ---------------------------------------------------------------------------
class TestWorkQueuePlan:
    def test_chunks_cover_everything_once(self, rng):
        lengths = rng.integers(30, 400, 100).astype(np.int64)
        parts = build_chunks(lengths, 12)
        combined = np.sort(np.concatenate(parts))
        assert np.array_equal(combined, np.arange(100))

    def test_chunking_rejects_bad_input(self):
        with pytest.raises(ModelError):
            build_chunks(np.array([10, 20]), 0)
        with pytest.raises(ModelError):
            build_chunks(np.array([], dtype=np.int64), 4)
        with pytest.raises(ModelError):
            build_chunks(np.array([5, 0]), 2)

    def test_both_workers_participate_on_big_workloads(self, host, phi, rng):
        lengths = rng.integers(200, 2000, 400).astype(np.int64)
        plan = plan_work_queue(host, phi, lengths, 500, chunks=24)
        workers = {a.worker for a in plan.assignments}
        assert workers == {"host", "device"}
        assert 0.0 < plan.device_residue_fraction < 1.0

    def test_makespan_is_max_worker_clock(self, host, phi, rng):
        lengths = rng.integers(100, 1000, 200).astype(np.int64)
        plan = plan_work_queue(host, phi, lengths, 300, chunks=10)
        assert plan.makespan == max(plan.host_seconds, plan.device_seconds)
        for worker in ("host", "device"):
            pulls = plan.worker_chunks(worker)
            for a, b in zip(pulls, pulls[1:]):
                assert b.start_seconds == pytest.approx(a.end_seconds)

    def test_dynamic_not_worse_than_static_reference(self, host, phi, rng):
        lengths = rng.integers(150, 1500, 300).astype(np.int64)
        cmp = compare_scheduling(host, phi, lengths, 800,
                                 static_fraction=0.55)
        assert cmp.dynamic_wins
        assert cmp.speedup >= 1.0


# ---------------------------------------------------------------------------
# WorkQueueScheduler (real execution)
# ---------------------------------------------------------------------------
class TestWorkQueueScheduler:
    def test_scores_identical_to_plain_pipeline(self, host, phi, rng):
        db = make_db(rng, n=30)
        query = random_protein(rng, 90)
        plain = SearchPipeline(SearchOptions(top_k=8)).search(query, db)
        queued = WorkQueueScheduler(
            host, phi, SearchOptions(top_k=8), chunks=7
        ).search(query, db)
        assert np.array_equal(queued.result.scores, plain.scores)
        assert (
            [(h.index, h.score) for h in queued.hits]
            == [(h.index, h.score) for h in plain.hits]
        )

    def test_reports_both_makespans(self, host, phi, rng):
        db = make_db(rng, n=20)
        outcome = WorkQueueScheduler(host, phi, chunks=5).search(
            random_protein(rng, 60), db
        )
        assert outcome.modeled_makespan > 0
        assert outcome.static_modeled_makespan > 0
        assert outcome.modeled_gcups > 0
        assert outcome.provenance["scheduler"] == "queue"

    def test_invalid_static_fraction(self, host, phi):
        with pytest.raises(PipelineError):
            WorkQueueScheduler(host, phi, static_fraction=1.5)

    def test_empty_database_rejected(self, host, phi):
        db = SequenceDatabase(name="empty", sequences=[], headers=[])
        with pytest.raises(PipelineError):
            WorkQueueScheduler(host, phi).search("ACDE", db)


# ---------------------------------------------------------------------------
# SearchService
# ---------------------------------------------------------------------------
class TestSearchService:
    def test_local_batch_scores_match_single_query_path(self, rng):
        db = make_db(rng)
        queries = [random_protein(rng, 40 + 20 * k) for k in range(3)]
        service = SearchService(
            SearchOptions(top_k=5), metrics=MetricsRegistry()
        )
        batch = service.run(
            [SearchRequest(query=q, name=f"q{k}")
             for k, q in enumerate(queries)],
            db,
        )
        pipe = SearchPipeline(SearchOptions(top_k=5))
        for outcome, query in zip(batch.outcomes, queries):
            solo = pipe.search(query, db)
            assert np.array_equal(outcome.scores, solo.scores)

    def test_batch_shares_one_preprocess(self, rng):
        db = make_db(rng)
        service = SearchService(metrics=MetricsRegistry())
        batch = service.run(
            [random_protein(rng, 50) for _ in range(5)], db
        )
        assert batch.cache_stats["misses"] == 1
        assert batch.cache_stats["hits"] == 4

    @pytest.mark.parametrize("scheduler", ["static", "queue"])
    def test_heterogeneous_schedulers_score_identically(
        self, rng, scheduler
    ):
        db = make_db(rng, n=18)
        query = random_protein(rng, 70)
        plain = SearchPipeline(SearchOptions(top_k=4)).search(query, db)
        batch = SearchService(
            SearchOptions(top_k=4), scheduler=scheduler, chunks=4,
            metrics=MetricsRegistry(),
        ).run([SearchRequest(query=query, name="q")], db)
        outcome = batch.outcomes[0]
        assert outcome.best_score() == plain.best_score()
        assert (
            [h.score for h in outcome.hits][:4]
            == [h.score for h in plain.hits]
        )

    def test_per_request_top_k_overrides_batch_default(self, rng):
        db = make_db(rng)
        batch = SearchService(
            SearchOptions(top_k=2), metrics=MetricsRegistry()
        ).run(
            [
                SearchRequest(query=random_protein(rng, 40), name="narrow"),
                SearchRequest(
                    query=random_protein(rng, 40), name="wide", top_k=7
                ),
            ],
            db,
        )
        assert len(batch.results["narrow"].hits) == 2
        assert len(batch.results["wide"].hits) == 7

    def test_batch_result_protocol_and_summary(self, rng):
        db = make_db(rng)
        batch = SearchService(metrics=MetricsRegistry()).run(
            [random_protein(rng, 40), random_protein(rng, 60)], db
        )
        assert batch.best_score() == max(
            o.best_score() for o in batch.outcomes
        )
        merged = batch.hits
        assert [h.score for h in merged] == sorted(
            (h.score for h in merged), reverse=True
        )
        assert batch.provenance["kind"] == "service-batch"
        assert len(batch.summary().splitlines()) == 2

    def test_empty_batch_rejected(self, rng):
        db = make_db(rng, n=4)
        with pytest.raises(PipelineError):
            SearchService(metrics=MetricsRegistry()).run([], db)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(PipelineError):
            SearchService(scheduler="greedy")
