"""The tracing substrate: spans, nesting, the null path, activation."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import PipelineError
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    TraceCollector,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)
from repro.obs.tracer import _NULL_SPAN


class TestSpanBasics:
    def test_span_records_wall_time_and_finishes(self):
        tracer = Tracer()
        with tracer.span("op") as sp:
            assert not sp.finished
        assert sp.finished
        assert sp.wall_seconds >= 0.0
        assert sp.status == "ok"

    def test_attributes_and_events(self):
        tracer = Tracer()
        with tracer.span("op", device="phi") as sp:
            sp.set_attribute("chunk", 3)
            sp.set_attributes(worker="device", residues=100)
            sp.add_event("fault", kind="corrupt", attempt=1)
        assert sp.attributes == {
            "device": "phi", "chunk": 3, "worker": "device", "residues": 100,
        }
        (ev,) = sp.events
        assert ev.name == "fault"
        assert ev.attributes == {"kind": "corrupt", "attempt": 1}

    def test_virtual_interval(self):
        tracer = Tracer()
        with tracer.span("chunk") as sp:
            sp.set_virtual(1.5, 2.25)
        assert sp.virtual_seconds == pytest.approx(0.75)

    def test_virtual_interval_rejects_backwards(self):
        tracer = Tracer()
        with tracer.span("chunk") as sp:
            with pytest.raises(PipelineError):
                sp.set_virtual(2.0, 1.0)

    def test_exception_marks_status_and_still_collects(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("op"):
                raise ValueError("boom")
        (sp,) = tracer.collector.spans()
        assert sp.status == "error:ValueError"
        assert sp.attributes["error"] == "boom"
        assert sp.finished

    def test_to_dict_is_flat_and_complete(self):
        tracer = Tracer()
        with tracer.span("op") as sp:
            sp.add_event("tick")
        d = sp.to_dict()
        assert d["name"] == "op"
        assert d["status"] == "ok"
        assert d["events"][0]["name"] == "tick"
        assert d["wall_seconds"] == sp.wall_seconds


class TestNesting:
    def test_children_nest_automatically(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grand:
                    pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grand.parent_id == child.span_id

    def test_event_attaches_to_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("inner") as inner:
                tracer.event("fault", kind="hang")
        assert inner.events[0].name == "fault"
        assert inner.events[0].attributes["kind"] == "hang"

    def test_event_outside_any_span_is_noop(self):
        tracer = Tracer()
        tracer.event("orphan")  # must not raise
        assert len(tracer.collector) == 0

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        seen = {}

        def work(name):
            with tracer.span(name) as sp:
                seen[name] = sp.parent_id

        with tracer.span("main-root"):
            threads = [
                threading.Thread(target=work, args=(f"t{i}",))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Spans opened on other threads are roots, not children of the
        # main thread's open span.
        assert all(parent is None for parent in seen.values())


class TestCollector:
    def _tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("mid"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("leaf"):
                pass
        return tracer.collector

    def test_roots_children_descendants(self):
        col = self._tree()
        (root,) = col.roots()
        assert root.name == "root"
        names = sorted(s.name for s in col.children(root))
        assert names == ["leaf", "mid"]
        assert len(col.descendants(root)) == 3

    def test_find_by_name(self):
        col = self._tree()
        assert len(col.find("leaf")) == 2
        assert col.find("nope") == ()

    def test_clear(self):
        col = self._tree()
        assert len(col) == 4
        col.clear()
        assert len(col) == 0

    def test_render_tree_indents(self):
        text = self._tree().render_tree()
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  mid")
        assert lines[2].startswith("    leaf")

    def test_collector_is_shareable(self):
        col = TraceCollector()
        a, b = Tracer(col), Tracer(col)
        with a.span("from-a"):
            pass
        with b.span("from-b"):
            pass
        assert {s.name for s in col.spans()} == {"from-a", "from-b"}


class TestNullPath:
    def test_null_span_is_falsy_singleton(self):
        tracer = NullTracer()
        sp = tracer.span("anything", attr=1)
        assert not sp
        assert sp is _NULL_SPAN
        assert tracer.span("other") is sp

    def test_null_span_absorbs_the_full_span_api(self):
        with NULL_TRACER.span("x") as sp:
            sp.set_attribute("a", 1)
            sp.set_attributes(b=2)
            sp.add_event("e")
            sp.set_virtual(0.0, 1.0)
        NULL_TRACER.event("e")
        assert NULL_TRACER.current_span() is None

    def test_real_span_is_truthy(self):
        with Tracer().span("x") as sp:
            assert sp


class TestActivation:
    def test_default_active_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_activates_and_restores(self):
        tracer = Tracer()
        assert get_tracer() is NULL_TRACER
        with use_tracer(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with use_tracer(tracer):
                raise RuntimeError
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_default(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert previous is NULL_TRACER
        assert get_tracer() is NULL_TRACER

    def test_nested_use_tracer(self):
        outer, inner = Tracer(), Tracer()
        with use_tracer(outer):
            with use_tracer(inner):
                assert get_tracer() is inner
            assert get_tracer() is outer
