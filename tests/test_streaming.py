"""Tests for the streaming (out-of-core) search driver."""

import pytest

from repro.db import SyntheticSwissProt, write_fasta
from repro.db.fasta import FastaRecord
from repro.exceptions import PipelineError
from repro.search import SearchOptions, SearchPipeline
from repro.search.streaming import StreamingSearch
from tests.conftest import random_protein


@pytest.fixture(scope="module")
def db():
    return SyntheticSwissProt().generate(scale=0.0003)


@pytest.fixture(scope="module")
def records(db):
    return [
        FastaRecord(h, db.alphabet.decode(s))
        for h, s in zip(db.headers, db.sequences)
    ]


class TestStreamEqualsBatch:
    def test_top_hits_match_pipeline(self, db, records, rng):
        q = random_protein(rng, 35)
        streamed = StreamingSearch(SearchOptions(chunk_size=37, top_k=10)).search_records(
            q, iter(records)
        )
        batch = SearchPipeline().search(q, db, top_k=10)
        assert [h.score for h in streamed.hits] == [
            h.score for h in batch.hits
        ]
        assert [h.header for h in streamed.hits] == [
            h.header for h in batch.hits
        ]

    @pytest.mark.parametrize("chunk_size", [1, 7, 100, 10_000])
    def test_chunk_size_invisible(self, db, records, rng, chunk_size):
        q = random_protein(rng, 20)
        result = StreamingSearch(
            SearchOptions(chunk_size=chunk_size, top_k=5)
        ).search_records(q, iter(records))
        expect = StreamingSearch(SearchOptions(chunk_size=64, top_k=5)).search_records(
            q, iter(records)
        )
        assert [h.score for h in result.hits] == [h.score for h in expect.hits]
        assert result.chunks == -(-len(records) // chunk_size)

    def test_accounting(self, db, records, rng):
        q = random_protein(rng, 25)
        result = StreamingSearch(SearchOptions(chunk_size=50)).search_records(q, iter(records))
        assert result.sequences_scanned == len(records)
        assert result.cells == 25 * db.total_residues
        assert result.wall_gcups > 0


class TestStreamBehaviour:
    def test_generator_consumed_lazily(self, records, rng):
        # Feeding a generator (no len(), no indexing) must work.
        q = random_protein(rng, 15)
        result = StreamingSearch(SearchOptions(chunk_size=16, top_k=3)).search_records(
            q, (r for r in records[:40])
        )
        assert result.sequences_scanned == 40

    def test_fasta_file_streaming(self, records, rng, tmp_path):
        path = tmp_path / "stream.fasta"
        write_fasta(records[:60], path)
        q = random_protein(rng, 15)
        result = StreamingSearch(SearchOptions(top_k=4)).search_fasta(q, path)
        assert result.sequences_scanned == 60
        assert len(result.hits) == 4

    def test_top_k_larger_than_database(self, records, rng):
        q = random_protein(rng, 10)
        result = StreamingSearch(SearchOptions(top_k=10_000)).search_records(
            q, iter(records[:25])
        )
        assert len(result.hits) == 25

    def test_score_ties_resolve_to_earlier_record(self, rng):
        q = "WCHK"
        recs = [FastaRecord(f"r{i}", "WCHK") for i in range(5)]
        result = StreamingSearch(SearchOptions(top_k=2)).search_records(q, iter(recs))
        assert [h.header for h in result.hits] == ["r0", "r1"]

    def test_empty_stream_rejected(self, rng):
        with pytest.raises(PipelineError, match="empty"):
            StreamingSearch().search_records("WCHK", iter([]))

    def test_invalid_parameters(self):
        with pytest.raises(PipelineError):
            StreamingSearch(SearchOptions(chunk_size=0))
        with pytest.raises(PipelineError):
            StreamingSearch(SearchOptions(top_k=-1))
        with pytest.raises(PipelineError):
            StreamingSearch(workers=0)

    def test_top_k_zero_scores_only(self, records, rng):
        # 0 = scores-only accounting: the scan runs, keeps no hits.
        q = random_protein(rng, 15)
        result = StreamingSearch(SearchOptions(top_k=0)).search_records(
            q, iter(records[:30])
        )
        assert result.hits == []
        assert result.sequences_scanned == 30
