"""Tests for Waterman-Eggert suboptimal alignments."""

import pytest

from repro.core import align_pair
from repro.core.suboptimal import waterman_eggert
from repro.exceptions import EngineError
from repro.scoring import BLOSUM62, match_mismatch_matrix, paper_gap_model
from tests.conftest import random_protein

MM = match_mismatch_matrix(5, -4)


class TestFirstAlignment:
    def test_first_equals_optimal(self, rng):
        g = paper_gap_model()
        for _ in range(6):
            a = random_protein(rng, int(rng.integers(5, 25)))
            b = random_protein(rng, int(rng.integers(5, 25)))
            subs = waterman_eggert(a, b, BLOSUM62, g, k=1)
            best = align_pair(a, b, BLOSUM62, g)
            if best.score:
                assert subs[0].score == best.score
            else:
                assert subs == []

    def test_scores_non_increasing(self, rng):
        g = paper_gap_model()
        a = random_protein(rng, 40)
        b = random_protein(rng, 40)
        subs = waterman_eggert(a, b, BLOSUM62, g, k=5)
        scores = [t.score for t in subs]
        assert scores == sorted(scores, reverse=True)


class TestRepeatedDomains:
    def test_two_copies_found_separately(self):
        # The query motif appears twice in the target, separated by
        # junk: declumping must report both copies.
        g = paper_gap_model()
        motif = "WCHKWMCH"
        target = motif + "PPPPGGGG" + motif
        subs = waterman_eggert(motif, target, BLOSUM62, g, k=3)
        full = sum(BLOSUM62.score(c, c) for c in motif)
        assert len(subs) >= 2
        assert subs[0].score == full
        assert subs[1].score == full
        spans = sorted((t.start_db, t.end_db) for t in subs[:2])
        assert spans[0][1] < spans[1][0]  # disjoint target regions

    def test_three_copies(self):
        g = paper_gap_model()
        motif = "WCHKW"
        target = "AAA".join([motif] * 3)
        subs = waterman_eggert(motif, target, BLOSUM62, g, k=5, min_score=10)
        full = sum(BLOSUM62.score(c, c) for c in motif)
        assert [t.score for t in subs[:3]] == [full] * 3

    def test_alignments_share_no_cells(self, rng):
        g = paper_gap_model()
        a = random_protein(rng, 30)
        b = a + a  # guaranteed overlap candidates
        subs = waterman_eggert(a, b, BLOSUM62, g, k=4)
        seen: set[tuple[int, int]] = set()
        for t in subs:
            # Reconstruct the matched cell coordinates from the rows.
            i, j = t.start_query - 1, t.start_db - 1
            for qa, da in zip(t.aligned_query, t.aligned_db):
                if qa != "-":
                    i += 1
                if da != "-":
                    j += 1
                assert (i, j) not in seen
                seen.add((i, j))


class TestBounds:
    def test_min_score_floor(self, rng):
        g = paper_gap_model()
        a = random_protein(rng, 25)
        b = random_protein(rng, 25)
        subs = waterman_eggert(a, b, BLOSUM62, g, k=10, min_score=15)
        assert all(t.score >= 15 for t in subs)

    def test_no_alignment_when_disjoint(self):
        g = paper_gap_model()
        subs = waterman_eggert("AAAA", "TTTT", MM, g, k=3)
        assert subs == []

    def test_k_limits_count(self):
        g = paper_gap_model()
        motif = "WCHKW"
        target = "AAA".join([motif] * 4)
        subs = waterman_eggert(motif, target, BLOSUM62, g, k=2, min_score=5)
        assert len(subs) == 2

    def test_invalid_parameters(self):
        g = paper_gap_model()
        with pytest.raises(EngineError):
            waterman_eggert("WCH", "WCH", BLOSUM62, g, k=0)
        with pytest.raises(EngineError):
            waterman_eggert("WCH", "WCH", BLOSUM62, g, min_score=0)

    def test_rescoring_each_alignment(self, rng):
        from tests.test_core_traceback import rescore

        g = paper_gap_model()
        a = random_protein(rng, 30)
        b = a + random_protein(rng, 10) + a[::-1]
        for t in waterman_eggert(a, b, BLOSUM62, g, k=3):
            assert rescore(t, BLOSUM62, g) == t.score
