"""Cross-module integration tests.

Exercise whole slices of the system the way the benchmarks do: the real
compute path against the synthetic database, the model stack against the
paper's configurations, and the agreement between the two representations
of the same pre-processing (database objects vs bare length arrays).
"""

import numpy as np
import pytest

from repro import (
    BLOSUM62,
    DevicePerformanceModel,
    HybridExecutor,
    InterTaskEngine,
    RunConfig,
    SearchOptions,
    SearchPipeline,
    SyntheticSwissProt,
    Workload,
    XEON_E5_2670_DUAL,
    XEON_PHI_57XX,
    get_engine,
    make_query_set,
    paper_gap_model,
    preprocess_database,
    split_database,
)


@pytest.fixture(scope="module")
def db():
    return SyntheticSwissProt().generate(scale=0.0003)


class TestPublicAPI:
    def test_star_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_example(self):
        from repro import sw_score

        assert sw_score("HEAGAWGHEE", "PAWHEAE") == 17


class TestEndToEndSearch:
    def test_paper_configuration_search(self, db):
        # The paper's exact scoring setup over the synthetic database,
        # cross-checked against a second engine on the top hits.
        queries = make_query_set()
        q = queries["P02232"]  # the shortest paper query (144 aa)
        pipe = SearchPipeline(SearchOptions(lanes=16, threads=8, schedule="dynamic"))
        result = pipe.search(q, db, query_name="P02232", top_k=5)
        scan = get_engine("scan")
        for hit in result.hits:
            expect = scan.score_pair(
                q, db.sequences[hit.index], BLOSUM62, paper_gap_model()
            ).score
            assert hit.score == expect

    def test_hybrid_split_preserves_search_results(self, db):
        # Algorithm 2 semantics: searching the two halves separately and
        # merging must equal searching the whole database.
        q = make_query_set()["P05013"][:80]
        host_db, dev_db = split_database(db, 0.55)
        whole = SearchPipeline().search(q, db)
        host_part = SearchPipeline().search(q, host_db)
        dev_part = SearchPipeline().search(q, dev_db)
        merged = sorted(
            list(host_part.scores) + list(dev_part.scores), reverse=True
        )
        assert merged == sorted(whole.scores, reverse=True)

    def test_engine_lane_width_matches_devices(self, db):
        # 8-lane (Xeon/AVX) and 16-lane (Phi/MIC-512) engines agree.
        q = make_query_set()["P02232"][:60]
        g = paper_gap_model()
        xeon_engine = InterTaskEngine(lanes=8)
        phi_engine = InterTaskEngine(lanes=16)
        seqs = db.sequences[:40]
        a = xeon_engine.score_batch(q, seqs, BLOSUM62, g)
        b = phi_engine.score_batch(q, seqs, BLOSUM62, g)
        assert np.array_equal(a.scores, b.scores)


class TestModelDatabaseConsistency:
    def test_workload_matches_preprocessed_database(self, db):
        # The model's Workload (bare lengths) and the real pipeline's
        # PreprocessedDatabase must describe the same groups.
        pre = preprocess_database(db, lanes=8)
        wl = Workload.from_lengths(db.lengths, 8)
        assert len(wl.group_residues) == len(pre.groups)
        group_res = np.asarray([int(g.lengths.sum()) for g in pre.groups])
        assert np.array_equal(np.asarray(wl.group_residues), group_res)
        nmax = np.asarray([g.n_max for g in pre.groups])
        assert np.array_equal(np.asarray(wl.group_nmax), nmax)

    def test_split_database_matches_split_lengths(self, db):
        from repro.runtime import split_lengths

        host_db, dev_db = split_database(db, 0.4)
        host_l, dev_l = split_lengths(db.lengths, 0.4)
        assert host_db.total_residues == int(host_l.sum())
        assert dev_db.total_residues == int(dev_l.sum())


class TestPaperHeadlines:
    """The three headline numbers of the conclusions section."""

    @pytest.fixture(scope="class")
    def lengths(self):
        return SyntheticSwissProt().lengths()

    def test_xeon_headline(self, lengths):
        model = DevicePerformanceModel(XEON_E5_2670_DUAL)
        wl = Workload.from_lengths(lengths, 8)
        g = model.gcups(wl, 5478, RunConfig())
        assert 30.0 <= g <= 32.5  # paper: "32 ... on the Intel Xeon"

    def test_phi_headline(self, lengths):
        model = DevicePerformanceModel(XEON_PHI_57XX)
        wl = Workload.from_lengths(lengths, 16)
        g = model.gcups(wl, 5478, RunConfig())
        assert g == pytest.approx(34.9, rel=0.01)

    def test_hybrid_headline(self, lengths):
        ex = HybridExecutor(
            DevicePerformanceModel(XEON_E5_2670_DUAL),
            DevicePerformanceModel(XEON_PHI_57XX),
        )
        best = ex.best_split(lengths, 5478)
        assert best.gcups == pytest.approx(62.6, rel=0.05)

    def test_twenty_query_sweep_shapes(self, lengths):
        # Figures 4 and 6 jointly: Phi rises strongly with query length,
        # Xeon only mildly; the Phi overtakes the Xeon at long queries.
        from repro.db import PAPER_QUERIES

        xeon = DevicePerformanceModel(XEON_E5_2670_DUAL)
        phi = DevicePerformanceModel(XEON_PHI_57XX)
        wx = Workload.from_lengths(lengths, 8)
        wp = Workload.from_lengths(lengths, 16)
        qlens = [q.length for q in PAPER_QUERIES]
        gx = [xeon.gcups(wx, q, RunConfig()) for q in qlens]
        gp = [phi.gcups(wp, q, RunConfig()) for q in qlens]
        assert gp[0] < gx[0]        # short queries favour the host
        assert gp[-1] > gx[-1]      # long queries favour the Phi
        assert gp[-1] / gp[0] > gx[-1] / gx[0]
