"""Documentation integrity tests.

Docs are deliverables here: these tests keep the README's code examples
runnable, the calibration file's provenance discipline intact, and the
repository documents present and cross-consistent.
"""

import doctest
import inspect
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestRepositoryDocuments:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_document_exists_and_substantial(self, name):
        path = REPO / name
        assert path.exists(), name
        assert len(path.read_text().splitlines()) > 40

    def test_design_confirms_paper_identity(self):
        text = (REPO / "DESIGN.md").read_text()
        assert "Paper identity check: PASSED" in text
        assert "CLUSTER 2014" in text

    def test_design_indexes_every_figure(self):
        text = (REPO / "DESIGN.md").read_text()
        for fig in range(3, 9):
            assert f"Fig. {fig}" in text, fig

    def test_experiments_records_headlines(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for number in ("34.9", "62.6", "30.4"):
            assert number in text

    def test_bench_targets_in_design_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for target in re.findall(r"benchmarks/bench_\w+\.py", text):
            assert (REPO / target).exists(), target

    def test_examples_listed_in_readme_exist(self):
        text = (REPO / "README.md").read_text()
        for target in re.findall(r"examples/\w+\.py", text):
            assert (REPO / target).exists(), target


class TestReadmeExamples:
    def test_quickstart_snippet_values(self):
        # The values printed in the README's quickstart block.
        from repro import BLOSUM62, align_pair, paper_gap_model, sw_score

        assert sw_score("HEAGAWGHEE", "PAWHEAE") == 17
        tb = align_pair("GGGWCHKGGG", "WCHK", BLOSUM62, paper_gap_model())
        assert (tb.score, tb.cigar()) == (33, "4M")

    def test_model_snippet_value(self):
        from repro import (
            DevicePerformanceModel, RunConfig, SyntheticSwissProt,
            Workload, XEON_PHI_57XX,
        )

        lengths = SyntheticSwissProt().lengths()
        phi = DevicePerformanceModel(XEON_PHI_57XX)
        wl = Workload.from_lengths(lengths, lanes=16)
        assert phi.gcups(wl, 5478, RunConfig()) == pytest.approx(34.9)


class TestDoctests:
    def test_module_doctests_pass(self):
        import importlib

        for name in ("repro.search.gcups",):
            module = importlib.import_module(name)
            failures, _ = doctest.testmod(module)
            assert failures == 0, name


class TestCalibrationProvenance:
    def test_every_constant_is_tagged(self):
        from repro.perfmodel import calibration

        source = inspect.getsource(calibration)
        # Each calibrated field of each device entry carries a tag.
        for field in (
            "issue_width", "novec_stall_cycles", "guided_stall_cycles",
            "fixed_run_seconds", "miss_stall_factor", "contention",
            "anchor_target_gcups",
        ):
            occurrences = re.findall(rf"{field}=[^,]+,\s*#\s*\[(\w+)\]", source)
            assert len(occurrences) >= 2, field  # one per device
            assert set(occurrences) <= {"arch", "cal", "anchor"}, field

    def test_provenance_legend_documented(self):
        from repro.perfmodel import calibration

        doc = calibration.__doc__
        for tag in ("[arch]", "[cal]", "[anchor]"):
            assert tag.strip("[]") in doc


class TestPublicDocstrings:
    def test_all_public_api_documented(self):
        import repro

        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_all_modules_documented(self):
        import pkgutil

        import repro

        for info in pkgutil.walk_packages(repro.__path__, "repro."):
            if info.name.endswith("__main__"):
                continue  # importing it would run the CLI
            module = __import__(info.name, fromlist=["_"])
            assert module.__doc__, f"{info.name} lacks a module docstring"
