"""Tests for the binary database format."""

import numpy as np
import pytest

from repro.db import SequenceDatabase, SyntheticSwissProt
from repro.db.fasta import FastaRecord
from repro.db.io_npz import load_npz, save_npz
from repro.exceptions import DatabaseError


@pytest.fixture(scope="module")
def db():
    return SyntheticSwissProt().generate(scale=0.0002)


class TestRoundtrip:
    def test_exact_roundtrip(self, db, tmp_path):
        path = tmp_path / "db.npz"
        nbytes = save_npz(db, path)
        assert nbytes > 0
        loaded = load_npz(path)
        assert loaded.name == db.name
        assert loaded.headers == db.headers
        assert len(loaded) == len(db)
        for a, b in zip(loaded.sequences, db.sequences):
            assert np.array_equal(a, b)

    def test_roundtrip_preserves_search_results(self, db, tmp_path, rng):
        from repro.search import SearchPipeline
        from tests.conftest import random_protein

        path = tmp_path / "db.npz"
        save_npz(db, path)
        loaded = load_npz(path)
        q = random_protein(rng, 30)
        a = SearchPipeline().search(q, db)
        b = SearchPipeline().search(q, loaded)
        assert np.array_equal(a.scores, b.scores)

    def test_suffix_added_when_missing(self, db, tmp_path):
        save_npz(db, tmp_path / "plain")
        assert (tmp_path / "plain.npz").exists()

    def test_compressed_smaller_than_fasta(self, db, tmp_path):
        from repro.db import write_fasta
        from repro.db.fasta import FastaRecord

        npz = tmp_path / "db.npz"
        save_npz(db, npz)
        fasta = tmp_path / "db.fasta"
        write_fasta(
            (FastaRecord(h, db.alphabet.decode(s))
             for h, s in zip(db.headers, db.sequences)),
            fasta,
        )
        assert npz.stat().st_size < fasta.stat().st_size


class TestValidation:
    def test_empty_database_rejected(self, tmp_path):
        with pytest.raises(DatabaseError, match="empty"):
            save_npz(SequenceDatabase("e", [], []), tmp_path / "e.npz")

    def test_newline_header_rejected(self, tmp_path):
        db = SequenceDatabase.from_records([FastaRecord("ok", "MKV")])
        broken = SequenceDatabase(
            "x", db.sequences, ["bad\nheader"], db.alphabet
        )
        with pytest.raises(DatabaseError, match="newline"):
            save_npz(broken, tmp_path / "x.npz")

    def test_corrupt_offsets_detected(self, db, tmp_path):
        path = tmp_path / "db.npz"
        save_npz(db, path)
        with np.load(path) as data:
            fields = {k: data[k] for k in data.files}
        fields["offsets"] = fields["offsets"][:-1]  # truncate
        np.savez_compressed(path, **fields)
        with pytest.raises(DatabaseError):
            load_npz(path)

    def test_version_mismatch_detected(self, db, tmp_path):
        path = tmp_path / "db.npz"
        save_npz(db, path)
        with np.load(path) as data:
            fields = {k: data[k] for k in data.files}
        fields["version"] = np.int64(99)
        np.savez_compressed(path, **fields)
        with pytest.raises(DatabaseError, match="version"):
            load_npz(path)

    def test_missing_field_detected(self, db, tmp_path):
        path = tmp_path / "db.npz"
        save_npz(db, path)
        with np.load(path) as data:
            fields = {k: data[k] for k in data.files if k != "headers"}
        np.savez_compressed(path, **fields)
        with pytest.raises(DatabaseError, match="missing field"):
            load_npz(path)
