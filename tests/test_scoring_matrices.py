"""Unit tests for substitution matrices and the bundled data."""

import numpy as np
import pytest

from repro.alphabet import PROTEIN, Alphabet
from repro.exceptions import ScoringError
from repro.scoring import (
    BLOSUM45, BLOSUM50, BLOSUM62, BLOSUM80, BLOSUM90,
    PAM30, PAM70, PAM250,
    SubstitutionMatrix, available_matrices, get_matrix, match_mismatch_matrix,
)
from repro.scoring.matrices import parse_matrix_text

ALL_MATRICES = [BLOSUM45, BLOSUM50, BLOSUM62, BLOSUM80, BLOSUM90, PAM30, PAM70, PAM250]


class TestMatrixType:
    def test_symmetry_enforced(self):
        data = np.zeros((24, 24), dtype=np.int32)
        data[0, 1] = 5  # asymmetric on purpose
        with pytest.raises(ScoringError, match="not symmetric"):
            SubstitutionMatrix("BAD", PROTEIN, data)

    def test_shape_enforced(self):
        with pytest.raises(ScoringError, match="shape"):
            SubstitutionMatrix("BAD", PROTEIN, np.zeros((4, 4), dtype=np.int32))

    def test_score_by_letter(self):
        assert BLOSUM62.score("A", "A") == 4
        assert BLOSUM62.score("W", "W") == 11
        assert BLOSUM62.score("A", "R") == -1
        assert BLOSUM62.score("r", "a") == -1  # case-folded

    def test_lookup_vectorised(self):
        a = PROTEIN.encode("ARND")
        b = PROTEIN.encode("AAAA")
        expect = [BLOSUM62.score(x, "A") for x in "ARND"]
        assert list(BLOSUM62.lookup(a, b)) == expect

    def test_row_is_view_of_data(self):
        row = BLOSUM62.row(0)
        assert row.shape == (24,)
        assert row[0] == 4

    def test_row_out_of_range(self):
        with pytest.raises(ScoringError):
            BLOSUM62.row(24)

    def test_min_max_scores(self):
        assert BLOSUM62.max_score == 11  # W-W
        assert BLOSUM62.min_score == -4

    def test_with_name(self):
        other = BLOSUM62.with_name("COPY")
        assert other.name == "COPY"
        assert np.array_equal(other.data, BLOSUM62.data)


class TestBundledData:
    @pytest.mark.parametrize("matrix", ALL_MATRICES, ids=lambda m: m.name)
    def test_symmetric(self, matrix):
        assert np.array_equal(matrix.data, matrix.data.T)

    @pytest.mark.parametrize("matrix", ALL_MATRICES, ids=lambda m: m.name)
    def test_diagonal_positive_for_standard_residues(self, matrix):
        diag = np.diag(matrix.data)[:20]
        assert (diag > 0).all(), f"{matrix.name} has a non-positive self-score"

    @pytest.mark.parametrize("matrix", ALL_MATRICES, ids=lambda m: m.name)
    def test_diagonal_dominates_row_for_standard_residues(self, matrix):
        # A residue never scores higher against a different residue than
        # against itself (holds for all BLOSUM/PAM members bundled).
        data = matrix.data[:20, :20]
        for i in range(20):
            assert data[i, i] == data[i].max()

    def test_blosum62_spot_values(self):
        # Entry-by-entry spot checks against the NCBI table.
        cases = {
            ("A", "A"): 4, ("R", "K"): 2, ("N", "B"): 3, ("D", "E"): 2,
            ("C", "C"): 9, ("Q", "Z"): 3, ("G", "G"): 6, ("H", "Y"): 2,
            ("I", "V"): 3, ("L", "M"): 2, ("F", "Y"): 3, ("P", "P"): 7,
            ("W", "F"): 1, ("X", "X"): -1, ("*", "*"): 1, ("A", "*"): -4,
            ("S", "T"): 1, ("E", "Q"): 2,
        }
        for (a, b), v in cases.items():
            assert BLOSUM62.score(a, b) == v, (a, b)

    def test_registry_lookup(self):
        assert get_matrix("blosum62") is BLOSUM62
        assert get_matrix("PAM250") is PAM250
        assert "BLOSUM62" in available_matrices()

    def test_registry_unknown(self):
        with pytest.raises(ScoringError, match="unknown matrix"):
            get_matrix("BLOSUM999")


class TestMatchMismatch:
    def test_structure(self):
        m = match_mismatch_matrix(2, -3)
        assert m.score("A", "A") == 2
        assert m.score("A", "C") == -3

    def test_match_must_exceed_mismatch(self):
        with pytest.raises(ScoringError):
            match_mismatch_matrix(1, 1)

    def test_custom_alphabet(self):
        dna = Alphabet("ACGTN", wildcard="N")
        m = match_mismatch_matrix(5, -4, alphabet=dna)
        assert m.size == 5


class TestParser:
    def test_header_mismatch(self):
        with pytest.raises(ScoringError, match="header"):
            parse_matrix_text("T", "A B\nA 1 0\nB 0 1")

    def test_row_label_mismatch(self):
        letters = PROTEIN.letters
        header = " ".join(letters)
        rows = "\n".join(
            (letters[i] if i else "Z") + " " + " ".join(["0"] * 24)
            for i in range(24)
        )
        with pytest.raises(ScoringError, match="row 0"):
            parse_matrix_text("T", header + "\n" + rows)

    def test_empty_text(self):
        with pytest.raises(ScoringError, match="empty"):
            parse_matrix_text("T", "   \n# just a comment\n")

    def test_comments_ignored(self):
        header = " ".join(PROTEIN.letters)
        rows = "\n".join(
            f"{c} " + " ".join(["1" if c == d else "0" for d in PROTEIN.letters])
            for c in PROTEIN.letters
        )
        m = parse_matrix_text("ID", "# comment\n" + header + "\n" + rows)
        assert m.score("A", "A") == 1
        assert m.score("A", "R") == 0
