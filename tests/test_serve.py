"""Live client<->server tests for the serving layer (repro.serve).

Every test runs a real ``SearchServer`` on an ephemeral localhost port
and drives it through ``SearchClient`` — the drop-in contract is only
real if the bytes actually cross a socket.  The core assertion: a
remote query is *bit-identical* (scores, tie order, headers) to the
same query through the in-process ``SearchService`` on the same
database, and remote failures re-raise the same typed exceptions.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.db import SyntheticSwissProt
from repro.exceptions import (
    AlphabetError,
    CircuitOpen,
    DeadlineExceeded,
    PipelineError,
    ServiceOverloaded,
    WireError,
)
from repro.faults import CircuitBreaker, Deadline, RetryPolicy
from repro.metrics import MetricsRegistry
from repro.scoring import GapModel
from repro.search import SearchOptions, SearchRequest
from repro.serve import RemoteSearchResult, SearchClient, SearchServer
from repro.serve.wire import WIRE_SCHEMA_VERSION
from repro.service import SearchService

QUERY = "MKVLILACLVALALA"


@pytest.fixture(scope="module")
def db():
    return SyntheticSwissProt().generate(scale=0.0001)


@pytest.fixture(scope="module")
def server(db):
    with SearchServer(db, metrics=MetricsRegistry()) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return SearchClient(server.url, metrics=MetricsRegistry())


def post_raw(url, path, doc, timeout=10.0):
    """POST a raw JSON document, returning (status, parsed body)."""
    req = urllib.request.Request(
        f"{url}{path}",
        data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


class TestDropInParity:
    def test_remote_hits_bit_identical_to_in_process(self, db, client):
        local = SearchService()
        try:
            expected = local.search(QUERY, db)
        finally:
            local.close()
        remote = client.search(QUERY)
        assert isinstance(remote, RemoteSearchResult)
        # Bit-identical ranked hits: same scores, same tie order, same
        # headers — the dataclasses compare field-for-field.
        assert list(remote.hits) == list(expected.hits)
        assert remote.best_score() == expected.best_score()
        assert remote.cells == expected.cells
        assert remote.sequences == len(expected.scores)
        assert remote.database_name == expected.database_name
        assert remote.provenance["remote"] is True

    def test_request_object_and_bare_string_agree(self, client):
        via_str = client.search(QUERY)
        via_req = client.search(SearchRequest(query=QUERY))
        assert list(via_str.hits) == list(via_req.hits)

    def test_batch_matches_in_process_run(self, db, client):
        queries = [QUERY, "ACDEFGHIKLMNPQRSTVWY", QUERY[::-1]]
        local = SearchService()
        try:
            expected = local.run(queries, db)
        finally:
            local.close()
        batch = client.run(queries)
        assert batch.scheduler == expected.scheduler
        assert batch.database_name == expected.database_name
        assert len(batch.outcomes) == len(expected.outcomes)
        for remote, ours in zip(batch.outcomes, expected.outcomes):
            assert list(remote.hits) == list(ours.hits)
            assert remote.best_score() == ours.best_score()

    def test_per_request_top_k_and_traceback(self, client):
        result = client.search(
            SearchRequest(query=QUERY, top_k=2, traceback=True)
        )
        assert len(result.hits) == 2
        assert result.hits[0].alignment is not None
        assert result.hits[0].alignment.score == result.hits[0].score

    def test_drop_in_call_sites_accept_database_argument(self, db, client):
        # Code written against SearchService passes the database
        # positionally; the client accepts (and ignores) it.
        result = client.search(QUERY, db)
        assert result.best_score() > 0
        with pytest.raises(PipelineError, match="SequenceDatabase"):
            client.search(QUERY, "not-a-database")


class TestStreaming:
    def test_stream_pages_reassemble_exactly(self, client):
        expected = list(client.search(SearchRequest(query=QUERY, top_k=7)).hits)
        streamed = list(
            client.stream(SearchRequest(query=QUERY, top_k=7), page_size=2)
        )
        assert streamed == expected

    def test_single_page_when_page_size_covers_hits(self, client):
        hits = list(client.stream(QUERY, page_size=10_000))
        assert hits == list(client.search(QUERY).hits)

    def test_unknown_stream_id_is_typed(self, server):
        status, doc = post_raw(server.url, "/v1/stream", {
            "schema_version": WIRE_SCHEMA_VERSION, "kind": "request",
            "stream_id": "deadbeef", "offset": 0,
        })
        assert status == 400
        assert doc["error"] == "PipelineError"
        assert "unknown or expired stream" in doc["message"]

    def test_page_size_validation(self, client):
        with pytest.raises(PipelineError, match="page_size"):
            next(client.stream(QUERY, page_size=0))


class TestTypedRemoteErrors:
    def test_bad_query_raises_same_exception_as_in_process(self, db, client):
        local = SearchService()
        try:
            with pytest.raises(AlphabetError):
                local.search("MKV1LA", db)
        finally:
            local.close()
        with pytest.raises(AlphabetError):
            client.search("MKV1LA")

    def test_expired_deadline_is_deadline_exceeded(self, client):
        with pytest.raises(DeadlineExceeded):
            client.search(
                SearchRequest(query=QUERY, deadline=Deadline(expires_at=1.0))
            )

    def test_deadline_scope_does_not_leak(self, client):
        with pytest.raises(DeadlineExceeded):
            client.search(
                SearchRequest(query=QUERY, deadline=Deadline(expires_at=1.0))
            )
        # The next request must run free of the previous deadline.
        assert client.search(QUERY).best_score() > 0

    def test_schema_version_mismatch_rejected_by_server(self, server):
        status, doc = post_raw(server.url, "/v1/submit", {
            "schema_version": WIRE_SCHEMA_VERSION + 1, "kind": "request",
            "request": {"query": QUERY},
        })
        assert status == 400
        assert doc["error"] == "WireError"
        assert "schema_version mismatch" in doc["message"]

    def test_options_mismatch_is_loud(self, server):
        mismatched = SearchClient(
            server.url,
            options=SearchOptions(gaps=GapModel(15, 5)),
            metrics=MetricsRegistry(),
        )
        with pytest.raises(PipelineError, match="gaps"):
            mismatched.search(QUERY)

    def test_matching_options_accepted(self, server):
        agreeing = SearchClient(
            server.url, options=SearchOptions(), metrics=MetricsRegistry(),
        )
        assert agreeing.search(QUERY).best_score() > 0

    def test_unknown_endpoint_and_wrong_method(self, server):
        status, doc = post_raw(server.url, "/v1/nope", {
            "schema_version": WIRE_SCHEMA_VERSION, "kind": "request",
        })
        assert (status, doc["error"]) == (400, "WireError")
        with urllib.request.urlopen(f"{server.url}/v1/healthz") as resp:
            assert resp.status == 200
        req = urllib.request.Request(
            f"{server.url}/v1/submit", method="GET"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req)
        assert err.value.code == 405

    def test_garbage_body_is_wire_error(self, server):
        req = urllib.request.Request(
            f"{server.url}/v1/submit", data=b"not json{",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req)
        assert err.value.code == 400
        assert json.loads(err.value.read())["error"] == "WireError"


class TestAdmissionControl:
    def test_shed_is_service_overloaded_429(self, db):
        metrics = MetricsRegistry()
        with SearchServer(db, max_inflight=0, metrics=metrics) as srv:
            client = SearchClient(srv.url, metrics=MetricsRegistry())
            with pytest.raises(ServiceOverloaded, match="admission cap"):
                client.search(QUERY)
            status, doc = post_raw(srv.url, "/v1/submit", {
                "schema_version": WIRE_SCHEMA_VERSION, "kind": "request",
                "request": {"query": QUERY},
            })
            assert status == 429
            assert doc["error"] == "ServiceOverloaded"
            snapshot = metrics.snapshot()
            assert snapshot["serve.shed"] >= 2
            assert snapshot["serve.errors"] >= 2

    def test_retry_ladder_counts_attempts(self, db):
        client_metrics = MetricsRegistry()
        with SearchServer(db, max_inflight=0,
                          metrics=MetricsRegistry()) as srv:
            client = SearchClient(
                srv.url,
                retry=RetryPolicy(max_retries=2, base_delay=0.0),
                metrics=client_metrics,
            )
            with pytest.raises(ServiceOverloaded):
                client.search(QUERY)
        snapshot = client_metrics.snapshot()
        assert snapshot["serve.client.retries"] == 2
        assert snapshot["serve.client.errors"] == 3  # initial + 2 retries

    def test_breaker_opens_after_threshold(self, db):
        with SearchServer(db, max_inflight=0,
                          metrics=MetricsRegistry()) as srv:
            client = SearchClient(
                srv.url,
                breaker=CircuitBreaker(
                    failure_threshold=1, cooldown_seconds=3600.0,
                ),
                metrics=MetricsRegistry(),
            )
            with pytest.raises(ServiceOverloaded):
                client.search(QUERY)
            # The breaker is now OPEN: fail fast locally, no HTTP.
            with pytest.raises(CircuitOpen):
                client.search(QUERY)

    def test_negative_max_inflight_rejected(self, db):
        with pytest.raises(PipelineError, match="max_inflight"):
            SearchServer(db, max_inflight=-1, metrics=MetricsRegistry())


class TestIntrospection:
    def test_healthz(self, db, server, client):
        doc = client.health()
        assert doc["kind"] == "healthz"
        assert doc["status"] == "ok"
        assert doc["database"] == db.name
        assert doc["sequences"] == len(db)
        assert doc["scheduler"] == "local"
        assert doc["executor"] == "inprocess"

    def test_server_metrics_expose_serve_instruments(self, server, client):
        client.search(QUERY)
        metrics = client.server_metrics()
        assert metrics["serve.requests"] >= 1
        assert any(
            name.startswith("serve.request.seconds") for name in metrics
        )

    def test_client_metrics_timer(self, server):
        registry = MetricsRegistry()
        with SearchClient(server.url, metrics=registry) as client:
            client.search(QUERY)
        assert any(
            name.startswith("serve.client.request.seconds")
            for name in registry.snapshot()
        )


class TestTieredMode:
    """The ``mode`` option rides the wire and round-trips served search."""

    def test_sensitive_server_matches_local_tiered(self, db):
        options = SearchOptions(mode="sensitive")
        local = SearchService(options)
        try:
            expected = local.search(QUERY, db)
        finally:
            local.close()
        with SearchServer(db, options=options,
                          metrics=MetricsRegistry()) as srv:
            client = SearchClient(
                srv.url, options=options, metrics=MetricsRegistry(),
            )
            remote = client.search(QUERY)
        assert list(remote.hits) == list(expected.hits)
        assert remote.cells == expected.cells
        assert remote.provenance["mode"] == "sensitive"

    def test_mode_mismatch_is_loud(self, db):
        # An exact-mode server must refuse a sensitive-mode client (and
        # name the offending field) rather than silently serve exact
        # results against tiered expectations.
        with SearchServer(db, metrics=MetricsRegistry()) as srv:
            mismatched = SearchClient(
                srv.url,
                options=SearchOptions(mode="sensitive"),
                metrics=MetricsRegistry(),
            )
            with pytest.raises(PipelineError, match="mode"):
                mismatched.search(QUERY)

    def test_exact_client_rejected_by_tiered_server(self, db):
        with SearchServer(db, options=SearchOptions(mode="fast"),
                          metrics=MetricsRegistry()) as srv:
            exact_client = SearchClient(
                srv.url, options=SearchOptions(), metrics=MetricsRegistry(),
            )
            with pytest.raises(PipelineError, match="mode"):
                exact_client.search(QUERY)

    def test_exact_mode_envelope_backwards_compatible(self, server):
        # mode="exact" encodes to the same envelope as no mode at all:
        # a pre-mode peer and a mode-aware exact client interoperate.
        exact = SearchClient(
            server.url,
            options=SearchOptions(mode="exact"),
            metrics=MetricsRegistry(),
        )
        assert exact.search(QUERY).best_score() > 0


class TestLifecycle:
    def test_max_requests_shuts_down_cleanly(self, db):
        with SearchServer(db, max_requests=1,
                          metrics=MetricsRegistry()) as srv:
            client = SearchClient(srv.url, timeout=5.0,
                                  metrics=MetricsRegistry())
            assert client.search(QUERY).best_score() > 0
            with pytest.raises((PipelineError, WireError)):
                client.search(QUERY)

    def test_close_is_idempotent(self, db):
        srv = SearchServer(db, metrics=MetricsRegistry()).start()
        srv.close()
        srv.close()

    def test_unreachable_server_is_pipeline_error(self):
        client = SearchClient(
            "http://127.0.0.1:9", timeout=0.5, metrics=MetricsRegistry(),
        )
        with pytest.raises(PipelineError, match="unreachable"):
            client.search(QUERY)
        with pytest.raises(PipelineError, match="unreachable"):
            client.health()
