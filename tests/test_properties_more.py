"""A third round of hypothesis property tests for the extensions."""


import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import InterTaskEngine, get_engine, waterman_eggert
from repro.db import SequenceDatabase
from repro.db.fasta import FastaRecord
from repro.db.io_npz import load_npz, save_npz
from repro.scoring import BLOSUM62, GapModel
from repro.search import SearchOptions
from repro.search.streaming import StreamingSearch

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow, HealthCheck.function_scoped_fixture,
    ],
)

short_protein = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=20)
gap_models = st.tuples(
    st.integers(min_value=0, max_value=12), st.integers(min_value=1, max_value=4)
).map(lambda t: GapModel(*t))


class TestIntertaskConfigurations:
    @SETTINGS
    @given(
        query=short_protein,
        seqs=st.lists(short_protein, min_size=1, max_size=9),
        lanes=st.integers(min_value=1, max_value=20),
        sat_bits=st.sampled_from([None, 8, 16]),
        gaps=gap_models,
    )
    def test_every_configuration_exact(self, query, seqs, lanes, sat_bits, gaps):
        oracle = get_engine("scalar")
        engine = InterTaskEngine(lanes=lanes, saturate_bits=sat_bits)
        batch = engine.score_batch(query, seqs, BLOSUM62, gaps)
        for k, s in enumerate(seqs):
            assert batch.scores[k] == oracle.score_pair(
                query, s, BLOSUM62, gaps
            ).score


class TestWatermanEggertProperties:
    @SETTINGS
    @given(a=short_protein, b=short_protein, gaps=gap_models,
           k=st.integers(min_value=1, max_value=4))
    def test_scores_sorted_and_first_optimal(self, a, b, gaps, k):
        subs = waterman_eggert(a, b, BLOSUM62, gaps, k=k)
        scores = [t.score for t in subs]
        assert scores == sorted(scores, reverse=True)
        optimal = get_engine("scalar").score_pair(a, b, BLOSUM62, gaps).score
        if optimal > 0:
            assert subs and subs[0].score == optimal
        else:
            assert subs == []

    @SETTINGS
    @given(a=short_protein, b=short_protein, gaps=gap_models)
    def test_every_alignment_rescores(self, a, b, gaps):
        from tests.test_core_traceback import rescore

        for t in waterman_eggert(a, b, BLOSUM62, gaps, k=3):
            assert rescore(t, BLOSUM62, gaps) == t.score


class TestStreamingProperties:
    @SETTINGS
    @given(
        seqs=st.lists(short_protein, min_size=1, max_size=25),
        query=short_protein,
        chunk=st.integers(min_value=1, max_value=30),
        top_k=st.integers(min_value=1, max_value=8),
    )
    def test_streamed_topk_equals_global_sort(self, seqs, query, chunk, top_k):
        records = [FastaRecord(f"r{i}", s) for i, s in enumerate(seqs)]
        result = StreamingSearch(
            SearchOptions(chunk_size=chunk, top_k=top_k)
        ).search_records(query, iter(records))
        oracle = get_engine("scalar")
        from repro.scoring import paper_gap_model

        g = paper_gap_model()
        all_scores = [
            (oracle.score_pair(query, s, BLOSUM62, g).score, i)
            for i, s in enumerate(seqs)
        ]
        expected = sorted(all_scores, key=lambda t: (-t[0], t[1]))[:top_k]
        assert [(h.score, h.index) for h in result.hits] == expected


class TestNpzRoundtripProperty:
    header_text = st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1, max_size=20,
    )

    @SETTINGS
    @given(
        entries=st.lists(
            st.tuples(header_text, short_protein), min_size=1, max_size=12
        )
    )
    def test_roundtrip_identity(self, entries, tmp_path_factory):
        db = SequenceDatabase.from_records(
            [FastaRecord(f"{i}|{h}", s) for i, (h, s) in enumerate(entries)],
            name="prop",
        )
        path = tmp_path_factory.mktemp("npz") / "db.npz"
        save_npz(db, path)
        loaded = load_npz(path)
        assert loaded.headers == db.headers
        assert all(
            np.array_equal(a, b)
            for a, b in zip(loaded.sequences, db.sequences)
        )


class TestTsvOutput:
    def test_tsv_structure(self, rng):
        from repro.db import SyntheticSwissProt
        from repro.search import SearchPipeline
        from repro.search.stats import GumbelFit
        from tests.conftest import random_protein

        db = SyntheticSwissProt().generate(scale=0.0001)
        result = SearchPipeline().search(
            random_protein(rng, 30), db, top_k=5, traceback=True
        )
        plain = result.to_tsv()
        assert len(plain.splitlines()) == 5
        assert all(len(l.split("\t")) >= 4 for l in plain.splitlines())
        fit = GumbelFit(lam=0.3, k=0.05)
        with_stats = result.to_tsv(stats=fit)
        first = with_stats.splitlines()[0].split("\t")
        assert "e" in first[-1]  # E-value in scientific notation
