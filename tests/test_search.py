"""Unit and integration tests for the search pipeline (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import get_engine
from repro.db import SyntheticSwissProt
from repro.devices import XEON_E5_2670_DUAL
from repro.exceptions import PipelineError
from repro.perfmodel import DevicePerformanceModel
from repro.scoring import BLOSUM62, paper_gap_model
from repro.search import (
    Hit,
    SearchOptions,
    SearchPipeline,
    SearchResult,
    Stopwatch,
    gcups,
)
from tests.conftest import random_protein


@pytest.fixture(scope="module")
def db():
    return SyntheticSwissProt().generate(scale=0.0002)


@pytest.fixture(scope="module")
def pipeline():
    return SearchPipeline()


class TestGcupsMetric:
    def test_value(self):
        assert gcups(2_000_000_000, 2.0) == 1.0

    def test_zero_duration_degrades_to_zero(self):
        # A coarse clock can legitimately measure 0s on tiny inputs;
        # the metric degrades instead of blowing up a finished search.
        assert gcups(100, 0.0) == 0.0

    def test_invalid(self):
        with pytest.raises(PipelineError):
            gcups(100, -0.5)
        with pytest.raises(PipelineError):
            gcups(-1, 1.0)

    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.seconds
        with sw:
            pass
        assert sw.seconds >= first
        sw.reset()
        assert sw.seconds == 0.0


class TestSearchCorrectness:
    def test_scores_match_scalar_oracle(self, db, pipeline, rng):
        # End-to-end: the full pipeline (sorting, lane packing, simulated
        # schedule, scatter-back) must equal naive pairwise alignment.
        query = random_protein(rng, 35)
        result = pipeline.search(query, db, top_k=5)
        oracle = get_engine("scalar")
        g = paper_gap_model()
        sample = rng.choice(len(db), size=25, replace=False)
        for idx in sample:
            expect = oracle.score_pair(
                query, db.sequences[int(idx)], BLOSUM62, g
            ).score
            assert result.scores[int(idx)] == expect

    def test_hits_ranked_descending(self, db, pipeline, rng):
        result = pipeline.search(random_protein(rng, 30), db, top_k=20)
        scores = [h.score for h in result.hits]
        assert scores == sorted(scores, reverse=True)

    def test_planted_homolog_is_top_hit(self, db, pipeline):
        # A query copied from a database entry must rank that entry first.
        from repro.alphabet import PROTEIN

        target = db.sequences[37]
        query = PROTEIN.decode(target[: min(len(target), 80)])
        result = pipeline.search(query, db, top_k=3)
        assert result.hits[0].index == 37

    def test_cells_accounting(self, db, pipeline, rng):
        q = random_protein(rng, 40)
        result = pipeline.search(q, db)
        assert result.cells == 40 * db.total_residues

    def test_scores_in_original_order(self, db, pipeline, rng):
        q = random_protein(rng, 20)
        result = pipeline.search(q, db)
        # The hit objects point at the right database entries.
        for hit in result.hits:
            assert hit.header == db.headers[hit.index]
            assert hit.length == len(db.sequences[hit.index])
            assert result.scores[hit.index] == hit.score

    def test_traceback_top_hits(self, db, pipeline):
        from repro.alphabet import PROTEIN

        query = PROTEIN.decode(db.sequences[5][:60])
        result = pipeline.search(query, db, top_k=2, traceback=True)
        top = result.hits[0]
        assert top.alignment is not None
        assert top.alignment.score == top.score

    def test_empty_database_rejected(self, pipeline):
        from repro.db import SequenceDatabase

        with pytest.raises(PipelineError):
            pipeline.search("ACDEF", SequenceDatabase("e", [], []))

    def test_qp_and_sp_pipelines_agree(self, db, rng):
        q = random_protein(rng, 25)
        sp = SearchPipeline(SearchOptions(profile="sequence")).search(q, db)
        qp = SearchPipeline(SearchOptions(profile="query")).search(q, db)
        assert np.array_equal(sp.scores, qp.scores)

    def test_schedules_do_not_change_scores(self, db, rng):
        q = random_protein(rng, 25)
        results = [
            SearchPipeline(SearchOptions(schedule=s)).search(q, db).scores
            for s in ("static", "dynamic", "guided")
        ]
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[1], results[2])

    def test_blocked_pipeline_agrees(self, db, rng):
        q = random_protein(rng, 25)
        plain = SearchPipeline().search(q, db).scores
        blocked = SearchPipeline(block_cols=32).search(q, db).scores
        assert np.array_equal(plain, blocked)

    def test_saturating_pipeline_recomputes(self, db):
        from repro.alphabet import PROTEIN

        query = PROTEIN.decode(db.sequences[11])  # long self-hit saturates
        sat = SearchPipeline(saturate_bits=8).search(query, db)
        ref = SearchPipeline().search(query, db)
        assert np.array_equal(sat.scores, ref.scores)
        assert sat.saturated_recomputed > 0


class TestModeledTiming:
    def test_device_model_attaches_gcups(self, db, rng):
        model = DevicePerformanceModel(XEON_E5_2670_DUAL)
        pipe = SearchPipeline(SearchOptions(threads=32), device_model=model)
        result = pipe.search(random_protein(rng, 30), db)
        assert result.modeled_seconds is not None
        # On a tiny database the fixed per-run overhead dominates, so
        # overall GCUPS is small — but the compute-only rate must be in
        # the Xeon's tens-of-GCUPS regime.
        assert 0 < result.modeled_gcups < 35
        compute_s = result.modeled_seconds - model.cal.fixed_run_seconds
        assert result.cells / compute_s / 1e9 > 5.0

    def test_without_model_no_modeled_time(self, db, pipeline, rng):
        result = pipeline.search(random_protein(rng, 10), db)
        assert result.modeled_seconds is None
        assert result.modeled_gcups is None


class TestSearchMany:
    def test_multiple_queries(self, db, pipeline, rng):
        queries = {
            "q1": rng.integers(0, 20, 12).astype(np.uint8),
            "q2": rng.integers(0, 20, 25).astype(np.uint8),
        }
        results = pipeline.search_many(queries, db)
        assert set(results) == {"q1", "q2"}
        assert results["q2"].query_length == 25


class TestResultType:
    def test_unsorted_hits_rejected(self):
        hits = [
            Hit(index=0, header="a", length=5, score=1),
            Hit(index=1, header="b", length=5, score=9),
        ]
        with pytest.raises(PipelineError, match="descending"):
            SearchResult(
                query_name="q", query_length=3, database_name="d",
                scores=np.array([1, 9]), hits=hits, cells=30,
                wall_seconds=0.1,
            )

    def test_top_k(self, db, pipeline, rng):
        result = pipeline.search(random_protein(rng, 15), db, top_k=7)
        assert len(result.top(3)) == 3
        with pytest.raises(PipelineError):
            result.top(-1)

    def test_summary_mentions_query_and_hits(self, db, pipeline, rng):
        result = pipeline.search(
            random_protein(rng, 15), db, query_name="myquery"
        )
        text = result.summary()
        assert "myquery" in text
        assert "#1" in text

    def test_accession_property(self):
        hit = Hit(index=0, header="SYN000001 something", length=4, score=2)
        assert hit.accession == "SYN000001"
