"""Unit tests for the PCIe, offload and hybrid runtime models."""

import numpy as np
import pytest

from repro.db import SyntheticSwissProt
from repro.devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
from repro.exceptions import OffloadError
from repro.perfmodel import DevicePerformanceModel
from repro.runtime import (
    PCIE_GEN2_X16, HybridExecutor, OffloadRegion, PCIeLink, split_lengths,
)


class TestPCIe:
    def test_zero_bytes_free(self):
        assert PCIE_GEN2_X16.transfer_seconds(0) == 0.0

    def test_bandwidth_dominates_large_transfers(self):
        # 6 GB at 6 GB/s ~ 1 second.
        t = PCIE_GEN2_X16.transfer_seconds(6_000_000_000)
        assert t == pytest.approx(1.0, rel=0.01)

    def test_setup_dominates_small_transfers(self):
        t = PCIE_GEN2_X16.transfer_seconds(64)
        assert t == pytest.approx(PCIE_GEN2_X16.setup_seconds, rel=0.01)

    def test_monotone(self):
        a = PCIE_GEN2_X16.transfer_seconds(1_000)
        b = PCIE_GEN2_X16.transfer_seconds(1_000_000)
        assert b > a

    def test_invalid_parameters(self):
        with pytest.raises(OffloadError):
            PCIeLink("bad", effective_gbytes_per_s=0)
        with pytest.raises(OffloadError):
            PCIE_GEN2_X16.transfer_seconds(-1)


class TestOffloadRegion:
    def test_async_timing_composition(self):
        region = OffloadRegion(PCIE_GEN2_X16, launch_seconds=0.1)
        h = region.run_async(
            in_bytes=6_000_000_000, out_bytes=0, compute_seconds=2.0
        )
        assert h.ready_at == pytest.approx(0.1 + 1.0 + 2.0, rel=0.02)

    def test_kernel_result_carried_after_wait(self):
        region = OffloadRegion(PCIE_GEN2_X16)
        h = region.run_async(kernel=lambda: 42)
        region.wait(h)
        assert h.result == 42

    def test_kernel_is_deferred_until_wait(self):
        region = OffloadRegion(PCIE_GEN2_X16)
        ran = []
        h = region.run_async(kernel=lambda: ran.append(1))
        assert ran == []  # launch must not execute the kernel eagerly
        with pytest.raises(OffloadError, match="before wait"):
            h.result
        region.wait(h)
        assert ran == [1]

    def test_kernel_exception_surfaces_at_wait(self):
        region = OffloadRegion(PCIE_GEN2_X16)

        def bad():
            raise ValueError("device exploded")

        h = region.run_async(kernel=bad)
        with pytest.raises(OffloadError, match="ValueError: device exploded") as ei:
            region.wait(h)
        assert isinstance(ei.value.__cause__, ValueError)
        with pytest.raises(OffloadError, match="already waited"):
            region.wait(h)

    def test_wait_overlap_is_free_when_host_late(self):
        region = OffloadRegion(PCIE_GEN2_X16)
        h = region.run_async(compute_seconds=1.0)
        assert region.wait(h, now=5.0) == 5.0

    def test_wait_blocks_when_device_late(self):
        region = OffloadRegion(PCIE_GEN2_X16)
        h = region.run_async(compute_seconds=9.0)
        assert region.wait(h, now=1.0) == pytest.approx(h.ready_at)

    def test_double_wait_rejected(self):
        region = OffloadRegion(PCIE_GEN2_X16)
        h = region.run_async()
        region.wait(h)
        with pytest.raises(OffloadError, match="already waited"):
            region.wait(h)

    def test_transfer_accounting(self):
        region = OffloadRegion(PCIE_GEN2_X16)
        region.run_async(in_bytes=100, out_bytes=8)
        region.run_async(in_bytes=50, out_bytes=4)
        assert region.bytes_in == 150
        assert region.bytes_out == 12

    def test_invalid_arguments(self):
        region = OffloadRegion(PCIE_GEN2_X16)
        with pytest.raises(OffloadError):
            region.run_async(compute_seconds=-1)
        with pytest.raises(OffloadError):
            region.run_async(start_at=-1)
        with pytest.raises(OffloadError):
            OffloadRegion(PCIE_GEN2_X16, launch_seconds=-0.1)


class TestSplitLengths:
    def test_partition_conserves_residues(self, rng):
        lengths = rng.integers(10, 1000, 500)
        host, dev = split_lengths(lengths, 0.55)
        assert host.sum() + dev.sum() == lengths.sum()
        assert len(host) + len(dev) == 500

    def test_fraction_accuracy(self, rng):
        lengths = rng.integers(10, 1000, 500)
        _, dev = split_lengths(lengths, 0.55)
        assert abs(dev.sum() / lengths.sum() - 0.55) < 0.02

    def test_edge_fractions(self, rng):
        lengths = rng.integers(10, 100, 50)
        host, dev = split_lengths(lengths, 0.0)
        assert len(dev) == 0 and len(host) == 50
        host, dev = split_lengths(lengths, 1.0)
        assert len(host) == 0 and len(dev) == 50

    def test_invalid_fraction(self, rng):
        with pytest.raises(OffloadError):
            split_lengths(rng.integers(1, 9, 5), 1.2)

    def test_empty_lengths_named_in_error(self):
        with pytest.raises(OffloadError, match="empty"):
            split_lengths(np.empty(0, dtype=np.int64), 0.5)

    def test_all_zero_lengths_named_in_error(self):
        with pytest.raises(OffloadError, match="zero residues"):
            split_lengths(np.zeros(7, dtype=np.int64), 0.5)


@pytest.fixture(scope="module")
def executor():
    return HybridExecutor(
        DevicePerformanceModel(XEON_E5_2670_DUAL),
        DevicePerformanceModel(XEON_PHI_57XX),
    )


@pytest.fixture(scope="module")
def full_lengths():
    return SyntheticSwissProt().lengths()


class TestHybrid:
    """Figure 8 shape: unimodal, peak near the middle, ~62.6 GCUPS."""

    def test_endpoints_match_single_devices(self, executor, full_lengths):
        host_only = executor.run(full_lengths, 5478, 0.0)
        dev_only = executor.run(full_lengths, 5478, 1.0)
        assert host_only.gcups == pytest.approx(32.0, rel=0.02)
        # The Phi alone pays the PCIe transfer of the whole database.
        assert dev_only.gcups == pytest.approx(34.9, rel=0.02)

    def test_peak_location_and_value(self, executor, full_lengths):
        best = executor.best_split(full_lengths, 5478)
        # Paper: optimum "close to a homogeneous distribution"
        # (45% Xeon / 55% Phi) reaching 62.6 GCUPS.
        assert 0.45 <= best.device_fraction <= 0.60
        assert best.gcups == pytest.approx(62.6, rel=0.05)

    def test_peak_beats_both_endpoints(self, executor, full_lengths):
        best = executor.best_split(full_lengths, 5478)
        assert best.gcups > 1.7 * 32.0 * 0.9  # near-additive combination

    def test_sweep_is_unimodal(self, executor, full_lengths):
        fractions = [k * 0.1 for k in range(11)]
        sweep = executor.sweep(full_lengths, 5478, fractions)
        values = [sweep[f].gcups for f in fractions]
        peak = values.index(max(values))
        assert all(b >= a * 0.999 for a, b in zip(values[:peak], values[1 : peak + 1]))
        assert all(a >= b * 0.999 for a, b in zip(values[peak:], values[peak + 1 :]))

    def test_overlap_efficiency_peaks_at_optimum(self, executor, full_lengths):
        best = executor.best_split(full_lengths, 5478)
        off = executor.run(full_lengths, 5478, 0.9)
        assert best.overlap_efficiency > off.overlap_efficiency

    def test_total_is_max_of_sides(self, executor, full_lengths):
        r = executor.run(full_lengths, 5478, 0.4)
        assert r.total_seconds == pytest.approx(
            max(r.host_seconds, r.device_seconds)
        )

    def test_invalid_resolution(self, executor, full_lengths):
        with pytest.raises(OffloadError):
            executor.best_split(full_lengths, 100, resolution=0.0)

    def test_empty_split_raises_nothing_but_counts_work(self, executor, full_lengths):
        r = executor.run(full_lengths, 100, 0.0)
        assert r.device_seconds == 0.0
        assert r.cells == 100 * int(full_lengths.sum())

    def test_run_rejects_empty_lengths(self, executor):
        with pytest.raises(OffloadError, match="length distribution is empty"):
            executor.run(np.empty(0, dtype=np.int64), 100, 0.5)

    def test_run_rejects_zero_work(self, executor):
        with pytest.raises(OffloadError, match="zero residues"):
            executor.run(np.zeros(3, dtype=np.int64), 100, 0.5)
