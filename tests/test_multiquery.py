"""Tests for the multi-query batch executor."""

import numpy as np
import pytest

from repro.db import SyntheticSwissProt
from repro.devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
from repro.exceptions import PipelineError
from repro.perfmodel import DevicePerformanceModel
from repro.search import SearchPipeline
from repro.search.multiquery import MultiQueryExecutor


@pytest.fixture(scope="module")
def executor():
    return MultiQueryExecutor(
        DevicePerformanceModel(XEON_E5_2670_DUAL),
        DevicePerformanceModel(XEON_PHI_57XX),
    )


@pytest.fixture(scope="module")
def db():
    return SyntheticSwissProt().generate(scale=0.00015)


@pytest.fixture(scope="module")
def queries(rng_module=None):
    gen = np.random.default_rng(8)
    return {f"q{i}": gen.integers(0, 20, n).astype(np.uint8)
            for i, n in enumerate((40, 90, 150, 220, 300))}


class TestExecution:
    def test_every_query_searched(self, executor, db, queries):
        outcome = executor.run(queries, db, top_k=3)
        assert set(outcome.results) == set(queries)
        for name, q in queries.items():
            assert outcome.results[name].query_length == len(q)

    def test_results_identical_to_plain_pipeline(self, executor, db, queries):
        # Placement must not change the scores: both sides search the
        # same database with exact engines.
        outcome = executor.run(queries, db)
        reference = SearchPipeline()
        for name, q in queries.items():
            expect = reference.search(q, db)
            assert np.array_equal(outcome.results[name].scores, expect.scores)

    def test_placement_follows_plan(self, executor, db, queries):
        outcome = executor.run(queries, db)
        placement = outcome.placement()
        assert set(placement) == set(queries)
        assert set(placement.values()) <= {"host", "device"}

    def test_gcups_accounting(self, executor, db, queries):
        outcome = executor.run(queries, db)
        assert outcome.total_cells == sum(
            len(q) * db.total_residues for q in queries.values()
        )
        assert outcome.modeled_gcups > 0

    def test_empty_inputs_rejected(self, executor, db, queries):
        from repro.db import SequenceDatabase

        with pytest.raises(PipelineError):
            executor.run({}, db)
        with pytest.raises(PipelineError):
            executor.run(queries, SequenceDatabase("e", [], []))
