"""Self-healing pool, end-to-end deadlines, and resumable scans.

The acceptance criteria of the robustness layer:

* a sharded scan under a seeded worker-kill / worker-hang plan
  completes via pool self-healing and is bit-identical — hits, tie
  order, ``corrupted_redone`` — to the fault-free serial scan;
* a deadline-expired scan returns a typed
  :class:`~repro.search.PartialResult` whose merged prefix matches the
  serial scan of exactly that prefix;
* ``resume()`` from a scan journal reproduces the uninterrupted run bit
  for bit.
"""

from __future__ import annotations

import time
from itertools import islice

import numpy as np
import pytest

from repro.db import SequenceDatabase
from repro.db.synthetic import SyntheticSwissProt
from repro.exceptions import (
    DeadlineExceeded,
    ParallelError,
    PipelineError,
    ServiceOverloaded,
)
from repro.faults import Deadline, FaultInjector, FaultPlan
from repro.metrics import MetricsRegistry
from repro.scoring import get_matrix
from repro.search import (
    PartialResult,
    ScanJournal,
    ScanState,
    SearchOptions,
    SearchRequest,
    ShardedStreamingSearch,
    StreamingSearch,
)
from repro.service import SearchService

QUERY = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ"


@pytest.fixture(scope="module")
def db() -> SequenceDatabase:
    return SyntheticSwissProt(seed=23).generate(scale=0.0006)


def hit_tuples(result):
    return [(h.score, h.index, h.header, h.length) for h in result.hits]


def record_stream(db, n=None):
    pairs = zip(db.headers, db.sequences)
    return islice(pairs, n) if n is not None else pairs


def stalling_stream(db, stall_after, sleep_seconds):
    """The database stream, wedged mid-way (for deadline expiry)."""
    for i, item in enumerate(zip(db.headers, db.sequences)):
        if i == stall_after:
            time.sleep(sleep_seconds)
        yield item


class CrashedStream(RuntimeError):
    """Simulates the driver process dying mid-scan."""


def crashing_stream(db, crash_after):
    for i, item in enumerate(zip(db.headers, db.sequences)):
        if i == crash_after:
            raise CrashedStream(f"stream died at record {i}")
        yield item


# ---------------------------------------------------------------------------
# chaos: the pool survives worker deaths and hangs, bit-identically
# ---------------------------------------------------------------------------
class TestSelfHealingPool:
    def test_worker_kill_heals_and_stays_bit_identical(self, db):
        # Chunk 2 kills its worker on *every* attempt (explicit poison
        # unit), so the pool must heal repeatedly and finally quarantine
        # the chunk and reclaim it inline.  Corruption redo accounting
        # must still replay the serial scan exactly.
        plan = FaultPlan(
            seed=99, corrupt_rate=0.3, worker_kill_units=(2,)
        )
        opts = SearchOptions(
            chunk_size=16, top_k=8, injector=FaultInjector(plan)
        )
        serial = StreamingSearch(opts).search_database(QUERY, db)
        assert serial.corrupted_redone > 0

        registry = MetricsRegistry()
        with ShardedStreamingSearch(
            opts, workers=2, shard_records=64, metrics=registry,
        ) as sharded:
            par = sharded.search_database(QUERY, db)

        assert hit_tuples(par) == hit_tuples(serial)
        assert par.sequences_scanned == serial.sequences_scanned
        assert par.cells == serial.cells
        assert par.chunks == serial.chunks
        assert par.corrupted_redone == serial.corrupted_redone
        snap = registry.snapshot()
        assert snap["pool.heal.count"] >= 1
        assert snap["pool.heal.quarantined"] >= 1
        assert snap["pool.heal.resubmitted"] >= 1

    def test_worker_hang_detected_and_healed(self, db):
        # Chunk 1 wedges far past the watchdog; the collect loop must
        # declare the pool hung, heal it, and reclaim the lost chunks
        # (poison_threshold=1 quarantines them immediately — no second
        # hang wave).
        plan = FaultPlan(
            seed=5, worker_hang_units=(1,), worker_hang_seconds=30.0
        )
        opts = SearchOptions(
            chunk_size=16, top_k=6, injector=FaultInjector(plan)
        )
        serial = StreamingSearch(opts).search_database(QUERY, db)

        registry = MetricsRegistry()
        with ShardedStreamingSearch(
            opts, workers=2, shard_records=64, metrics=registry,
            chunk_timeout=0.75, poison_threshold=1,
        ) as sharded:
            par = sharded.search_database(QUERY, db)

        assert hit_tuples(par) == hit_tuples(serial)
        assert par.corrupted_redone == serial.corrupted_redone
        snap = registry.snapshot()
        assert snap["pool.heal.count"] >= 1
        assert snap["pool.heal.quarantined"] >= 1

    def test_mixed_kill_and_hang_plan(self, db):
        plan = FaultPlan(
            seed=7, corrupt_rate=0.2,
            worker_kill_units=(0,), worker_hang_units=(3,),
            worker_hang_seconds=30.0,
        )
        opts = SearchOptions(
            chunk_size=16, top_k=7, injector=FaultInjector(plan)
        )
        serial = StreamingSearch(opts).search_database(QUERY, db)
        with ShardedStreamingSearch(
            opts, workers=2, shard_records=64,
            chunk_timeout=0.75, poison_threshold=2,
        ) as sharded:
            par = sharded.search_database(QUERY, db)
        assert hit_tuples(par) == hit_tuples(serial)
        assert par.corrupted_redone == serial.corrupted_redone

    def test_heal_budget_exhaustion_raises(self, db):
        # With a zero heal budget the first worker death must surface
        # as ParallelError instead of looping forever.
        plan = FaultPlan(seed=1, worker_kill_units=(0,))
        opts = SearchOptions(
            chunk_size=16, top_k=5, injector=FaultInjector(plan)
        )
        with ShardedStreamingSearch(
            opts, workers=2, shard_records=64, max_heals=0,
        ) as sharded:
            with pytest.raises(ParallelError, match="heal budget"):
                sharded.search_database(QUERY, db)

    def test_worker_exception_carries_pid_and_chunk(self):
        # A non-library exception inside a worker is re-wrapped there
        # with the worker pid and chunk id in the message — __cause__
        # does not survive the result pickle, so the context must.
        from repro.parallel import ProcessPoolBackend
        from repro.parallel.worker import ChunkTask, EngineConfig
        from repro.scoring import GapModel

        with ProcessPoolBackend(None, workers=1) as backend:
            task = ChunkTask(
                chunk_id=5,
                kind="stream",
                query=np.zeros(4, dtype=np.uint8),
                matrix=get_matrix("BLOSUM62"),
                gaps=GapModel(10, 2),
                engine=EngineConfig(lanes=4),
                seqs=("this is not an encoded sequence",),
            )
            with pytest.raises(ParallelError, match=r"chunk 5 .*worker pid"):
                backend.submit_tasks([task])


# ---------------------------------------------------------------------------
# deadlines: typed partial results whose prefix matches serial
# ---------------------------------------------------------------------------
class TestDeadlines:
    def prefix_matches_serial(self, db, partial, opts):
        """The contract: hits == serial scan of the merged prefix."""
        n = partial.sequences_scanned
        if n == 0:
            assert partial.hits == []
            return
        clean = SearchOptions(
            chunk_size=opts.chunk_size, top_k=opts.top_k
        )
        serial = StreamingSearch(clean).search_records(
            QUERY, record_stream(db, n)
        )
        assert hit_tuples(partial) == hit_tuples(serial)

    def test_serial_scan_returns_partial_result(self, db):
        stall = min(150, len(db) // 2)
        opts = SearchOptions(
            chunk_size=16, top_k=6, deadline=Deadline.after(0.5)
        )
        result = StreamingSearch(opts).search_records(
            QUERY, stalling_stream(db, stall, 1.5),
            total_records=len(db),
        )
        assert isinstance(result, PartialResult)
        assert result.sequences_scanned < len(db)
        assert result.provenance["partial"] is True
        assert result.completion() == pytest.approx(
            result.sequences_scanned / len(db)
        )
        assert "PARTIAL" in result.summary()
        self.prefix_matches_serial(db, result, opts)

    def test_sharded_scan_returns_partial_result(self, db):
        stall = min(150, len(db) // 2)
        opts = SearchOptions(
            chunk_size=16, top_k=6, deadline=Deadline.after(0.5)
        )
        registry = MetricsRegistry()
        with ShardedStreamingSearch(
            opts, workers=2, shard_records=64, metrics=registry,
        ) as sharded:
            result = sharded.search_records(
                QUERY, stalling_stream(db, stall, 1.5),
                total_records=len(db),
            )
        assert isinstance(result, PartialResult)
        assert result.sequences_scanned < len(db)
        # Whole shards only: the merged prefix is shard-aligned.
        assert result.sequences_scanned == result.shards_merged * 64 or (
            result.sequences_scanned < 64 * (result.shards_merged + 1)
        )
        self.prefix_matches_serial(db, result, opts)
        assert registry.snapshot()["deadline.partial"] == 1

    def test_pool_collect_raises_deadline_exceeded(self):
        from repro.parallel import ProcessPoolBackend
        from repro.parallel.worker import ChunkTask, EngineConfig
        from repro.scoring import GapModel

        expired = Deadline(expires_at=time.time() - 1.0)
        with ProcessPoolBackend(None, workers=1) as backend:
            task = ChunkTask(
                chunk_id=0,
                kind="stream",
                query=np.zeros(4, dtype=np.uint8),
                matrix=get_matrix("BLOSUM62"),
                gaps=GapModel(10, 2),
                engine=EngineConfig(lanes=4),
                seqs=(np.zeros(8, dtype=np.uint8),),
            )
            with pytest.raises(DeadlineExceeded):
                backend.submit_tasks([task], deadline=expired)

    def test_pipeline_search_respects_deadline(self, db):
        from repro.search import SearchPipeline

        small = db.subset(np.arange(12), name="tiny")
        expired = Deadline(expires_at=time.time() - 1.0)
        pipe = SearchPipeline(SearchOptions(top_k=3, deadline=expired))
        with pytest.raises(DeadlineExceeded):
            pipe.search(QUERY, small)

    def test_generous_deadline_changes_nothing(self, db):
        opts = SearchOptions(chunk_size=16, top_k=6)
        serial = StreamingSearch(opts).search_database(QUERY, db)
        roomy = SearchOptions(
            chunk_size=16, top_k=6, deadline=Deadline.after(3600.0)
        )
        result = StreamingSearch(roomy).search_database(QUERY, db)
        assert not isinstance(result, PartialResult)
        assert hit_tuples(result) == hit_tuples(serial)


# ---------------------------------------------------------------------------
# resumable scans: journal -> bit-identical continuation
# ---------------------------------------------------------------------------
class TestResumableScans:
    def test_crash_then_resume_is_bit_identical(self, db, tmp_path):
        journal = tmp_path / "scan.journal"
        plan = FaultPlan(seed=1234, corrupt_rate=0.3)
        opts = SearchOptions(
            chunk_size=16, top_k=7, injector=FaultInjector(plan)
        )
        serial = StreamingSearch(opts).search_database(QUERY, db)
        assert serial.corrupted_redone > 0

        crash_after = min(200, len(db) - 30)
        registry = MetricsRegistry()
        with ShardedStreamingSearch(
            opts, workers=2, shard_records=64,
            journal=journal, metrics=registry,
        ) as sharded:
            with pytest.raises(CrashedStream):
                sharded.search_records(
                    QUERY, crashing_stream(db, crash_after),
                    database_name=db.name,
                )
            assert journal.exists()
            resumed = sharded.resume(
                QUERY, record_stream(db),
                database_name=db.name, total_records=len(db),
            )

        assert hit_tuples(resumed) == hit_tuples(serial)
        assert resumed.sequences_scanned == serial.sequences_scanned
        assert resumed.cells == serial.cells
        assert resumed.chunks == serial.chunks
        assert resumed.corrupted_redone == serial.corrupted_redone
        # A completed scan removes its journal.
        assert not journal.exists()
        snap = registry.snapshot()
        assert snap["resume.loaded"] == 1
        assert snap["resume.records_skipped"] > 0

    def test_deadline_partial_then_resume_completes(self, db, tmp_path):
        journal = tmp_path / "deadline.journal"
        opts = SearchOptions(chunk_size=16, top_k=6)
        serial = StreamingSearch(opts).search_database(QUERY, db)

        stall = min(150, len(db) // 2)
        bounded = SearchOptions(
            chunk_size=16, top_k=6, deadline=Deadline.after(0.5)
        )
        with ShardedStreamingSearch(
            bounded, workers=2, shard_records=64, journal=journal,
        ) as sharded:
            partial = sharded.search_records(
                QUERY, stalling_stream(db, stall, 1.5),
                database_name=db.name,
            )
        assert isinstance(partial, PartialResult)
        assert partial.journal_path == str(journal)

        with ShardedStreamingSearch(
            opts, workers=2, shard_records=64, journal=journal,
        ) as fresh:
            resumed = fresh.resume(
                QUERY, record_stream(db), database_name=db.name,
            )
        assert hit_tuples(resumed) == hit_tuples(serial)
        assert resumed.sequences_scanned == serial.sequences_scanned
        assert resumed.corrupted_redone == serial.corrupted_redone

    def test_mismatched_journal_is_ignored(self, db, tmp_path):
        journal = tmp_path / "other.journal"
        opts = SearchOptions(chunk_size=16, top_k=5)
        with ShardedStreamingSearch(
            opts, workers=2, shard_records=64, journal=journal,
        ) as sharded:
            with pytest.raises(CrashedStream):
                sharded.search_records(
                    QUERY, crashing_stream(db, 200),
                    database_name=db.name,
                )
            assert journal.exists()
            # A different query produces a different fingerprint: the
            # journal must be ignored and the scan start from zero.
            registry = MetricsRegistry()
            sharded.metrics = registry
            other = sharded.resume(
                QUERY + "WWWW", record_stream(db),
                database_name=db.name,
            )
        serial = StreamingSearch(opts).search_database(QUERY + "WWWW", db)
        assert hit_tuples(other) == hit_tuples(serial)
        assert registry.snapshot().get("resume.loaded", 0) == 0

    def test_short_stream_for_journal_rejected(self, db, tmp_path):
        journal = tmp_path / "short.journal"
        opts = SearchOptions(chunk_size=16, top_k=5)
        with ShardedStreamingSearch(
            opts, workers=2, shard_records=64, journal=journal,
        ) as sharded:
            with pytest.raises(CrashedStream):
                sharded.search_records(
                    QUERY, crashing_stream(db, 200),
                    database_name=db.name,
                )
            with pytest.raises(PipelineError, match="wrong stream"):
                sharded.resume(
                    QUERY, record_stream(db, 10),
                    database_name=db.name,
                )

    def test_wrong_content_stream_rejected_on_resume(self, db, tmp_path):
        # Same record count, same database_name, same parameters — but
        # different content.  The fingerprint cannot see the stream's
        # bytes, so the chained prefix checksum must catch it.
        journal = tmp_path / "content.journal"
        opts = SearchOptions(chunk_size=16, top_k=5)
        crash_after = min(200, len(db) - 30)
        with ShardedStreamingSearch(
            opts, workers=2, shard_records=64, journal=journal,
        ) as sharded:
            with pytest.raises(CrashedStream):
                sharded.search_records(
                    QUERY, crashing_stream(db, crash_after),
                    database_name=db.name,
                )
            assert journal.exists()

            def tampered_stream():
                for i, item in enumerate(zip(db.headers, db.sequences)):
                    if i == 0:
                        yield (item[0] + "-tampered", item[1])
                    else:
                        yield item

            with pytest.raises(PipelineError, match="prefix checksum"):
                sharded.resume(
                    QUERY, tampered_stream(), database_name=db.name,
                )

    def test_resume_requires_journal(self):
        search = ShardedStreamingSearch(SearchOptions(), workers=2)
        with pytest.raises(PipelineError, match="journal"):
            search.resume(QUERY, iter([]))


class TestScanJournal:
    def test_save_load_round_trip(self, tmp_path):
        journal = ScanJournal(tmp_path / "j.json")
        state = ScanState(
            records_done=128, shards_merged=2, scanned=128,
            cells=999, chunks=8, corrupted_redone=3,
            prefix_digest="ab" * 16,
            heap=[[17, -5, {
                "index": 5, "header": "sp|X|Y", "length": 40, "score": 17,
            }]],
        )
        journal.save("fp", state)
        loaded = journal.load("fp")
        assert loaded is not None
        assert loaded.records_done == 128
        assert loaded.corrupted_redone == 3
        assert loaded.prefix_digest == "ab" * 16
        (score, neg_idx, hit), = loaded.heap_entries()
        assert (score, neg_idx) == (17, -5)
        assert hit.index == 5 and hit.score == 17

    def test_wrong_fingerprint_means_absent(self, tmp_path):
        journal = ScanJournal(tmp_path / "j.json")
        journal.save("fp-a", ScanState(records_done=64))
        assert journal.load("fp-b") is None

    def test_corrupt_or_missing_file_means_absent(self, tmp_path):
        journal = ScanJournal(tmp_path / "j.json")
        assert journal.load("fp") is None
        journal.path.write_text("{not json")
        assert journal.load("fp") is None
        journal.path.write_text("[1, 2]")
        assert journal.load("fp") is None

    def test_version_mismatch_means_absent(self, tmp_path):
        import json

        journal = ScanJournal(tmp_path / "j.json")
        journal.save("fp", ScanState(records_done=64))
        payload = json.loads(journal.path.read_text())
        payload["version"] = 999
        journal.path.write_text(json.dumps(payload))
        assert journal.load("fp") is None

    def test_clear_is_idempotent(self, tmp_path):
        journal = ScanJournal(tmp_path / "j.json")
        journal.clear()
        journal.save("fp", ScanState())
        journal.clear()
        journal.clear()
        assert not journal.exists

    def test_fingerprint_keys_every_parameter(self):
        q = np.arange(8, dtype=np.uint8)
        base = dict(
            database_name="db", top_k=5, chunk_size=16,
            max_residues=1000, max_records=None,
        )
        fp = ScanJournal.fingerprint(q, **base)
        assert fp == ScanJournal.fingerprint(q, **base)
        assert fp != ScanJournal.fingerprint(q[:-1], **base)
        for key, other in [
            ("database_name", "db2"), ("top_k", 6),
            ("chunk_size", 32), ("max_residues", 2000),
            ("max_records", 64),
        ]:
            assert fp != ScanJournal.fingerprint(q, **{**base, key: other})

    def test_fingerprint_keys_scoring_config_and_fault_plan(self):
        # Matrix, gap model, alphabet and fault plan all shape scores
        # and redo accounting — each must change the fingerprint.
        from repro.alphabet import DNA, PROTEIN
        from repro.scoring import GapModel, get_matrix

        q = np.arange(8, dtype=np.uint8)
        base = dict(
            database_name="db", top_k=5, chunk_size=16,
            max_residues=1000, max_records=None,
            matrix=get_matrix("BLOSUM62"), gaps=GapModel(10, 2),
            alphabet=PROTEIN, plan=None,
        )
        fp = ScanJournal.fingerprint(q, **base)
        assert fp == ScanJournal.fingerprint(q, **base)
        for key, other in [
            ("matrix", get_matrix("BLOSUM50")),
            ("matrix", None),
            ("gaps", GapModel(11, 1)),
            ("gaps", None),
            ("alphabet", DNA),
            ("alphabet", None),
            ("plan", FaultPlan(seed=3, corrupt_rate=0.5)),
        ]:
            assert fp != ScanJournal.fingerprint(q, **{**base, key: other})
        # Two different plans differ from each other, not just from None.
        a = ScanJournal.fingerprint(
            q, **{**base, "plan": FaultPlan(seed=3, corrupt_rate=0.5)}
        )
        b = ScanJournal.fingerprint(
            q, **{**base, "plan": FaultPlan(seed=4, corrupt_rate=0.5)}
        )
        assert a != b

    def test_chain_record_digest_is_order_and_framing_sensitive(self):
        from repro.search.journal import chain_record_digest

        a = np.array([1, 2, 3], dtype=np.uint8)
        b = np.array([4, 5], dtype=np.uint8)
        d1 = chain_record_digest(chain_record_digest("", "h1", a), "h2", b)
        d2 = chain_record_digest(chain_record_digest("", "h2", b), "h1", a)
        assert d1 != d2  # order matters
        # Moving bytes between header and sequence cannot collide.
        assert chain_record_digest("", "ab", a) != \
            chain_record_digest("", "a", np.insert(a, 0, ord("b")))


# ---------------------------------------------------------------------------
# service: per-request deadlines and admission control
# ---------------------------------------------------------------------------
class TestServiceResilience:
    def test_admission_cap_sheds_whole_batch(self, db):
        small = db.subset(np.arange(10), name="small")
        registry = MetricsRegistry()
        with SearchService(
            SearchOptions(top_k=3), max_queue_depth=1, metrics=registry,
        ) as service:
            reqs = [SearchRequest(query=QUERY, name=f"q{k}") for k in range(3)]
            with pytest.raises(ServiceOverloaded, match="admission cap"):
                service.run(reqs, small)
        assert registry.snapshot()["service.load_shed"] == 1

    def test_admission_cap_admits_at_the_bound(self, db):
        small = db.subset(np.arange(10), name="small")
        with SearchService(
            SearchOptions(top_k=3), max_queue_depth=2,
        ) as service:
            batch = service.run(
                [SearchRequest(query=QUERY, name=f"q{k}") for k in range(2)],
                small,
            )
        assert len(batch) == 2

    def test_invalid_queue_depth_rejected(self):
        with pytest.raises(PipelineError, match="max_queue_depth"):
            SearchService(max_queue_depth=0)

    def test_per_request_deadline_scopes_to_one_request(self, db):
        small = db.subset(np.arange(10), name="small")
        expired = Deadline(expires_at=time.time() - 1.0)
        with SearchService(SearchOptions(top_k=3)) as service:
            with pytest.raises(DeadlineExceeded):
                service.search(
                    SearchRequest(query=QUERY, deadline=expired), small
                )
            # The expired deadline must not leak into later requests.
            outcome = service.search(SearchRequest(query=QUERY), small)
        assert outcome.best_score() >= 0

    def test_deadline_does_not_leak_into_lazy_sharded_driver(self, db):
        # The sharded driver is created lazily on the first sharded
        # request; when that request carries a deadline, the driver is
        # built from deadline-bearing options.  The scope exit must
        # strip it, or every later deadline-free request through the
        # driver would see a stale, eventually-expired deadline and
        # silently truncate.
        with SearchService(
            SearchOptions(top_k=3, chunk_size=16),
            executor="sharded", workers=2, shard_residues=1000,
        ) as service:
            first = service.search(
                SearchRequest(query=QUERY, deadline=Deadline.after(600.0)),
                db,
            )
            assert first.best_score() >= 0
            sharded = service._stream._sharded
            assert sharded is not None, "request did not take the sharded route"
            assert sharded.options.deadline is None
            # A later deadline-free request scans the whole database.
            full = service.search(SearchRequest(query=QUERY), db)
        assert not isinstance(full, PartialResult)
        assert full.sequences_scanned == len(db)


class TestKernelRegression:
    """Fault healing and deadline prefixes are kernel-independent.

    Streaming fault units are *chunk indices*, which do not depend on
    lane packing — so a seeded chaos plan scored by the numpy kernel
    must replay the python-kernel scan rank for rank, including the
    corruption-redo count.  Likewise a deadline-expired numpy scan's
    merged prefix must equal the python-kernel serial scan of exactly
    that prefix.
    """

    def test_seeded_fault_plan_rank_identical_across_kernels(self, db):
        plan = FaultPlan(seed=99, corrupt_rate=0.3, worker_kill_units=(2,))

        def opts(kernel):
            return SearchOptions(
                chunk_size=16, top_k=8, kernel=kernel,
                injector=FaultInjector(FaultPlan(
                    seed=plan.seed, corrupt_rate=plan.corrupt_rate,
                    worker_kill_units=plan.worker_kill_units,
                )),
            )

        ref = StreamingSearch(opts("python")).search_database(QUERY, db)
        assert ref.corrupted_redone > 0  # the plan really fires
        serial = StreamingSearch(opts("numpy")).search_database(QUERY, db)
        assert hit_tuples(serial) == hit_tuples(ref)
        assert serial.cells == ref.cells
        assert serial.corrupted_redone == ref.corrupted_redone
        with ShardedStreamingSearch(
            opts("numpy"), workers=2, shard_records=64,
        ) as sharded:
            par = sharded.search_database(QUERY, db)
        assert hit_tuples(par) == hit_tuples(ref)
        assert par.sequences_scanned == ref.sequences_scanned
        assert par.corrupted_redone == ref.corrupted_redone

    def test_deadline_prefix_matches_python_kernel(self, db):
        stall = min(150, len(db) // 2)
        opts = SearchOptions(
            chunk_size=16, top_k=6, kernel="numpy",
            deadline=Deadline.after(0.5),
        )
        partial = StreamingSearch(opts).search_records(
            QUERY, stalling_stream(db, stall, 1.5),
            total_records=len(db),
        )
        assert isinstance(partial, PartialResult)
        n = partial.sequences_scanned
        assert 0 < n < len(db)
        clean = SearchOptions(chunk_size=16, top_k=6, kernel="python")
        serial = StreamingSearch(clean).search_records(
            QUERY, record_stream(db, n)
        )
        assert hit_tuples(partial) == hit_tuples(serial)


class TestPoisonAttribution:
    def test_completion_resets_chunk_failure_counter(self):
        # Losses charged while co-resident with a culprit chunk must
        # not accumulate across heals: once a chunk completes, its
        # failure counter is wiped and it cannot drift into quarantine.
        from repro.parallel import ProcessPoolBackend
        from repro.parallel.worker import ChunkTask, EngineConfig
        from repro.scoring import GapModel, get_matrix

        with ProcessPoolBackend(None, workers=1) as backend:
            backend._chunk_failures[0] = 2  # two prior charged losses
            task = ChunkTask(
                chunk_id=0,
                kind="stream",
                query=np.zeros(4, dtype=np.uint8),
                matrix=get_matrix("BLOSUM62"),
                gaps=GapModel(10, 2),
                engine=EngineConfig(lanes=4),
                seqs=(np.zeros(8, dtype=np.uint8),),
            )
            backend.submit_tasks([task])
            assert 0 not in backend._chunk_failures
            assert backend.quarantined == []

    def test_terminate_pool_degrades_without_process_handles(self):
        # If CPython ever renames ProcessPoolExecutor._processes, the
        # teardown must fall back to a plain non-blocking shutdown and
        # record the degradation instead of silently doing nothing.
        from repro.parallel import ProcessPoolBackend

        calls = {}

        class OpaquePool:
            def shutdown(self, wait=True, cancel_futures=False):
                calls["shutdown"] = (wait, cancel_futures)

        registry = MetricsRegistry()
        with ProcessPoolBackend(None, workers=1, metrics=registry) as backend:
            backend._terminate_pool(OpaquePool())
        assert calls["shutdown"] == (False, True)
        assert registry.snapshot()["pool.terminate.opaque"] == 1
