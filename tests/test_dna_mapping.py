"""DNA / generic-alphabet support: the read-mapping building blocks."""

import numpy as np

from repro.alphabet import DNA
from repro.core import get_engine
from repro.core.banded import BandedEngine
from repro.heuristic import KmerWordCoder
from repro.scoring import GapModel, match_mismatch_matrix

MATRIX = match_mismatch_matrix(2, -3, alphabet=DNA)
GAPS = GapModel(5, 2)


class TestDnaAlphabet:
    def test_encode_decode(self):
        codes = DNA.encode("acgtn")
        assert DNA.decode(codes) == "ACGTN"

    def test_engines_accept_dna(self, rng):
        a = rng.integers(0, 4, 30).astype(np.uint8)
        b = rng.integers(0, 4, 30).astype(np.uint8)
        for name in ("scalar", "scan", "diagonal", "striped", "intertask"):
            eng = get_engine(name, alphabet=DNA)
            score = eng.score_pair(a, b, MATRIX, GAPS).score
            assert score >= 0

    def test_all_dna_engines_agree(self, rng):
        ref = get_engine("scalar", alphabet=DNA)
        for _ in range(8):
            a = rng.integers(0, 4, int(rng.integers(5, 40))).astype(np.uint8)
            b = rng.integers(0, 4, int(rng.integers(5, 40))).astype(np.uint8)
            expect = ref.score_pair(a, b, MATRIX, GAPS).score
            for name in ("scan", "diagonal", "intertask"):
                eng = get_engine(name, alphabet=DNA)
                assert eng.score_pair(a, b, MATRIX, GAPS).score == expect

    def test_kmer_coder_over_dna(self, rng):
        coder = KmerWordCoder(11, DNA)
        seq = rng.integers(0, 4, 50).astype(np.uint8)
        words = coder.words_of(seq)
        assert len(words) == 40
        assert np.array_equal(coder.decode(int(words[7])), seq[7:18])


class TestSeededMapping:
    def test_planted_read_maps_to_true_locus(self, rng):
        # End-to-end miniature of examples/read_mapping.py.
        reference = rng.integers(0, 4, 5000).astype(np.uint8)
        true_pos = 3210
        read = reference[true_pos : true_pos + 80].copy()
        read[10] = (read[10] + 1) % 4  # one substitution
        k = 15
        coder = KmerWordCoder(k, DNA)
        index: dict[int, list[int]] = {}
        for pos, word in enumerate(coder.words_of(reference)):
            index.setdefault(int(word), []).append(pos)
        # Seed with the first error-free k-mer of the read.
        words = coder.words_of(read)
        hit = None
        for off in range(len(words)):
            candidates = index.get(int(words[off]), [])
            if candidates:
                hit = (off, candidates[0])
                break
        assert hit is not None
        q_off, r_pos = hit
        w0 = max(0, r_pos - q_off - 8)
        window = reference[w0 : w0 + len(read) + 16]
        engine = BandedEngine(alphabet=DNA, width=8)
        result = engine.score_pair(read, window, MATRIX, GAPS)
        est = w0 + result.end_db - result.end_query
        assert abs(est - true_pos) <= 8
        # 79 matches, 1 mismatch.
        assert result.score == 79 * 2 - 3
