"""Unit tests for the synthetic Swiss-Prot generator and the query set."""

import numpy as np
import pytest

from repro.db import PAPER_QUERIES, SWISSPROT_2013_11, SyntheticSwissProt, make_query_set
from repro.db.queries import QuerySpec
from repro.db.synthetic import ROBINSON_FREQUENCIES, SwissProtProfile
from repro.exceptions import DatabaseError


class TestProfile:
    def test_paper_envelope(self):
        # Section V-B: 192,480,382 aa in 541,561 sequences, max 35,213.
        assert SWISSPROT_2013_11.sequences == 541_561
        assert SWISSPROT_2013_11.total_residues == 192_480_382
        assert SWISSPROT_2013_11.max_length == 35_213
        assert 350 < SWISSPROT_2013_11.mean_length < 360

    def test_scaled_envelope(self):
        s = SWISSPROT_2013_11.scaled(0.001)
        assert s.sequences == round(541_561 * 0.001)
        assert abs(s.total_residues - 192_480) <= 1

    def test_invalid_scale(self):
        with pytest.raises(DatabaseError):
            SWISSPROT_2013_11.scaled(0.0)

    def test_invalid_profile(self):
        with pytest.raises(DatabaseError):
            SwissProtProfile("bad", sequences=0, total_residues=0, max_length=10)


class TestLengths:
    def test_full_scale_exact_totals(self):
        lengths = SyntheticSwissProt().lengths()
        assert len(lengths) == 541_561
        assert int(lengths.sum()) == 192_480_382
        assert int(lengths.max()) == 35_213
        assert int(lengths.min()) >= SWISSPROT_2013_11.min_length

    def test_deterministic_in_seed(self):
        a = SyntheticSwissProt(seed=1).lengths(scale=0.001)
        b = SyntheticSwissProt(seed=1).lengths(scale=0.001)
        c = SyntheticSwissProt(seed=2).lengths(scale=0.001)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_scaled_totals_exact(self):
        lengths = SyntheticSwissProt().lengths(scale=0.003)
        prof = SWISSPROT_2013_11.scaled(0.003)
        assert int(lengths.sum()) == prof.total_residues
        assert len(lengths) == prof.sequences

    def test_distribution_shape(self):
        # Lognormal-ish: median well below mean (right-skewed).
        lengths = SyntheticSwissProt().lengths(scale=0.01)
        assert np.median(lengths) < lengths.mean()


class TestGenerate:
    def test_small_database_statistics(self):
        db = SyntheticSwissProt().generate(scale=0.0002)
        prof = SWISSPROT_2013_11.scaled(0.0002)
        assert len(db) == prof.sequences
        assert db.total_residues == prof.total_residues

    def test_generation_deterministic(self):
        a = SyntheticSwissProt(seed=5).generate(scale=0.0001)
        b = SyntheticSwissProt(seed=5).generate(scale=0.0001)
        assert all(np.array_equal(x, y) for x, y in zip(a.sequences, b.sequences))

    def test_not_pre_sorted(self):
        # The paper's pre-sort step must have work to do.
        db = SyntheticSwissProt().generate(scale=0.0005)
        lengths = db.lengths
        assert not np.array_equal(lengths, np.sort(lengths))

    def test_residue_composition_close_to_background(self):
        db = SyntheticSwissProt().generate(scale=0.001)
        counts = np.zeros(20)
        for s in db.sequences:
            counts += np.bincount(s, minlength=24)[:20]
        freqs = counts / counts.sum()
        expect = ROBINSON_FREQUENCIES / ROBINSON_FREQUENCIES.sum()
        assert np.abs(freqs - expect).max() < 0.01

    def test_headers_carry_lengths(self):
        db = SyntheticSwissProt().generate(scale=0.0001)
        for h, s in zip(db.headers, db.sequences):
            assert f"length={len(s)}" in h


class TestQueries:
    def test_twenty_queries_with_paper_range(self):
        # Section V-B: 20 queries "ranging in length from 144 to 5478".
        assert len(PAPER_QUERIES) == 20
        assert PAPER_QUERIES[0].length == 144
        assert PAPER_QUERIES[-1].length == 5478
        lengths = [q.length for q in PAPER_QUERIES]
        assert lengths == sorted(lengths)

    def test_paper_accessions_present(self):
        accs = {q.accession for q in PAPER_QUERIES}
        # The accessions listed in Section V-B.
        assert {"P02232", "P01008", "Q9UKN1", "P0C6B8", "Q7TMA5"} <= accs

    def test_make_query_set_lengths(self):
        qs = make_query_set()
        for spec in PAPER_QUERIES:
            assert len(qs[spec.accession]) == spec.length

    def test_query_set_deterministic(self):
        a = make_query_set(seed=3)
        b = make_query_set(seed=3)
        assert all(np.array_equal(a[k], b[k]) for k in a)

    def test_invalid_spec(self):
        with pytest.raises(DatabaseError):
            QuerySpec("X", 0)
