"""Exporter tests: Prometheus text, statsd UDP deltas, JSONL round-trip.

The exporters are pure functions of ``MetricsRegistry.snapshot()`` (plus
the delta state a statsd push needs), so these tests pin the *wire
formats* exactly: golden Prometheus exposition lines, real datagrams
captured off a loopback UDP socket, and byte-stable JSONL records.
"""

import json
import math
import socket

import pytest

from repro.metrics import (
    MetricsRegistry,
    StatsdEmitter,
    append_jsonl_snapshot,
    read_jsonl_snapshots,
    to_prometheus,
)


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.increment("serve.requests", 3)
    reg.set_gauge("pool.workers", 2.0)
    timer = reg.timer("serve.request.seconds")
    for ms in (10, 20, 30, 40):
        timer.observe(ms / 1000.0)
    return reg


class TestPrometheus:
    def test_counter_golden_lines(self, registry):
        text = to_prometheus(registry)
        assert "# HELP repro_serve_requests_total serve.requests (counter)" \
            in text
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 3" in text.splitlines()

    def test_gauge_golden_lines(self, registry):
        lines = to_prometheus(registry).splitlines()
        assert "# TYPE repro_pool_workers gauge" in lines
        assert "repro_pool_workers 2.0" in lines

    def test_summary_has_quantiles_sum_and_count(self, registry):
        lines = to_prometheus(registry).splitlines()
        assert "# TYPE repro_serve_request_seconds summary" in lines
        for q in ("0.5", "0.95", "0.99"):
            assert any(
                line.startswith(f'repro_serve_request_seconds{{quantile="{q}"}} ')
                for line in lines
            ), f"missing quantile {q}"
        assert "repro_serve_request_seconds_count 4" in lines
        total = next(
            line for line in lines
            if line.startswith("repro_serve_request_seconds_sum ")
        )
        assert math.isclose(float(total.split()[-1]), 0.1)

    def test_families_sorted_and_newline_terminated(self, registry):
        text = to_prometheus(registry)
        assert text.endswith("\n")
        samples = [
            line.split()[0].split("{")[0]
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        # pool.workers < serve.request.seconds < serve.requests
        assert samples == sorted(samples, key=samples.index)
        first = [s for s in samples if s.startswith("repro_pool")]
        assert samples.index(first[0]) == 0

    def test_name_mangling_and_digit_guard(self):
        text = to_prometheus({"weird-name/x": 1}, namespace="")
        assert "weird_name_x_total 1" in text
        assert to_prometheus({"9lives": 2}, namespace="").startswith(
            "# HELP _9lives_total"
        )

    def test_empty_registry_renders_empty_string(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_live_server_content_negotiation(self):
        import urllib.request

        from repro.db import SyntheticSwissProt
        from repro.serve import SearchClient, SearchServer

        db = SyntheticSwissProt().generate(scale=0.0001)
        with SearchServer(db, metrics=MetricsRegistry()) as srv:
            SearchClient(srv.url, metrics=MetricsRegistry()).search(
                "MKVLILACLVALALA"
            )
            req = urllib.request.Request(
                f"{srv.url}/v1/metrics", headers={"Accept": "text/plain"}
            )
            with urllib.request.urlopen(req, timeout=10.0) as resp:
                assert resp.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                body = resp.read().decode("utf-8")
            assert "repro_serve_requests_total" in body
            # Without the Accept header the JSON envelope is unchanged.
            with urllib.request.urlopen(
                f"{srv.url}/v1/metrics", timeout=10.0
            ) as resp:
                assert resp.headers["Content-Type"].startswith(
                    "application/json"
                )
                doc = json.loads(resp.read())
            assert doc["kind"] == "metrics"


def _capture_socket():
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.bind(("127.0.0.1", 0))
    sock.settimeout(2.0)
    return sock


class TestStatsd:
    def test_counters_are_deltas_across_flushes(self, registry):
        with _capture_socket() as sink:
            port = sink.getsockname()[1]
            emitter = StatsdEmitter(registry, port=port, interval=60.0)
            assert emitter.flush() >= 1
            first = sink.recv(65535).decode("utf-8").splitlines()
            assert "repro.serve.requests:3|c" in first
            assert "repro.pool.workers:2|g" in first
            assert "repro.serve.request.seconds.count:4|c" in first
            assert any(
                line.startswith("repro.serve.request.seconds.p95:")
                for line in first
            )

            # Second flush: counters unchanged -> no counter line at all,
            # gauges re-sent every time.
            registry.increment("serve.requests", 2)
            emitter.flush()
            second = sink.recv(65535).decode("utf-8").splitlines()
            assert "repro.serve.requests:2|c" in second
            assert "repro.serve.request.seconds.count" not in "\n".join(second)
            assert "repro.pool.workers:2|g" in second
            emitter.stop()

    def test_datagram_packing_respects_budget(self, registry):
        for i in range(200):
            registry.increment(f"bulk.counter.{i:03d}")
        with _capture_socket() as sink:
            emitter = StatsdEmitter(
                registry, port=sink.getsockname()[1], max_datagram=256,
            )
            sent = emitter.flush()
            assert sent > 1
            for _ in range(sent):
                datagram = sink.recv(65535)
                assert len(datagram) <= 256
                for line in datagram.decode("utf-8").splitlines():
                    assert line.count(":") == 1 and "|" in line
            emitter.stop()

    def test_dead_endpoint_never_raises(self, registry):
        # Closed port: sends either vanish or surface as OSError -> counted.
        emitter = StatsdEmitter(registry, port=1)  # restricted port
        emitter.flush()
        emitter.stop()

    def test_periodic_thread_flushes(self, registry):
        with _capture_socket() as sink:
            with StatsdEmitter(
                registry, port=sink.getsockname()[1], interval=0.05,
            ) as emitter:
                datagram = sink.recv(65535)
                assert b"repro.serve.requests:3|c" in datagram
            assert emitter.flushes >= 1

    def test_invalid_parameters_rejected(self, registry):
        with pytest.raises(ValueError, match="interval"):
            StatsdEmitter(registry, interval=0)
        with pytest.raises(ValueError, match="max_datagram"):
            StatsdEmitter(registry, max_datagram=10)


class TestJsonl:
    def test_append_and_read_round_trip(self, registry, tmp_path):
        path = tmp_path / "metrics.jsonl"
        first = append_jsonl_snapshot(registry, path, timestamp=100.0)
        registry.increment("serve.requests")
        second = append_jsonl_snapshot(registry, path, timestamp=200.0)
        records = read_jsonl_snapshots(path)
        assert records == [first, second]
        assert records[0]["ts"] == 100.0
        assert records[0]["metrics"]["serve.requests"] == 3
        assert records[1]["metrics"]["serve.requests"] == 4

    def test_records_have_sorted_keys(self, registry, tmp_path):
        path = tmp_path / "metrics.jsonl"
        append_jsonl_snapshot(registry, path, timestamp=1.0)
        raw = path.read_text(encoding="utf-8").strip()
        assert raw == json.dumps(json.loads(raw), sort_keys=True)
        names = list(json.loads(raw)["metrics"])
        assert names == sorted(names)

    def test_prefix_filter(self, registry, tmp_path):
        path = tmp_path / "serve.jsonl"
        record = append_jsonl_snapshot(
            registry, path, prefix="serve", timestamp=1.0
        )
        assert set(record["metrics"]) == {
            "serve.requests", "serve.request.seconds",
        }
