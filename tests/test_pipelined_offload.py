"""Tests for the transfer/compute overlap pipeline."""

import pytest

from repro.exceptions import OffloadError
from repro.runtime import PCIE_GEN2_X16
from repro.runtime.pipelined import PipelinedOffload


@pytest.fixture
def offload():
    return PipelinedOffload(PCIE_GEN2_X16)


GB = 1_000_000_000


class TestSchedule:
    def test_single_chunk_equals_naive(self, offload):
        s = offload.schedule(GB, compute_seconds=2.0, chunks=1)
        assert s.pipelined_seconds == pytest.approx(s.naive_seconds)

    def test_overlap_never_slower_when_setup_free(self):
        from repro.runtime.pcie import PCIeLink

        free_setup = PipelinedOffload(
            PCIeLink("ideal", effective_gbytes_per_s=6.0, setup_seconds=0.0)
        )
        for chunks in (1, 2, 8, 32):
            s = free_setup.schedule(GB, compute_seconds=2.0, chunks=chunks)
            assert s.pipelined_seconds <= s.naive_seconds + 1e-12

    def test_compute_bound_hides_almost_all_transfer(self, offload):
        # Compute 10x the wire time: only the first chunk's transfer is
        # exposed.
        wire = PCIE_GEN2_X16.transfer_seconds(GB)
        s = offload.schedule(GB, compute_seconds=10 * wire, chunks=16)
        assert s.exposed_transfer_fraction < 0.15
        assert s.pipelined_seconds == pytest.approx(
            10 * wire + s.transfer_seconds / 16, rel=0.05
        )

    def test_transfer_bound_cannot_hide_wire(self, offload):
        # Compute much faster than the wire: the wire dominates and the
        # pipeline saves only the (small) compute overlap.
        wire = PCIE_GEN2_X16.transfer_seconds(GB)
        s = offload.schedule(GB, compute_seconds=wire / 10, chunks=16)
        assert s.pipelined_seconds >= s.transfer_seconds
        assert s.exposed_transfer_fraction > 0.8

    def test_makespan_lower_bound(self, offload):
        s = offload.schedule(GB, compute_seconds=1.0, chunks=8)
        assert s.pipelined_seconds >= max(s.compute_seconds,
                                          s.transfer_seconds)

    def test_savings_accounting(self, offload):
        s = offload.schedule(GB, compute_seconds=2.0, chunks=8)
        assert s.savings_seconds == pytest.approx(
            s.naive_seconds - s.pipelined_seconds
        )
        assert s.savings_seconds > 0

    def test_invalid_inputs(self, offload):
        with pytest.raises(OffloadError):
            offload.schedule(-1, 1.0)
        with pytest.raises(OffloadError):
            offload.schedule(GB, -1.0)
        with pytest.raises(OffloadError):
            offload.schedule(GB, 1.0, chunks=0)
        with pytest.raises(OffloadError):
            PipelinedOffload(launch_seconds=-1.0)


class TestBestChunkCount:
    def test_optimum_beats_extremes(self, offload):
        wire = PCIE_GEN2_X16.transfer_seconds(GB)
        best = offload.best_chunk_count(GB, compute_seconds=2 * wire)
        one = offload.schedule(GB, 2 * wire, chunks=1)
        assert best.pipelined_seconds <= one.pipelined_seconds

    def test_setup_latency_penalises_tiny_chunks(self):
        from repro.runtime.pcie import PCIeLink

        laggy = PipelinedOffload(
            PCIeLink("laggy", effective_gbytes_per_s=6.0, setup_seconds=0.05)
        )
        few = laggy.schedule(GB, compute_seconds=0.3, chunks=4)
        many = laggy.schedule(GB, compute_seconds=0.3, chunks=64)
        assert few.pipelined_seconds < many.pipelined_seconds

    def test_empty_candidates_rejected(self, offload):
        with pytest.raises(OffloadError):
            offload.best_chunk_count(GB, 1.0, candidates=())

    def test_swissprot_scale_scenario(self, offload):
        # The paper's actual numbers: 192 MB database, ~5.5 s of Phi
        # compute for the shortest query at 34.9 GCUPS... transfer is
        # already small, and pipelining makes it negligible.
        total_bytes = 192_480_382
        compute = 144 * 192_480_382 / 34.9e9
        best = offload.best_chunk_count(total_bytes, compute)
        assert best.exposed_transfer_fraction < 0.2
        assert best.pipelined_seconds < offload.schedule(
            total_bytes, compute, chunks=1
        ).pipelined_seconds
