"""White-box tests of the performance-model internals."""

import pytest

from repro.db import SyntheticSwissProt
from repro.devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
from repro.perfmodel import DevicePerformanceModel, RunConfig, Workload


@pytest.fixture(scope="module")
def xeon():
    return DevicePerformanceModel(XEON_E5_2670_DUAL)


@pytest.fixture(scope="module")
def phi():
    return DevicePerformanceModel(XEON_PHI_57XX)


@pytest.fixture(scope="module")
def wl():
    return Workload.from_lengths(
        SyntheticSwissProt().lengths(scale=0.02), 16
    )


class TestCyclesPerCell:
    def test_intrinsic_cheapest(self, xeon, phi):
        for model in (xeon, phi):
            intr = model.cycles_per_cell("intrinsic", "sequence")
            simd = model.cycles_per_cell("simd", "sequence")
            novec = model.cycles_per_cell("novec", "sequence")
            assert intr < simd < novec

    def test_qp_costs_more_cycles(self, xeon, phi):
        for model in (xeon, phi):
            assert (
                model.cycles_per_cell("intrinsic", "query")
                > model.cycles_per_cell("intrinsic", "sequence")
            )

    def test_phi_gather_cpi_applied(self, phi):
        # With gather CPI ~8, the QP penalty exceeds the raw instruction
        # difference.
        qp = phi.cycles_per_cell("intrinsic", "query")
        sp = phi.cycles_per_cell("intrinsic", "sequence")
        assert qp - sp > 0.3

    def test_core_rate_inverse_of_cycles(self, xeon):
        cpc = xeon.cycles_per_cell("intrinsic", "sequence")
        rate = xeon.core_rate("intrinsic", "sequence")
        assert rate == pytest.approx(xeon.spec.clock_ghz * 1e9 / cpc)


class TestScheduleEfficiencyCache:
    def test_cache_hit_returns_same_object(self, xeon, wl):
        a = xeon.schedule_efficiency(wl, 16)
        b = xeon.schedule_efficiency(wl, 16)
        assert a == b
        assert (wl.fingerprint, 16, list(xeon._sched_cache)[0][2]) in [
            k for k in xeon._sched_cache
        ] or len(xeon._sched_cache) >= 1

    def test_different_threads_different_entries(self, xeon, wl):
        xeon.schedule_efficiency(wl, 4)
        xeon.schedule_efficiency(wl, 8)
        keys = {k[1] for k in xeon._sched_cache if k[0] == wl.fingerprint}
        assert {4, 8} <= keys

    def test_efficiency_in_unit_interval(self, xeon, wl):
        for t in (1, 4, 32):
            eff = xeon.schedule_efficiency(wl, t)
            assert 0 < eff <= 1.0


class TestCacheFactor:
    def test_blocked_at_least_unblocked(self, phi, wl):
        for threads in (60, 240):
            blocked = phi.cache_factor(wl, threads, blocking=True)
            unblocked = phi.cache_factor(wl, threads, blocking=False)
            assert blocked >= unblocked

    def test_factor_bounded(self, phi, wl):
        f = phi.cache_factor(wl, 240, blocking=False)
        assert 1.0 / phi.cal.miss_stall_factor <= f <= 1.0

    def test_more_resident_threads_never_help_cache(self, phi, wl):
        one = phi.cache_factor(wl, 60, blocking=False)
        four = phi.cache_factor(wl, 240, blocking=False)
        assert four <= one

    def test_qp_smaller_working_set(self, phi, wl):
        # QP keeps only one profile row hot; SP keeps 24 planes.
        qp = phi.cache_factor(wl, 240, blocking=False, profile="query")
        sp = phi.cache_factor(wl, 240, blocking=False, profile="sequence")
        assert qp >= sp


class TestRunSeconds:
    def test_fixed_overhead_additive(self, xeon, wl):
        cfg = RunConfig()
        t1 = xeon.run_seconds(wl, 100, cfg)
        t2 = xeon.run_seconds(wl, 200, cfg)
        # Compute scales linearly with query length; fixed part cancels.
        compute1 = t1 - xeon.cal.fixed_run_seconds
        compute2 = t2 - xeon.cal.fixed_run_seconds
        assert compute2 == pytest.approx(2 * compute1, rel=1e-6)

    def test_gcups_below_rate_ceiling(self, xeon, wl):
        cfg = RunConfig()
        g = xeon.gcups(wl, 1000, cfg)
        ceiling = xeon.rate(wl, cfg) / 1e9
        assert g < ceiling

    def test_threads_default_is_max(self, xeon, wl):
        explicit = xeon.gcups(wl, 500, RunConfig(threads=32))
        default = xeon.gcups(wl, 500, RunConfig(threads=None))
        assert explicit == default


class TestOffloadTimingComposition:
    def test_start_at_shifts_completion(self):
        from repro.runtime import OffloadRegion, PCIE_GEN2_X16

        region = OffloadRegion(PCIE_GEN2_X16)
        base = region.run_async(compute_seconds=1.0)
        shifted = region.run_async(start_at=5.0, compute_seconds=1.0)
        assert shifted.ready_at == pytest.approx(base.ready_at + 5.0)

    def test_in_and_out_both_charged(self):
        from repro.runtime import OffloadRegion, PCIE_GEN2_X16

        region = OffloadRegion(PCIE_GEN2_X16)
        nbytes = 600_000_000
        both = region.run_async(in_bytes=nbytes, out_bytes=nbytes)
        one = region.run_async(in_bytes=nbytes)
        assert both.ready_at == pytest.approx(
            one.ready_at + PCIE_GEN2_X16.transfer_seconds(nbytes)
        )


class TestRoofline:
    def test_points_structurally_sound(self, phi, wl):
        from repro.perfmodel.roofline import roofline_analysis

        for p in roofline_analysis(phi, wl):
            assert p.ops_per_cell > 0
            assert p.bytes_per_cell >= 0
            assert p.attainable_cells_per_s <= p.compute_roof_cells_per_s
            assert p.bound in ("compute", "bandwidth")

    def test_blocked_is_compute_bound(self, phi, wl):
        from repro.perfmodel import RunConfig
        from repro.perfmodel.roofline import roofline_analysis

        (p,) = roofline_analysis(
            phi, wl, configs=[RunConfig(blocking=True)]
        )
        assert p.bound == "compute"
        assert p.intensity == float("inf") or p.intensity > 10

    def test_novec_rejected(self, phi, wl):
        from repro.exceptions import ModelError
        from repro.perfmodel import RunConfig
        from repro.perfmodel.roofline import roofline_analysis

        with pytest.raises(ModelError):
            roofline_analysis(
                phi, wl, configs=[RunConfig(vectorization="novec")]
            )
