"""CLI failure paths: wrong inputs exit non-zero with one clean line.

Every failure mode a scripted caller can hit — missing files, malformed
fault plans, expired deadlines — must produce a non-zero exit status and
a single ``error:`` line on stderr, never a traceback.
"""

from __future__ import annotations

import pytest

from repro.alphabet import PROTEIN
from repro.cli import main
from repro.db import SyntheticSwissProt, write_fasta
from repro.db.fasta import FastaRecord

QUERY = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ"


@pytest.fixture(scope="module")
def fasta_path(tmp_path_factory):
    db = SyntheticSwissProt(seed=29).generate(scale=0.0003)
    records = [
        FastaRecord(h, PROTEIN.decode(s))
        for h, s in zip(db.headers, db.sequences)
    ]
    path = tmp_path_factory.mktemp("clifail") / "db.fasta"
    write_fasta(records, path)
    return str(path)


def assert_clean_failure(capsys, code, expect_code=1):
    """Non-zero exit, one-line error on stderr, no traceback."""
    captured = capsys.readouterr()
    assert code == expect_code
    err_lines = [ln for ln in captured.err.splitlines() if ln]
    assert len(err_lines) == 1
    assert err_lines[0].startswith("error:")
    assert "Traceback" not in captured.err
    return captured


class TestStreamFailures:
    def test_nonexistent_fasta(self, capsys, tmp_path):
        code = main([
            "stream", "--query", QUERY,
            "--db-fasta", str(tmp_path / "does-not-exist.fasta"),
        ])
        assert_clean_failure(capsys, code)

    def test_malformed_fault_plan(self, capsys, fasta_path):
        code = main([
            "stream", "--query", QUERY, "--db-fasta", fasta_path,
            "--fault-plan", "explode=1.0",
        ])
        captured = assert_clean_failure(capsys, code)
        assert "fault-plan" in captured.err

    def test_fault_plan_value_not_a_number(self, capsys, fasta_path):
        code = main([
            "stream", "--query", QUERY, "--db-fasta", fasta_path,
            "--fault-plan", "worker-kill=lots",
        ])
        assert_clean_failure(capsys, code)

    def test_deadline_expired_exits_nonzero(self, capsys, fasta_path):
        # A microscopic budget expires before the first chunk: the scan
        # reports the (empty) partial result and exits 1.
        code = main([
            "stream", "--query", QUERY, "--db-fasta", fasta_path,
            "--deadline", "0.000001",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "deadline expired" in captured.err
        assert "Traceback" not in captured.err
        assert "PARTIAL" in captured.out

    def test_negative_deadline_rejected(self, capsys, fasta_path):
        code = main([
            "stream", "--query", QUERY, "--db-fasta", fasta_path,
            "--deadline", "-5",
        ])
        assert_clean_failure(capsys, code, expect_code=2)

    def test_resume_without_journal_rejected(self, capsys, fasta_path):
        code = main([
            "stream", "--query", QUERY, "--db-fasta", fasta_path,
            "--resume",
        ])
        captured = assert_clean_failure(capsys, code, expect_code=2)
        assert "--journal" in captured.err

    def test_journal_needs_workers(self, capsys, fasta_path, tmp_path):
        code = main([
            "stream", "--query", QUERY, "--db-fasta", fasta_path,
            "--journal", str(tmp_path / "j.json"),
        ])
        captured = assert_clean_failure(capsys, code, expect_code=2)
        assert "--workers" in captured.err

    def test_missing_query_rejected(self, capsys, fasta_path):
        code = main(["stream", "--db-fasta", fasta_path])
        assert_clean_failure(capsys, code, expect_code=2)


class TestSearchFailures:
    def test_nonexistent_query_fasta(self, capsys, tmp_path):
        code = main([
            "search", "--query-fasta", str(tmp_path / "nope.fasta"),
            "--synthetic-scale", "0.0001",
        ])
        assert_clean_failure(capsys, code)

    def test_unknown_matrix(self, capsys):
        code = main([
            "search", "--query", QUERY,
            "--synthetic-scale", "0.0001", "--matrix", "BLOSUM999",
        ])
        assert_clean_failure(capsys, code)


class TestStreamResilienceFlags:
    """The happy paths of the new flags drive the real machinery."""

    def test_deadline_roomy_scan_completes(self, capsys, fasta_path):
        code = main([
            "stream", "--query", QUERY, "--db-fasta", fasta_path,
            "--deadline", "3600",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "PARTIAL" not in captured.out

    def test_chaos_scan_matches_clean_scan(self, capsys, fasta_path):
        code = main([
            "stream", "--query", QUERY, "--db-fasta", fasta_path,
            "--workers", "2", "--chunk-size", "32",
        ])
        clean = capsys.readouterr()
        assert code == 0
        code = main([
            "stream", "--query", QUERY, "--db-fasta", fasta_path,
            "--workers", "2", "--chunk-size", "32",
            "--fault-plan", "seed=3,kill-units=1",
        ])
        chaos = capsys.readouterr()
        assert code == 0
        ranks = lambda out: [  # noqa: E731
            ln for ln in out.splitlines() if ln.strip().startswith("#")
        ]
        assert ranks(chaos.out) == ranks(clean.out)
        assert ranks(clean.out)  # the scan actually ranked hits
