"""Cross-engine agreement and per-engine behaviour.

The scalar engine is the oracle; every vectorised engine must produce
identical scores on every input.  Parametrised across engines so a
regression in any one kernel is localised immediately.
"""

import numpy as np
import pytest

from repro.core import available_engines, get_engine, sw_score
from repro.core.engine import as_codes
from repro.exceptions import EngineError, SequenceError
from repro.scoring import BLOSUM62, GapModel, match_mismatch_matrix, paper_gap_model
from tests.conftest import random_protein

VECTOR_ENGINES = ["scan", "diagonal", "striped", "intertask"]
MM = match_mismatch_matrix(5, -4)


@pytest.fixture(scope="module")
def oracle():
    return get_engine("scalar")


class TestRegistry:
    def test_all_engines_registered(self):
        assert set(available_engines()) >= {
            "scalar", "scan", "diagonal", "striped", "intertask"
        }

    def test_unknown_engine(self):
        with pytest.raises(EngineError, match="unknown engine"):
            get_engine("quantum")

    def test_engine_kwargs_forwarded(self):
        eng = get_engine("intertask", lanes=16, profile="query")
        assert eng.lanes == 16

    def test_sw_score_defaults_to_paper_config(self):
        # BLOSUM62 with gaps 10/2: identical tryptophans score 11 each.
        assert sw_score("WWW", "WWW") == 33


@pytest.mark.parametrize("name", VECTOR_ENGINES)
class TestAgreementWithScalar:
    def test_random_pairs(self, name, oracle, rng):
        eng = get_engine(name)
        g = paper_gap_model()
        for _ in range(25):
            a = random_protein(rng, int(rng.integers(1, 60)))
            b = random_protein(rng, int(rng.integers(1, 60)))
            assert (
                eng.score_pair(a, b, BLOSUM62, g).score
                == oracle.score_pair(a, b, BLOSUM62, g).score
            ), (a, b)

    def test_extreme_length_ratio(self, name, oracle, rng):
        eng = get_engine(name)
        g = paper_gap_model()
        a = random_protein(rng, 3)
        b = random_protein(rng, 200)
        assert (
            eng.score_pair(a, b, BLOSUM62, g).score
            == oracle.score_pair(a, b, BLOSUM62, g).score
        )
        assert (
            eng.score_pair(b, a, BLOSUM62, g).score
            == oracle.score_pair(b, a, BLOSUM62, g).score
        )

    def test_gap_heavy_optimum(self, name, oracle):
        # Low gap costs force the optimum through long gap runs — the
        # regime that stresses E/F propagation (and striped's lazy-F).
        g = GapModel(1, 1)
        a = "AAAATTTTCCCC"
        b = "AAAAGGGGTTTTGGGGCCCC"
        assert (
            get_engine(name).score_pair(a, b, MM, g).score
            == oracle.score_pair(a, b, MM, g).score
        )

    def test_single_residues(self, name, oracle):
        g = paper_gap_model()
        for a, b in (("A", "A"), ("A", "V"), ("W", "C")):
            assert (
                get_engine(name).score_pair(a, b, BLOSUM62, g).score
                == oracle.score_pair(a, b, BLOSUM62, g).score
            )

    def test_ambiguity_codes(self, name, oracle):
        g = paper_gap_model()
        a, b = "MKXBZLV", "MKWBZIV"
        assert (
            get_engine(name).score_pair(a, b, BLOSUM62, g).score
            == oracle.score_pair(a, b, BLOSUM62, g).score
        )

    def test_score_batch_matches_pairwise(self, name, oracle, rng):
        eng = get_engine(name)
        g = paper_gap_model()
        q = random_protein(rng, 25)
        seqs = [random_protein(rng, int(rng.integers(1, 50))) for _ in range(11)]
        batch = eng.score_batch(q, seqs, BLOSUM62, g)
        expect = [oracle.score_pair(q, s, BLOSUM62, g).score for s in seqs]
        assert list(batch.scores) == expect
        assert batch.cells == sum(25 * len(s) for s in seqs)


class TestInputValidation:
    @pytest.mark.parametrize("name", ["scalar"] + VECTOR_ENGINES)
    def test_empty_rejected(self, name):
        with pytest.raises(SequenceError):
            get_engine(name).score_pair("", "ACD", BLOSUM62, paper_gap_model())

    def test_as_codes_rejects_2d(self):
        with pytest.raises(SequenceError, match="1-D"):
            as_codes(np.zeros((2, 2), dtype=np.uint8))

    def test_as_codes_rejects_out_of_range(self):
        with pytest.raises(SequenceError, match="out of range"):
            as_codes(np.array([0, 99], dtype=np.uint8))

    def test_as_codes_accepts_wider_ints(self):
        codes = as_codes(np.array([0, 5, 19], dtype=np.int64))
        assert codes.dtype == np.uint8

    def test_as_codes_rejects_floats(self):
        with pytest.raises(SequenceError, match="integers"):
            as_codes(np.array([0.0, 1.0]))

    def test_wrong_alphabet_matrix_rejected(self):
        from repro.alphabet import Alphabet

        dna = Alphabet("ACGTN", wildcard="N")
        eng = get_engine("scan", alphabet=dna)
        with pytest.raises(EngineError, match="different alphabet"):
            eng.score_pair("ACGT", "ACGT", BLOSUM62, paper_gap_model())


class TestEndPositions:
    @pytest.mark.parametrize("name", ["scalar", "scan", "diagonal"])
    def test_end_position_is_argmax(self, name, rng):
        from repro.core.scalar import full_dp_matrices

        g = paper_gap_model()
        q = rng.integers(0, 20, 20).astype(np.uint8)
        d = rng.integers(0, 20, 30).astype(np.uint8)
        res = get_engine(name).score_pair(q, d, BLOSUM62, g)
        H, _, _ = full_dp_matrices(q, d, BLOSUM62, g)
        assert H[res.end_query, res.end_db] == res.score
