"""Unit tests for the blocking policy helpers and result types."""

import numpy as np
import pytest

from repro.core.blocking import choose_block_cols, working_set_bytes
from repro.core.types import AlignmentResult, BatchResult, CellCounter
from repro.exceptions import EngineError


class TestWorkingSet:
    def test_sp_mode_counts_alphabet_planes(self):
        sp = working_set_bytes(10, 8, profile="sequence")
        qp = working_set_bytes(10, 8, profile="query")
        assert sp == (4 + 24) * 10 * 8 * 4
        assert qp == (4 + 1) * 10 * 8 * 4
        assert sp > qp

    def test_scales_linearly_in_cols_and_lanes(self):
        assert working_set_bytes(20, 8) == 2 * working_set_bytes(10, 8)
        assert working_set_bytes(10, 16) == 2 * working_set_bytes(10, 8)

    def test_element_bytes(self):
        assert working_set_bytes(10, 8, element_bytes=2) == working_set_bytes(10, 8) // 2

    def test_invalid_inputs(self):
        with pytest.raises(EngineError):
            working_set_bytes(0, 8)
        with pytest.raises(EngineError):
            working_set_bytes(8, 0)


class TestChooseBlockCols:
    def test_fits_the_budget(self):
        cache = 512 * 1024
        cols = choose_block_cols(cache, 16, occupancy=0.5, min_cols=1)
        assert working_set_bytes(cols, 16) <= cache * 0.5
        # And one more column would not fit.
        assert working_set_bytes(cols + 1, 16) > cache * 0.5

    def test_floor_at_min_cols(self):
        assert choose_block_cols(1024, 16, min_cols=64) == 64

    def test_larger_cache_larger_tiles(self):
        small = choose_block_cols(128 * 1024, 8)
        large = choose_block_cols(2 * 1024 * 1024, 8)
        assert large > small

    def test_invalid_occupancy(self):
        with pytest.raises(EngineError):
            choose_block_cols(1024, 8, occupancy=0.0)
        with pytest.raises(EngineError):
            choose_block_cols(1024, 8, occupancy=1.5)

    def test_invalid_cache(self):
        with pytest.raises(EngineError):
            choose_block_cols(0, 8)


class TestAlignmentResult:
    def test_negative_score_rejected(self):
        with pytest.raises(ValueError):
            AlignmentResult(score=-1)

    def test_defaults(self):
        r = AlignmentResult(score=0)
        assert (r.end_query, r.end_db, r.cells) == (0, 0, 0)


class TestBatchResult:
    def test_scores_coerced_to_int64(self):
        b = BatchResult(scores=[1, 2, 3], cells=10)
        assert b.scores.dtype == np.int64
        assert len(b) == 3

    def test_saturated_default_empty(self):
        assert BatchResult(scores=[1], cells=1).saturated == []


class TestCellCounter:
    def test_accumulates(self):
        c = CellCounter()
        c.add(10, 20)
        c.add(5, 5)
        assert c.cells == 225
        assert c.alignments == 2

    def test_merge(self):
        a, b = CellCounter(), CellCounter()
        a.add(2, 2)
        b.add(3, 3)
        a.merge(b)
        assert c_total(a) == (13, 2)

    def test_reset(self):
        c = CellCounter()
        c.add(4, 4)
        c.reset()
        assert (c.cells, c.alignments) == (0, 0)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            CellCounter().add(0, 5)


def c_total(c: CellCounter) -> tuple[int, int]:
    return c.cells, c.alignments
