"""Randomised-options fuzz over the public search entrypoints.

Builds a few hundred random-but-valid :class:`SearchOptions` and drives
them through the entrypoints built on :mod:`repro.search.api` —
:class:`SearchPipeline` and :class:`SearchService` — asserting that no
combination crashes and every outcome satisfies the
:class:`SearchOutcome` protocol and its basic invariants.

The quick variant runs in the tier-1 lane; the exhaustive sweep is
marked ``slow`` (deselect with ``-m "not slow"``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alphabet import PROTEIN
from repro.db.database import SequenceDatabase
from repro.faults.injection import FaultInjector, FaultPlan
from repro.scoring import GapModel, get_matrix
from repro.search import (
    SearchOptions,
    SearchOutcome,
    SearchPipeline,
    SearchRequest,
)
from repro.service import SearchService
from tests.conftest import random_protein

MATRIX_NAMES = (
    "BLOSUM45", "BLOSUM50", "BLOSUM62", "BLOSUM80", "BLOSUM90",
    "PAM30", "PAM70", "PAM250",
)
SCHEDULES = ("static", "dynamic", "guided")
PROFILES = ("sequence", "query")


def random_options(rng: np.random.Generator) -> SearchOptions:
    """A random but always-valid SearchOptions."""
    kwargs: dict = {
        "profile": PROFILES[int(rng.integers(len(PROFILES)))],
        "schedule": SCHEDULES[int(rng.integers(len(SCHEDULES)))],
        "threads": int(rng.integers(1, 9)),
        "top_k": int(rng.integers(1, 13)),
        "chunk_size": int(rng.integers(1, 128)),
    }
    if rng.random() < 0.75:
        kwargs["matrix"] = get_matrix(
            MATRIX_NAMES[int(rng.integers(len(MATRIX_NAMES)))]
        )
    if rng.random() < 0.75:
        kwargs["gaps"] = GapModel(
            int(rng.integers(1, 16)), int(rng.integers(1, 5))
        )
    if rng.random() < 0.75:
        kwargs["lanes"] = int(rng.integers(1, 17))
    if rng.random() < 0.5:
        kwargs["kernel"] = ("python", "numpy")[int(rng.integers(2))]
    if rng.random() < 0.25:
        kwargs["injector"] = FaultInjector(FaultPlan(
            seed=int(rng.integers(10_000)),
            corrupt_rate=float(rng.random() * 0.4),
        ))
    return SearchOptions(**kwargs)


def random_database(rng: np.random.Generator) -> SequenceDatabase:
    n = int(rng.integers(1, 14))
    seqs = [random_protein(rng, int(k)) for k in rng.integers(1, 36, n)]
    return SequenceDatabase(
        "fuzz-db", [PROTEIN.encode(s) for s in seqs],
        [f"f{i}" for i in range(n)],
    )


def check_outcome(outcome, db: SequenceDatabase, opts: SearchOptions) -> None:
    """The SearchOutcome protocol plus its basic invariants."""
    assert isinstance(outcome, SearchOutcome)
    assert outcome.best_score() >= 0
    assert outcome.gcups >= 0.0
    assert dict(outcome.provenance)  # non-empty mapping
    hits = list(outcome.hits)
    assert len(hits) <= max(opts.top_k, len(db))
    scores = [h.score for h in hits]
    assert scores == sorted(scores, reverse=True)
    if hits:
        assert outcome.best_score() == hits[0].score
    result = getattr(outcome, "result", outcome)
    if hasattr(result, "scores"):
        assert len(result.scores) == len(db)
        assert outcome.best_score() == int(result.scores.max())


def run_pipeline_case(rng: np.random.Generator) -> None:
    opts = random_options(rng)
    db = random_database(rng)
    query = random_protein(rng, int(rng.integers(1, 30)))
    outcome = SearchPipeline(opts).search(query, db)
    check_outcome(outcome, db, opts)


def run_service_case(rng: np.random.Generator) -> None:
    opts = random_options(rng)
    db = random_database(rng)
    scheduler = ("local", "static", "queue")[int(rng.integers(3))]
    requests = [
        SearchRequest(
            query=random_protein(rng, int(rng.integers(1, 26))),
            name=f"q{k}",
            top_k=int(rng.integers(0, 8)) or None,
        )
        for k in range(int(rng.integers(1, 4)))
    ]
    service = SearchService(opts, scheduler=scheduler)
    batch = service.run(requests, db)
    assert len(batch) == len(requests)
    for outcome in batch.outcomes:
        check_outcome(outcome, db, opts)
    # The batch aggregate itself honours the protocol.
    assert isinstance(batch, SearchOutcome)


def test_fuzz_pipeline_quick():
    rng = np.random.default_rng(0xF0221)
    for _ in range(45):
        run_pipeline_case(rng)


def test_fuzz_service_quick():
    rng = np.random.default_rng(0xF0222)
    for _ in range(12):
        run_service_case(rng)


@pytest.mark.slow
def test_fuzz_pipeline_exhaustive():
    rng = np.random.default_rng(0xF0223)
    for _ in range(220):
        run_pipeline_case(rng)


@pytest.mark.slow
def test_fuzz_service_exhaustive():
    rng = np.random.default_rng(0xF0224)
    for _ in range(60):
        run_service_case(rng)
