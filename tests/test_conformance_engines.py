"""Differential conformance: every engine computes identical scores.

The registered engines (scalar, diagonal, striped, scan, intertask) and
the banded engine with a band covering the whole matrix all implement
the same local-alignment recurrences (paper Eq. 6); on any input their
scores must agree exactly.  The scalar engine is the reference — it is
the most literal transcription of the recurrences — and everything else
is checked against it over a seeded grid of random databases, queries,
substitution matrices and gap models, plus the awkward edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alphabet import PROTEIN
from repro.core.banded import BandedEngine
from repro.core.engine import available_engines, get_engine
from repro.scoring import GapModel, get_matrix
from tests.conftest import random_protein

MATRIX_NAMES = ("BLOSUM62", "BLOSUM50", "PAM250", "PAM70")
GAP_MODELS = (GapModel(10, 2), GapModel(5, 1))
GAP_IDS = ("gaps10-2", "gaps5-1")


def reference_scores(query, seqs, matrix, gaps) -> np.ndarray:
    """Scalar-engine scores: the conformance ground truth."""
    return get_engine("scalar", PROTEIN).score_batch(
        query, seqs, matrix, gaps
    ).scores


def assert_all_engines_agree(query, seqs, matrix, gaps) -> None:
    """Every registered engine (and a covering band) matches scalar."""
    ref = reference_scores(query, seqs, matrix, gaps)
    for name in available_engines():
        if name == "scalar":
            continue
        got = get_engine(name, PROTEIN).score_batch(
            query, seqs, matrix, gaps
        ).scores
        np.testing.assert_array_equal(
            got, ref,
            err_msg=f"engine {name!r} diverges from scalar "
                    f"({matrix.name}, open={gaps.open} ext={gaps.extend})",
        )
    # The banded engine is exact when the band covers the full matrix.
    longest = max((len(s) for s in seqs), default=1)
    banded = BandedEngine(PROTEIN, width=max(len(query), longest))
    got = banded.score_batch(query, seqs, matrix, gaps).scores
    np.testing.assert_array_equal(
        got, ref, err_msg="covering-band engine diverges from scalar"
    )


class TestRandomGrid:
    @pytest.mark.parametrize("matrix_name", MATRIX_NAMES)
    @pytest.mark.parametrize("gaps", GAP_MODELS, ids=GAP_IDS)
    def test_engines_agree_on_random_inputs(self, rng, matrix_name, gaps):
        matrix = get_matrix(matrix_name)
        for _ in range(2):
            seqs = [
                random_protein(rng, int(n))
                for n in rng.integers(1, 46, size=9)
            ]
            query = random_protein(rng, int(rng.integers(4, 33)))
            assert_all_engines_agree(query, seqs, matrix, gaps)

    def test_engines_agree_across_lane_widths(self, rng, blosum62, gaps):
        # Lane width only changes packing, never scores (intertask).
        seqs = [random_protein(rng, int(n)) for n in rng.integers(2, 40, 11)]
        query = random_protein(rng, 25)
        ref = reference_scores(query, seqs, blosum62, gaps)
        for lanes in (1, 3, 8, 16):
            got = get_engine("intertask", PROTEIN, lanes=lanes).score_batch(
                query, seqs, blosum62, gaps
            ).scores
            np.testing.assert_array_equal(
                got, ref, err_msg=f"intertask lanes={lanes}"
            )


class TestEdgeCases:
    def test_empty_database(self, blosum62, gaps):
        for name in available_engines():
            batch = get_engine(name, PROTEIN).score_batch(
                "ACDEFG", [], blosum62, gaps
            )
            assert batch.scores.shape == (0,), name
        banded = BandedEngine(PROTEIN, width=8)
        assert banded.score_batch("ACDEFG", [], blosum62, gaps).scores.shape \
            == (0,)

    def test_length_one_sequences(self, blosum62, gaps):
        seqs = ["A", "W", "C", "K", "A"]
        assert_all_engines_agree("A", seqs, blosum62, gaps)
        assert_all_engines_agree("WCKA", seqs, blosum62, gaps)
        # Exact single-residue match scores the diagonal matrix entry.
        scores = reference_scores("A", seqs, blosum62, gaps)
        a = PROTEIN.encode("A")[0]
        assert scores[0] == blosum62.data[a, a]

    def test_all_identical_residues(self, blosum62, gaps):
        seqs = ["L" * n for n in (1, 2, 7, 19, 40)]
        assert_all_engines_agree("L" * 12, seqs, blosum62, gaps)
        # A homopolymer alignment never gaps: score is match * overlap.
        scores = reference_scores("L" * 12, seqs, blosum62, gaps)
        ll = int(blosum62.data[PROTEIN.encode("L")[0], PROTEIN.encode("L")[0]])
        expected = [ll * min(12, n) for n in (1, 2, 7, 19, 40)]
        np.testing.assert_array_equal(scores, expected)

    @pytest.mark.parametrize("gaps", GAP_MODELS, ids=GAP_IDS)
    def test_ambiguity_codes(self, rng, blosum62, gaps):
        # X (unknown), B/Z (ambiguous) and * (stop) are real alphabet
        # members with real matrix rows; engines must not special-case
        # them.
        seqs = [
            "XXXX",
            "BZXB*",
            "AXRNX",
            "*" * 3,
            random_protein(rng, 20) + "XBZ*",
        ]
        assert_all_engines_agree("ARNXBZ*", seqs, blosum62, gaps)
        assert_all_engines_agree("XXX", seqs, blosum62, gaps)

    def test_query_of_length_one(self, rng, blosum62, gaps):
        seqs = [random_protein(rng, int(n)) for n in rng.integers(1, 30, 7)]
        assert_all_engines_agree("W", seqs, blosum62, gaps)
