"""Differential conformance: every engine computes identical scores.

The registered engines (scalar, diagonal, striped, scan, intertask,
vectorized) and the banded engine with a band covering the whole matrix
all implement the same local-alignment recurrences (paper Eq. 6); on
any input their scores must agree exactly.  The scalar engine is the
reference — it is the most literal transcription of the recurrences —
and everything else is checked against it over a seeded grid of random
databases, queries, substitution matrices and gap models, plus the
awkward edge cases.

The kernel harness (:class:`TestKernelDifferential`) additionally pins
the two ``SearchOptions.kernel`` realisations of the inter-task scheme
to each other *through the pipeline*: not just equal scores but
identical Hit ordering (including stable tie-breaks) and identical
GCUPS cell accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alphabet import PROTEIN
from repro.core.banded import BandedEngine
from repro.core.engine import available_engines, get_engine
from repro.core.vectorized import KERNEL_NAMES, make_intertask_engine
from repro.scoring import GapModel, get_matrix
from tests.conftest import random_protein

MATRIX_NAMES = ("BLOSUM62", "BLOSUM50", "PAM250", "PAM70")
GAP_MODELS = (GapModel(10, 2), GapModel(5, 1))
GAP_IDS = ("gaps10-2", "gaps5-1")


def reference_scores(query, seqs, matrix, gaps) -> np.ndarray:
    """Scalar-engine scores: the conformance ground truth."""
    return get_engine("scalar", PROTEIN).score_batch(
        query, seqs, matrix, gaps
    ).scores


def assert_all_engines_agree(query, seqs, matrix, gaps) -> None:
    """Every registered engine (and a covering band) matches scalar."""
    ref = reference_scores(query, seqs, matrix, gaps)
    for name in available_engines():
        if name == "scalar":
            continue
        got = get_engine(name, PROTEIN).score_batch(
            query, seqs, matrix, gaps
        ).scores
        np.testing.assert_array_equal(
            got, ref,
            err_msg=f"engine {name!r} diverges from scalar "
                    f"({matrix.name}, open={gaps.open} ext={gaps.extend})",
        )
    # The banded engine is exact when the band covers the full matrix.
    longest = max((len(s) for s in seqs), default=1)
    banded = BandedEngine(PROTEIN, width=max(len(query), longest))
    got = banded.score_batch(query, seqs, matrix, gaps).scores
    np.testing.assert_array_equal(
        got, ref, err_msg="covering-band engine diverges from scalar"
    )


class TestRandomGrid:
    @pytest.mark.parametrize("matrix_name", MATRIX_NAMES)
    @pytest.mark.parametrize("gaps", GAP_MODELS, ids=GAP_IDS)
    def test_engines_agree_on_random_inputs(self, rng, matrix_name, gaps):
        matrix = get_matrix(matrix_name)
        for _ in range(2):
            seqs = [
                random_protein(rng, int(n))
                for n in rng.integers(1, 46, size=9)
            ]
            query = random_protein(rng, int(rng.integers(4, 33)))
            assert_all_engines_agree(query, seqs, matrix, gaps)

    def test_engines_agree_across_lane_widths(self, rng, blosum62, gaps):
        # Lane width only changes packing, never scores (intertask).
        seqs = [random_protein(rng, int(n)) for n in rng.integers(2, 40, 11)]
        query = random_protein(rng, 25)
        ref = reference_scores(query, seqs, blosum62, gaps)
        for lanes in (1, 3, 8, 16):
            got = get_engine("intertask", PROTEIN, lanes=lanes).score_batch(
                query, seqs, blosum62, gaps
            ).scores
            np.testing.assert_array_equal(
                got, ref, err_msg=f"intertask lanes={lanes}"
            )


class TestEdgeCases:
    def test_empty_database(self, blosum62, gaps):
        for name in available_engines():
            batch = get_engine(name, PROTEIN).score_batch(
                "ACDEFG", [], blosum62, gaps
            )
            assert batch.scores.shape == (0,), name
        banded = BandedEngine(PROTEIN, width=8)
        assert banded.score_batch("ACDEFG", [], blosum62, gaps).scores.shape \
            == (0,)

    def test_length_one_sequences(self, blosum62, gaps):
        seqs = ["A", "W", "C", "K", "A"]
        assert_all_engines_agree("A", seqs, blosum62, gaps)
        assert_all_engines_agree("WCKA", seqs, blosum62, gaps)
        # Exact single-residue match scores the diagonal matrix entry.
        scores = reference_scores("A", seqs, blosum62, gaps)
        a = PROTEIN.encode("A")[0]
        assert scores[0] == blosum62.data[a, a]

    def test_all_identical_residues(self, blosum62, gaps):
        seqs = ["L" * n for n in (1, 2, 7, 19, 40)]
        assert_all_engines_agree("L" * 12, seqs, blosum62, gaps)
        # A homopolymer alignment never gaps: score is match * overlap.
        scores = reference_scores("L" * 12, seqs, blosum62, gaps)
        ll = int(blosum62.data[PROTEIN.encode("L")[0], PROTEIN.encode("L")[0]])
        expected = [ll * min(12, n) for n in (1, 2, 7, 19, 40)]
        np.testing.assert_array_equal(scores, expected)

    @pytest.mark.parametrize("gaps", GAP_MODELS, ids=GAP_IDS)
    def test_ambiguity_codes(self, rng, blosum62, gaps):
        # X (unknown), B/Z (ambiguous) and * (stop) are real alphabet
        # members with real matrix rows; engines must not special-case
        # them.
        seqs = [
            "XXXX",
            "BZXB*",
            "AXRNX",
            "*" * 3,
            random_protein(rng, 20) + "XBZ*",
        ]
        assert_all_engines_agree("ARNXBZ*", seqs, blosum62, gaps)
        assert_all_engines_agree("XXX", seqs, blosum62, gaps)

    def test_query_of_length_one(self, rng, blosum62, gaps):
        seqs = [random_protein(rng, int(n)) for n in rng.integers(1, 30, 7)]
        assert_all_engines_agree("W", seqs, blosum62, gaps)


EDGE_DATABASES = {
    "empty-ish": ["A"],
    "length-one": ["A", "W", "C", "K", "A"],
    "homopolymer": ["L" * n for n in (1, 2, 7, 19, 40)],
    "ambiguity": ["XXXX", "BZXB*", "AXRNX", "***", "ARNDCQXBZ*"],
}


class TestKernelDifferential:
    """The two SearchOptions kernels are bit-identical end to end.

    ``kernel="python"`` (InterTaskEngine) and ``kernel="numpy"``
    (VectorizedEngine) must be indistinguishable by any observable:
    scores, Hit order under score ties, and the cell counts that feed
    GCUPS.  Engine-level equality runs the full matrix/gap grid; the
    pipeline-level check exercises ranking and accounting.
    """

    @pytest.mark.parametrize("matrix_name", MATRIX_NAMES)
    @pytest.mark.parametrize("gaps", GAP_MODELS, ids=GAP_IDS)
    def test_kernels_match_scalar_on_grid(self, rng, matrix_name, gaps):
        matrix = get_matrix(matrix_name)
        seqs = [
            random_protein(rng, int(n)) for n in rng.integers(1, 60, 13)
        ]
        query = random_protein(rng, int(rng.integers(5, 40)))
        ref = reference_scores(query, seqs, matrix, gaps)
        for kernel in KERNEL_NAMES:
            got = make_intertask_engine(kernel, alphabet=PROTEIN).score_batch(
                query, seqs, matrix, gaps
            ).scores
            np.testing.assert_array_equal(
                got, ref,
                err_msg=f"kernel {kernel!r} diverges from scalar "
                        f"({matrix_name}, open={gaps.open} "
                        f"ext={gaps.extend})",
            )

    @pytest.mark.parametrize("name", sorted(EDGE_DATABASES))
    @pytest.mark.parametrize("gaps", GAP_MODELS, ids=GAP_IDS)
    def test_kernels_match_on_edge_databases(self, name, gaps, blosum62):
        seqs = EDGE_DATABASES[name]
        for query in ("W", "ARNXBZ*", "L" * 12):
            ref = reference_scores(query, seqs, blosum62, gaps)
            for kernel in KERNEL_NAMES:
                got = make_intertask_engine(
                    kernel, alphabet=PROTEIN
                ).score_batch(query, seqs, blosum62, gaps).scores
                np.testing.assert_array_equal(
                    got, ref, err_msg=f"kernel {kernel!r} on {name!r}"
                )

    def test_kernels_agree_on_empty_database(self, blosum62, gaps):
        for kernel in KERNEL_NAMES:
            batch = make_intertask_engine(
                kernel, alphabet=PROTEIN
            ).score_batch("ACDEFG", [], blosum62, gaps)
            assert batch.scores.shape == (0,), kernel
            assert batch.cells == 0, kernel

    def test_pipeline_hits_and_cells_identical(self, rng):
        # End-to-end: same DB, same query, both kernels.  Hits must
        # match pairwise — index, score, AND position in the ranking
        # (the stable argsort tie-break) — and the GCUPS denominator
        # (cells) must be identical, not merely close.
        from repro.db import SyntheticSwissProt
        from repro.search import SearchOptions, SearchPipeline

        db = SyntheticSwissProt(seed=11).generate(scale=0.0004)
        query = random_protein(rng, 48)
        results = {}
        for kernel in KERNEL_NAMES:
            results[kernel] = SearchPipeline(
                SearchOptions(kernel=kernel, top_k=25)
            ).search(query, db)
        py, vec = results["python"], results["numpy"]
        np.testing.assert_array_equal(vec.scores, py.scores)
        assert [(h.index, h.score, h.header) for h in vec.hits] \
            == [(h.index, h.score, h.header) for h in py.hits]
        assert vec.cells == py.cells
        # Score ties exist in a DB this size; the ordering check above
        # is only meaningful if some scores repeat.
        top_scores = [h.score for h in py.hits]
        assert len(set(top_scores)) < len(top_scores), \
            "workload produced no ties; grow the database"


class TestModeExactConformance:
    """``mode="exact"`` is the exhaustive path, hit for hit.

    The tiered executor only engages for ``sensitive``/``fast``; with
    ``mode="exact"`` every entry point (serial pipeline, parallel
    pipeline, streaming, sharded streaming) must produce output
    indistinguishable from the same entry point with no mode set —
    identical scores, identical Hit ranking under the stable tie-break,
    identical cell accounting.
    """

    @pytest.fixture(scope="class")
    def workload(self):
        from repro.db import SyntheticSwissProt

        rng = np.random.default_rng(0xBEEF)
        db = SyntheticSwissProt(seed=11).generate(scale=0.0004)
        query = random_protein(rng, 48)
        return query, db

    @staticmethod
    def _key(result):
        return (
            [(h.index, h.score, h.header) for h in result.hits],
            result.cells,
        )

    def test_serial_pipeline_identical(self, workload):
        from repro.search import (
            SearchOptions, SearchPipeline, TieredSearchResult,
        )

        query, db = workload
        default = SearchPipeline(SearchOptions(top_k=25)).search(query, db)
        exact = SearchPipeline(
            SearchOptions(mode="exact", top_k=25)
        ).search(query, db)
        assert not isinstance(exact, TieredSearchResult)
        assert self._key(exact) == self._key(default)
        np.testing.assert_array_equal(exact.scores, default.scores)
        # Ties must exist for the ordering comparison to bite.
        top_scores = [h.score for h in default.hits]
        assert len(set(top_scores)) < len(top_scores)

    def test_parallel_pipeline_identical(self, workload):
        from repro.search import SearchOptions, SearchPipeline

        query, db = workload
        serial = SearchPipeline(SearchOptions(top_k=25)).search(query, db)
        with SearchPipeline(
            SearchOptions(mode="exact", top_k=25), workers=2
        ) as pipe:
            parallel = pipe.search(query, db)
        assert self._key(parallel) == self._key(serial)

    def test_streaming_identical(self, workload):
        from repro.search import SearchOptions, StreamingSearch

        query, db = workload
        default = StreamingSearch(
            SearchOptions(top_k=25, chunk_size=32)
        ).search_database(query, db)
        exact = StreamingSearch(
            SearchOptions(mode="exact", top_k=25, chunk_size=32)
        ).search_database(query, db)
        assert [(h.index, h.score) for h in exact.hits] \
            == [(h.index, h.score) for h in default.hits]
        assert exact.cells == default.cells

    def test_sharded_identical(self, workload):
        from repro.search import SearchOptions, StreamingSearch

        query, db = workload
        serial = StreamingSearch(
            SearchOptions(top_k=25, chunk_size=32)
        ).search_database(query, db)
        with StreamingSearch(
            SearchOptions(mode="exact", top_k=25, chunk_size=32),
            workers=2, shard_residues=4_000,
        ) as sharded:
            result = sharded.search_database(query, db)
        assert [(h.index, h.score) for h in result.hits] \
            == [(h.index, h.score) for h in serial.hits]

    def test_tiered_modes_return_tiered_result(self, workload):
        from repro.search import (
            SearchOptions, SearchPipeline, TieredSearchResult,
        )

        query, db = workload
        for mode in ("sensitive", "fast"):
            result = SearchPipeline(
                SearchOptions(mode=mode, top_k=25)
            ).search(query, db)
            assert isinstance(result, TieredSearchResult), mode
