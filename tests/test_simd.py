"""Unit tests for the simulated SIMD substrate."""

import numpy as np
import pytest

from repro.exceptions import DeviceError
from repro.simd import (
    AVX_256, MIC_512, SCALAR_ISA, SSE_128,
    InstructionCounter, KernelConfig, VectorISA, VectorUnit,
    known_isas, sw_instruction_mix,
)


class TestISA:
    def test_lane_counts(self):
        assert AVX_256.lanes(32) == 8
        assert MIC_512.lanes(32) == 16
        assert MIC_512.lanes(16) == 32
        assert SSE_128.lanes(8) == 16
        assert SCALAR_ISA.lanes(32) == 1

    def test_paper_gather_asymmetry(self):
        # Section V-C1: "Intel's Xeon does not incorporate vector gather
        # functionality"; Section V-C2: the Phi does.
        assert not AVX_256.has_gather
        assert MIC_512.has_gather

    def test_gather_instruction_count(self):
        assert MIC_512.gather_instruction_count(32) == 1
        # Emulation: ~2 instructions per lane.
        assert AVX_256.gather_instruction_count(32) == 16

    def test_invalid_element_width(self):
        with pytest.raises(DeviceError):
            AVX_256.lanes(12)

    def test_element_wider_than_register(self):
        with pytest.raises(DeviceError):
            SCALAR_ISA.lanes(64)

    def test_invalid_register_width(self):
        with pytest.raises(DeviceError):
            VectorISA("bad", 48, has_gather=False)

    def test_known_isas(self):
        assert set(known_isas()) == {"sse", "avx", "mic", "scalar"}


class TestInstructionCounter:
    def test_tally_and_total(self):
        c = InstructionCounter()
        c.tally("add", 5)
        c.tally("max", 3)
        assert c.total == 8

    def test_unknown_class_rejected(self):
        with pytest.raises(DeviceError):
            InstructionCounter().tally("frobnicate")

    def test_negative_rejected(self):
        with pytest.raises(DeviceError):
            InstructionCounter().tally("add", -1)

    def test_merge_and_reset(self):
        a, b = InstructionCounter(), InstructionCounter()
        a.tally("add", 2)
        b.tally("add", 3)
        a.merge(b)
        assert a.counts["add"] == 5
        a.reset()
        assert a.total == 0

    def test_as_mix(self):
        c = InstructionCounter()
        c.tally("add", 100)
        mix = c.as_mix(cells=50)
        assert mix.per_cell["add"] == 2.0
        assert mix.instructions_per_cell == 2.0

    def test_mix_weighted_cycles(self):
        c = InstructionCounter()
        c.tally("add", 10)
        c.tally("gather", 10)
        mix = c.as_mix(10)
        assert mix.weighted_cycles({"gather": 10.0}) == 1.0 + 10.0

    def test_mix_invalid_cells(self):
        with pytest.raises(DeviceError):
            InstructionCounter().as_mix(0)


class TestVectorUnit:
    def test_arithmetic_is_exact(self, rng):
        vu = VectorUnit(AVX_256)
        a = rng.integers(-100, 100, 37)
        b = rng.integers(-100, 100, 37)
        assert np.array_equal(vu.add(a, b), a + b)
        assert np.array_equal(vu.max(a, b), np.maximum(a, b))
        assert np.array_equal(vu.sub(a, b), a - b)

    def test_register_counting(self):
        vu = VectorUnit(AVX_256)  # 8 lanes
        vu.add(np.zeros(17), np.zeros(17))  # ceil(17/8) = 3 registers
        # AVX integer ops are 2x128-bit micro-ops.
        assert vu.counter.counts["add"] == 6

    def test_scalar_unit_counts_per_element(self):
        vu = VectorUnit(SCALAR_ISA)
        vu.max(np.zeros(10), np.zeros(10))
        assert vu.counter.counts["max"] == 10

    def test_gather_native_vs_emulated(self):
        table = np.arange(100)
        idx = np.arange(16)
        native = VectorUnit(MIC_512)
        out = native.gather(table, idx)
        assert np.array_equal(out, idx)
        assert native.counter.counts["gather"] == 1
        emulated = VectorUnit(AVX_256)
        emulated.gather(table, idx)
        assert emulated.counter.counts["gather"] == 0
        assert emulated.counter.counts["extract"] == 16
        assert emulated.counter.counts["scalar_load"] == 16

    def test_lane_shift(self):
        vu = VectorUnit(AVX_256)
        out = vu.lane_shift(np.array([1, 2, 3]), fill=-9)
        assert list(out) == [-9, 1, 2]

    def test_running_max_exact(self, rng):
        vu = VectorUnit(MIC_512)
        a = rng.integers(-50, 50, (20, 4))
        assert np.array_equal(vu.running_max(a), np.maximum.accumulate(a, axis=0))

    def test_store_shape_mismatch(self):
        vu = VectorUnit(AVX_256)
        with pytest.raises(DeviceError):
            vu.store(np.zeros(3), np.zeros(4))

    def test_masked_select(self):
        vu = VectorUnit(MIC_512)
        out = vu.masked_select(np.array([True, False]), np.array([1, 1]), np.array([2, 2]))
        assert list(out) == [1, 2]
        assert vu.counter.counts["mask"] == 1


class TestKernelMixes:
    def test_qp_gathers_only_on_query_profile(self):
        qp = sw_instruction_mix(KernelConfig(isa=MIC_512, profile="query"))
        sp = sw_instruction_mix(KernelConfig(isa=MIC_512, profile="sequence"))
        assert qp.per_cell.get("gather", 0) > 0
        assert sp.per_cell.get("gather", 0) == 0

    def test_avx_qp_uses_shuffle_emulation(self):
        qp = sw_instruction_mix(KernelConfig(isa=AVX_256, profile="query"))
        assert qp.per_cell.get("gather", 0) == 0
        assert qp.per_cell.get("extract", 0) > 0
        assert qp.per_cell.get("scalar_load", 0) > 0

    def test_guided_issues_more_instructions(self):
        for isa in (AVX_256, MIC_512):
            simd = sw_instruction_mix(KernelConfig(isa=isa, vectorization="simd"))
            intr = sw_instruction_mix(KernelConfig(isa=isa, vectorization="intrinsic"))
            assert simd.instructions_per_cell > intr.instructions_per_cell

    def test_novec_costs_most_per_cell(self):
        novec = sw_instruction_mix(KernelConfig(isa=AVX_256, vectorization="novec"))
        intr = sw_instruction_mix(KernelConfig(isa=AVX_256, vectorization="intrinsic"))
        assert novec.instructions_per_cell > 2 * intr.instructions_per_cell

    def test_wider_registers_fewer_instructions(self):
        avx = sw_instruction_mix(KernelConfig(isa=AVX_256, profile="sequence"))
        mic = sw_instruction_mix(KernelConfig(isa=MIC_512, profile="sequence"))
        assert mic.instructions_per_cell < avx.instructions_per_cell

    def test_labels(self):
        assert KernelConfig(isa=AVX_256, vectorization="novec").label == "no-vec"
        assert KernelConfig(isa=AVX_256, vectorization="simd", profile="query").label == "simd-QP"
        assert KernelConfig(isa=MIC_512).label == "intrinsic-SP"

    def test_invalid_config(self):
        with pytest.raises(DeviceError):
            KernelConfig(isa=AVX_256, vectorization="hyper")
        with pytest.raises(DeviceError):
            KernelConfig(isa=AVX_256, profile="both")

    def test_mix_deterministic(self):
        a = sw_instruction_mix(KernelConfig(isa=MIC_512))
        b = sw_instruction_mix(KernelConfig(isa=MIC_512))
        assert a.per_cell == b.per_cell


class TestInstrumentedKernelCorrectness:
    def test_scores_match_intertask_engine(self, rng):
        from repro.core import InterTaskEngine, build_lane_groups
        from repro.scoring import BLOSUM62, paper_gap_model
        from repro.simd.kernels import _NEG, run_instrumented_group

        gaps = paper_gap_model()
        seqs = [rng.integers(0, 20, int(rng.integers(5, 60))).astype(np.uint8)
                for _ in range(16)]
        q = rng.integers(0, 20, 24).astype(np.uint8)
        group = build_lane_groups(seqs, 16)[0]
        sub_ext = np.concatenate(
            (BLOSUM62.data.astype(np.int64),
             np.full((24, 1), _NEG // 2, dtype=np.int64)), axis=1)
        codes = np.minimum(group.codes, 24).astype(np.intp)
        for vec in ("novec", "simd", "intrinsic"):
            for prof in ("query", "sequence"):
                cfg = KernelConfig(isa=MIC_512, vectorization=vec, profile=prof)
                best, _ = run_instrumented_group(
                    cfg, q, codes, group.lengths, sub_ext, 10, 2)
                ref, _ = InterTaskEngine(lanes=16).score_group(
                    q, group, BLOSUM62, gaps)
                assert np.array_equal(best, ref), (vec, prof)


class TestInstrumentedStripedKernel:
    def test_scores_match_oracle(self, rng):
        from repro.core import get_engine
        from repro.scoring import BLOSUM62, paper_gap_model
        from repro.simd.kernels import run_instrumented_striped

        g = paper_gap_model()
        oracle = get_engine("scalar")
        sub = BLOSUM62.data.astype(np.int64)
        for _ in range(8):
            q = rng.integers(0, 20, int(rng.integers(3, 40))).astype(np.uint8)
            d = rng.integers(0, 20, int(rng.integers(3, 40))).astype(np.uint8)
            score, _ = run_instrumented_striped(MIC_512, q, d, sub, 10, 2)
            assert score == oracle.score_pair(q, d, BLOSUM62, g).score

    def test_zero_extend_rejected(self, rng):
        from repro.scoring import BLOSUM62
        from repro.simd.kernels import run_instrumented_striped

        q = rng.integers(0, 20, 8).astype(np.uint8)
        with pytest.raises(DeviceError):
            run_instrumented_striped(
                AVX_256, q, q, BLOSUM62.data.astype(np.int64), 5, 0
            )

    def test_striped_wastes_lanes_on_short_queries(self, rng):
        # The instruction-level version of the paper's Section IV
        # argument ("especially when aligning short sequences"): the
        # striped layout strides the *query* across lanes, so a query
        # shorter than a register leaves lanes padded and the per-cell
        # instruction count balloons; at long queries the waste
        # amortises away.
        from repro.scoring import BLOSUM62
        from repro.simd.kernels import run_instrumented_striped

        sub = BLOSUM62.data.astype(np.int64)
        d = rng.integers(0, 20, 64).astype(np.uint8)

        def per_cell(qlen: int) -> float:
            q = rng.integers(0, 20, qlen).astype(np.uint8)
            _, c = run_instrumented_striped(MIC_512, q, d, sub, 10, 2)
            return c.total / (qlen * len(d))

        short = per_cell(5)    # 5 of 16 lanes useful
        medium = per_cell(16)  # exactly one register
        long = per_cell(128)   # 8 full stripe rows
        assert short > 2 * long
        assert short > medium > long

    def test_intertask_insensitive_to_lane_fill_by_length(self, rng):
        # The inter-task kernel's per-cell cost barely moves with query
        # length — its lanes are different sequences, always full.
        from repro.core import build_lane_groups
        from repro.scoring import BLOSUM62
        from repro.simd.kernels import _NEG, run_instrumented_group

        sub_ext = np.concatenate(
            (BLOSUM62.data.astype(np.int64),
             np.full((24, 1), _NEG // 2, dtype=np.int64)), axis=1)
        seqs = [rng.integers(0, 20, 64).astype(np.uint8) for _ in range(16)]
        group = build_lane_groups(seqs, 16)[0]
        codes = np.minimum(group.codes, 24).astype(np.intp)
        cfg = KernelConfig(isa=MIC_512)

        def per_cell(qlen: int) -> float:
            q = rng.integers(0, 20, qlen).astype(np.uint8)
            _, c = run_instrumented_group(
                cfg, q, codes, group.lengths, sub_ext, 10, 2)
            return c.total / (qlen * int(group.lengths.sum()))

        assert per_cell(5) < 2 * per_cell(128)
