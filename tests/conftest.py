"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.alphabet import PROTEIN
from repro.scoring import BLOSUM62, GapModel, paper_gap_model

#: The 20 standard residues (no ambiguity codes) for random sequences.
STANDARD_RESIDUES = "ARNDCQEGHILKMFPSTWYV"


def random_protein(rng: np.random.Generator, length: int) -> str:
    """A random protein string over the 20 standard residues."""
    return "".join(STANDARD_RESIDUES[i] for i in rng.integers(0, 20, length))


def random_codes(rng: np.random.Generator, length: int) -> np.ndarray:
    """Random residue codes (standard residues only)."""
    return rng.integers(0, 20, length).astype(np.uint8)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def blosum62():
    """The paper's substitution matrix."""
    return BLOSUM62


@pytest.fixture
def gaps() -> GapModel:
    """The paper's gap model (10/2)."""
    return paper_gap_model()


@pytest.fixture
def alphabet():
    """The canonical protein alphabet."""
    return PROTEIN
