"""Tests for the retrieval-quality metrics."""

import numpy as np
import pytest

from repro.exceptions import PipelineError
from repro.metrics import average_precision, rank_indices, recall_at_k


class TestRanking:
    def test_descending_stable(self):
        scores = np.array([5, 9, 5, 1])
        assert list(rank_indices(scores)) == [1, 0, 2, 3]

    def test_rejects_2d(self):
        with pytest.raises(PipelineError):
            rank_indices(np.zeros((2, 2)))


class TestRecall:
    def test_perfect_ranking(self):
        scores = np.array([10, 9, 1, 0, 0])
        assert recall_at_k(scores, {0, 1}, k=2) == 1.0

    def test_partial(self):
        scores = np.array([10, 0, 9, 0, 8])
        assert recall_at_k(scores, {0, 1}, k=2) == 0.5

    def test_k_larger_than_db(self):
        scores = np.array([3, 2, 1])
        assert recall_at_k(scores, {2}, k=100) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(PipelineError):
            recall_at_k(np.array([1.0]), set(), 1)
        with pytest.raises(PipelineError):
            recall_at_k(np.array([1.0]), {0}, 0)


class TestAveragePrecision:
    def test_perfect_is_one(self):
        scores = np.array([9, 8, 7, 0, 0])
        assert average_precision(scores, {0, 1, 2}) == pytest.approx(1.0)

    def test_worst_ranking(self):
        # Single relevant item ranked last of 4.
        scores = np.array([9, 8, 7, 1])
        assert average_precision(scores, {3}) == pytest.approx(0.25)

    def test_interleaved(self):
        # Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
        scores = np.array([9, 8, 7, 0])
        assert average_precision(scores, {0, 2}) == pytest.approx(
            (1.0 + 2 / 3) / 2
        )

    def test_monotone_under_improvement(self, rng):
        scores = rng.normal(size=50)
        relevant = {3, 7, 11}
        base = average_precision(scores, relevant)
        improved = scores.copy()
        for r in relevant:
            improved[r] += 100  # push relevant to the top
        assert average_precision(improved, relevant) >= base

    def test_search_integration(self, rng):
        # Planted homolog must give AP = 1 for the exact search.
        from repro.db import SyntheticSwissProt
        from repro.db.mutate import plant_homologs
        from repro.search import SearchPipeline
        from tests.conftest import random_codes

        bg = SyntheticSwissProt().generate(scale=0.0001)
        q = random_codes(rng, 90)
        db, planted = plant_homologs(bg, {"q": q}, [0.1, 0.2], per_rate=1)
        result = SearchPipeline().search(q, db)
        relevant = {p.index for p in planted}
        assert average_precision(result.scores, relevant) == pytest.approx(1.0)
        assert recall_at_k(result.scores, relevant, k=len(relevant)) == 1.0
