"""End-to-end tracing through the search/service/runtime layers."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    XEON_E5_2670_DUAL,
    XEON_PHI_57XX,
    DevicePerformanceModel,
    FaultInjector,
    FaultPlan,
    HybridSearchPipeline,
    MetricsRegistry,
    ResilientHybridExecutor,
    SearchOptions,
    SearchPipeline,
    SearchRequest,
    SearchService,
    SequenceDatabase,
    StreamingSearch,
    Tracer,
    use_tracer,
)
from repro.db.fasta import FastaRecord
from repro.faults.policy import RetryPolicy

from tests.conftest import random_protein


@pytest.fixture
def db(rng) -> SequenceDatabase:
    return SequenceDatabase.from_records(
        [
            FastaRecord(f"sp|O{k:04d}|OBS{k}",
                        random_protein(rng, int(rng.integers(40, 150))))
            for k in range(18)
        ],
        name="obs-db",
    )


@pytest.fixture
def query(rng) -> str:
    return random_protein(rng, 70)


def models():
    return (
        DevicePerformanceModel(XEON_E5_2670_DUAL),
        DevicePerformanceModel(XEON_PHI_57XX),
    )


class TestPipelineTracing:
    def test_search_produces_expected_span_tree(self, db, query):
        tracer = Tracer()
        with use_tracer(tracer):
            result = SearchPipeline(SearchOptions(top_k=3)).search(query, db)
        col = tracer.collector
        (root,) = col.roots()
        assert root.name == "pipeline.search"
        child_names = {s.name for s in col.children(root)}
        assert child_names == {
            "pipeline.preprocess", "pipeline.score", "pipeline.rank",
        }
        assert root.attributes["database"] == "obs-db"
        assert root.attributes["best_score"] == result.best_score()

    def test_trace_provenance_links_result_to_root_span(self, db, query):
        tracer = Tracer()
        with use_tracer(tracer):
            result = SearchPipeline().search(query, db)
        (root,) = tracer.collector.roots()
        assert result.trace == {
            "span_id": root.span_id, "span": "pipeline.search",
        }
        assert result.provenance["trace"]["span_id"] == root.span_id

    def test_untraced_search_has_no_trace_field(self, db, query):
        result = SearchPipeline().search(query, db)
        assert result.trace is None
        assert "trace" not in result.provenance

    def test_traced_and_untraced_scores_identical(self, db, query):
        untraced = SearchPipeline(SearchOptions(top_k=5)).search(query, db)
        tracer = Tracer()
        with use_tracer(tracer):
            traced = SearchPipeline(SearchOptions(top_k=5)).search(query, db)
        assert np.array_equal(traced.scores, untraced.scores)
        assert [h.score for h in traced.hits] == [
            h.score for h in untraced.hits
        ]

    def test_corrupt_redo_emits_span_event(self, db, query):
        injector = FaultInjector(FaultPlan(seed=3, corrupt_rate=0.6))
        tracer = Tracer()
        with use_tracer(tracer):
            result = SearchPipeline(
                SearchOptions(top_k=3, injector=injector)
            ).search(query, db)
        assert result.corrupted_redone > 0
        score_span = tracer.collector.find("pipeline.score")[0]
        redo_events = [
            e for e in score_span.events if e.name == "fault.corrupt.redo"
        ]
        assert len(redo_events) == result.corrupted_redone
        assert all(e.attributes["kind"] == "corrupt" for e in redo_events)
        injected = [
            e for e in score_span.events if e.name == "fault.injected"
        ]
        assert injected, "the injector's own events should surface too"


class TestStreamingTracing:
    def test_chunk_spans_nest_under_search(self, rng, query):
        records = [
            FastaRecord(f"S{k}", random_protein(rng, 45)) for k in range(10)
        ]
        tracer = Tracer()
        with use_tracer(tracer):
            result = StreamingSearch(
                SearchOptions(chunk_size=4, top_k=3)
            ).search_records(query, iter(records))
        col = tracer.collector
        (root,) = col.roots()
        assert root.name == "streaming.search"
        chunk_spans = col.find("streaming.chunk")
        assert len(chunk_spans) == result.chunks == 3
        assert all(s.parent_id == root.span_id for s in chunk_spans)
        assert root.attributes["sequences"] == 10


class TestQueueSchedulerTracing:
    def test_every_chunk_exactly_once_under_the_search_span(self, db, query):
        host, phi = models()
        sched = repro.WorkQueueScheduler(host, phi, chunks=5)
        tracer = Tracer()
        with use_tracer(tracer):
            outcome = sched.search(query, db)
        col = tracer.collector
        (root,) = col.roots()
        assert root.name == "queue.search"
        chunk_spans = col.find("queue.chunk")
        # Exactly one span per planned chunk, all under this search.
        assert len(chunk_spans) == len(outcome.plan.assignments)
        assert all(s.parent_id == root.span_id for s in chunk_spans)
        seen = sorted(s.attributes["chunk"] for s in chunk_spans)
        assert seen == sorted(
            a.chunk_id for a in outcome.plan.assignments
        )
        assert len(set(seen)) == len(seen)

    def test_chunk_spans_carry_the_plan_virtual_interval(self, db, query):
        host, phi = models()
        sched = repro.WorkQueueScheduler(host, phi, chunks=4)
        tracer = Tracer()
        with use_tracer(tracer):
            outcome = sched.search(query, db)
        by_chunk = {
            s.attributes["chunk"]: s
            for s in tracer.collector.find("queue.chunk")
        }
        for a in outcome.plan.assignments:
            span = by_chunk[a.chunk_id]
            assert span.virtual_start == pytest.approx(a.start_seconds)
            assert span.virtual_end == pytest.approx(a.end_seconds)
            assert span.attributes["worker"] == a.worker


class TestHybridTracing:
    def test_static_sides_and_merge(self, db, query):
        host, phi = models()
        tracer = Tracer()
        with use_tracer(tracer):
            HybridSearchPipeline(host, phi).search(query, db, top_k=3)
        col = tracer.collector
        (root,) = col.roots()
        assert root.name == "hybrid.search"
        names = {s.name for s in col.children(root)}
        assert {"hybrid.offload", "hybrid.host", "hybrid.merge"} <= names
        (offload,) = col.find("hybrid.offload")
        assert offload.attributes["worker"] == "device"
        assert offload.virtual_seconds is not None


class TestResilientTracing:
    def test_retries_surface_as_fault_events_with_kind(self, db, query):
        host, phi = models()
        injector = FaultInjector(
            FaultPlan(seed=11, transfer_fail_rate=0.5)
        )
        rex = ResilientHybridExecutor(
            host, phi, injector=injector,
            retry=RetryPolicy(max_retries=2), chunks=4,
        )
        tracer = Tracer()
        with use_tracer(tracer):
            outcome = rex.search(query, db, device_fraction=0.5)
        res = outcome.resilience
        assert res.faults_injected > 0
        chunk_spans = tracer.collector.find("resilient.chunk")
        assert len(chunk_spans) == res.chunks
        fault_events = [
            e for s in chunk_spans for e in s.events if e.name == "fault"
        ]
        failed_attempts = [r for r in res.timeline if not r.ok]
        assert len(fault_events) == len(failed_attempts)
        assert sorted(e.attributes["kind"] for e in fault_events) == sorted(
            r.outcome for r in failed_attempts
        )

    def test_reclaimed_chunks_flagged(self, db, query):
        host, phi = models()
        # From unit 0 onward the device is dead: every chunk reclaims.
        injector = FaultInjector(FaultPlan(seed=1, outage_unit=0))
        rex = ResilientHybridExecutor(
            host, phi, injector=injector,
            retry=RetryPolicy(max_retries=1), chunks=3,
        )
        tracer = Tracer()
        with use_tracer(tracer):
            outcome = rex.search(query, db, device_fraction=0.5)
        assert outcome.resilience.chunks_reclaimed == 3
        chunk_spans = tracer.collector.find("resilient.chunk")
        reclaim_events = [
            e for s in chunk_spans for e in s.events
            if e.name == "chunk.reclaimed"
        ]
        assert len(reclaim_events) == 3
        assert all(not s.attributes["ok"] for s in chunk_spans)
        (root,) = tracer.collector.roots()
        assert root.attributes["chunks_reclaimed"] == 3


class TestServiceTracing:
    def test_batch_span_tree_and_score_identity(self, db, query, rng):
        q2 = random_protein(rng, 50)
        requests = [
            SearchRequest(query=query, name="q0"),
            SearchRequest(query=q2, name="q1"),
        ]
        untraced = SearchService(SearchOptions(top_k=3)).run(requests, db)

        tracer = Tracer()
        registry = MetricsRegistry()
        service = SearchService(
            SearchOptions(top_k=3), metrics=registry, tracer=tracer
        )
        traced = service.run(requests, db)

        # Score-identical to the untraced run.
        for t, u in zip(traced.outcomes, untraced.outcomes):
            assert np.array_equal(t.scores, u.scores)

        col = tracer.collector
        (root,) = col.roots()
        assert root.name == "service.batch"
        request_spans = col.find("service.request")
        assert len(request_spans) == 2
        assert all(s.parent_id == root.span_id for s in request_spans)
        # Each request span contains one full pipeline subtree.
        for req_span in request_spans:
            below = {s.name for s in col.descendants(req_span)}
            assert {"cache.get", "pipeline.search", "pipeline.score"} <= below

    def test_service_tracer_does_not_leak_globally(self, db, query):
        from repro.obs import NULL_TRACER, get_tracer

        service = SearchService(
            SearchOptions(top_k=2),
            metrics=MetricsRegistry(), tracer=Tracer(),
        )
        service.run([SearchRequest(query=query, name="q")], db)
        assert get_tracer() is NULL_TRACER

    def test_queue_service_nests_scheduler_spans(self, db, query):
        host, phi = models()
        tracer = Tracer()
        service = SearchService(
            SearchOptions(top_k=2), scheduler="queue",
            host_model=host, device_model=phi, chunks=3,
            metrics=MetricsRegistry(), tracer=tracer,
        )
        service.run([SearchRequest(query=query, name="q")], db)
        col = tracer.collector
        (req_span,) = col.find("service.request")
        below = {s.name for s in col.descendants(req_span)}
        assert {"queue.search", "queue.plan", "queue.chunk"} <= below
