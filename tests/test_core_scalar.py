"""Unit tests for the reference scalar engine (hand-checked values)."""

import numpy as np
import pytest

from repro.core import ScalarEngine
from repro.core.scalar import full_dp_matrices
from repro.exceptions import SequenceError
from repro.scoring import BLOSUM62, GapModel, match_mismatch_matrix, paper_gap_model

MM = match_mismatch_matrix(5, -4)


@pytest.fixture
def engine():
    return ScalarEngine()


class TestKnownScores:
    def test_identity_no_gaps(self, engine):
        res = engine.score_pair("ACDEF", "ACDEF", MM, paper_gap_model())
        assert res.score == 25
        assert (res.end_query, res.end_db) == (5, 5)

    def test_single_mismatch_inside(self, engine):
        # ACDEF vs ACTEF: 4 matches + 1 mismatch beats splitting.
        res = engine.score_pair("ACDEF", "ACTEF", MM, paper_gap_model())
        assert res.score == 4 * 5 - 4

    def test_local_trims_negative_ends(self, engine):
        # Leading garbage on the query must not reduce the score.
        res = engine.score_pair("WWWWWACDE", "ACDE", MM, paper_gap_model())
        assert res.score == 20
        assert res.end_query == 9

    def test_gap_in_query_row(self, engine):
        # g(x) = 0 + 1x: skipping db's G costs 1, keeping 6 matches.
        g = GapModel(0, 1)
        res = engine.score_pair("AAATTT", "AAAGTTT", MM, g)
        assert res.score == 6 * 5 - 1

    def test_gap_in_db_column(self, engine):
        g = GapModel(0, 1)
        res = engine.score_pair("AAAGTTT", "AAATTT", MM, g)
        assert res.score == 6 * 5 - 1

    def test_affine_two_gap_run(self, engine):
        # AA--TT vs AAGGTT: one gap of length 2, g(2) = 2 + 2 = 4.
        g = GapModel(2, 1)
        res = engine.score_pair("AATT", "AAGGTT", MM, g)
        assert res.score == 4 * 5 - 4

    def test_affine_prefers_one_long_gap_over_two_short(self, engine):
        # With a big open cost, one length-2 gap beats two length-1 gaps.
        g = GapModel(8, 1)
        res = engine.score_pair("AAATTT", "AAAGGTTT", MM, g)
        assert res.score == 6 * 5 - (8 + 2)

    def test_disjoint_sequences_score_zero(self, engine):
        res = engine.score_pair("AAAA", "TTTT", MM, paper_gap_model())
        assert res.score == 0
        assert (res.end_query, res.end_db) == (0, 0)

    def test_paper_parameters_blosum62(self, engine):
        # Identical residues under BLOSUM62 sum their diagonal scores.
        res = engine.score_pair("WCH", "WCH", BLOSUM62, paper_gap_model())
        assert res.score == 11 + 9 + 8

    def test_cells_accounting(self, engine):
        res = engine.score_pair("ACDE", "ACD", MM, paper_gap_model())
        assert res.cells == 12

    def test_single_residue_pair(self, engine):
        res = engine.score_pair("A", "A", MM, paper_gap_model())
        assert res.score == 5
        res = engine.score_pair("A", "T", MM, paper_gap_model())
        assert res.score == 0

    def test_empty_sequence_rejected(self, engine):
        with pytest.raises(SequenceError):
            engine.score_pair("", "ACD", MM, paper_gap_model())


class TestFullDPMatrices:
    def test_borders_are_zero(self):
        q = np.array([0, 1, 2], dtype=np.uint8)
        d = np.array([0, 1], dtype=np.uint8)
        H, E, F = full_dp_matrices(q, d, BLOSUM62, paper_gap_model())
        assert (H[0, :] == 0).all()
        assert (H[:, 0] == 0).all()

    def test_h_never_negative(self, rng):
        q = rng.integers(0, 20, 12).astype(np.uint8)
        d = rng.integers(0, 20, 15).astype(np.uint8)
        H, _, _ = full_dp_matrices(q, d, BLOSUM62, paper_gap_model())
        assert (H >= 0).all()

    def test_max_matches_engine(self, rng):
        q = rng.integers(0, 20, 10).astype(np.uint8)
        d = rng.integers(0, 20, 14).astype(np.uint8)
        H, _, _ = full_dp_matrices(q, d, BLOSUM62, paper_gap_model())
        eng = ScalarEngine()
        assert int(H.max()) == eng.score_pair(q, d, BLOSUM62, paper_gap_model()).score

    def test_e_recurrence_holds(self, rng):
        q = rng.integers(0, 20, 8).astype(np.uint8)
        d = rng.integers(0, 20, 9).astype(np.uint8)
        g = paper_gap_model()
        H, E, F = full_dp_matrices(q, d, BLOSUM62, g)
        for i in range(1, 9):
            for j in range(2, 10):
                assert E[i, j] == max(H[i, j - 1] - g.first_gap_cost,
                                      E[i, j - 1] - g.extend)
