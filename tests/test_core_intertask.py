"""Unit tests for the inter-task engine (the paper's scheme)."""

import numpy as np
import pytest

from repro.core import InterTaskEngine, build_lane_groups, get_engine
from repro.core.profiles import ProfileKind
from repro.exceptions import EngineError
from repro.scoring import BLOSUM62, paper_gap_model
from tests.conftest import random_codes, random_protein


@pytest.fixture(scope="module")
def oracle():
    return get_engine("scalar")


class TestLaneGroups:
    def test_groups_cover_all_sequences_once(self, rng):
        seqs = [random_codes(rng, int(rng.integers(1, 40))) for _ in range(23)]
        groups = build_lane_groups(seqs, lanes=8)
        seen = sorted(int(i) for g in groups for i in g.indices)
        assert seen == list(range(23))

    def test_sorted_packing_minimises_padding(self, rng):
        # Ascending-length packing must never pad more than unsorted.
        seqs = [random_codes(rng, int(rng.integers(1, 200))) for _ in range(64)]
        sorted_groups = build_lane_groups(seqs, 8, sort_by_length=True)
        unsorted_groups = build_lane_groups(seqs, 8, sort_by_length=False)

        def padding(groups):
            return sum(g.n_max * g.lanes - int(g.lengths.sum()) for g in groups)

        assert padding(sorted_groups) <= padding(unsorted_groups)

    def test_pad_positions_use_pad_code(self, rng):
        seqs = [random_codes(rng, 3), random_codes(rng, 7)]
        group = build_lane_groups(seqs, 2)[0]
        assert group.n_max == 7
        short_lane = int(np.argmin(group.lengths))
        assert (group.codes[3:, short_lane] == 255).all()

    def test_mask_matches_lengths(self, rng):
        seqs = [random_codes(rng, 4), random_codes(rng, 6), random_codes(rng, 2)]
        group = build_lane_groups(seqs, 3)[0]
        mask = group.mask
        for lane in range(3):
            assert mask[:, lane].sum() == group.lengths[lane]

    def test_cells_and_padding_fraction(self, rng):
        seqs = [random_codes(rng, 10), random_codes(rng, 10)]
        group = build_lane_groups(seqs, 2)[0]
        assert group.cells_per_query_row == 20
        assert group.padding_fraction == 0.0

    def test_empty_input(self):
        assert build_lane_groups([], 8) == []

    def test_invalid_lanes(self, rng):
        with pytest.raises(EngineError):
            build_lane_groups([random_codes(rng, 5)], 0)


class TestEngineConfig:
    def test_invalid_lane_count(self):
        with pytest.raises(EngineError):
            InterTaskEngine(lanes=0)

    def test_invalid_block_cols(self):
        with pytest.raises(EngineError):
            InterTaskEngine(block_cols=0)

    def test_invalid_saturate_bits(self):
        with pytest.raises(EngineError):
            InterTaskEngine(saturate_bits=12)

    def test_profile_parsing(self):
        assert InterTaskEngine(profile="query").profile is ProfileKind.QUERY
        assert InterTaskEngine(profile="sequence").profile is ProfileKind.SEQUENCE
        with pytest.raises(EngineError):
            InterTaskEngine(profile="banana")


class TestProfileEquivalence:
    def test_qp_equals_sp(self, rng):
        g = paper_gap_model()
        q = random_protein(rng, 30)
        seqs = [random_protein(rng, int(rng.integers(1, 60))) for _ in range(17)]
        qp = InterTaskEngine(lanes=8, profile="query").score_batch(q, seqs, BLOSUM62, g)
        sp = InterTaskEngine(lanes=8, profile="sequence").score_batch(q, seqs, BLOSUM62, g)
        assert np.array_equal(qp.scores, sp.scores)

    @pytest.mark.parametrize("lanes", [1, 2, 8, 16])
    def test_lane_count_does_not_change_scores(self, lanes, rng, oracle):
        g = paper_gap_model()
        q = random_protein(rng, 20)
        seqs = [random_protein(rng, int(rng.integers(1, 45))) for _ in range(9)]
        batch = InterTaskEngine(lanes=lanes).score_batch(q, seqs, BLOSUM62, g)
        expect = [oracle.score_pair(q, s, BLOSUM62, g).score for s in seqs]
        assert list(batch.scores) == expect


class TestBlocking:
    @pytest.mark.parametrize("block_cols", [1, 3, 7, 16, 64, 10_000])
    def test_blocked_identical_to_unblocked(self, block_cols, rng):
        g = paper_gap_model()
        q = random_protein(rng, 25)
        seqs = [random_protein(rng, int(rng.integers(1, 70))) for _ in range(13)]
        plain = InterTaskEngine(lanes=4).score_batch(q, seqs, BLOSUM62, g)
        blocked = InterTaskEngine(lanes=4, block_cols=block_cols).score_batch(
            q, seqs, BLOSUM62, g
        )
        assert np.array_equal(plain.scores, blocked.scores)

    @pytest.mark.parametrize("profile", ["query", "sequence"])
    def test_blocked_profiles_agree(self, profile, rng):
        g = paper_gap_model()
        q = random_protein(rng, 18)
        seqs = [random_protein(rng, 40) for _ in range(8)]
        blocked = InterTaskEngine(lanes=8, profile=profile, block_cols=11)
        plain = InterTaskEngine(lanes=8, profile=profile)
        assert np.array_equal(
            blocked.score_batch(q, seqs, BLOSUM62, g).scores,
            plain.score_batch(q, seqs, BLOSUM62, g).scores,
        )


class TestSaturation:
    def test_int8_saturates_and_recomputes_exactly(self, oracle):
        g = paper_gap_model()
        # A long self-alignment drives the score far past int8's 127.
        seq = "ACDEFGHIKLMNPQRSTVWY" * 10  # score 200 residues ~ +1000
        eng = InterTaskEngine(lanes=4, saturate_bits=8)
        batch = eng.score_batch(seq, [seq, "AAAA"], BLOSUM62, g)
        assert batch.saturated == [0]
        expect = oracle.score_pair(seq, seq, BLOSUM62, g).score
        assert batch.scores[0] == expect
        assert expect > 127

    def test_int16_no_false_saturation(self, rng, oracle):
        g = paper_gap_model()
        q = random_protein(rng, 40)
        seqs = [random_protein(rng, 40) for _ in range(6)]
        batch = InterTaskEngine(lanes=2, saturate_bits=16).score_batch(
            q, seqs, BLOSUM62, g
        )
        assert batch.saturated == []
        expect = [oracle.score_pair(q, s, BLOSUM62, g).score for s in seqs]
        assert list(batch.scores) == expect

    def test_single_pair_saturation_falls_back(self, oracle):
        g = paper_gap_model()
        seq = "WCH" * 50
        eng = InterTaskEngine(lanes=1, saturate_bits=8)
        res = eng.score_pair(seq, seq, BLOSUM62, g)
        assert res.score == oracle.score_pair(seq, seq, BLOSUM62, g).score


class TestBatchOrdering:
    def test_scores_in_original_order(self, rng, oracle):
        # Sorted lane packing must be invisible to the caller.
        g = paper_gap_model()
        q = random_protein(rng, 15)
        seqs = [random_protein(rng, n) for n in (50, 3, 30, 8, 44, 1, 29)]
        batch = InterTaskEngine(lanes=4).score_batch(q, seqs, BLOSUM62, g)
        expect = [oracle.score_pair(q, s, BLOSUM62, g).score for s in seqs]
        assert list(batch.scores) == expect
