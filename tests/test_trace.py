"""Tests for schedule traces and Gantt rendering."""

import numpy as np
import pytest

from repro.devices import ParallelFor, Schedule
from repro.devices.trace import ScheduleTrace
from repro.exceptions import ScheduleError


@pytest.fixture
def skewed_costs(rng):
    return np.sort(rng.lognormal(4, 1.0, 120))


class TestIntervals:
    @pytest.mark.parametrize("schedule", list(Schedule))
    def test_trace_validates(self, schedule, skewed_costs):
        result = ParallelFor(8, schedule).run(skewed_costs)
        ScheduleTrace(result).validate()

    def test_intervals_cover_costs(self, skewed_costs):
        result = ParallelFor(4).run(skewed_costs)
        durations = result.intervals[:, 1] - result.intervals[:, 0]
        assert np.allclose(durations, skewed_costs)

    def test_intervals_within_makespan(self, skewed_costs):
        result = ParallelFor(4).run(skewed_costs)
        assert (result.intervals[:, 0] >= 0).all()
        assert (result.intervals[:, 1] <= result.makespan + 1e-9).all()


class TestUtilization:
    def test_mean_utilization_equals_efficiency(self, skewed_costs):
        result = ParallelFor(8, Schedule.DYNAMIC).run(skewed_costs)
        trace = ScheduleTrace(result)
        assert trace.mean_utilization == pytest.approx(result.efficiency)

    def test_dynamic_utilization_beats_static(self, skewed_costs):
        dyn = ScheduleTrace(ParallelFor(8, Schedule.DYNAMIC).run(skewed_costs))
        sta = ScheduleTrace(ParallelFor(8, Schedule.STATIC).run(skewed_costs))
        assert dyn.mean_utilization > sta.mean_utilization

    def test_idle_tail_plus_busy_bounded_by_makespan(self, skewed_costs):
        result = ParallelFor(6).run(skewed_costs)
        trace = ScheduleTrace(result)
        for t in range(6):
            assert trace.busy_time(t) + trace.idle_tail(t) <= result.makespan + 1e-9

    def test_thread_range_checked(self, skewed_costs):
        trace = ScheduleTrace(ParallelFor(4).run(skewed_costs))
        with pytest.raises(ScheduleError):
            trace.utilization(4)


class TestGantt:
    def test_gantt_shape(self, skewed_costs):
        trace = ScheduleTrace(ParallelFor(4).run(skewed_costs))
        text = trace.gantt(width=40)
        lines = text.splitlines()
        assert len(lines) == 5  # header + 4 threads
        assert all("|" in line for line in lines[1:])

    def test_static_gantt_shows_idle(self, skewed_costs):
        # Sorted costs under static: early threads idle (dots) while the
        # last block runs.
        trace = ScheduleTrace(
            ParallelFor(8, Schedule.STATIC).run(skewed_costs)
        )
        text = trace.gantt(width=60)
        assert "." in text

    def test_single_thread_fully_busy(self, skewed_costs):
        trace = ScheduleTrace(ParallelFor(1).run(skewed_costs))
        text = trace.gantt(width=30)
        assert "100.0%" in text
        bar = text.splitlines()[1].split("|")[1]
        assert set(bar) == {"#"}

    def test_invalid_width(self, skewed_costs):
        trace = ScheduleTrace(ParallelFor(2).run(skewed_costs))
        with pytest.raises(ScheduleError):
            trace.gantt(width=4)

    def test_empty_schedule(self):
        trace = ScheduleTrace(ParallelFor(2).run(np.array([])))
        assert "empty" in trace.gantt()
