"""Unit tests for device specs, threading, scheduling and cache models."""

import numpy as np
import pytest

from repro.devices import (
    XEON_E5_2670_DUAL, XEON_PHI_57XX,
    CacheModel, DeviceSpec, ParallelFor, Schedule,
    paper_devices, smt_throughput, thread_layout,
)
from repro.exceptions import DeviceError, ScheduleError
from repro.simd import AVX_256


class TestSpecs:
    def test_paper_topologies(self):
        # Section V-A: 2x8-core Xeon with HT; 60-core Phi with 4 threads.
        assert XEON_E5_2670_DUAL.cores == 16
        assert XEON_E5_2670_DUAL.max_threads == 32
        assert XEON_E5_2670_DUAL.clock_ghz == 2.60
        assert XEON_PHI_57XX.cores == 60
        assert XEON_PHI_57XX.max_threads == 240

    def test_paper_tdp_quotes(self):
        # Section V-C3: "120 watts" per Xeon chip, "240" for the Phi.
        assert XEON_E5_2670_DUAL.tdp_watts == 240.0  # two chips
        assert XEON_PHI_57XX.tdp_watts == 240.0

    def test_vector_lanes(self):
        assert XEON_E5_2670_DUAL.lanes32 == 8
        assert XEON_PHI_57XX.lanes32 == 16

    def test_blocking_budget_is_l2(self):
        assert XEON_E5_2670_DUAL.last_level_cache_bytes() == 256 * 1024
        assert XEON_PHI_57XX.last_level_cache_bytes() == 512 * 1024

    def test_thread_validation(self):
        with pytest.raises(DeviceError):
            XEON_E5_2670_DUAL.validate_thread_count(33)
        with pytest.raises(DeviceError):
            XEON_E5_2670_DUAL.validate_thread_count(0)

    def test_smt_yield_length_enforced(self):
        with pytest.raises(DeviceError, match="smt_yield"):
            DeviceSpec(
                name="bad", cores=2, threads_per_core=2, clock_ghz=1.0,
                isa=AVX_256, l1_kb_per_core=32, l2_kb_per_core=256,
                l3_kb_shared=0, tdp_watts=100, smt_yield=(1.0,),
            )

    def test_smt_yield_must_not_decrease(self):
        with pytest.raises(DeviceError, match="reduce"):
            DeviceSpec(
                name="bad", cores=2, threads_per_core=2, clock_ghz=1.0,
                isa=AVX_256, l1_kb_per_core=32, l2_kb_per_core=256,
                l3_kb_shared=0, tdp_watts=100, smt_yield=(1.0, 0.9),
            )

    def test_paper_devices_mapping(self):
        devs = paper_devices()
        assert devs["xeon"] is XEON_E5_2670_DUAL
        assert devs["phi"] is XEON_PHI_57XX


class TestThreadingModel:
    def test_scatter_placement(self):
        layout = thread_layout(XEON_E5_2670_DUAL, 20)
        assert sum(layout) == 20
        assert max(layout) == 2 and min(layout) == 1

    def test_one_thread_per_core_up_to_core_count(self):
        layout = thread_layout(XEON_E5_2670_DUAL, 16)
        assert all(k == 1 for k in layout)

    def test_xeon_throughput_shape(self):
        # Linear to 16 cores, then HT adds only the SMT yield (the
        # paper's efficiency quotes imply g(32)/g(16) ~ 1.59).
        t16 = smt_throughput(XEON_E5_2670_DUAL, 16)
        t32 = smt_throughput(XEON_E5_2670_DUAL, 32)
        assert t16 == pytest.approx(16.0)
        assert t32 == pytest.approx(16 * 1.59)
        assert t32 < 32  # HT never doubles

    def test_phi_needs_multiple_threads_per_core(self):
        # One resident thread reaches only ~half a core (in-order).
        t60 = smt_throughput(XEON_PHI_57XX, 60)
        t240 = smt_throughput(XEON_PHI_57XX, 240)
        assert t60 == pytest.approx(60 * 0.50)
        assert t240 == pytest.approx(60.0)

    def test_monotone_in_threads(self):
        values = [smt_throughput(XEON_PHI_57XX, t) for t in range(1, 241)]
        assert all(b >= a for a, b in zip(values, values[1:]))


class TestParallelFor:
    def test_every_iteration_assigned_once(self, rng):
        costs = rng.integers(1, 100, 137).astype(float)
        for sched in Schedule:
            res = ParallelFor(8, sched).run(costs)
            assert (res.assignment >= 0).all()
            assert len(res.assignment) == 137

    def test_work_callback_executes_each_once(self, rng):
        costs = rng.integers(1, 10, 50).astype(float)
        seen = []
        ParallelFor(4, Schedule.DYNAMIC).run(costs, work=seen.append)
        assert sorted(seen) == list(range(50))

    def test_makespan_bounds(self, rng):
        costs = rng.integers(1, 100, 200).astype(float)
        for sched in Schedule:
            res = ParallelFor(8, sched).run(costs)
            assert res.makespan >= costs.sum() / 8 - 1e-9  # lower bound
            assert res.makespan <= costs.sum()             # upper bound
            assert res.makespan >= costs.max()             # critical path

    def test_loads_sum_to_total(self, rng):
        costs = rng.integers(1, 50, 64).astype(float)
        res = ParallelFor(5, "guided").run(costs)
        assert res.thread_loads.sum() == pytest.approx(costs.sum())

    def test_dynamic_beats_static_on_sorted_work(self, rng):
        # The paper's observation (Section IV): with the database sorted
        # by length, iteration costs trend upward and static's contiguous
        # blocks are badly unbalanced; "dynamic outperforms static
        # significantly", guided is "slightly minor" behind dynamic.
        costs = np.sort(rng.lognormal(5, 1.2, 400))
        dyn = ParallelFor(16, Schedule.DYNAMIC).run(costs)
        sta = ParallelFor(16, Schedule.STATIC).run(costs)
        gui = ParallelFor(16, Schedule.GUIDED).run(costs)
        assert dyn.makespan < 0.6 * sta.makespan
        assert dyn.makespan <= gui.makespan
        assert gui.makespan < sta.makespan

    def test_uniform_work_all_policies_near_ideal(self):
        costs = np.ones(1600)
        for sched in Schedule:
            res = ParallelFor(16, sched).run(costs)
            assert res.efficiency > 0.99

    def test_single_thread_efficiency_is_one(self, rng):
        costs = rng.integers(1, 9, 30).astype(float)
        res = ParallelFor(1, Schedule.DYNAMIC).run(costs)
        assert res.efficiency == pytest.approx(1.0)
        assert res.makespan == pytest.approx(costs.sum())

    def test_empty_workload(self):
        res = ParallelFor(4).run(np.array([]))
        assert res.makespan == 0.0

    def test_dynamic_chunking(self, rng):
        costs = rng.integers(1, 9, 40).astype(float)
        res = ParallelFor(4, Schedule.DYNAMIC, chunk=8).run(costs)
        # Chunked dynamic assigns contiguous runs of 8.
        for start in range(0, 40, 8):
            assert len(set(res.assignment[start : start + 8])) == 1

    def test_guided_chunks_decrease(self):
        pf = ParallelFor(4, Schedule.GUIDED)
        chunks = pf._chunks(1000)
        sizes = [len(c) for c in chunks]
        assert sizes[0] > sizes[-1]
        assert sum(sizes) == 1000

    def test_invalid_configuration(self):
        with pytest.raises(ScheduleError):
            ParallelFor(0)
        with pytest.raises(ScheduleError):
            ParallelFor(4, chunk=0)
        with pytest.raises(ScheduleError):
            ParallelFor(4, "fancy")

    def test_negative_costs_rejected(self):
        with pytest.raises(ScheduleError):
            ParallelFor(4).run(np.array([1.0, -2.0]))

    def test_imbalance_metric(self):
        res = ParallelFor(2, Schedule.STATIC).run(np.array([10.0, 1.0]))
        assert res.imbalance > 1.0


class TestCacheModel:
    def test_resident_set_full_speed(self):
        cm = CacheModel(cache_bytes=1024 * 1024, miss_stall_factor=2.0)
        assert cm.throughput_factor(100 * 1024) == 1.0

    def test_streaming_set_hits_stall_floor(self):
        cm = CacheModel(cache_bytes=1024, miss_stall_factor=2.0)
        assert cm.throughput_factor(100 * 1024 * 1024) == pytest.approx(0.5)

    def test_monotone_in_working_set(self):
        cm = CacheModel(cache_bytes=64 * 1024, miss_stall_factor=3.0)
        sizes = [2 ** k for k in range(10, 26)]
        factors = [cm.throughput_factor(s) for s in sizes]
        assert all(b <= a for a, b in zip(factors, factors[1:]))

    def test_per_thread_budget_shrinks_with_smt(self):
        one = CacheModel.for_device(XEON_PHI_57XX, 60, miss_stall_factor=2.0)
        four = CacheModel.for_device(XEON_PHI_57XX, 240, miss_stall_factor=2.0)
        assert four.cache_bytes == one.cache_bytes // 4

    def test_invalid_parameters(self):
        with pytest.raises(DeviceError):
            CacheModel(cache_bytes=0, miss_stall_factor=2.0)
        with pytest.raises(DeviceError):
            CacheModel(cache_bytes=1024, miss_stall_factor=0.5)
        with pytest.raises(DeviceError):
            CacheModel(1024, 2.0).miss_fraction(-1)
