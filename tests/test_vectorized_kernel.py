"""Property/fuzz tests for the numpy inter-task kernel.

The vectorized kernel has three internal degrees of freedom that must
never be observable in its output: the lane width (packing), the tile
width (cache blocking of the rebased prefix scan), and the narrow
arithmetic width (int8/int16 with saturating clamps plus full-width
redo).  Every test here perturbs one of those knobs over a seeded grid
and demands bit-identical scores against the scalar oracle.

The saturation tests force overflow on purpose — a homopolymer whose
true score exceeds the int8 clamp, and a custom high-valued matrix that
breaks int16 — and assert both that the redo path actually fired
(:class:`repro.core.KernelStats` counters) and that it restored
exactness.  A redo path that never runs is dead code; one that runs and
misreports is a silent wrong answer.  Both failure modes are pinned.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alphabet import PROTEIN
from repro.core import VectorizedEngine, get_engine
from repro.core.vectorized import make_intertask_engine
from repro.exceptions import EngineError
from repro.scoring import GapModel, SubstitutionMatrix
from tests.conftest import random_protein

LANE_GRID = (1, 3, 8, 64)
BLOCK_GRID = (None, 1, 7, 64)
WIDTH_GRID = (8, 16, 64)


def scalar_scores(query, seqs, matrix, gaps):
    return get_engine("scalar", PROTEIN).score_batch(
        query, seqs, matrix, gaps
    ).scores


@pytest.fixture
def workload(rng, blosum62, gaps):
    seqs = [random_protein(rng, int(n)) for n in rng.integers(1, 70, 17)]
    query = random_protein(rng, 33)
    return query, seqs, scalar_scores(query, seqs, blosum62, gaps)


class TestWidthInvariance:
    @pytest.mark.parametrize("lanes", LANE_GRID)
    def test_lane_width_never_changes_scores(
        self, workload, blosum62, gaps, lanes
    ):
        query, seqs, ref = workload
        got = VectorizedEngine(PROTEIN, lanes=lanes).score_batch(
            query, seqs, blosum62, gaps
        ).scores
        np.testing.assert_array_equal(got, ref, err_msg=f"lanes={lanes}")

    @pytest.mark.parametrize("block_cols", BLOCK_GRID)
    def test_tile_width_never_changes_scores(
        self, workload, blosum62, gaps, block_cols
    ):
        query, seqs, ref = workload
        got = VectorizedEngine(
            PROTEIN, lanes=8, block_cols=block_cols
        ).score_batch(query, seqs, blosum62, gaps).scores
        np.testing.assert_array_equal(
            got, ref, err_msg=f"block_cols={block_cols}"
        )

    @pytest.mark.parametrize("bits", WIDTH_GRID)
    def test_narrow_width_never_changes_scores(
        self, workload, blosum62, gaps, bits
    ):
        query, seqs, ref = workload
        got = VectorizedEngine(
            PROTEIN, lanes=8, saturate_bits=bits
        ).score_batch(query, seqs, blosum62, gaps).scores
        np.testing.assert_array_equal(got, ref, err_msg=f"bits={bits}")

    @pytest.mark.parametrize("profile", ("sequence", "query"))
    def test_profile_addressing_never_changes_scores(
        self, workload, blosum62, gaps, profile
    ):
        query, seqs, ref = workload
        got = VectorizedEngine(
            PROTEIN, lanes=8, profile=profile
        ).score_batch(query, seqs, blosum62, gaps).scores
        np.testing.assert_array_equal(got, ref, err_msg=profile)

    def test_seeded_fuzz_grid(self, blosum62):
        # The full cross-product on small random batches: any packing /
        # tiling / width interaction bug shows up as a score diff here.
        rng = np.random.default_rng(2024)
        for gaps in (GapModel(10, 2), GapModel(3, 0), GapModel(0, 1)):
            seqs = [
                random_protein(rng, int(n))
                for n in rng.integers(1, 50, 11)
            ]
            query = random_protein(rng, int(rng.integers(3, 28)))
            ref = scalar_scores(query, seqs, blosum62, gaps)
            for lanes in (1, 8):
                for block_cols in (None, 5):
                    for bits in WIDTH_GRID:
                        engine = VectorizedEngine(
                            PROTEIN, lanes=lanes, block_cols=block_cols,
                            saturate_bits=bits,
                        )
                        got = engine.score_batch(
                            query, seqs, blosum62, gaps
                        ).scores
                        np.testing.assert_array_equal(
                            got, ref,
                            err_msg=(
                                f"lanes={lanes} block={block_cols} "
                                f"bits={bits} gaps={gaps}"
                            ),
                        )

    def test_constructor_rejects_bad_knobs(self):
        with pytest.raises(EngineError):
            VectorizedEngine(PROTEIN, lanes=0)
        with pytest.raises(EngineError):
            VectorizedEngine(PROTEIN, block_cols=0)
        with pytest.raises(EngineError):
            VectorizedEngine(PROTEIN, saturate_bits=12)
        with pytest.raises(EngineError):
            make_intertask_engine("simd")


class TestSaturationRedo:
    def test_int8_overflow_triggers_redo_and_stays_exact(
        self, blosum62, gaps
    ):
        # L*30 against L*30 scores 30 * V(L,L) = 120 under BLOSUM62 —
        # past the int8 clamp — while the short decoys stay far below
        # it.  The saturated lane must be redone at full width and the
        # batch must still be bit-identical to scalar.
        seqs = ["L" * 30, "ARN", "L" * 4, "W"]
        query = "L" * 30
        ref = scalar_scores(query, seqs, blosum62, gaps)
        assert ref[0] > 95  # genuinely past the int8 clamp
        engine = VectorizedEngine(PROTEIN, lanes=8, saturate_bits=8)
        batch = engine.score_batch(query, seqs, blosum62, gaps)
        np.testing.assert_array_equal(batch.scores, ref)
        assert engine.stats.redo_lanes > 0, "redo path never fired"
        assert engine.stats.redo_groups > 0
        assert 0 in batch.saturated  # reported in original indices
        assert set(batch.saturated) <= set(range(len(seqs)))

    def test_int16_overflow_triggers_redo_and_stays_exact(self, gaps):
        # A synthetic matrix with match reward 3000: twelve identical
        # residues score 36000, past the int16 clamp (24575), yet the
        # reward still fits the narrow feasibility precheck
        # (3000 <= 32767 - 24575), so the narrow path runs and must
        # detect its own overflow.
        n = PROTEIN.size
        data = np.full((n, n), -2, dtype=np.int32)
        np.fill_diagonal(data, 3000)
        hot = SubstitutionMatrix("HOT3000", PROTEIN, data)
        seqs = ["ACDEFGHIKLMN", "ACD", "WYV"]
        query = "ACDEFGHIKLMN"
        ref = scalar_scores(query, seqs, hot, gaps)
        assert ref[0] == 36000
        engine = VectorizedEngine(PROTEIN, lanes=4, saturate_bits=16)
        batch = engine.score_batch(query, seqs, hot, gaps)
        np.testing.assert_array_equal(batch.scores, ref)
        assert engine.stats.redo_lanes > 0
        assert 0 in batch.saturated

    def test_full_width_never_saturates(self, blosum62, gaps):
        seqs = ["L" * 30, "ARN"]
        engine = VectorizedEngine(PROTEIN, lanes=8, saturate_bits=64)
        batch = engine.score_batch("L" * 30, seqs, blosum62, gaps)
        np.testing.assert_array_equal(
            batch.scores, scalar_scores("L" * 30, seqs, blosum62, gaps)
        )
        assert batch.saturated == []
        assert engine.stats.redo_lanes == 0
        assert engine.stats.narrow_sweeps == 0
        assert engine.stats.wide_sweeps > 0

    def test_unsaturated_batch_reports_no_redo(self, workload, blosum62,
                                               gaps):
        query, seqs, ref = workload
        engine = VectorizedEngine(PROTEIN, lanes=8)
        batch = engine.score_batch(query, seqs, blosum62, gaps)
        np.testing.assert_array_equal(batch.scores, ref)
        assert batch.saturated == []
        assert engine.stats.redo_lanes == 0
        assert engine.stats.narrow_sweeps > 0

    def test_stats_reset(self, blosum62, gaps):
        engine = VectorizedEngine(PROTEIN, lanes=8, saturate_bits=8)
        engine.score_batch("L" * 30, ["L" * 30], blosum62, gaps)
        assert engine.stats.redo_lanes > 0
        engine.stats.reset()
        assert engine.stats.redo_lanes == 0
        assert engine.stats.narrow_sweeps == 0
        assert engine.stats.wide_sweeps == 0
        assert engine.stats.redo_groups == 0

    def test_redo_only_recomputes_saturated_lanes(self, blosum62, gaps):
        # One hot lane among many cold ones: the redo must touch just
        # the flagged lane, not the whole group.
        seqs = ["L" * 30] + ["ARNDCQE"] * 6
        engine = VectorizedEngine(PROTEIN, lanes=8, saturate_bits=8)
        batch = engine.score_batch("L" * 30, seqs, blosum62, gaps)
        np.testing.assert_array_equal(
            batch.scores, scalar_scores("L" * 30, seqs, blosum62, gaps)
        )
        assert engine.stats.redo_lanes == 1
        assert batch.saturated == [0]


class TestGapModelEdges:
    @pytest.mark.parametrize(
        "gaps", (GapModel(3, 0), GapModel(0, 1), GapModel(0, 2)),
        ids=("extend0", "open0", "open0-ext2"),
    )
    def test_degenerate_gap_models(self, rng, blosum62, gaps):
        seqs = [random_protein(rng, int(n)) for n in rng.integers(1, 40, 9)]
        query = random_protein(rng, 20)
        ref = scalar_scores(query, seqs, blosum62, gaps)
        for bits in WIDTH_GRID:
            got = VectorizedEngine(
                PROTEIN, lanes=8, saturate_bits=bits
            ).score_batch(query, seqs, blosum62, gaps).scores
            np.testing.assert_array_equal(
                got, ref, err_msg=f"bits={bits} gaps={gaps}"
            )

    def test_huge_gap_penalties_fall_back_to_wide(self, rng, blosum62):
        # qo + ge past the narrow info_max makes the narrow tile width
        # infeasible; the engine must silently score at full width.
        gaps = GapModel(40_000, 2)
        seqs = [random_protein(rng, int(n)) for n in rng.integers(1, 30, 5)]
        query = random_protein(rng, 15)
        engine = VectorizedEngine(PROTEIN, lanes=8, saturate_bits=16)
        got = engine.score_batch(query, seqs, blosum62, gaps)
        np.testing.assert_array_equal(
            got.scores, scalar_scores(query, seqs, blosum62, gaps)
        )
        assert engine.stats.narrow_sweeps == 0
        assert engine.stats.wide_sweeps > 0


class TestAccounting:
    def test_cells_match_python_kernel(self, workload, blosum62, gaps):
        # GCUPS denominators must agree: both kernels charge the padded
        # lane-group footprint at the same lane width.
        query, seqs, _ = workload
        py = make_intertask_engine("python", lanes=8).score_batch(
            query, seqs, blosum62, gaps
        )
        vec = make_intertask_engine("numpy", lanes=8).score_batch(
            query, seqs, blosum62, gaps
        )
        assert vec.cells == py.cells
        np.testing.assert_array_equal(vec.scores, py.scores)

    def test_scatter_restores_input_order(self, rng, blosum62, gaps):
        # Lane packing sorts by length; the batch must come back in
        # supply order.  Compare per-sequence against score_pair.
        seqs = [random_protein(rng, int(n)) for n in rng.integers(1, 50, 13)]
        query = random_protein(rng, 18)
        engine = VectorizedEngine(PROTEIN, lanes=4)
        batch = engine.score_batch(query, seqs, blosum62, gaps)
        scalar = get_engine("scalar", PROTEIN)
        for i, seq in enumerate(seqs):
            assert batch.scores[i] == scalar.score_pair(
                query, seq, blosum62, gaps
            ).score, f"sequence {i} misplaced by the lane scatter"
