"""Smoke tests for the example scripts (deliverables, so guarded).

Only the quick examples run here (each a subprocess, as a user would);
the slower model-sweep examples are exercised indirectly by the
benchmarks that share their code paths.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = {
    "quickstart.py": ("Smith-Waterman score", "#1"),
    "schedule_gantt.py": ("dynamic", "static"),
    "domain_analysis.py": ("Waterman-Eggert", "E-value"),
    "redundancy_filter.py": ("family-pure", "cluster"),
}


@pytest.mark.parametrize("script,expected", sorted(FAST_EXAMPLES.items()))
def test_example_runs_clean(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in expected:
        assert needle in result.stdout, (script, needle)


def test_every_example_has_module_docstring_and_main():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.lstrip().startswith(('"""', "#!")), script.name
        assert 'if __name__ == "__main__":' in text, script.name
