"""Broadcast payloads must be lean, self-contained and state-free.

Everything that crosses the process boundary — the packed database, the
pre-processed database, chunk tasks — must pickle cleanly and must NOT
drag along ambient process state: the metrics registry, tracers or
trace collectors, or live fault injectors.  Accidentally capturing one
of those (e.g. through a closure or a cached attribute) would silently
re-pickle it per task and desynchronise worker-side state from the
parent's; this suite pins the payload contents down.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.alphabet import PROTEIN
from repro.db.database import SequenceDatabase
from repro.db.preprocess import preprocess_database
from repro.faults.injection import FaultPlan
from repro.parallel import PackedDatabase, SharedDatabaseBroadcast
from repro.parallel.shared import attach_shared_database
from repro.parallel.worker import ChunkTask, EngineConfig
from repro.scoring import BLOSUM62, GapModel
from tests.conftest import random_protein

#: Ambient-state markers that must never appear in a broadcast pickle.
FORBIDDEN_TOKENS = (
    b"repro.metrics",
    b"repro.obs",
    b"MetricsRegistry",
    b"TraceCollector",
    b"Tracer",
    b"FaultInjector",
)


def make_db(rng, n=21) -> SequenceDatabase:
    seqs = [random_protein(rng, int(k)) for k in rng.integers(3, 50, n)]
    return SequenceDatabase(
        "pickle-db", [PROTEIN.encode(s) for s in seqs],
        [f"s{i}" for i in range(n)],
    )


def assert_clean(payload: bytes, what: str) -> None:
    for token in FORBIDDEN_TOKENS:
        assert token not in payload, f"{what} pickle drags in {token!r}"


class TestPreprocessedDatabase:
    def test_round_trip(self, rng):
        db = make_db(rng)
        pre = preprocess_database(db, lanes=4)
        payload = pickle.dumps(pre)
        assert_clean(payload, "PreprocessedDatabase")
        loaded = pickle.loads(payload)
        assert loaded.lanes == pre.lanes
        assert len(loaded.groups) == len(pre.groups)
        for a, b in zip(loaded.groups, pre.groups):
            np.testing.assert_array_equal(a.codes, b.codes)
            np.testing.assert_array_equal(a.indices, b.indices)

    def test_round_trip_after_fingerprint_cache(self, rng):
        # fingerprint() caches a hash on the database; the cache must
        # not make the pickle stateful or dirty.
        db = make_db(rng)
        before = pickle.dumps(preprocess_database(db, lanes=4))
        db.fingerprint()
        after = pickle.dumps(preprocess_database(db, lanes=4))
        assert_clean(after, "PreprocessedDatabase")
        assert pickle.loads(before).lanes == pickle.loads(after).lanes


class TestPackedDatabase:
    def test_round_trip(self, rng):
        packed = PackedDatabase.from_preprocessed(
            preprocess_database(make_db(rng), lanes=4)
        )
        payload = pickle.dumps(packed)
        assert_clean(payload, "PackedDatabase")
        loaded = pickle.loads(payload)
        assert loaded.n_groups == packed.n_groups
        for name, arr in packed.arrays().items():
            np.testing.assert_array_equal(getattr(loaded, name), arr)
        assert loaded._keepalive == ()

    def test_shared_view_pickles_self_contained(self, rng):
        # A shm-backed PackedDatabase is views over segments owned by
        # another object; its pickle must materialise real copies that
        # outlive the broadcast.
        packed = PackedDatabase.from_preprocessed(
            preprocess_database(make_db(rng), lanes=4)
        )
        owner = SharedDatabaseBroadcast(packed)
        attached = None
        try:
            attached = attach_shared_database(owner.handle())
            assert attached._keepalive  # really view-backed
            payload = pickle.dumps(attached)
            loaded = pickle.loads(payload)
        finally:
            for shm in getattr(attached, "_keepalive", ()):
                shm.close()
            owner.close()
        assert_clean(payload, "shared PackedDatabase")
        assert loaded._keepalive == ()
        for name, arr in packed.arrays().items():
            np.testing.assert_array_equal(getattr(loaded, name), arr)

    def test_group_views_match_preprocessed(self, rng):
        pre = preprocess_database(make_db(rng), lanes=4)
        packed = PackedDatabase.from_preprocessed(pre)
        assert packed.n_groups == len(pre.groups)
        for g, grp in enumerate(pre.groups):
            view = packed.group(g)
            np.testing.assert_array_equal(view.codes, grp.codes)
            np.testing.assert_array_equal(view.lengths, grp.lengths)
            np.testing.assert_array_equal(view.indices, grp.indices)


class TestChunkTask:
    def test_round_trip_with_plan(self, rng):
        task = ChunkTask(
            chunk_id=3,
            kind="groups",
            query=PROTEIN.encode(random_protein(rng, 18)),
            matrix=BLOSUM62,
            gaps=GapModel(10, 2),
            engine=EngineConfig(lanes=8, saturate_bits=16),
            group_ids=(0, 1, 2),
            plan=FaultPlan(seed=5, corrupt_rate=0.25),
        )
        payload = pickle.dumps(task)
        # A FaultPlan (pure declarative rates) is fine; a live
        # FaultInjector (carries tracer hooks) is not.
        assert_clean(payload, "ChunkTask")
        loaded = pickle.loads(payload)
        assert loaded.group_ids == task.group_ids
        assert loaded.plan == task.plan
        np.testing.assert_array_equal(loaded.query, task.query)

    def test_task_payload_is_small(self, rng):
        # The whole point of the one-time broadcast: per-task payloads
        # must not scale with the database.
        db = make_db(rng, n=60)
        pre = preprocess_database(db, lanes=8)
        task = ChunkTask(
            chunk_id=0,
            kind="groups",
            query=PROTEIN.encode(random_protein(rng, 24)),
            matrix=BLOSUM62,
            gaps=GapModel(10, 2),
            engine=EngineConfig(lanes=8),
            group_ids=tuple(range(len(pre.groups))),
        )
        broadcast_bytes = PackedDatabase.from_preprocessed(pre).nbytes()
        assert len(pickle.dumps(task)) < 4096 + broadcast_bytes // 10
