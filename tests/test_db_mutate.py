"""Unit tests for the homolog mutation generator."""

import numpy as np
import pytest

from repro.core import sw_score
from repro.db import SyntheticSwissProt
from repro.db.mutate import mutate, plant_homologs
from repro.exceptions import DatabaseError
from tests.conftest import random_codes


class TestMutate:
    def test_zero_rate_is_identity(self, rng):
        seq = random_codes(rng, 50)
        out = mutate(seq, 0.0, rng=rng)
        assert np.array_equal(out, seq)

    def test_output_is_valid_codes(self, rng):
        seq = random_codes(rng, 100)
        out = mutate(seq, 0.4, rng=rng)
        assert out.dtype == np.uint8
        assert out.size > 0
        assert int(out.max()) < 20

    def test_rate_controls_divergence(self, rng):
        # Higher mutation rates must lower the SW score against the
        # parent, on average.
        seq = random_codes(rng, 150)
        self_score = sw_score(seq, seq)
        scores = {}
        for rate in (0.1, 0.5):
            trials = [
                sw_score(seq, mutate(seq, rate, rng=rng)) for _ in range(5)
            ]
            scores[rate] = float(np.mean(trials))
        assert self_score > scores[0.1] > scores[0.5]

    def test_indels_change_length(self, rng):
        seq = random_codes(rng, 200)
        outs = [
            mutate(seq, 0.3, indel_fraction=1.0, rng=rng) for _ in range(5)
        ]
        assert any(len(o) != len(seq) for o in outs)

    def test_no_indels_preserves_length(self, rng):
        seq = random_codes(rng, 80)
        out = mutate(seq, 0.5, indel_fraction=0.0, rng=rng)
        assert len(out) == len(seq)

    def test_deterministic_with_seeded_rng(self, rng):
        seq = random_codes(rng, 60)
        a = mutate(seq, 0.3, rng=np.random.default_rng(1))
        b = mutate(seq, 0.3, rng=np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_conservative_substitution_bias(self, rng):
        # Mutants keep higher scores than uniformly random replacements.
        from repro.scoring import BLOSUM62

        seq = random_codes(rng, 300)
        mutant = mutate(seq, 1.0, indel_fraction=0.0,
                        rng=np.random.default_rng(2))
        uniform = np.random.default_rng(2).integers(0, 20, 300).astype(np.uint8)
        biased = int(BLOSUM62.lookup(seq, mutant).sum())
        random_pairs = int(BLOSUM62.lookup(seq, uniform).sum())
        assert biased > random_pairs

    def test_invalid_parameters(self, rng):
        seq = random_codes(rng, 10)
        with pytest.raises(DatabaseError):
            mutate(seq, 1.5)
        with pytest.raises(DatabaseError):
            mutate(seq, 0.1, indel_fraction=-0.1)
        with pytest.raises(DatabaseError):
            mutate(seq, 0.1, max_indel=0)


class TestPlantHomologs:
    @pytest.fixture(scope="class")
    def background(self):
        return SyntheticSwissProt().generate(scale=0.0001)

    def test_counts_and_indices(self, background, rng):
        queries = {"qA": random_codes(rng, 80), "qB": random_codes(rng, 60)}
        db, planted = plant_homologs(background, queries, [0.1, 0.4], per_rate=2)
        assert len(db) == len(background) + 2 * 2 * 2
        assert len(planted) == 8
        # Indices point at actual homolog entries.
        for p in planted:
            assert db.headers[p.index].startswith(f"HOM|{p.parent}|")

    def test_homologs_detectable_by_score(self, background, rng):
        query = random_codes(rng, 100)
        db, planted = plant_homologs(background, {"q": query}, [0.1])
        from repro.search import SearchPipeline

        result = SearchPipeline().search(query, db, top_k=1)
        assert result.hits[0].index == planted[0].index

    def test_deterministic(self, background, rng):
        queries = {"q": random_codes(rng, 50)}
        db1, p1 = plant_homologs(background, queries, [0.2], seed=7)
        db2, p2 = plant_homologs(background, queries, [0.2], seed=7)
        assert p1 == p2
        assert all(
            np.array_equal(a, b)
            for a, b in zip(db1.sequences, db2.sequences)
        )

    def test_invalid_inputs(self, background, rng):
        with pytest.raises(DatabaseError):
            plant_homologs(background, {}, [0.1])
        with pytest.raises(DatabaseError):
            plant_homologs(background, {"q": random_codes(rng, 10)}, [1.5])
        with pytest.raises(DatabaseError):
            plant_homologs(
                background, {"q": random_codes(rng, 10)}, [0.1], per_rate=0
            )
