"""Unit tests specific to the Farrar striped engine."""

import numpy as np
import pytest

from repro.core import StripedEngine, get_engine
from repro.core.striped import build_striped_profile
from repro.exceptions import EngineError
from repro.scoring import BLOSUM62, GapModel, match_mismatch_matrix, paper_gap_model
from tests.conftest import random_protein

MM = match_mismatch_matrix(5, -4)


class TestStripedProfile:
    def test_layout_mapping(self):
        from repro.alphabet import PROTEIN

        query = PROTEIN.encode("ARNDCQEG")  # length 8
        profile, s = build_striped_profile(query, BLOSUM62, lanes=4)
        assert s == 2
        # profile[c, t, k] corresponds to query position k*s + t.
        for t in range(2):
            for k in range(4):
                qpos = k * 2 + t
                assert profile[0, t, k] == BLOSUM62.data[0, query[qpos]]

    def test_padding_positions_poisoned(self):
        from repro.alphabet import PROTEIN

        query = PROTEIN.encode("ARNDC")  # 5 residues, 4 lanes -> s=2, 3 pads
        profile, s = build_striped_profile(query, BLOSUM62, lanes=4)
        idx = np.arange(s * 4).reshape(4, s).T
        pad_slots = idx >= 5
        assert (profile[:, pad_slots] < -1_000_000).all()

    def test_invalid_lanes(self):
        from repro.alphabet import PROTEIN

        with pytest.raises(EngineError):
            build_striped_profile(PROTEIN.encode("ARN"), BLOSUM62, lanes=0)


class TestLazyF:
    """Inputs engineered so F must cross segment boundaries."""

    def test_long_vertical_gap_through_segments(self):
        # The query's gap run spans several stripe segments; without a
        # correct lazy-F pass the cross-segment propagation is lost.
        oracle = get_engine("scalar")
        g = GapModel(2, 1)
        q = "AAAA" + "G" * 17 + "TTTT"  # long insert in the query
        d = "AAAATTTT"
        for lanes in (2, 4, 8):
            eng = StripedEngine(lanes=lanes)
            assert (
                eng.score_pair(q, d, MM, g).score
                == oracle.score_pair(q, d, MM, g).score
            ), lanes

    def test_multiple_wraps(self, rng):
        # Tiny gap costs + a long query force repeated lazy-F wraps.
        oracle = get_engine("scalar")
        g = GapModel(1, 1)
        q = random_protein(rng, 33)
        d = random_protein(rng, 7)
        eng = StripedEngine(lanes=8)
        assert (
            eng.score_pair(q, d, MM, g).score
            == oracle.score_pair(q, d, MM, g).score
        )

    def test_zero_extend_rejected(self):
        eng = StripedEngine(lanes=4)
        with pytest.raises(EngineError, match="gap extend"):
            eng.score_pair("ACD", "ACD", BLOSUM62, GapModel(5, 0))


class TestLaneConfigurations:
    @pytest.mark.parametrize("lanes", [1, 2, 3, 5, 8, 16])
    def test_any_lane_count_correct(self, lanes, rng):
        oracle = get_engine("scalar")
        g = paper_gap_model()
        q = random_protein(rng, 21)
        d = random_protein(rng, 34)
        assert (
            StripedEngine(lanes=lanes).score_pair(q, d, BLOSUM62, g).score
            == oracle.score_pair(q, d, BLOSUM62, g).score
        )

    def test_query_shorter_than_lanes(self, rng):
        oracle = get_engine("scalar")
        g = paper_gap_model()
        q = random_protein(rng, 3)
        d = random_protein(rng, 20)
        assert (
            StripedEngine(lanes=16).score_pair(q, d, BLOSUM62, g).score
            == oracle.score_pair(q, d, BLOSUM62, g).score
        )

    def test_invalid_lane_count(self):
        with pytest.raises(EngineError):
            StripedEngine(lanes=0)
