"""Tests for the fault-injection substrate and the resilient runtime."""

import numpy as np
import pytest

from repro.db import SyntheticSwissProt
from repro.devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
from repro.exceptions import (
    CircuitOpen,
    DeadlineExceeded,
    DeviceTimeout,
    FaultInjected,
    FaultPlanError,
)
from repro.faults import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    FaultInjector,
    FaultKind,
    FaultPlan,
    RetryPolicy,
    Timeout,
    payload_checksum,
)
from repro.perfmodel import DevicePerformanceModel
from repro.runtime import (
    PCIE_GEN2_X16,
    HybridExecutor,
    OffloadRegion,
    ResilientHybridExecutor,
)
from repro.search import SearchOptions, SearchPipeline, StreamingSearch


@pytest.fixture(scope="module")
def models():
    return (
        DevicePerformanceModel(XEON_E5_2670_DUAL),
        DevicePerformanceModel(XEON_PHI_57XX),
    )


@pytest.fixture(scope="module")
def lengths():
    return SyntheticSwissProt().lengths(scale=0.05)


MESSY_PLAN = FaultPlan(
    seed=7, transfer_fail_rate=0.12, hang_rate=0.05, corrupt_rate=0.05,
    straggler_rate=0.08, outage_unit=12,
)


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse("seed=7, fail=0.1, corrupt=0.05, outage=3")
        assert plan.seed == 7
        assert plan.transfer_fail_rate == 0.1
        assert plan.corrupt_rate == 0.05
        assert plan.outage_unit == 3

    def test_parse_rejects_unknown_keys_and_bad_values(self):
        with pytest.raises(FaultPlanError, match="unknown fault-plan key"):
            FaultPlan.parse("explode=1.0")
        with pytest.raises(FaultPlanError, match="not a float"):
            FaultPlan.parse("fail=lots")
        with pytest.raises(FaultPlanError, match="key=value"):
            FaultPlan.parse("fail")

    def test_validation(self):
        with pytest.raises(FaultPlanError, match="in \\[0, 1\\]"):
            FaultPlan(transfer_fail_rate=1.5)
        with pytest.raises(FaultPlanError, match="sum to at most 1"):
            FaultPlan(transfer_fail_rate=0.6, corrupt_rate=0.6)
        with pytest.raises(FaultPlanError, match="straggler factor"):
            FaultPlan(straggler_factor=0.5)

    def test_null_plan_detection(self):
        assert FaultPlan(seed=99).is_null
        assert not FaultPlan(corrupt_rate=0.01).is_null
        assert not FaultPlan(outage_unit=0).is_null
        assert not FaultPlan(worker_kill_rate=0.01).is_null
        assert not FaultPlan(worker_hang_units=(3,)).is_null

    def test_parse_process_fault_keys(self):
        plan = FaultPlan.parse(
            "seed=5, worker-kill=0.1, worker-hang=0.05, "
            "worker-hang-seconds=0.2, kill-units=1:4, hang-units=2"
        )
        assert plan.worker_kill_rate == 0.1
        assert plan.worker_hang_rate == 0.05
        assert plan.worker_hang_seconds == 0.2
        assert plan.worker_kill_units == (1, 4)
        assert plan.worker_hang_units == (2,)

    def test_process_rates_do_not_count_against_transmission_budget(self):
        # Process faults draw from an independent stream; their rates
        # must not trip the "rates sum to at most 1" transmission check.
        FaultPlan(transfer_fail_rate=0.5, corrupt_rate=0.5,
                  worker_kill_rate=0.9)
        with pytest.raises(FaultPlanError, match="in \\[0, 1\\]"):
            FaultPlan(worker_kill_rate=1.5)


class TestProcessFaultDecisions:
    def test_explicit_units_fire_every_attempt(self):
        inj = FaultInjector(FaultPlan(
            seed=0, worker_kill_units=(2,), worker_hang_units=(5,)
        ))
        for attempt in range(4):
            assert inj.process_decision(2, attempt).kind \
                is FaultKind.WORKER_KILL
            assert inj.process_decision(5, attempt).kind \
                is FaultKind.WORKER_HANG
        assert inj.process_decision(0, 0).kind is None

    def test_probabilistic_draws_are_deterministic(self):
        plan = FaultPlan(seed=9, worker_kill_rate=0.3, worker_hang_rate=0.2)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        grid = [(u, t) for u in range(50) for t in range(3)]
        assert [a.process_decision(u, t).kind for u, t in grid] == [
            b.process_decision(u, t).kind for u, t in grid
        ]
        kinds = {a.process_decision(u, 0).kind for u in range(200)}
        assert FaultKind.WORKER_KILL in kinds
        assert FaultKind.WORKER_HANG in kinds

    def test_process_stream_independent_of_corruption_stream(self):
        # Adding process faults must not perturb which units the
        # corruption stream hits — redo accounting stays bit-identical.
        base = FaultInjector(FaultPlan(seed=4, corrupt_rate=0.3))
        mixed = FaultInjector(FaultPlan(
            seed=4, corrupt_rate=0.3, worker_kill_rate=0.5
        ))
        assert [base.decide(u).kind for u in range(100)] == [
            mixed.decide(u).kind for u in range(100)
        ]


class TestDeadline:
    def test_after_and_remaining(self):
        d = Deadline.after(60.0)
        assert 0.0 < d.remaining() <= 60.0
        assert not d.expired
        d.check("setup")  # plenty of budget: must not raise

    def test_expired_raises_with_context(self):
        import time

        d = Deadline(expires_at=time.time() - 1.0)
        assert d.expired
        assert d.remaining() < 0.0
        with pytest.raises(DeadlineExceeded, match="shard 3") as exc_info:
            d.check("shard 3")
        assert exc_info.value.remaining < 0.0

    def test_validation(self):
        with pytest.raises(FaultPlanError):
            Deadline.after(0.0)

    def test_picklable(self):
        import pickle

        d = Deadline.after(30.0)
        assert pickle.loads(pickle.dumps(d)) == d


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultInjector(MESSY_PLAN)
        b = FaultInjector(MESSY_PLAN)
        grid = [(u, t) for u in range(40) for t in range(4)]
        assert [a.decide(u, t) for u, t in grid] == [
            b.decide(u, t) for u, t in grid
        ]

    def test_decision_independent_of_call_order(self):
        a = FaultInjector(MESSY_PLAN)
        b = FaultInjector(MESSY_PLAN)
        for u in range(10):
            a.decide(u)
        assert a.decide(11, 2) == b.decide(11, 2)

    def test_different_seeds_differ(self):
        plan_a = FaultPlan(seed=1, transfer_fail_rate=0.5)
        plan_b = FaultPlan(seed=2, transfer_fail_rate=0.5)
        grid = [(u, 0) for u in range(64)]
        kinds_a = [FaultInjector(plan_a).decide(u, t).kind for u, t in grid]
        kinds_b = [FaultInjector(plan_b).decide(u, t).kind for u, t in grid]
        assert kinds_a != kinds_b

    def test_rates_roughly_respected(self):
        inj = FaultInjector(FaultPlan(seed=5, transfer_fail_rate=0.25))
        fails = sum(
            inj.decide(u).kind is FaultKind.TRANSFER_FAIL for u in range(2000)
        )
        assert 0.20 < fails / 2000 < 0.30

    def test_outage_is_permanent_and_total(self):
        inj = FaultInjector(FaultPlan(seed=0, outage_unit=5))
        for attempt in range(6):
            assert inj.decide(5, attempt).kind is FaultKind.OUTAGE
            assert inj.decide(9, attempt).kind is FaultKind.OUTAGE
        assert inj.decide(4, 0).kind is None

    def test_corruption_always_breaks_checksum(self):
        inj = FaultInjector(FaultPlan(seed=3, corrupt_rate=1.0))
        scores = np.arange(50, dtype=np.int64)
        received, declared = inj.transmit(0, 0, scores)
        assert payload_checksum(received) != declared
        assert payload_checksum(scores) == declared  # original untouched


class TestRetryPolicy:
    def test_backoff_ladder_caps(self):
        p = RetryPolicy(max_retries=5, base_delay=0.1, multiplier=2.0,
                        max_delay=0.5, jitter=0.0)
        assert p.schedule() == [0.1, 0.2, 0.4, 0.5, 0.5]
        assert p.backoff(0) == 0.0

    def test_jitter_defaults_off(self):
        # Dithering is opt-in: the default policy keeps the exact
        # undithered ladder existing callers rely on.
        assert RetryPolicy().jitter == 0.0
        p = RetryPolicy(max_retries=3, base_delay=0.1, multiplier=2.0,
                        max_delay=0.5)
        assert p.schedule() == [0.1, 0.2, 0.4]

    def test_jitter_is_deterministic_and_bounded(self):
        p = RetryPolicy(max_retries=4, base_delay=0.1, multiplier=2.0,
                        max_delay=0.5, jitter=0.25, seed=11)
        q = RetryPolicy(max_retries=4, base_delay=0.1, multiplier=2.0,
                        max_delay=0.5, jitter=0.25, seed=11)
        bare = RetryPolicy(max_retries=4, base_delay=0.1, multiplier=2.0,
                           max_delay=0.5, jitter=0.0)
        # Same (seed, unit, attempt) -> same delay, every time.
        assert p.schedule(unit=3) == q.schedule(unit=3)
        # Different units decorrelate their retry storms.
        assert p.schedule(unit=3) != p.schedule(unit=4)
        # Jitter stays within +/- 25% of the undithered ladder.
        for attempt in range(1, 5):
            base = bare.backoff(attempt)
            got = p.backoff(attempt, unit=3)
            assert abs(got - base) <= 0.25 * base + 1e-12

    def test_jitter_validation(self):
        with pytest.raises(FaultPlanError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(FaultPlanError):
            RetryPolicy(jitter=1.0)

    def test_allows_counts_the_first_try(self):
        p = RetryPolicy(max_retries=2)
        assert [p.allows(a) for a in range(4)] == [True, True, True, False]

    def test_validation(self):
        with pytest.raises(FaultPlanError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(FaultPlanError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(FaultPlanError):
            RetryPolicy(base_delay=0.5, max_delay=0.1)
        with pytest.raises(FaultPlanError):
            Timeout(0.0)


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        br = CircuitBreaker(failure_threshold=3, cooldown_seconds=10.0)
        for t in range(3):
            br.check(float(t))
            br.record_failure(float(t))
        assert br.state is BreakerState.OPEN
        with pytest.raises(CircuitOpen, match="cooling down"):
            br.check(5.0)

    def test_success_resets_the_failure_streak(self):
        br = CircuitBreaker(failure_threshold=2, cooldown_seconds=1.0)
        br.record_failure(0.0)
        br.record_success(0.5)
        br.record_failure(1.0)
        assert br.state is BreakerState.CLOSED

    def test_half_open_probe_closes_on_success(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_seconds=1.0)
        br.record_failure(0.0)
        assert br.state is BreakerState.OPEN
        br.check(2.0)  # past cooldown: one probe admitted
        assert br.state is BreakerState.HALF_OPEN
        with pytest.raises(CircuitOpen, match="probe in flight"):
            br.check(2.0)
        br.record_success(2.5)
        assert br.state is BreakerState.CLOSED

    def test_half_open_probe_reopens_on_failure(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_seconds=1.0)
        br.record_failure(0.0)
        br.check(2.0)
        br.record_failure(2.5)
        assert br.state is BreakerState.OPEN
        with pytest.raises(CircuitOpen):
            br.check(3.0)  # new cooldown runs from the probe failure


class TestFaultedOffloadRegion:
    def test_transfer_fail_surfaces_at_wait(self):
        inj = FaultInjector(FaultPlan(seed=0, outage_unit=0))
        region = OffloadRegion(PCIE_GEN2_X16, injector=inj)
        h = region.run_async(in_bytes=1000, compute_seconds=1.0, unit=0)
        with pytest.raises(FaultInjected, match="outage") as ei:
            region.wait(h)
        # The abort is observable mid-transfer, before compute would end.
        assert ei.value.at < h.ready_at
        with pytest.raises(Exception, match="already waited"):
            region.wait(h)

    def test_hang_detected_by_watchdog(self):
        inj = FaultInjector(FaultPlan(seed=0, hang_rate=1.0, hang_seconds=50.0))
        region = OffloadRegion(PCIE_GEN2_X16, injector=inj)
        h = region.run_async(compute_seconds=0.5, unit=1)
        assert h.ready_at > 50.0
        with pytest.raises(DeviceTimeout) as ei:
            region.wait(h, now=0.0, deadline=2.0)
        assert ei.value.at == 2.0

    def test_straggler_slows_but_completes(self):
        inj = FaultInjector(
            FaultPlan(seed=0, straggler_rate=1.0, straggler_factor=3.0)
        )
        region = OffloadRegion(PCIE_GEN2_X16, injector=inj)
        h = region.run_async(compute_seconds=1.0, unit=2)
        assert region.wait(h) == pytest.approx(3.0)

    def test_kernel_skipped_on_faulted_attempt(self):
        inj = FaultInjector(FaultPlan(seed=0, outage_unit=0))
        region = OffloadRegion(PCIE_GEN2_X16, injector=inj)
        ran = []
        h = region.run_async(kernel=lambda: ran.append(1), unit=0)
        with pytest.raises(FaultInjected):
            region.wait(h)
        assert ran == []


class TestResilientExecutor:
    def test_zero_fault_plan_matches_hybrid_exactly(self, models, lengths):
        xeon, phi = models
        base = HybridExecutor(xeon, phi).run(lengths, 1000, 0.55)
        rex = ResilientHybridExecutor(
            xeon, phi, injector=FaultInjector(FaultPlan(seed=123))
        )
        r = rex.run(lengths, 1000, 0.55)
        assert abs(r.total_seconds - base.total_seconds) < 1e-9
        assert r.mode == "healthy"
        assert not r.degraded and r.faults_injected == 0
        no_injector = ResilientHybridExecutor(xeon, phi).run(lengths, 1000, 0.55)
        assert abs(no_injector.total_seconds - base.total_seconds) < 1e-9

    def test_faults_degrade_but_complete(self, models, lengths):
        xeon, phi = models
        rex = ResilientHybridExecutor(
            xeon, phi, injector=FaultInjector(MESSY_PLAN),
            retry=RetryPolicy(max_retries=2), timeout=Timeout(5.0), chunks=16,
        )
        r = rex.run(lengths, 1000, 0.55)
        assert r.degraded
        assert r.chunks_reclaimed > 0
        assert r.reclaimed_cells > 0
        assert r.faults_injected > 0
        assert r.gcups < r.baseline_gcups
        assert r.gcups_lost > 0
        assert r.total_seconds >= max(r.host_seconds, r.device_seconds)
        # The outage hits chunks 12..15; earlier chunks can still succeed.
        assert 0 < r.chunks_reclaimed < r.chunks

    def test_fault_handling_is_deterministic(self, models, lengths):
        xeon, phi = models

        def once():
            rex = ResilientHybridExecutor(
                xeon, phi, injector=FaultInjector(MESSY_PLAN),
                retry=RetryPolicy(max_retries=2),
                timeout=Timeout(5.0), chunks=16,
            )
            return rex.run(lengths, 1000, 0.55)

        a, b = once(), once()
        assert a.total_seconds == b.total_seconds
        assert a.timeline == b.timeline

    def test_repeated_runs_on_one_executor_are_stable(self, models, lengths):
        xeon, phi = models
        rex = ResilientHybridExecutor(
            xeon, phi, injector=FaultInjector(MESSY_PLAN),
            retry=RetryPolicy(max_retries=2), timeout=Timeout(5.0), chunks=16,
        )
        a = rex.run(lengths, 1000, 0.55)
        b = rex.run(lengths, 1000, 0.55)  # fresh breaker per run
        assert a.timeline == b.timeline

    def test_total_outage_degrades_to_host_only(self, models, lengths):
        xeon, phi = models
        rex = ResilientHybridExecutor(
            xeon, phi,
            injector=FaultInjector(FaultPlan(seed=1, outage_unit=0)),
            retry=RetryPolicy(max_retries=1), chunks=8,
        )
        r = rex.run(lengths, 1000, 0.55)
        assert r.mode == "host-only"
        assert r.chunks_reclaimed == r.chunks
        assert r.reclaim_seconds > 0
        # Every cell still gets computed: reclaimed cells are the device share.
        assert r.reclaimed_cells < r.cells

    def test_empty_lengths_rejected(self, models):
        xeon, phi = models
        rex = ResilientHybridExecutor(xeon, phi)
        with pytest.raises(Exception, match="empty"):
            rex.run(np.empty(0, dtype=np.int64), 100, 0.5)


class TestResilientSearchCorrectness:
    QUERY = (
        "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQVKVKALPDAQ"
        "FEVVHSLAKWKRQTLGQHDFSAGEGLYTHMKALRPDEDRLSPLHSVYVDQWDWE"
    )

    @pytest.fixture(scope="class")
    def db(self):
        return SyntheticSwissProt().generate(scale=0.001)

    @pytest.fixture(scope="class")
    def reference_scores(self, db):
        return SearchPipeline().search(self.QUERY, db).scores

    def test_host_reclaim_is_score_identical(self, models, db, reference_scores):
        xeon, phi = models
        rex = ResilientHybridExecutor(
            xeon, phi, injector=FaultInjector(MESSY_PLAN),
            retry=RetryPolicy(max_retries=2), timeout=Timeout(5.0), chunks=16,
        )
        out = rex.search(self.QUERY, db, device_fraction=0.55, top_k=10)
        assert np.array_equal(out.result.scores, reference_scores)
        assert out.resilience.degraded
        assert out.resilience.reclaimed_cells > 0
        ranked = [h.score for h in out.result.hits]
        assert ranked == sorted(ranked, reverse=True)

    def test_pipeline_checksum_guard_redoes_corrupted_groups(
        self, db, reference_scores
    ):
        inj = FaultInjector(FaultPlan(seed=11, corrupt_rate=0.5))
        faulted = SearchPipeline(SearchOptions(injector=inj)).search(self.QUERY, db)
        assert np.array_equal(faulted.scores, reference_scores)
        assert faulted.corrupted_redone > 0

    def test_streaming_checksum_guard(self, db):
        from repro.db.fasta import FastaRecord

        records = [
            FastaRecord(header=h, sequence=db.alphabet.decode(s))
            for h, s in zip(db.headers, db.sequences)
        ]
        clean = StreamingSearch(SearchOptions(chunk_size=32)).search_records(
            self.QUERY, records
        )
        faulted = StreamingSearch(SearchOptions(
            chunk_size=32,
            injector=FaultInjector(FaultPlan(seed=11, corrupt_rate=0.5)),
        )).search_records(self.QUERY, records)
        assert [h.score for h in faulted.hits] == [h.score for h in clean.hits]
        assert faulted.corrupted_redone > 0

    def test_persistent_corruption_finally_raises(self, db):
        inj = FaultInjector(FaultPlan(seed=1, corrupt_rate=1.0))
        with pytest.raises(FaultInjected, match="still corrupted"):
            SearchPipeline(SearchOptions(injector=inj)).search(self.QUERY, db)
