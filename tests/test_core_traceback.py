"""Traceback validity tests (paper Section II step 4)."""

import pytest

from repro.core import align_pair, get_engine
from repro.core.types import Traceback
from repro.scoring import BLOSUM62, GapModel, match_mismatch_matrix, paper_gap_model
from tests.conftest import random_protein

MM = match_mismatch_matrix(5, -4)


def rescore(tb: Traceback, matrix, gaps) -> int:
    """Independently re-score an alignment from its aligned strings."""
    total = 0
    gap_q = gap_d = 0
    for a, b in zip(tb.aligned_query, tb.aligned_db):
        if a == "-":
            gap_q += 1
            if gap_d:
                total -= gaps.penalty(gap_d)
                gap_d = 0
        elif b == "-":
            gap_d += 1
            if gap_q:
                total -= gaps.penalty(gap_q)
                gap_q = 0
        else:
            if gap_q:
                total -= gaps.penalty(gap_q)
                gap_q = 0
            if gap_d:
                total -= gaps.penalty(gap_d)
                gap_d = 0
            total += matrix.score(a, b)
    total -= gaps.penalty(gap_q) + gaps.penalty(gap_d)
    return total


class TestTracebackCorrectness:
    def test_alignment_rescores_to_reported_score(self, rng):
        g = paper_gap_model()
        for _ in range(15):
            a = random_protein(rng, int(rng.integers(2, 40)))
            b = random_protein(rng, int(rng.integers(2, 40)))
            tb = align_pair(a, b, BLOSUM62, g)
            if tb.score:
                assert rescore(tb, BLOSUM62, g) == tb.score

    def test_score_matches_engine(self, rng):
        g = paper_gap_model()
        eng = get_engine("scalar")
        for _ in range(10):
            a = random_protein(rng, int(rng.integers(2, 30)))
            b = random_protein(rng, int(rng.integers(2, 30)))
            assert (
                align_pair(a, b, BLOSUM62, g).score
                == eng.score_pair(a, b, BLOSUM62, g).score
            )

    def test_aligned_strings_match_coordinates(self, rng):
        g = paper_gap_model()
        a = random_protein(rng, 30)
        b = random_protein(rng, 30)
        tb = align_pair(a, b, BLOSUM62, g)
        if tb.score:
            # De-gapped rows equal the claimed subsequences.
            assert tb.aligned_query.replace("-", "") == a[tb.start_query - 1 : tb.end_query]
            assert tb.aligned_db.replace("-", "") == b[tb.start_db - 1 : tb.end_db]

    def test_gapped_alignment_renders_gaps(self):
        g = GapModel(0, 1)
        tb = align_pair("AAATTT", "AAAGTTT", MM, g)
        assert tb.score == 29
        assert tb.aligned_query == "AAA-TTT"
        assert tb.aligned_db == "AAAGTTT"
        assert tb.cigar() == "3M1D3M"

    def test_gap_in_db(self):
        g = GapModel(0, 1)
        tb = align_pair("AAAGTTT", "AAATTT", MM, g)
        assert tb.aligned_db == "AAA-TTT"
        assert tb.cigar() == "3M1I3M"

    def test_zero_score_yields_empty_alignment(self):
        tb = align_pair("AAA", "TTT", MM, paper_gap_model())
        assert tb.score == 0
        assert tb.aligned_query == "" and tb.aligned_db == ""
        assert tb.length == 0
        assert tb.identity == 0.0

    def test_identity_of_exact_match(self):
        tb = align_pair("WCHK", "WCHK", BLOSUM62, paper_gap_model())
        assert tb.identity == 1.0
        assert tb.gaps == 0

    def test_pretty_contains_score_and_rows(self):
        tb = align_pair("WCHK", "WCHK", BLOSUM62, paper_gap_model())
        text = tb.pretty()
        assert "score=" in text and "Q WCHK" in text and "D WCHK" in text

    def test_local_coordinates_trim_ends(self):
        tb = align_pair("GGGWCHKGGG", "WCHK", BLOSUM62, paper_gap_model())
        assert (tb.start_query, tb.end_query) == (4, 7)
        assert (tb.start_db, tb.end_db) == (1, 4)


class TestTracebackTypes:
    def test_unequal_rows_rejected(self):
        with pytest.raises(ValueError):
            Traceback(1, "AB", "A", 1, 2, 1, 1)

    def test_cigar_run_length_encoding(self):
        tb = Traceback(10, "AB--C", "ABXX-", 1, 3, 1, 4)
        assert tb.cigar() == "2M2D1I"
