"""Figure 4 — Xeon GCUPS vs query length at 32 threads.

Paper: "the query length has practically no impact on the performance in
most of experiments.  However, it exists a light improvement trend in
sequence-profile versions ... 25.1 and 32 GCUPS for simd-SP and
intrinsic-SP respectively" (at the long end of the 20-query sweep).
"""

from __future__ import annotations

import pytest

from repro.db import PAPER_QUERIES
from repro.metrics import format_table, paper_comparison
from repro.perfmodel import RunConfig
from repro.perfmodel.efficiency import query_length_sweep

from conftest import run_once

QUERY_LENGTHS = [q.length for q in PAPER_QUERIES]

VARIANTS = [
    RunConfig(vectorization="simd", profile="query"),
    RunConfig(vectorization="simd", profile="sequence"),
    RunConfig(vectorization="intrinsic", profile="query"),
    RunConfig(vectorization="intrinsic", profile="sequence"),
]


@pytest.mark.benchmark(group="fig4")
def test_fig4_xeon_query_length(benchmark, xeon_model, xeon_workload, show):
    def compute():
        return {
            cfg.label: query_length_sweep(
                xeon_model, xeon_workload, QUERY_LENGTHS, cfg
            )
            for cfg in VARIANTS
        }

    series = run_once(benchmark, compute)

    rows = [
        [q] + [series[cfg.label][q] for cfg in VARIANTS]
        for q in QUERY_LENGTHS
    ]
    show(format_table(
        ["qlen"] + [cfg.label for cfg in VARIANTS], rows,
        title="Figure 4 — Xeon GCUPS vs query length (32 threads)",
    ))
    show(paper_comparison([
        ("Fig.4 simd-SP peak", 25.1, max(series["simd-SP"].values())),
        ("Fig.4 intrinsic-SP peak", 32.0, max(series["intrinsic-SP"].values())),
    ]))
    benchmark.extra_info["series"] = {
        k: {str(q): v for q, v in s.items()} for k, s in series.items()
    }

    # Peaks within 10% of the paper's quoted values.
    assert max(series["simd-SP"].values()) == pytest.approx(25.1, rel=0.10)
    assert max(series["intrinsic-SP"].values()) == pytest.approx(32.0, rel=0.10)
    # "Light improvement trend": modest, monotone-ish rise for SP.
    sp = series["intrinsic-SP"]
    assert 1.0 < sp[5478] / sp[144] < 1.25
    # SP > QP at every query length (the Xeon's gather-less AVX).
    for q in QUERY_LENGTHS:
        assert series["intrinsic-SP"][q] > series["intrinsic-QP"][q]
