"""Guardrail: the untraced (NullTracer) hot path stays effectively free.

The instrumentation added to :class:`~repro.search.SearchPipeline` and
friends runs on *every* search, traced or not — each instrumented site
calls ``get_tracer().span(...)`` and gets the shared null span back when
no tracer is active.  This benchmark bounds what that null path costs:

1. micro-time one null span entry/exit (plus the ``if sp:`` guard),
2. count how many span/event operations one real search performs (by
   running it once under a recording :class:`~repro.obs.Tracer`),
3. compare ``ops x cost_per_op`` against the measured untraced search
   wall time and assert the ratio stays under **5%**.

Runs as a plain pytest test (no pytest-benchmark fixture, so CI can
execute it with the stock runner) and as a script::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.db import SyntheticSwissProt
from repro.obs import NULL_TRACER, Tracer, get_tracer, use_tracer
from repro.search import SearchPipeline

MAX_OVERHEAD_FRACTION = 0.05

DB = SyntheticSwissProt().generate(scale=0.0002)
RNG = np.random.default_rng(11)
QUERY = RNG.integers(0, 20, 200).astype(np.uint8)

NULL_OP_ITERATIONS = 50_000
SEARCH_REPEATS = 3


def time_null_op(iterations: int = NULL_OP_ITERATIONS) -> float:
    """Seconds per null-tracer span entry/exit (the untraced idiom)."""
    tracer = NULL_TRACER
    t0 = time.perf_counter()
    for _ in range(iterations):
        with tracer.span("bench.op") as sp:
            if sp:  # pragma: no cover - never taken on the null path
                sp.set_attribute("x", 1)
    elapsed = time.perf_counter() - t0
    return elapsed / iterations


def count_ops_per_search() -> int:
    """Span + event operations one pipeline search performs."""
    tracer = Tracer()
    with use_tracer(tracer):
        SearchPipeline().search(QUERY, DB, top_k=5)
    spans = tracer.collector.spans()
    return len(spans) + sum(len(s.events) for s in spans)


def time_untraced_search(repeats: int = SEARCH_REPEATS) -> float:
    """Median wall seconds of an untraced (NullTracer) search."""
    assert get_tracer() is NULL_TRACER, "benchmark requires the null default"
    pipe = SearchPipeline()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        pipe.search(QUERY, DB, top_k=5)
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples))


def measure() -> dict:
    per_op = time_null_op()
    ops = count_ops_per_search()
    search_seconds = time_untraced_search()
    overhead = (ops * per_op) / search_seconds
    return {
        "null_op_ns": per_op * 1e9,
        "ops_per_search": ops,
        "search_seconds": search_seconds,
        "overhead_fraction": overhead,
    }


def test_null_tracer_overhead_below_budget():
    stats = measure()
    assert stats["overhead_fraction"] < MAX_OVERHEAD_FRACTION, (
        f"null-path instrumentation costs "
        f"{stats['overhead_fraction']:.2%} of an untraced search "
        f"(budget {MAX_OVERHEAD_FRACTION:.0%}): {stats}"
    )


if __name__ == "__main__":
    stats = measure()
    print(f"null span op            : {stats['null_op_ns']:8.1f} ns")
    print(f"ops per pipeline search : {stats['ops_per_search']:8d}")
    print(f"untraced search         : {stats['search_seconds'] * 1e3:8.2f} ms")
    print(f"null-path overhead      : {stats['overhead_fraction']:8.4%} "
          f"(budget {MAX_OVERHEAD_FRACTION:.0%})")
    if stats["overhead_fraction"] >= MAX_OVERHEAD_FRACTION:
        raise SystemExit("FAIL: overhead budget exceeded")
    print("OK")
