"""Real process-parallel speedup vs the modelled OpenMP curve.

Everything else in this harness *models* the paper's parallel scaling in
virtual time; this benchmark measures it for real.  A synthetic
Swiss-Prot slice is searched through ``SearchPipeline(workers=N)`` for
N in (1, 2, 4) — N real OS processes draining lane-group chunks — and
the measured wall-clock speedup and GCUPS are printed next to the
simulated :class:`ParallelFor` makespan curve over the very same group
costs.

On a single-core runner the measurement is **skipped, not failed**:
real speedup is impossible by construction there, and the score-identity
guarantees are already covered by ``tests/test_parallel_backend.py``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.db import SyntheticSwissProt
from repro.db.preprocess import preprocess_database
from repro.devices import ParallelFor, Schedule
from repro.metrics import format_table
from repro.search import SearchOptions, SearchPipeline

from conftest import run_once

WORKER_COUNTS = (1, 2, 4)
SCALE = 0.002
QUERY_LEN = 500


@pytest.mark.benchmark(group="parallel-speedup")
def test_parallel_speedup(benchmark, show):
    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(
            f"needs a multi-core runner (cpu count {cores}): one core "
            "cannot show real process-parallel speedup"
        )

    db = SyntheticSwissProt().generate(scale=SCALE)
    rng = np.random.default_rng(5)
    query = rng.integers(0, 20, QUERY_LEN).astype(np.uint8)
    cells = QUERY_LEN * db.total_residues
    pre = preprocess_database(db, lanes=8)
    costs = pre.group_cells(QUERY_LEN).astype(np.float64)

    def measure() -> dict[int, float]:
        walls: dict[int, float] = {}
        for workers in WORKER_COUNTS:
            with SearchPipeline(SearchOptions(), workers=workers) as pipe:
                # Warm-up: pool startup + one-time database broadcast
                # are amortised costs, not per-search ones.
                pipe.search(query, db, preprocessed=pre)
                t0 = time.perf_counter()
                pipe.search(query, db, preprocessed=pre)
                walls[workers] = time.perf_counter() - t0
        return walls

    walls = run_once(benchmark, measure)

    modelled = {
        w: ParallelFor(w, Schedule.DYNAMIC).run(costs).makespan
        for w in WORKER_COUNTS
    }
    rows = []
    for w in WORKER_COUNTS:
        rows.append((
            w,
            f"{walls[w]:.3f}s",
            f"{walls[1] / walls[w]:.2f}x",
            f"{cells / walls[w] / 1e9:.3f}",
            f"{modelled[1] / modelled[w]:.2f}x",
        ))
    show(format_table(
        ["workers", "wall", "speedup", "GCUPS", "modelled speedup"],
        rows,
        title=f"process-parallel speedup ({cores} cores, "
              f"{len(db)} sequences, query {QUERY_LEN})",
    ))
    benchmark.extra_info["walls"] = {str(k): v for k, v in walls.items()}
    benchmark.extra_info["cores"] = cores

    # Shape assertions, scaled to what the runner can actually show.
    if cores >= 4:
        assert walls[1] / walls[4] > 1.5, (
            f"expected >1.5x speedup at 4 workers on {cores} cores, "
            f"got {walls[1] / walls[4]:.2f}x"
        )
    if cores >= 2:
        assert walls[1] / walls[2] > 1.1, (
            f"expected >1.1x speedup at 2 workers on {cores} cores, "
            f"got {walls[1] / walls[2]:.2f}x"
        )
