"""Real process-parallel speedup vs the modelled OpenMP curve.

Everything else in this harness *models* the paper's parallel scaling in
virtual time; this benchmark measures it for real.  A synthetic
Swiss-Prot slice is searched through ``SearchPipeline(workers=N)`` for
N in (1, 2, 4) — N real OS processes draining lane-group chunks — and
the measured wall-clock speedup and GCUPS are printed next to the
simulated :class:`ParallelFor` makespan curve over the very same group
costs.

On a single-core runner the measurement is **skipped, not failed**:
real speedup is impossible by construction there, and the score-identity
guarantees are already covered by ``tests/test_parallel_backend.py``.

Runs as a plain pytest test and as a script::

    PYTHONPATH=src python benchmarks/bench_parallel_speedup.py --json s.json

The JSON carries the per-worker walls and speedups (or a skip marker
on a single-core machine) — the ingestion path ``repro bench`` uses.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np
import pytest

from repro.db import SyntheticSwissProt
from repro.db.preprocess import preprocess_database
from repro.devices import ParallelFor, Schedule
from repro.metrics import format_table
from repro.search import SearchOptions, SearchPipeline

WORKER_COUNTS = (1, 2, 4)
SCALE = 0.002
QUERY_LEN = 500


def measure_speedup(
    *,
    scale: float = SCALE,
    query_len: int = QUERY_LEN,
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
) -> dict:
    """Measure real process-parallel walls; returns the stats dict.

    Keys: ``cores``, ``walls`` (worker count -> seconds), ``speedups``
    (worker count -> x over 1 worker), ``gcups`` (worker count ->
    measured GCUPS), ``cells``.
    """
    db = SyntheticSwissProt().generate(scale=scale)
    rng = np.random.default_rng(5)
    query = rng.integers(0, 20, query_len).astype(np.uint8)
    cells = query_len * db.total_residues
    pre = preprocess_database(db, lanes=8)

    walls: dict[int, float] = {}
    for workers in worker_counts:
        with SearchPipeline(SearchOptions(), workers=workers) as pipe:
            # Warm-up: pool startup + one-time database broadcast
            # are amortised costs, not per-search ones.
            pipe.search(query, db, preprocessed=pre)
            t0 = time.perf_counter()
            pipe.search(query, db, preprocessed=pre)
            walls[workers] = time.perf_counter() - t0
    base = walls[worker_counts[0]]
    return {
        "cores": os.cpu_count() or 1,
        "cells": int(cells),
        "walls": {str(w): walls[w] for w in worker_counts},
        "speedups": {str(w): base / walls[w] for w in worker_counts},
        "gcups": {str(w): cells / walls[w] / 1e9 for w in worker_counts},
    }


@pytest.mark.benchmark(group="parallel-speedup")
def test_parallel_speedup(benchmark, show):
    from conftest import run_once

    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(
            f"needs a multi-core runner (cpu count {cores}): one core "
            "cannot show real process-parallel speedup"
        )

    db = SyntheticSwissProt().generate(scale=SCALE)
    rng = np.random.default_rng(5)
    query = rng.integers(0, 20, QUERY_LEN).astype(np.uint8)
    cells = QUERY_LEN * db.total_residues
    pre = preprocess_database(db, lanes=8)
    costs = pre.group_cells(QUERY_LEN).astype(np.float64)

    def measure() -> dict[int, float]:
        walls: dict[int, float] = {}
        for workers in WORKER_COUNTS:
            with SearchPipeline(SearchOptions(), workers=workers) as pipe:
                # Warm-up: pool startup + one-time database broadcast
                # are amortised costs, not per-search ones.
                pipe.search(query, db, preprocessed=pre)
                t0 = time.perf_counter()
                pipe.search(query, db, preprocessed=pre)
                walls[workers] = time.perf_counter() - t0
        return walls

    walls = run_once(benchmark, measure)

    modelled = {
        w: ParallelFor(w, Schedule.DYNAMIC).run(costs).makespan
        for w in WORKER_COUNTS
    }
    rows = []
    for w in WORKER_COUNTS:
        rows.append((
            w,
            f"{walls[w]:.3f}s",
            f"{walls[1] / walls[w]:.2f}x",
            f"{cells / walls[w] / 1e9:.3f}",
            f"{modelled[1] / modelled[w]:.2f}x",
        ))
    show(format_table(
        ["workers", "wall", "speedup", "GCUPS", "modelled speedup"],
        rows,
        title=f"process-parallel speedup ({cores} cores, "
              f"{len(db)} sequences, query {QUERY_LEN})",
    ))
    benchmark.extra_info["walls"] = {str(k): v for k, v in walls.items()}
    benchmark.extra_info["cores"] = cores

    # Shape assertions, scaled to what the runner can actually show.
    if cores >= 4:
        assert walls[1] / walls[4] > 1.5, (
            f"expected >1.5x speedup at 4 workers on {cores} cores, "
            f"got {walls[1] / walls[4]:.2f}x"
        )
    if cores >= 2:
        assert walls[1] / walls[2] > 1.1, (
            f"expected >1.1x speedup at 2 workers on {cores} cores, "
            f"got {walls[1] / walls[2]:.2f}x"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", type=float, default=SCALE)
    parser.add_argument("--query-len", type=int, default=QUERY_LEN)
    parser.add_argument(
        "--workers", type=int, nargs="+", default=list(WORKER_COUNTS)
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the stats dict as JSON to PATH",
    )
    args = parser.parse_args(argv)
    cores = os.cpu_count() or 1
    if cores < 2:
        # Mirror the pytest skip: a skip marker, never a bogus number.
        stats: dict = {
            "skipped": True,
            "reason": f"single-core runner (cpu count {cores})",
            "cores": cores,
        }
    else:
        stats = measure_speedup(
            scale=args.scale,
            query_len=args.query_len,
            worker_counts=tuple(args.workers),
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, sort_keys=True, indent=2)
            fh.write("\n")
    if stats.get("skipped"):
        print(f"parallel speedup skipped: {stats['reason']}")
    else:
        print(format_table(
            ["workers", "wall", "speedup", "GCUPS"],
            [
                (w, f"{stats['walls'][w]:.3f}s",
                 f"{stats['speedups'][w]:.2f}x",
                 f"{stats['gcups'][w]:.3f}")
                for w in sorted(stats["walls"], key=int)
            ],
            title=f"process-parallel speedup ({stats['cores']} cores)",
        ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
