"""Ablation — SIMD element width and the adaptive-precision ladder.

The paper's port computes in one element width; the systems it builds on
(SWIPE [4], CUDASW++ [5]) run narrow elements with saturation-triggered
recomputation, doubling or quadrupling lane counts.  This ablation
quantifies what that is worth on the paper's devices:

* the *model* side: modelled GCUPS with 16-bit elements (twice the
  lanes) on both devices;
* the *algorithmic* side: the real adaptive ladder's stage accounting on
  a realistic batch — what fraction of cells actually runs narrow, and
  the effective lane speedup after recomputation costs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import AdaptivePrecisionEngine
from repro.db import SyntheticSwissProt
from repro.metrics import format_table
from repro.perfmodel import RunConfig, Workload
from repro.scoring import BLOSUM62, paper_gap_model

from conftest import run_once

QUERY_LEN = 5478


@pytest.mark.benchmark(group="ablation-element-width")
def test_element_width_ablation(benchmark, xeon_model, phi_model,
                                swissprot_lengths, show):
    def compute():
        model_side = {}
        for name, model, lanes32 in (
            ("xeon", xeon_model, 8), ("phi", phi_model, 16),
        ):
            wl32 = Workload.from_lengths(swissprot_lengths, lanes32)
            wl16 = Workload.from_lengths(swissprot_lengths, lanes32 * 2)
            model_side[name] = {
                32: model.gcups(wl32, QUERY_LEN, RunConfig(element_bits=32)),
                16: model.gcups(wl16, QUERY_LEN, RunConfig(element_bits=16)),
            }
        # Real ladder accounting on a realistic mixed batch.
        db = SyntheticSwissProt().generate(scale=0.0002)
        rng = np.random.default_rng(1)
        query = rng.integers(0, 20, 300).astype(np.uint8)
        ladder = AdaptivePrecisionEngine(register_bits=512)
        result = ladder.score_batch(
            query, db.sequences, BLOSUM62, paper_gap_model()
        )
        return model_side, result

    model_side, ladder = run_once(benchmark, compute)

    rows = [
        (dev, widths[32], widths[16], f"{widths[16] / widths[32]:.2f}x")
        for dev, widths in model_side.items()
    ]
    show(format_table(
        ["device", "int32 GCUPS", "int16 GCUPS", "gain"],
        rows,
        title="Ablation — modelled element-width effect (intrinsic-SP)",
    ))
    stage_rows = [
        (s.element_bits, s.lanes, s.sequences, s.saturated,
         f"{s.cells / ladder.total_cells:.1%}")
        for s in ladder.stages
    ]
    show(format_table(
        ["bits", "lanes", "sequences", "saturated", "cells share"],
        stage_rows,
        title="Adaptive ladder stages (real run, 512-bit registers)",
    ))
    show(
        f"narrow fraction {ladder.narrow_fraction:.1%}; effective lane "
        f"speedup over int32 lanes: "
        f"{ladder.effective_lane_speedup(base_lanes=16):.2f}x"
    )
    benchmark.extra_info["model_gain"] = {
        dev: widths[16] / widths[32] for dev, widths in model_side.items()
    }
    benchmark.extra_info["narrow_fraction"] = ladder.narrow_fraction

    # Twice the lanes buys real but sublinear gains (per-register
    # micro-ops and stalls don't halve).
    for dev, widths in model_side.items():
        assert 1.2 < widths[16] / widths[32] < 2.2, dev
    # On a realistic batch nearly everything resolves at 8 bits...
    assert ladder.narrow_fraction > 0.9
    # ...so the ladder's effective lane count approaches the 8-bit one.
    assert ladder.effective_lane_speedup(base_lanes=16) > 3.0
    # And it is exact: spot-check one sequence against the scan engine.
    from repro.core import get_engine

    scan = get_engine("scan")
    db = SyntheticSwissProt().generate(scale=0.0002)
    rng = np.random.default_rng(1)
    query = rng.integers(0, 20, 300).astype(np.uint8)
    k = 17
    assert ladder.scores[k] == scan.score_pair(
        query, db.sequences[k], BLOSUM62, paper_gap_model()
    ).score
