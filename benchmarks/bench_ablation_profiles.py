"""Ablation — QP vs SP instruction mixes and the gather mechanism.

The paper explains its QP/SP gaps architecturally: "Since Intel's Xeon
does not incorporate vector gather functionality, the substitution
scores matrix cannot be loaded into vector registers in a single
operation (shuffle intrinsic instructions are needed)" whereas "Intel
Xeon Phi provides vector gather capabilities".  This ablation exposes
the mechanism directly from the instrumented kernels: the per-cell
instruction mixes for every (ISA, variant, profile) combination.
"""

from __future__ import annotations

import pytest

from repro.metrics import format_table
from repro.simd import AVX_256, MIC_512, KernelConfig, sw_instruction_mix

from conftest import run_once


@pytest.mark.benchmark(group="ablation-profiles")
def test_instruction_mix_grid(benchmark, show):
    def compute():
        out = {}
        for isa in (AVX_256, MIC_512):
            for vec in ("novec", "simd", "intrinsic"):
                for prof in ("query", "sequence"):
                    cfg = KernelConfig(isa=isa, vectorization=vec, profile=prof)
                    out[(isa.name, cfg.label)] = sw_instruction_mix(cfg)
        return out

    mixes = run_once(benchmark, compute)

    rows = [
        (
            isa, label, mix.instructions_per_cell,
            mix.per_cell.get("gather", 0.0),
            mix.per_cell.get("extract", 0.0) + mix.per_cell.get("insert", 0.0),
            mix.per_cell.get("mask", 0.0),
        )
        for (isa, label), mix in mixes.items()
    ]
    show(format_table(
        ["isa", "variant", "insns/cell", "gather", "shuffle", "mask"],
        rows,
        title="Ablation — instrumented kernel instruction mixes",
    ))
    benchmark.extra_info["insns_per_cell"] = {
        f"{isa}/{label}": mix.instructions_per_cell
        for (isa, label), mix in mixes.items()
    }

    # The gather asymmetry the paper describes:
    avx_qp = mixes[("avx", "intrinsic-QP")]
    mic_qp = mixes[("mic", "intrinsic-QP")]
    assert avx_qp.per_cell.get("gather", 0) == 0      # no gather on AVX
    assert avx_qp.per_cell.get("extract", 0) > 0.5    # shuffle emulation
    assert mic_qp.per_cell.get("gather", 0) > 0       # native on MIC
    assert mic_qp.per_cell.get("extract", 0) == 0
    # QP costs extra instructions relative to SP on AVX specifically.
    avx_sp = mixes[("avx", "intrinsic-SP")]
    mic_sp = mixes[("mic", "intrinsic-SP")]
    avx_overhead = avx_qp.instructions_per_cell / avx_sp.instructions_per_cell
    mic_overhead = mic_qp.instructions_per_cell / mic_sp.instructions_per_cell
    assert avx_overhead > 1.3
    assert mic_overhead < 1.1
    # Guided vectorisation always issues more instructions.
    for isa in ("avx", "mic"):
        assert (
            mixes[(isa, "simd-SP")].instructions_per_cell
            > mixes[(isa, "intrinsic-SP")].instructions_per_cell
        )
    # The scalar baselines dwarf everything.
    assert (
        mixes[("avx", "no-vec")].instructions_per_cell
        > 2 * mixes[("avx", "intrinsic-SP")].instructions_per_cell
    )
