"""Figure 8 — heterogeneous GCUPS vs workload distribution.

Paper: sweeping the share of the database sent to the Phi, "the best
configuration is close to a homogeneous distribution (45% in Xeon and
55% in Xeon-Phi).  The performance achieved is almost the combination of
their individual throughputs (30.4 and 34.9 GCUPS ...) which is totaled
to 62.6 GCUPS."
"""

from __future__ import annotations

import pytest

from repro.devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
from repro.metrics import format_series, paper_comparison
from repro.perfmodel import DevicePerformanceModel
from repro.runtime import HybridExecutor

from conftest import run_once

FRACTIONS = [round(0.05 * k, 2) for k in range(21)]
QUERY_LEN = 5478


@pytest.mark.benchmark(group="fig8")
def test_fig8_hybrid_distribution(benchmark, swissprot_lengths,
                                  xeon_model, phi_model, show):
    executor = HybridExecutor(xeon_model, phi_model)

    def compute():
        return executor.sweep(swissprot_lengths, QUERY_LEN, FRACTIONS)

    sweep = run_once(benchmark, compute)
    gcups = {f: sweep[f].gcups for f in FRACTIONS}
    best = max(sweep.values(), key=lambda r: r.gcups)

    show(format_series(
        gcups, x_label="phi-share",
        title="Figure 8 — hybrid GCUPS vs workload distribution",
    ))
    show(paper_comparison([
        ("Fig.8 peak GCUPS", 62.6, best.gcups),
        ("Fig.8 peak phi-share", 0.55, best.device_fraction),
        ("Fig.8 Xeon-only endpoint", 30.4, gcups[0.0]),
        ("Fig.8 Phi-only endpoint", 34.9, gcups[1.0]),
    ]))
    benchmark.extra_info["series"] = {str(f): g for f, g in gcups.items()}

    # Peak near the homogeneous split, at the combined throughput.
    assert 0.45 <= best.device_fraction <= 0.60
    assert best.gcups == pytest.approx(62.6, rel=0.05)
    # The peak is "almost the combination of their individual
    # throughputs": within 10% of endpoint sum.
    assert best.gcups > 0.9 * (gcups[0.0] + gcups[1.0])
    # Unimodal curve.
    values = [gcups[f] for f in FRACTIONS]
    peak_idx = values.index(max(values))
    assert all(b >= a * 0.999 for a, b in
               zip(values[:peak_idx], values[1 : peak_idx + 1]))
    assert all(a >= b * 0.999 for a, b in
               zip(values[peak_idx:], values[peak_idx + 1 :]))
    # At the optimum both sides finish nearly together.
    assert best.overlap_efficiency > 0.85
