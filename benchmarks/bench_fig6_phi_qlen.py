"""Figure 6 — Xeon Phi GCUPS vs query length at 240 threads.

Paper: "as the query length is longer, there is more performance
achieved since there exists more parallelism to be exploited", with a
"synergistic effect ... on the exploitation of thread level parallelism
with intrinsic vectorization", and "consecutive memory accesses for SP
substitution scheme allow better performance for Xeon Phi intrinsic
versions".
"""

from __future__ import annotations

import pytest

from repro.db import PAPER_QUERIES
from repro.metrics import format_table
from repro.perfmodel import RunConfig
from repro.perfmodel.efficiency import query_length_sweep

from conftest import run_once

QUERY_LENGTHS = [q.length for q in PAPER_QUERIES]

VARIANTS = [
    RunConfig(vectorization="simd", profile="query"),
    RunConfig(vectorization="simd", profile="sequence"),
    RunConfig(vectorization="intrinsic", profile="query"),
    RunConfig(vectorization="intrinsic", profile="sequence"),
]


@pytest.mark.benchmark(group="fig6")
def test_fig6_phi_query_length(benchmark, phi_model, phi_workload, show):
    def compute():
        return {
            cfg.label: query_length_sweep(
                phi_model, phi_workload, QUERY_LENGTHS, cfg
            )
            for cfg in VARIANTS
        }

    series = run_once(benchmark, compute)

    rows = [
        [q] + [series[cfg.label][q] for cfg in VARIANTS]
        for q in QUERY_LENGTHS
    ]
    show(format_table(
        ["qlen"] + [cfg.label for cfg in VARIANTS], rows,
        title="Figure 6 — Xeon Phi GCUPS vs query length (240 threads)",
    ))
    benchmark.extra_info["series"] = {
        k: {str(q): v for q, v in s.items()} for k, s in series.items()
    }

    intr_sp = series["intrinsic-SP"]
    # Strong rise with query length (bounded by the 34.9 asymptote).
    assert intr_sp[5478] / intr_sp[144] > 1.15
    values = [intr_sp[q] for q in QUERY_LENGTHS]
    assert all(b > a for a, b in zip(values, values[1:]))
    # "Synergistic effect": intrinsic gains more from long queries than
    # simd in absolute GCUPS terms.
    simd_sp = series["simd-SP"]
    assert (intr_sp[5478] - intr_sp[144]) > (simd_sp[5478] - simd_sp[144])
    # SP beats QP at every length (contiguous accesses).
    for q in QUERY_LENGTHS:
        assert series["intrinsic-SP"][q] > series["intrinsic-QP"][q]
