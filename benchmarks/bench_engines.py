"""Real-compute benchmarks of the Python alignment engines.

These time the actual NumPy kernels (not the device model): single-pair
throughput of each engine and batched inter-task throughput at the two
device lane widths, with QP-vs-SP and blocking variations.  Useful for
tracking regressions in the engines themselves; the absolute numbers are
Python speeds, far below the paper's hardware.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InterTaskEngine, get_engine
from repro.scoring import BLOSUM62, paper_gap_model

GAPS = paper_gap_model()
RNG = np.random.default_rng(42)

QUERY = RNG.integers(0, 20, 256).astype(np.uint8)
TARGET = RNG.integers(0, 20, 400).astype(np.uint8)
BATCH = [RNG.integers(0, 20, int(n)).astype(np.uint8)
         for n in RNG.integers(50, 400, 64)]
BATCH_CELLS = len(QUERY) * sum(len(s) for s in BATCH)


def _report_gcups(benchmark, cells: int) -> None:
    benchmark.extra_info["cells"] = cells
    if benchmark.stats is not None:
        mean = benchmark.stats["mean"] if isinstance(benchmark.stats, dict) else benchmark.stats.stats.mean
        benchmark.extra_info["gcups"] = cells / mean / 1e9


@pytest.mark.benchmark(group="engine-pair")
@pytest.mark.parametrize("name", ["scan", "diagonal", "striped", "intertask"])
def test_pair_throughput(benchmark, name):
    engine = get_engine(name)
    result = benchmark(
        lambda: engine.score_pair(QUERY, TARGET, BLOSUM62, GAPS)
    )
    assert result.score >= 0
    _report_gcups(benchmark, len(QUERY) * len(TARGET))


@pytest.mark.benchmark(group="engine-batch")
@pytest.mark.parametrize("lanes", [8, 16], ids=["avx-lanes", "mic-lanes"])
def test_intertask_batch_throughput(benchmark, lanes):
    engine = InterTaskEngine(lanes=lanes)
    batch = benchmark(
        lambda: engine.score_batch(QUERY, BATCH, BLOSUM62, GAPS)
    )
    assert len(batch) == len(BATCH)
    _report_gcups(benchmark, BATCH_CELLS)


@pytest.mark.benchmark(group="engine-batch")
@pytest.mark.parametrize("profile", ["query", "sequence"])
def test_intertask_profile_modes(benchmark, profile):
    engine = InterTaskEngine(lanes=16, profile=profile)
    batch = benchmark(
        lambda: engine.score_batch(QUERY, BATCH, BLOSUM62, GAPS)
    )
    assert len(batch) == len(BATCH)
    _report_gcups(benchmark, BATCH_CELLS)


@pytest.mark.benchmark(group="engine-batch")
@pytest.mark.parametrize("block", [None, 128], ids=["unblocked", "blocked128"])
def test_intertask_blocking_overhead(benchmark, block):
    engine = InterTaskEngine(lanes=16, block_cols=block)
    batch = benchmark(
        lambda: engine.score_batch(QUERY, BATCH, BLOSUM62, GAPS)
    )
    assert len(batch) == len(BATCH)
    _report_gcups(benchmark, BATCH_CELLS)


@pytest.mark.benchmark(group="engine-scalar")
def test_scalar_reference_small(benchmark):
    # The oracle is O(mn) Python — bench a small case only.
    engine = get_engine("scalar")
    q, d = QUERY[:64], TARGET[:64]
    result = benchmark(lambda: engine.score_pair(q, d, BLOSUM62, GAPS))
    assert result.score >= 0
    _report_gcups(benchmark, len(q) * len(d))
