"""Extension — robustness of the reproduction to calibration choices.

The model's constants are tuned (DESIGN.md §5); a reproduction is only
credible if its *qualitative* conclusions survive perturbing them.  This
bench perturbs each calibrated constant by ±25% (re-anchoring each time,
as the methodology prescribes) and checks that every shape claim the
paper makes still holds: variant ordering, SP>QP, the guided gap being
larger on the Phi, blocking helping the Phi more, and the hybrid peak
staying near the balanced split.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
from repro.faults import FaultInjector, FaultPlan, RetryPolicy, Timeout
from repro.metrics import format_table
from repro.perfmodel import (
    CALIBRATIONS, DevicePerformanceModel, RunConfig, Workload,
)
from repro.runtime import HybridExecutor, ResilientHybridExecutor

from conftest import run_once

PERTURBED_FIELDS = (
    "novec_stall_cycles", "guided_stall_cycles", "fixed_run_seconds",
    "miss_stall_factor", "contention",
)
QUERY_LEN = 5478


def _shape_claims(xeon, phi, wx, wp, lengths) -> dict[str, bool]:
    """Evaluate every qualitative claim under the given models."""
    g = lambda model, wl, **kw: model.gcups(wl, QUERY_LEN, RunConfig(**kw))  # noqa: E731
    claims = {}
    for name, model, wl in (("xeon", xeon, wx), ("phi", phi, wp)):
        novec = g(model, wl, vectorization="novec")
        simd = g(model, wl, vectorization="simd")
        intr = g(model, wl)
        claims[f"{name}.ordering"] = intr > simd > novec
        claims[f"{name}.sp_beats_qp"] = intr > g(model, wl, profile="query")
        claims[f"{name}.blocking_helps"] = intr > g(model, wl, blocking=False)
    claims["guided_gap_larger_on_phi"] = (
        g(phi, wp, vectorization="simd") / g(phi, wp)
        < g(xeon, wx, vectorization="simd") / g(xeon, wx)
    )
    best = HybridExecutor(xeon, phi).best_split(
        lengths, QUERY_LEN, resolution=0.1
    )
    claims["hybrid_peak_balanced"] = 0.3 <= best.device_fraction <= 0.7
    claims["hybrid_beats_best_single"] = best.gcups > max(
        g(xeon, wx), g(phi, wp)
    )
    return claims


@pytest.mark.benchmark(group="ext-robustness")
def test_shape_claims_survive_calibration_perturbation(
    benchmark, swissprot_lengths, show
):
    wx = Workload.from_lengths(swissprot_lengths, 8)
    wp = Workload.from_lengths(swissprot_lengths, 16)

    def compute():
        rows = {}
        for field in PERTURBED_FIELDS:
            for factor in (0.75, 1.25):
                cals = {}
                for dev in ("xeon-e5-2670x2", "xeon-phi-60c"):
                    base = CALIBRATIONS[dev]
                    value = getattr(base, field) * factor
                    if field == "miss_stall_factor":
                        value = max(value, 1.0)
                    cals[dev] = replace(base, **{field: value})
                xeon = DevicePerformanceModel(
                    XEON_E5_2670_DUAL, calibration=cals["xeon-e5-2670x2"]
                )
                phi = DevicePerformanceModel(
                    XEON_PHI_57XX, calibration=cals["xeon-phi-60c"]
                )
                claims = _shape_claims(xeon, phi, wx, wp, swissprot_lengths)
                rows[(field, factor)] = claims
        return rows

    results = run_once(benchmark, compute)

    table = [
        (field, f"x{factor}", sum(c.values()), len(c),
         ", ".join(k for k, ok in c.items() if not ok) or "-")
        for (field, factor), c in results.items()
    ]
    show(format_table(
        ["perturbed constant", "scale", "claims held", "of", "violated"],
        table,
        title="Extension — shape-claim robustness to ±25% calibration",
    ))
    benchmark.extra_info["held"] = {
        f"{f}@{x}": sum(c.values()) for (f, x), c in results.items()
    }

    # Every qualitative claim must survive every perturbation: the
    # reproduction's conclusions do not hinge on fine-tuned constants.
    for (field, factor), claims in results.items():
        bad = [k for k, ok in claims.items() if not ok]
        assert not bad, (field, factor, bad)


@pytest.mark.benchmark(group="ext-robustness")
def test_shape_claims_survive_injected_faults(
    benchmark, xeon_model, phi_model, swissprot_lengths, show
):
    """The hybrid's qualitative story must hold on unreliable hardware.

    Under a nonzero fault rate handled by the resilient executor, the
    quantitative throughput degrades — but the shape claims survive: the
    split sweep still peaks at an interior fraction, the peak still
    beats host-only operation, and a zero-fault plan costs nothing.
    """
    plan = FaultPlan(seed=13, transfer_fail_rate=0.1, straggler_rate=0.1)
    fractions = (0.0, 0.3, 0.5, 0.7, 1.0)

    def run_at(fraction, the_plan):
        return ResilientHybridExecutor(
            xeon_model, phi_model,
            injector=FaultInjector(the_plan),
            retry=RetryPolicy(max_retries=3),
            timeout=Timeout(5.0),
            chunks=16,
        ).run(swissprot_lengths, QUERY_LEN, fraction)

    def compute():
        faulted = {f: run_at(f, plan) for f in fractions}
        healthy = {f: run_at(f, FaultPlan(seed=13)) for f in fractions}
        return faulted, healthy

    faulted, healthy = run_once(benchmark, compute)

    show(format_table(
        ["phi share", "healthy GCUPS", "faulted GCUPS", "mode"],
        [
            (f"{f:.0%}", round(healthy[f].gcups, 1),
             round(faulted[f].gcups, 1), faulted[f].mode)
            for f in fractions
        ],
        title="Extension — hybrid shape under a 10% fault + 10% straggler plan",
    ))
    benchmark.extra_info["faulted_gcups"] = {
        str(f): faulted[f].gcups for f in fractions
    }

    # Degraded quantitatively: faults never help.
    for f in fractions:
        assert faulted[f].gcups <= healthy[f].gcups * (1 + 1e-9), f
    # Fraction 0 offloads nothing, so the fault plan cannot touch it.
    assert faulted[0.0].gcups == pytest.approx(healthy[0.0].gcups)
    # Qualitative ordering unchanged: an interior split still wins
    # against both homogeneous endpoints, faulted or not.
    for series in (healthy, faulted):
        best = max(fractions, key=lambda f: series[f].gcups)
        assert 0.0 < best < 1.0, series[best]
        assert series[best].gcups > series[0.0].gcups
        assert series[best].gcups > series[1.0].gcups
