"""Extension — robustness of the reproduction to calibration choices.

The model's constants are tuned (DESIGN.md §5); a reproduction is only
credible if its *qualitative* conclusions survive perturbing them.  This
bench perturbs each calibrated constant by ±25% (re-anchoring each time,
as the methodology prescribes) and checks that every shape claim the
paper makes still holds: variant ordering, SP>QP, the guided gap being
larger on the Phi, blocking helping the Phi more, and the hybrid peak
staying near the balanced split.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
from repro.metrics import format_table
from repro.perfmodel import (
    CALIBRATIONS, DevicePerformanceModel, RunConfig, Workload,
)
from repro.runtime import HybridExecutor

from conftest import run_once

PERTURBED_FIELDS = (
    "novec_stall_cycles", "guided_stall_cycles", "fixed_run_seconds",
    "miss_stall_factor", "contention",
)
QUERY_LEN = 5478


def _shape_claims(xeon, phi, wx, wp, lengths) -> dict[str, bool]:
    """Evaluate every qualitative claim under the given models."""
    g = lambda model, wl, **kw: model.gcups(wl, QUERY_LEN, RunConfig(**kw))  # noqa: E731
    claims = {}
    for name, model, wl in (("xeon", xeon, wx), ("phi", phi, wp)):
        novec = g(model, wl, vectorization="novec")
        simd = g(model, wl, vectorization="simd")
        intr = g(model, wl)
        claims[f"{name}.ordering"] = intr > simd > novec
        claims[f"{name}.sp_beats_qp"] = intr > g(model, wl, profile="query")
        claims[f"{name}.blocking_helps"] = intr > g(model, wl, blocking=False)
    claims["guided_gap_larger_on_phi"] = (
        g(phi, wp, vectorization="simd") / g(phi, wp)
        < g(xeon, wx, vectorization="simd") / g(xeon, wx)
    )
    best = HybridExecutor(xeon, phi).best_split(
        lengths, QUERY_LEN, resolution=0.1
    )
    claims["hybrid_peak_balanced"] = 0.3 <= best.device_fraction <= 0.7
    claims["hybrid_beats_best_single"] = best.gcups > max(
        g(xeon, wx), g(phi, wp)
    )
    return claims


@pytest.mark.benchmark(group="ext-robustness")
def test_shape_claims_survive_calibration_perturbation(
    benchmark, swissprot_lengths, show
):
    wx = Workload.from_lengths(swissprot_lengths, 8)
    wp = Workload.from_lengths(swissprot_lengths, 16)

    def compute():
        rows = {}
        for field in PERTURBED_FIELDS:
            for factor in (0.75, 1.25):
                cals = {}
                for dev in ("xeon-e5-2670x2", "xeon-phi-60c"):
                    base = CALIBRATIONS[dev]
                    value = getattr(base, field) * factor
                    if field == "miss_stall_factor":
                        value = max(value, 1.0)
                    cals[dev] = replace(base, **{field: value})
                xeon = DevicePerformanceModel(
                    XEON_E5_2670_DUAL, calibration=cals["xeon-e5-2670x2"]
                )
                phi = DevicePerformanceModel(
                    XEON_PHI_57XX, calibration=cals["xeon-phi-60c"]
                )
                claims = _shape_claims(xeon, phi, wx, wp, swissprot_lengths)
                rows[(field, factor)] = claims
        return rows

    results = run_once(benchmark, compute)

    table = [
        (field, f"x{factor}", sum(c.values()), len(c),
         ", ".join(k for k, ok in c.items() if not ok) or "-")
        for (field, factor), c in results.items()
    ]
    show(format_table(
        ["perturbed constant", "scale", "claims held", "of", "violated"],
        table,
        title="Extension — shape-claim robustness to ±25% calibration",
    ))
    benchmark.extra_info["held"] = {
        f"{f}@{x}": sum(c.values()) for (f, x), c in results.items()
    }

    # Every qualitative claim must survive every perturbation: the
    # reproduction's conclusions do not hinge on fine-tuned constants.
    for (field, factor), claims in results.items():
        bad = [k for k, ok in claims.items() if not ok]
        assert not bad, (field, factor, bad)
