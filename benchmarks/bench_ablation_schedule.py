"""Ablation — OpenMP scheduling policy (paper Section IV).

Paper: "In our observations, dynamic outperforms static significantly.
The performance difference with guided is slightly minor.  This has
sense taking into account that the workload associated to each iteration
is different."  This ablation runs the scheduler simulation over the
real (length-sorted) group workload and checks the ordering.
"""

from __future__ import annotations

import pytest

from repro.devices import ParallelFor, Schedule
from repro.metrics import format_table

from conftest import run_once

THREADS = 32


@pytest.mark.benchmark(group="ablation-schedule")
def test_schedule_policy_ordering(benchmark, xeon_workload, show):
    costs = xeon_workload.group_residues.astype(float)

    def compute():
        return {
            sched: ParallelFor(THREADS, sched).run(costs)
            for sched in Schedule
        }

    results = run_once(benchmark, compute)

    rows = [
        (s.value, r.makespan / 1e6, f"{r.efficiency:.2%}", f"{r.imbalance:.3f}")
        for s, r in results.items()
    ]
    show(format_table(
        ["schedule", "makespan (Mcells)", "efficiency", "imbalance"],
        rows,
        title="Ablation — OpenMP schedule over the sorted group workload",
    ))
    benchmark.extra_info["efficiency"] = {
        s.value: r.efficiency for s, r in results.items()
    }

    dyn = results[Schedule.DYNAMIC]
    gui = results[Schedule.GUIDED]
    sta = results[Schedule.STATIC]
    # "dynamic outperforms static significantly"
    assert dyn.makespan < 0.9 * sta.makespan
    assert gui.makespan < 0.9 * sta.makespan
    # "the performance difference with guided is slightly minor":
    # dynamic and guided land within a fraction of a percent of each
    # other, far ahead of static.
    assert abs(gui.makespan - dyn.makespan) / dyn.makespan < 0.05
    # Dynamic is near-ideal on this workload.
    assert dyn.efficiency > 0.95
