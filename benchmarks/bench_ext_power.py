"""Extension — the power-aware distribution study (paper Section V-C3).

The paper's conclusions propose analysing the workload distribution
"taking into account other considerations as power consumption, device
prices, and so on" as future work, noting the TDPs it quotes (120 W per
Xeon chip, 240 W for the Phi).  This bench runs that study on the model:
the split sweep of Figure 8 re-scored in energy terms, and the three
optima (throughput, cells/joule, energy-delay product) compared.
"""

from __future__ import annotations

import pytest

from repro.metrics import format_table
from repro.perfmodel.power import energy_sweep, optimal_splits
from repro.runtime import HybridExecutor

from conftest import run_once

QUERY_LEN = 5478
FRACTIONS = [round(0.1 * k, 1) for k in range(11)]


@pytest.mark.benchmark(group="ext-power")
def test_power_aware_distribution(benchmark, swissprot_lengths,
                                  xeon_model, phi_model, show):
    executor = HybridExecutor(xeon_model, phi_model)

    def compute():
        sweep = energy_sweep(executor, swissprot_lengths, QUERY_LEN, FRACTIONS)
        optima = optimal_splits(executor, swissprot_lengths, QUERY_LEN)
        return sweep, optima

    sweep, optima = run_once(benchmark, compute)

    rows = [
        (
            f"{f:.0%}", e.gcups, e.joules / 1e3,
            e.cells_per_joule / 1e6, e.average_watts,
        )
        for f, e in sweep.items()
    ]
    show(format_table(
        ["phi share", "GCUPS", "energy (kJ)", "Mcells/J", "avg W"],
        rows,
        title="Extension — energy across the Fig. 8 split sweep",
    ))
    show(format_table(
        ["objective", "phi share", "GCUPS", "Mcells/J"],
        [
            (name, f"{e.result.device_fraction:.0%}", e.gcups,
             e.cells_per_joule / 1e6)
            for name, e in optima.items()
        ],
        title="Optimal static splits under three objectives",
    ))
    benchmark.extra_info["mcells_per_joule"] = {
        str(f): e.cells_per_joule / 1e6 for f, e in sweep.items()
    }

    # The energy surface is meaningful: the balanced region beats both
    # lopsided extremes on cells/joule (idle waste).
    assert sweep[0.5].cells_per_joule > sweep[0.1].cells_per_joule
    assert sweep[0.5].cells_per_joule > sweep[0.9].cells_per_joule
    # Optima definitions hold.
    perf = optima["performance"]
    assert optima["energy"].cells_per_joule >= perf.cells_per_joule
    assert optima["edp"].energy_delay_product <= perf.energy_delay_product
    # With equal TDPs and overlap at the optimum, the three objectives
    # land in the same neighbourhood — the quantitative answer to the
    # paper's open question for *this* device pair.
    assert abs(optima["energy"].result.device_fraction
               - perf.result.device_fraction) <= 0.15
