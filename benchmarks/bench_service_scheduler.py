"""Service extensions — dynamic work-queue scheduling and batched serving.

Beyond the paper: its Algorithm 2 splits the database *statically* and
Figure 8 hand-tunes the ratio (~55 % on the Phi).  SWAPHI (Liu &
Schmidt, 2014) showed dynamic batch distribution absorbs load imbalance
without any tuning.  This harness sweeps length-distribution skew and
checks the untuned work queue matches or beats the static split at the
paper's tuned ratio at *every* skew level; a second benchmark measures
the preprocess-cache hit rate under multi-query serving traffic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import SyntheticSwissProt
from repro.metrics import MetricsRegistry, format_table
from repro.perfmodel import compare_scheduling
from repro.search import SearchOptions
from repro.service import SearchService

from conftest import run_once

QUERY_LEN = 5478
#: Lognormal sigma controls how heavy the length tail is; the paper's
#: Swiss-Prot snapshot sits near 0.8.
SKEW_LEVELS = (0.2, 0.6, 1.0, 1.4)
STATIC_FRACTION = 0.55  # the ratio Figure 8 hand-tunes


def skewed_lengths(sigma: float, n: int = 20000) -> np.ndarray:
    """A lognormal length distribution with Swiss-Prot's mean scale."""
    rng = np.random.default_rng(20140909 + int(sigma * 10))
    lengths = rng.lognormal(mean=5.5, sigma=sigma, size=n)
    return np.clip(lengths, 10, 40000).astype(np.int64)


@pytest.mark.benchmark(group="service")
def test_dynamic_queue_vs_static_split_across_skew(
    benchmark, xeon_model, phi_model, swissprot_lengths, show
):
    def compute():
        points = {
            f"sigma={sigma}": compare_scheduling(
                xeon_model, phi_model, skewed_lengths(sigma), QUERY_LEN,
                static_fraction=STATIC_FRACTION,
            )
            for sigma in SKEW_LEVELS
        }
        points["swissprot"] = compare_scheduling(
            xeon_model, phi_model, swissprot_lengths, QUERY_LEN,
            static_fraction=STATIC_FRACTION,
        )
        return points

    points = run_once(benchmark, compute)
    show(format_table(
        ["workload", "static GCUPS", "queue GCUPS", "speedup",
         "emergent phi-share"],
        [
            (name, round(c.static_gcups, 1), round(c.dynamic_gcups, 1),
             round(c.speedup, 3),
             round(c.plan.device_residue_fraction, 3))
            for name, c in points.items()
        ],
        title="dynamic work queue vs static split "
              f"(static tuned to {STATIC_FRACTION:.0%} phi-share)",
    ))
    benchmark.extra_info["speedups"] = {
        name: c.speedup for name, c in points.items()
    }

    # The acceptance bar: the untuned queue is never slower than the
    # tuned static split, at any tested skew.
    for name, c in points.items():
        assert c.dynamic_wins, (
            f"{name}: queue {c.dynamic_seconds:.2f}s > "
            f"static {c.static_seconds:.2f}s"
        )
    # Heavier tails leave the static split more imbalanced, so the
    # queue's advantage grows monotonically with skew.
    speedups = [points[f"sigma={s}"].speedup for s in SKEW_LEVELS]
    assert all(b > a for a, b in zip(speedups, speedups[1:]))
    # On the paper's own workload the emergent share lands near the
    # hand-tuned ratio — dynamic scheduling rediscovers Figure 8.
    assert abs(
        points["swissprot"].plan.device_residue_fraction - STATIC_FRACTION
    ) < 0.15


@pytest.mark.benchmark(group="service")
def test_preprocess_cache_hit_rate_under_batch_traffic(benchmark, show):
    db = SyntheticSwissProt().generate(scale=0.0003)
    rng = np.random.default_rng(0xCA1)
    residues = "ARNDCQEGHILKMFPSTWYV"
    queries = [
        "".join(residues[i] for i in rng.integers(0, 20, 48))
        for _ in range(12)
    ]

    def compute():
        registry = MetricsRegistry()
        service = SearchService(
            SearchOptions(top_k=3), metrics=registry
        )
        batch = service.run(queries, db)
        return batch, registry

    batch, registry = run_once(benchmark, compute)
    stats = batch.cache_stats
    show(format_table(
        ["metric", "value"],
        [(k, v if isinstance(v, int) else round(v, 3))
         for k, v in stats.items()],
        title=f"preprocess cache over {len(queries)} queries, one database",
    ))
    benchmark.extra_info["hit_rate"] = stats["hit_rate"]

    # One miss fills the cache; every other query reuses the sort/pack.
    assert stats["misses"] == 1
    assert stats["hits"] == len(queries) - 1
    assert stats["hit_rate"] == pytest.approx(
        (len(queries) - 1) / len(queries)
    )
    assert registry.get("service.requests") == len(queries)
