"""Figure 5 — Xeon Phi GCUPS vs thread count (30 to 240 threads).

Paper: the guided-vectorisation builds reach "13.6 and 14.5 GCUPS for QP
and SP"; the intrinsic builds "27.1 and 34.9"; non-vectorised versions
"barely exhibit performances"; and "OpenMP implementations are scalable
with the number of threads" all the way to 240 — the in-order cores need
multiple resident threads.
"""

from __future__ import annotations

import pytest

from repro.metrics import format_table, paper_comparison
from repro.perfmodel import RunConfig, thread_sweep

from conftest import run_once

THREADS = [30, 60, 90, 120, 180, 240]
QUERY_LEN = 5478  # the sweep's asymptotic regime, where Fig. 5 peaks live

VARIANTS = [
    RunConfig(vectorization="novec"),
    RunConfig(vectorization="simd", profile="query"),
    RunConfig(vectorization="simd", profile="sequence"),
    RunConfig(vectorization="intrinsic", profile="query"),
    RunConfig(vectorization="intrinsic", profile="sequence"),
]

PAPER_AT_240 = {
    "simd-QP": 13.6,
    "simd-SP": 14.5,
    "intrinsic-QP": 27.1,
    "intrinsic-SP": 34.9,
}


@pytest.mark.benchmark(group="fig5")
def test_fig5_phi_thread_scaling(benchmark, phi_model, phi_workload, show):
    def compute():
        return {
            cfg.label: thread_sweep(
                phi_model, phi_workload, QUERY_LEN, cfg, THREADS
            )
            for cfg in VARIANTS
        }

    series = run_once(benchmark, compute)

    rows = [
        [label] + [series[label][t] for t in THREADS]
        for label in series
    ]
    show(format_table(
        ["variant"] + [f"{t}t" for t in THREADS], rows,
        title=f"Figure 5 — Xeon Phi GCUPS vs threads (query length {QUERY_LEN})",
    ))
    show(paper_comparison([
        (f"Fig.5 {label} @240t", paper, series[label][240])
        for label, paper in PAPER_AT_240.items()
    ]))
    benchmark.extra_info["series"] = {
        k: {str(t): v for t, v in s.items()} for k, s in series.items()
    }

    # Quantitative targets within 10%.
    for label, paper in PAPER_AT_240.items():
        assert series[label][240] == pytest.approx(paper, rel=0.10), label
    # No-vec floor.
    assert series["no-vec"][240] < 2.0
    # Scalable to the full 240 threads: every doubling still gains.
    for label in PAPER_AT_240:
        values = [series[label][t] for t in THREADS]
        assert all(b > a for a, b in zip(values, values[1:])), label
    # The guided gap is much larger here than on the Xeon (2.4x vs 1.3x).
    assert series["intrinsic-SP"][240] / series["simd-SP"][240] > 2.0
