"""Figure 7 — blocking vs non-blocking, both devices, vs query length.

Paper: for the best variant (intrinsic-SP) with all threads, "exploiting
data locality can seriously improve the performance on both devices" and
"this optimization has a larger improvement in the Intel's Xeon Phi
because its cache size is lower than its counterpart Intel's Xeon".
"""

from __future__ import annotations

import pytest

from repro.db import PAPER_QUERIES
from repro.metrics import format_table
from repro.perfmodel import RunConfig
from repro.perfmodel.efficiency import query_length_sweep

from conftest import run_once

QUERY_LENGTHS = [q.length for q in PAPER_QUERIES][::4] + [5478]


@pytest.mark.benchmark(group="fig7")
def test_fig7_blocking(benchmark, xeon_model, phi_model,
                       xeon_workload, phi_workload, show):
    def compute():
        out = {}
        for name, model, wl in (
            ("xeon", xeon_model, xeon_workload),
            ("phi", phi_model, phi_workload),
        ):
            for blocking in (True, False):
                label = f"{name}-{'block' if blocking else 'noblock'}"
                out[label] = query_length_sweep(
                    model, wl, QUERY_LENGTHS, RunConfig(blocking=blocking)
                )
        return out

    series = run_once(benchmark, compute)

    rows = [
        [q] + [series[k][q] for k in series]
        for q in QUERY_LENGTHS
    ]
    show(format_table(
        ["qlen"] + list(series), rows,
        title="Figure 7 — blocking vs non-blocking (intrinsic-SP, all threads)",
    ))
    benchmark.extra_info["series"] = {
        k: {str(q): v for q, v in s.items()} for k, s in series.items()
    }

    for q in QUERY_LENGTHS:
        # Blocking helps on both devices at every query length...
        assert series["xeon-block"][q] > series["xeon-noblock"][q]
        assert series["phi-block"][q] > series["phi-noblock"][q]
        # ...and helps the Phi more (its L2 is the smaller budget).
        xeon_gain = series["xeon-block"][q] / series["xeon-noblock"][q]
        phi_gain = series["phi-block"][q] / series["phi-noblock"][q]
        assert phi_gain > xeon_gain
    # Magnitude: a serious improvement, not a rounding error.
    assert series["phi-block"][5478] / series["phi-noblock"][5478] > 1.3
    assert series["xeon-block"][5478] / series["xeon-noblock"][5478] > 1.1
