"""Extension — fault rate vs. achieved throughput under resilience.

The paper assumes the offload side never fails; deployment reports for
Xeon Phi offload runtimes say otherwise.  This bench sweeps the injected
chunk-failure rate (plus one permanent late-chunk outage at the top end)
through :class:`~repro.runtime.ResilientHybridExecutor` at the Figure 8
optimum and records the achieved GCUPS, the degradation mode and the
work reclaimed by the host — the cost curve of surviving an unreliable
coprocessor.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultInjector, FaultPlan, RetryPolicy, Timeout
from repro.metrics import format_table
from repro.runtime import HybridExecutor, ResilientHybridExecutor

from conftest import run_once

QUERY_LEN = 5478
FRACTION = 0.5   # near the Figure 8 optimum for this device pair
CHUNKS = 16
FAIL_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)
OUTAGE_RATE = 0.2  # the rate at which a permanent outage is added


def _resilient(xeon, phi, plan):
    return ResilientHybridExecutor(
        xeon, phi,
        injector=FaultInjector(plan),
        retry=RetryPolicy(max_retries=3),
        timeout=Timeout(5.0),
        chunks=CHUNKS,
    )


@pytest.mark.benchmark(group="ext-faults")
def test_fault_rate_vs_achieved_gcups(
    benchmark, xeon_model, phi_model, swissprot_lengths, show
):
    def compute():
        rows = {}
        for rate in FAIL_RATES:
            plan = FaultPlan(
                seed=42,
                transfer_fail_rate=rate,
                outage_unit=CHUNKS - 2 if rate >= OUTAGE_RATE else None,
            )
            r = _resilient(xeon_model, phi_model, plan).run(
                swissprot_lengths, QUERY_LEN, FRACTION
            )
            rows[rate] = r
        return rows

    results = run_once(benchmark, compute)

    show(format_table(
        ["fail rate", "GCUPS", "baseline", "mode", "reclaimed chunks",
         "reclaimed Gcells", "faults"],
        [
            (f"{rate:.0%}", round(r.gcups, 1), round(r.baseline_gcups, 1),
             r.mode, f"{r.chunks_reclaimed}/{r.chunks}",
             round(r.reclaimed_cells / 1e9, 1), r.faults_injected)
            for rate, r in results.items()
        ],
        title="Extension — achieved GCUPS vs injected fault rate "
              f"(split {FRACTION:.0%}, {CHUNKS} chunks, 3 retries)",
    ))
    benchmark.extra_info["gcups"] = {
        str(rate): r.gcups for rate, r in results.items()
    }

    healthy = results[0.0]
    baseline = HybridExecutor(xeon_model, phi_model).run(
        swissprot_lengths, QUERY_LEN, FRACTION
    )
    # Zero faults: the resilient path is free (exact HybridExecutor timing).
    assert abs(healthy.total_seconds - baseline.total_seconds) < 1e-9
    assert healthy.mode == "healthy"

    # Faults only ever cost throughput: the zero-fault run is the
    # optimum.  GCUPS need not fall monotonically in the rate — once a
    # chunk is abandoned, host reclaim can beat retrying a sick device —
    # but the injected fault count must grow with it (the same seed
    # makes a higher rate's failing draws a superset of a lower one's).
    gcups = [results[rate].gcups for rate in FAIL_RATES]
    assert all(g <= gcups[0] * (1 + 1e-9) for g in gcups[1:])
    counts = [results[rate].faults_injected for rate in FAIL_RATES]
    assert all(a <= b for a, b in zip(counts, counts[1:]))
    # Even at 40% chunk failure plus a dead device tail, the search
    # completes and still beats half the healthy throughput of one host.
    worst = results[FAIL_RATES[-1]]
    assert worst.degraded
    assert worst.reclaimed_cells > 0
    assert worst.gcups > 0.5 * baseline.gcups * (1 - FRACTION)

    # Every faulted run's timeline is internally consistent: attempts
    # are time-ordered per chunk and outcomes account for every chunk.
    # (The healthy run takes the single-region fast path: no timeline.)
    for r in results.values():
        if r.mode == "healthy":
            assert r.timeline == ()
            continue
        for a, b in zip(r.timeline, r.timeline[1:]):
            if a.unit == b.unit:
                assert b.start >= a.end - 1e-12
        completed = {rec.unit for rec in r.timeline if rec.ok}
        assert len(completed) == r.chunks - r.chunks_reclaimed
