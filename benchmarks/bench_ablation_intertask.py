"""Ablation — inter-task vs intra-task vectorisation (paper Section IV).

"the inter-task approach usually outperform the intra-task counterpart,
especially when aligning short sequences.  Essentially, when aligning
several pairs in parallel, we avoid the data dependences that limit the
performance of intra-task approaches."

This ablation measures the mechanism with the real Python engines: the
intra-task engines (Farrar striped, anti-diagonal wavefront) pay their
dependence-breaking overhead *per alignment*, so their throughput
collapses on short sequences; the inter-task engine amortises one pass
over many lane-parallel sequences and holds its rate.  Absolute numbers
are Python speeds — the *ratio vs sequence length* is the reproduced
claim.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import InterTaskEngine, StripedEngine, get_engine
from repro.metrics import format_table
from repro.scoring import BLOSUM62, paper_gap_model

from conftest import run_once

GAPS = paper_gap_model()
QUERY_LEN = 128
TOTAL_RESIDUES = 24_000  # constant total work per configuration
SEQ_LENGTHS = (30, 120, 480)


def _batch(rng, seq_len: int) -> list[np.ndarray]:
    count = TOTAL_RESIDUES // seq_len
    return [rng.integers(0, 20, seq_len).astype(np.uint8) for _ in range(count)]


def _throughput(engine_call, cells: int) -> float:
    t0 = time.perf_counter()
    engine_call()
    return cells / (time.perf_counter() - t0)


@pytest.mark.benchmark(group="ablation-intertask")
def test_intertask_beats_intratask_on_short_sequences(benchmark, show):
    rng = np.random.default_rng(99)
    query = rng.integers(0, 20, QUERY_LEN).astype(np.uint8)
    inter = InterTaskEngine(lanes=16)
    striped = StripedEngine(lanes=8)
    diagonal = get_engine("diagonal")

    def compute():
        out = {}
        for seq_len in SEQ_LENGTHS:
            batch = _batch(rng, seq_len)
            cells = QUERY_LEN * sum(len(s) for s in batch)
            out[seq_len] = {
                "intertask": _throughput(
                    lambda: inter.score_batch(query, batch, BLOSUM62, GAPS),
                    cells,
                ),
                "striped": _throughput(
                    lambda: [striped.score_pair(query, s, BLOSUM62, GAPS)
                             for s in batch],
                    cells,
                ),
                "diagonal": _throughput(
                    lambda: [diagonal.score_pair(query, s, BLOSUM62, GAPS)
                             for s in batch],
                    cells,
                ),
            }
        return out

    rates = run_once(benchmark, compute)

    rows = [
        (
            seq_len, TOTAL_RESIDUES // seq_len,
            r["intertask"] / 1e6, r["striped"] / 1e6, r["diagonal"] / 1e6,
            f"{r['intertask'] / r['striped']:.1f}x",
        )
        for seq_len, r in rates.items()
    ]
    show(format_table(
        ["seq len", "#seqs", "inter Mc/s", "striped Mc/s",
         "diagonal Mc/s", "inter/striped"],
        rows,
        title="Ablation — inter-task vs intra-task engines (Python rates)",
    ))
    benchmark.extra_info["rates_mcells_per_s"] = {
        str(k): {n: v / 1e6 for n, v in r.items()} for k, r in rates.items()
    }

    for seq_len in SEQ_LENGTHS:
        # Inter-task wins at every length...
        assert rates[seq_len]["intertask"] > rates[seq_len]["striped"]
        assert rates[seq_len]["intertask"] > rates[seq_len]["diagonal"]
    # ...and "especially when aligning short sequences": the wavefront
    # engine's vector length ramps up/down once per alignment, so its
    # throughput collapses on short sequences while inter-task lanes
    # stay full — the advantage over the intra-task wavefront shrinks
    # as sequences grow.
    short_adv = rates[30]["intertask"] / rates[30]["diagonal"]
    long_adv = rates[480]["intertask"] / rates[480]["diagonal"]
    assert short_adv > long_adv
    # The intra-task engine itself improves with sequence length (its
    # diagonals get longer); inter-task is far less length-sensitive.
    assert rates[480]["diagonal"] > 2 * rates[30]["diagonal"]
