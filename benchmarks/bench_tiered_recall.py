"""Recall@k and work reduction of the tiered search modes vs exhaustive.

The tiered executor (``SearchOptions.mode = "sensitive" | "fast"``)
trades sensitivity for asymptotics: seeds prune, the banded engine
verifies, exact SW rescoring runs only on survivors.  This harness makes
that trade a *measured curve*: for each divergence level it plants known
mutated homologs of a fixed query into a synthetic background
(:func:`repro.db.mutate.plant_homologs`), runs the exhaustive scan as
ground truth, and records per mode:

* **recall@k** — fraction of the exhaustive top-k the tiered mode
  returned (planted homologs dominate the top-k, so this is recall on
  known homologs at that divergence);
* **score exactness** — every returned hit's score must equal the
  exhaustive score for that sequence bit-for-bit (the tiered contract);
* **exact-cell reduction** — exhaustive exact-SW cells per exact-SW
  cell the tiered path actually paid (the acceptance bar is >= 10x for
  ``sensitive``);
* **GCUPS-equivalent throughput** — exhaustive-equivalent cells per
  second of wall time, i.e. what the pruning is worth end to end.

Run directly::

    PYTHONPATH=src python benchmarks/bench_tiered_recall.py

CI gate (regenerates the committed fixture's databases, checks their
digests, and fails unless ``sensitive`` holds recall@10 >= 0.95 at
>= 10x exact-cell reduction)::

    PYTHONPATH=src python benchmarks/bench_tiered_recall.py \
        --gate benchmarks/baselines/tiered_recall_fixture.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

from repro.alphabet import PROTEIN
from repro.db import SequenceDatabase, SyntheticSwissProt
from repro.db.mutate import PlantedHomolog, plant_homologs
from repro.metrics import format_table
from repro.search import SearchOptions, SearchPipeline

#: Fixed 150-residue query (uniform over the 20 standard residues,
#: rng seed 7) — committed as a literal so the fixture digests are
#: reproducible from this file alone.
QUERY = (
    "YMFWKSTCREQWYAITNSNITEEQPQVHILKKLVTSPMEVICTDWMNAHANLVITYTMHLQIGCVA"
    "RDVFWCPGIAMTFDLQVWDLYTPMAPIRCLPLMWFGMKNRFGKECDGTHGKVGKHMHMLFVDKHGC"
    "RHTRHVVCAFAEIWRFLN"
)
SCALE = 0.001
BACKGROUND_SEED = 31
PLANT_SEED = 99
PER_RATE = 10
RATES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
TOP_K = 10
MODES = ("sensitive", "fast")

FIXTURE = Path(__file__).parent / "baselines" / "tiered_recall_fixture.json"


def build_database(
    rate: float,
    *,
    scale: float = SCALE,
    per_rate: int = PER_RATE,
    background_seed: int = BACKGROUND_SEED,
    plant_seed: int = PLANT_SEED,
    query: str = QUERY,
) -> tuple[SequenceDatabase, list[PlantedHomolog]]:
    """One divergence level: background + known homologs at ``rate``."""
    background = SyntheticSwissProt(seed=background_seed).generate(scale=scale)
    return plant_homologs(
        background,
        {"bench-query": PROTEIN.encode(query)},
        [rate],
        per_rate=per_rate,
        seed=plant_seed,
    )


def db_digest(db: SequenceDatabase) -> str:
    """Content digest of a database (headers + residue codes, in order)."""
    h = hashlib.sha256()
    for header, seq in zip(db.headers, db.sequences):
        h.update(header.encode("utf-8"))
        h.update(b"\x00")
        h.update(seq.tobytes())
        h.update(b"\x00")
    return h.hexdigest()


def measure_rate(
    rate: float,
    *,
    modes: tuple[str, ...] = MODES,
    top_k: int = TOP_K,
    **db_kwargs,
) -> list[dict]:
    """Exhaustive ground truth plus every tiered mode at one rate."""
    db, _planted = build_database(rate, **db_kwargs)
    query = db_kwargs.get("query", QUERY)

    exact = SearchPipeline(SearchOptions(top_k=top_k))
    try:
        t0 = time.perf_counter()
        reference = exact.search(query, db, query_name="bench-query")
        exact_wall = time.perf_counter() - t0
    finally:
        exact.close()
    ref_top = [h.index for h in reference.hits]

    rows: list[dict] = []
    for mode in modes:
        pipe = SearchPipeline(SearchOptions(mode=mode, top_k=top_k))
        try:
            t0 = time.perf_counter()
            result = pipe.search(query, db, query_name="bench-query")
            wall = time.perf_counter() - t0
        finally:
            pipe.close()
        returned = {h.index for h in result.hits}
        tier = result.tier
        rows.append({
            "rate": rate,
            "mode": mode,
            "recall": sum(1 for i in ref_top if i in returned) / len(ref_top),
            "score_exact": all(
                h.score == int(reference.scores[h.index])
                for h in result.hits
            ),
            "exact_cell_reduction": tier.exact_cell_reduction,
            "cells_saved": tier.cells_saved,
            "wall_seconds": wall,
            "exact_wall_seconds": exact_wall,
            "speedup": exact_wall / wall if wall > 0 else float("inf"),
            "equivalent_gcups": (
                tier.exhaustive_cells / wall / 1e9 if wall > 0 else 0.0
            ),
            "exhaustive_gcups": (
                reference.cells / exact_wall / 1e9 if exact_wall > 0 else 0.0
            ),
        })
    return rows


def run_sweep(
    rates: tuple[float, ...] = RATES, modes: tuple[str, ...] = MODES
) -> list[dict]:
    rows: list[dict] = []
    for rate in rates:
        rows.extend(measure_rate(rate, modes=modes))
    return rows


def report(rows: list[dict]) -> str:
    return format_table(
        ["rate", "mode", "recall@10", "exact", "SW-cell redux",
         "speedup", "eq. GCUPS"],
        [
            (
                f"{r['rate']:.2f}", r["mode"], f"{r['recall']:.2f}",
                "yes" if r["score_exact"] else "NO",
                f"{r['exact_cell_reduction']:.1f}x",
                f"{r['speedup']:.1f}x",
                f"{r['equivalent_gcups']:.3f}",
            )
            for r in rows
        ],
        title=(
            f"tiered recall vs exhaustive (query {len(QUERY)}aa, "
            f"{PER_RATE} planted homologs/rate, background scale {SCALE})"
        ),
    )


# ----------------------------------------------------------------------
# CI gate against the committed fixture
# ----------------------------------------------------------------------
def run_gate(fixture_path: str | Path) -> list[str]:
    """Check the committed fixture's bars; returns failure messages."""
    with open(fixture_path, encoding="utf-8") as fh:
        spec = json.load(fh)
    db_kwargs = dict(
        scale=spec["scale"],
        per_rate=spec["per_rate"],
        background_seed=spec["background_seed"],
        plant_seed=spec["plant_seed"],
        query=spec["query"],
    )
    failures: list[str] = []
    recalls: list[float] = []
    for rate_str, digest in spec["rates"].items():
        rate = float(rate_str)
        db, _ = build_database(rate, **db_kwargs)
        actual = db_digest(db)
        if actual != digest:
            failures.append(
                f"rate {rate}: regenerated database digest {actual[:12]}... "
                f"!= committed {digest[:12]}... (generator drift — the "
                "fixture no longer measures what was committed)"
            )
            continue
        (row,) = measure_rate(
            rate, modes=(spec["mode"],), top_k=spec["top_k"], **db_kwargs
        )
        recalls.append(row["recall"])
        if not row["score_exact"]:
            failures.append(
                f"rate {rate}: a returned {spec['mode']} hit's score is "
                "not bit-identical to the exhaustive score"
            )
        if row["exact_cell_reduction"] < spec["min_exact_cell_reduction"]:
            failures.append(
                f"rate {rate}: exact-cell reduction "
                f"{row['exact_cell_reduction']:.1f}x < required "
                f"{spec['min_exact_cell_reduction']:.0f}x"
            )
        print(
            f"gate rate={rate:.2f}: recall@{spec['top_k']} "
            f"{row['recall']:.2f}, {row['exact_cell_reduction']:.1f}x "
            f"fewer exact-SW cells, scores exact: {row['score_exact']}"
        )
    if recalls:
        mean_recall = sum(recalls) / len(recalls)
        print(f"gate mean recall@{spec['top_k']}: {mean_recall:.3f} "
              f"(required >= {spec['min_recall']})")
        if mean_recall < spec["min_recall"]:
            failures.append(
                f"mean recall@{spec['top_k']} {mean_recall:.3f} < "
                f"required {spec['min_recall']}"
            )
    return failures


def write_fixture(path: str | Path, rates: tuple[float, ...]) -> None:
    """(Re)generate the committed fixture spec with fresh digests."""
    spec = {
        "description": (
            "Mutated-homolog recall fixture for the tiered search gate: "
            "regenerate each database from the seeds below, verify the "
            "digest, and hold the sensitive mode to the recall and "
            "cell-reduction bars."
        ),
        "query": QUERY,
        "scale": SCALE,
        "background_seed": BACKGROUND_SEED,
        "plant_seed": PLANT_SEED,
        "per_rate": PER_RATE,
        "top_k": TOP_K,
        "mode": "sensitive",
        "min_recall": 0.95,
        "min_exact_cell_reduction": 10.0,
        "rates": {
            f"{rate:g}": db_digest(build_database(rate)[0]) for rate in rates
        },
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(spec, fh, indent=2)
        fh.write("\n")


def test_sensitive_recall_gate():
    """The committed fixture's bars hold: recall@10 >= 0.95 at >= 10x."""
    failures = run_gate(FIXTURE)
    assert not failures, "\n".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--gate", metavar="FIXTURE", default=None,
        help="run the CI gate against this committed fixture spec "
             "instead of the full sweep; exit 1 on any bar failing",
    )
    parser.add_argument(
        "--write-fixture", metavar="PATH", default=None,
        help="(re)generate the fixture spec with fresh database digests",
    )
    parser.add_argument(
        "--rates", type=float, nargs="+", default=list(RATES),
        help="divergence levels to sweep (mutation rate per residue)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the sweep rows as JSON to PATH",
    )
    args = parser.parse_args(argv)

    if args.write_fixture:
        write_fixture(args.write_fixture, tuple(args.rates))
        print(f"wrote {args.write_fixture}")
        return 0
    if args.gate:
        failures = run_gate(args.gate)
        for f in failures:
            print(f"GATE FAILURE: {f}", file=sys.stderr)
        print("tiered recall gate:", "FAIL" if failures else "PASS")
        return 1 if failures else 0

    rows = run_sweep(tuple(args.rates))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(rows, fh, indent=2)
            fh.write("\n")
    print(report(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
