"""Load harness for the serving layer: skewed queries, shed accounting.

Drives a live :class:`~repro.serve.SearchServer` (ephemeral port, tiny
synthetic database) with a pool of concurrent clients issuing a
*skewed* query mix — mostly short queries with a heavy tail of long
ones, the shape a real service sees — against a deliberately small
admission cap, then reports:

- client-observed latency percentiles (p50 / p95 / p99) for the
  requests that were served,
- the shed count (HTTP 429 -> :class:`ServiceOverloaded`) and the
  server's own ``serve.*`` instruments, which must agree,
- throughput over the wall-clock run.

The cap is chosen so the opening volley alone overflows admission:
a correct load-shed path *must* produce a non-zero shed count here,
and the pytest entry point asserts it.

Runs as a plain pytest test and as a script::

    PYTHONPATH=src python benchmarks/bench_serve_load.py
    PYTHONPATH=src python benchmarks/bench_serve_load.py --json stats.json

With ``--json PATH`` the stats dict is also written as JSON — the
ingestion path ``repro bench`` uses instead of scraping stdout.
"""

from __future__ import annotations

import argparse
import json
import threading
import time

import numpy as np

from repro.db import SyntheticSwissProt
from repro.exceptions import ServiceOverloaded
from repro.metrics import MetricsRegistry
from repro.search import SearchRequest
from repro.serve import SearchClient, SearchServer

DB_SCALE = 0.0001
MAX_INFLIGHT = 2
CLIENT_THREADS = 8
REQUESTS_PER_CLIENT = 12
SEED = 29

#: The skewed mix: (query length, weight).  80% short lookups, a 5%
#: tail of long queries that hold the service ~10x longer.
QUERY_MIX = [(15, 0.80), (60, 0.15), (200, 0.05)]


def make_queries(rng: np.random.Generator, count: int) -> list[str]:
    """Draw ``count`` random protein queries from the skewed mix."""
    letters = np.array(list("ACDEFGHIKLMNPQRSTVWY"))
    lengths = rng.choice(
        [length for length, _ in QUERY_MIX],
        size=count,
        p=[weight for _, weight in QUERY_MIX],
    )
    return [
        "".join(rng.choice(letters, size=int(length))) for length in lengths
    ]


def drive(url: str, queries: list[str], latencies: list[float],
          outcomes: dict, lock: threading.Lock) -> None:
    """One client worker: fire every query, record latency or shed."""
    client = SearchClient(url, metrics=MetricsRegistry())
    for query in queries:
        t0 = time.perf_counter()
        try:
            result = client.search(SearchRequest(query=query))
            elapsed = time.perf_counter() - t0
            with lock:
                latencies.append(elapsed)
                outcomes["served"] += 1
                outcomes["best_scores"].append(result.best_score())
        except ServiceOverloaded:
            with lock:
                outcomes["shed"] += 1


def run_load(
    *,
    threads: int = CLIENT_THREADS,
    per_client: int = REQUESTS_PER_CLIENT,
    max_inflight: int = MAX_INFLIGHT,
    seed: int = SEED,
) -> dict:
    """Run the harness; returns the report dict (also printed by main)."""
    rng = np.random.default_rng(seed)
    db = SyntheticSwissProt().generate(scale=DB_SCALE)
    server_metrics = MetricsRegistry()
    latencies: list[float] = []
    outcomes = {"served": 0, "shed": 0, "best_scores": []}
    lock = threading.Lock()

    with SearchServer(
        db, max_inflight=max_inflight, metrics=server_metrics
    ) as server:
        workers = [
            threading.Thread(
                target=drive,
                args=(server.url, make_queries(rng, per_client),
                      latencies, outcomes, lock),
            )
            for _ in range(threads)
        ]
        t0 = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        wall = time.perf_counter() - t0
        snapshot = server_metrics.snapshot()

    lat = np.asarray(sorted(latencies))
    total = threads * per_client
    return {
        "total": total,
        "served": outcomes["served"],
        "shed": outcomes["shed"],
        "wall_seconds": wall,
        "rps": outcomes["served"] / wall if wall > 0 else 0.0,
        "p50": float(np.percentile(lat, 50)) if lat.size else 0.0,
        "p95": float(np.percentile(lat, 95)) if lat.size else 0.0,
        "p99": float(np.percentile(lat, 99)) if lat.size else 0.0,
        "server_shed": snapshot.get("serve.shed", 0),
        "server_requests": snapshot.get("serve.requests", 0),
        "server_errors": snapshot.get("serve.errors", 0),
    }


def report(stats: dict) -> str:
    return "\n".join([
        f"serve load: {stats['total']} requests from "
        f"{CLIENT_THREADS} concurrent clients "
        f"(max_inflight={MAX_INFLIGHT}, skewed mix "
        + "/".join(f"{l}aa@{w:.0%}" for l, w in QUERY_MIX) + ")",
        f"  served: {stats['served']}  shed: {stats['shed']} "
        f"(server counted {stats['server_shed']})",
        f"  wall: {stats['wall_seconds']:.2f}s "
        f"({stats['rps']:.1f} served req/s)",
        f"  latency p50={stats['p50'] * 1e3:.1f}ms  "
        f"p95={stats['p95'] * 1e3:.1f}ms  "
        f"p99={stats['p99'] * 1e3:.1f}ms",
    ])


def test_load_shed_and_percentiles():
    """Capped overload serves correctly, sheds visibly, reports tails."""
    stats = run_load()
    assert stats["served"] + stats["shed"] == stats["total"]
    # Every served answer scored something against the database.
    assert stats["served"] > 0
    # 8 clients against an admission cap of 2: the opening volley alone
    # must overflow — a zero shed count means admission control is off.
    assert stats["shed"] > 0
    assert stats["server_shed"] == stats["shed"]
    assert 0.0 < stats["p50"] <= stats["p95"] <= stats["p99"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--threads", type=int, default=CLIENT_THREADS)
    parser.add_argument("--per-client", type=int,
                        default=REQUESTS_PER_CLIENT)
    parser.add_argument("--max-inflight", type=int, default=MAX_INFLIGHT)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the stats dict as JSON to PATH",
    )
    args = parser.parse_args(argv)
    stats = run_load(
        threads=args.threads,
        per_client=args.per_client,
        max_inflight=args.max_inflight,
        seed=args.seed,
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, sort_keys=True, indent=2)
            fh.write("\n")
    print(report(stats))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
