"""Shared fixtures for the figure-regeneration benchmark harness.

Every ``bench_fig*.py`` regenerates one figure of the paper's evaluation
(Section V): it computes the same series the figure plots, prints them as
a table next to the paper's reported values, records them in
``benchmark.extra_info`` and asserts the *shape* facts the paper states
(who wins, by roughly what factor, where crossovers fall).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import SyntheticSwissProt
from repro.devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
from repro.perfmodel import DevicePerformanceModel, Workload


@pytest.fixture(scope="session")
def swissprot_lengths() -> np.ndarray:
    """Full-scale synthetic Swiss-Prot length distribution (Section V-B)."""
    return SyntheticSwissProt().lengths()


@pytest.fixture(scope="session")
def xeon_model() -> DevicePerformanceModel:
    """Performance model of the dual Xeon E5-2670 host."""
    return DevicePerformanceModel(XEON_E5_2670_DUAL)


@pytest.fixture(scope="session")
def phi_model() -> DevicePerformanceModel:
    """Performance model of the 60-core Xeon Phi."""
    return DevicePerformanceModel(XEON_PHI_57XX)


@pytest.fixture(scope="session")
def xeon_workload(swissprot_lengths) -> Workload:
    """The database packed for the Xeon's 8 32-bit AVX lanes."""
    return Workload.from_lengths(swissprot_lengths, 8)


@pytest.fixture(scope="session")
def phi_workload(swissprot_lengths) -> Workload:
    """The database packed for the Phi's 16 32-bit MIC lanes."""
    return Workload.from_lengths(swissprot_lengths, 16)


@pytest.fixture
def show(capsys):
    """Print a table to the real terminal, bypassing pytest capture."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _show


def run_once(benchmark, fn):
    """Run a deterministic figure computation exactly once under timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
