"""Ablation — the database pre-sort (paper Section IV).

"A straightforward optimisation consists in pre-processing the reference
database and sorting its sequences by length in advance.  This way,
consecutive alignments operations take similar time."

Two mechanisms make the pre-sort pay, both measured here on the real
synthetic database:

* **lane packing** — the inter-task engine pads every lane group to its
  longest member; sorted packing makes groups nearly uniform, unsorted
  packing wastes a large fraction of every vector operation;
* **scheduling** — with similar-cost consecutive iterations, the dynamic
  schedule balances almost perfectly; the paper's observation holds
  either way, but padding-inflated group costs raise the makespan.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_lane_groups
from repro.db import SyntheticSwissProt
from repro.devices import ParallelFor, Schedule
from repro.metrics import format_table

from conftest import run_once

LANES = 16
THREADS = 16


@pytest.mark.benchmark(group="ablation-sort")
def test_presort_ablation(benchmark, show):
    db = SyntheticSwissProt().generate(scale=0.01)

    def compute():
        out = {}
        for sort in (True, False):
            groups = build_lane_groups(
                db.sequences, LANES, sort_by_length=sort
            )
            real = sum(int(g.lengths.sum()) for g in groups)
            padded = sum(g.n_max * g.lanes for g in groups)
            # Vector ops execute over the padded rectangle; effective
            # utilisation is real/padded.
            costs = np.array([g.n_max * g.lanes for g in groups], float)
            sched = ParallelFor(THREADS, Schedule.DYNAMIC).run(costs)
            out[sort] = {
                "padding": 1.0 - real / padded,
                "padded_cells": padded,
                "makespan": sched.makespan,
                "sched_eff": sched.efficiency,
            }
        return out

    data = run_once(benchmark, compute)

    rows = [
        (
            "sorted" if sort else "unsorted",
            f"{d['padding']:.1%}",
            d["padded_cells"] / 1e6,
            d["makespan"] / 1e3,
            f"{d['sched_eff']:.1%}",
        )
        for sort, d in data.items()
    ]
    show(format_table(
        ["packing", "lane padding", "vector work (M)", "makespan (k)",
         "sched eff"],
        rows,
        title="Ablation — database pre-sort (Section IV)",
    ))
    benchmark.extra_info["padding"] = {
        str(k): v["padding"] for k, v in data.items()
    }

    sorted_d, unsorted_d = data[True], data[False]
    # Sorting slashes lane padding...
    assert sorted_d["padding"] < 0.5 * unsorted_d["padding"]
    assert sorted_d["padding"] < 0.30
    assert unsorted_d["padding"] > 0.40
    # ...and therefore total vector work and the schedule makespan.
    assert sorted_d["padded_cells"] < unsorted_d["padded_cells"]
    assert sorted_d["makespan"] < unsorted_d["makespan"]
