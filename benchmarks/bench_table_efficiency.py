"""Section V-C1 efficiency quotes — the paper's thread-scaling table.

Paper: "we observe an efficiency from 99% to 88% with 4 and 16 threads
respectively in intrinsic-SP test (when hyper-threading is enabled, it's
reduced to 70% for 32 threads).  The efficiency for intrinsic-QP is
slightly less (73% with 16 threads)".
"""

from __future__ import annotations

import pytest

from repro.metrics import format_table, paper_comparison
from repro.perfmodel import RunConfig, efficiency_table

from conftest import run_once

QUERY_LEN = 1000


@pytest.mark.benchmark(group="table-efficiency")
def test_thread_scaling_efficiency(benchmark, xeon_model, xeon_workload, show):
    def compute():
        return {
            "intrinsic-SP": efficiency_table(
                xeon_model, xeon_workload, QUERY_LEN,
                RunConfig(), [1, 4, 16, 32],
            ),
            "intrinsic-QP": efficiency_table(
                xeon_model, xeon_workload, QUERY_LEN,
                RunConfig(profile="query"), [1, 4, 16, 32],
            ),
        }

    eff = run_once(benchmark, compute)

    rows = [
        [label] + [f"{eff[label][t]:.0%}" for t in (1, 4, 16, 32)]
        for label in eff
    ]
    show(format_table(
        ["variant", "1t", "4t", "16t", "32t"], rows,
        title="Section V-C1 — Xeon thread-scaling efficiency",
    ))
    sp = eff["intrinsic-SP"]
    show(paper_comparison([
        ("efficiency @4t (intrinsic-SP)", 0.99, sp[4]),
        ("efficiency @16t (intrinsic-SP)", 0.88, sp[16]),
        ("efficiency @32t (intrinsic-SP)", 0.70, sp[32]),
    ]))
    benchmark.extra_info["efficiency"] = {
        k: {str(t): v for t, v in s.items()} for k, s in eff.items()
    }

    assert sp[4] == pytest.approx(0.99, abs=0.04)
    assert sp[16] == pytest.approx(0.88, abs=0.12)
    assert sp[32] == pytest.approx(0.70, abs=0.07)
    # Efficiency decreases with thread count; HT threads are not cores.
    assert sp[4] > sp[16] > sp[32]
