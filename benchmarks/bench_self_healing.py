"""Self-healing overhead: a chaos scan vs the same scan fault-free.

A worker death mid-scan costs one pool rebuild plus the re-execution of
the chunks whose results died with it — not the whole scan.  This
benchmark measures that price for real: the same sharded out-of-core
scan is run clean and under a seeded worker-kill plan, asserting
bit-identical hits and bounding the chaos run's slowdown.
"""

from __future__ import annotations

import time

import pytest

from repro.db import SyntheticSwissProt
from repro.faults import FaultInjector, FaultPlan
from repro.metrics import MetricsRegistry, format_table
from repro.search import SearchOptions, ShardedStreamingSearch

from conftest import run_once

SCALE = 0.004
QUERY = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQMTPSRHADSLVKQ"
CHUNK_SIZE = 64
SHARD_RECORDS = 256
#: One poison chunk: it kills its worker until quarantined, so the run
#: pays poison_threshold pool rebuilds plus the inline reclaim.
KILL_PLAN = FaultPlan(seed=11, worker_kill_units=(3,))


@pytest.fixture(scope="module")
def database():
    return SyntheticSwissProt(seed=23).generate(scale=SCALE)


@pytest.mark.benchmark(group="self-healing")
def test_self_healing_overhead(benchmark, show, database):
    clean_opts = SearchOptions(chunk_size=CHUNK_SIZE, top_k=10)
    chaos_opts = SearchOptions(
        chunk_size=CHUNK_SIZE, top_k=10,
        injector=FaultInjector(KILL_PLAN),
    )

    def measure() -> dict:
        out: dict = {}
        with ShardedStreamingSearch(
            clean_opts, workers=2, shard_records=SHARD_RECORDS
        ) as clean:
            clean.search_database(QUERY, database)  # warm-up: pool start
            t0 = time.perf_counter()
            out["clean"] = clean.search_database(QUERY, database)
            out["clean_wall"] = time.perf_counter() - t0

        registry = MetricsRegistry()
        with ShardedStreamingSearch(
            chaos_opts, workers=2, shard_records=SHARD_RECORDS,
            metrics=registry,
        ) as chaos:
            t0 = time.perf_counter()
            out["chaos"] = chaos.search_database(QUERY, database)
            out["chaos_wall"] = time.perf_counter() - t0
        out["heals"] = registry.snapshot().get("pool.heal.count", 0)
        out["quarantined"] = registry.snapshot().get(
            "pool.heal.quarantined", 0
        )
        return out

    r = run_once(benchmark, measure)
    clean, chaos = r["clean"], r["chaos"]
    overhead = r["chaos_wall"] / r["clean_wall"]

    show(format_table(
        ["run", "wall", "GCUPS", "heals"],
        [
            ("clean x2", f"{r['clean_wall']:.3f}s",
             f"{clean.wall_gcups:.4f}", 0),
            ("worker-kill x2", f"{r['chaos_wall']:.3f}s",
             f"{chaos.wall_gcups:.4f}", r["heals"]),
        ],
        title=f"self-healing overhead ({len(database)} records, "
              f"poison chunk 3, {overhead:.2f}x wall)",
    ))
    benchmark.extra_info.update(
        clean_wall=r["clean_wall"], chaos_wall=r["chaos_wall"],
        heals=r["heals"], quarantined=r["quarantined"],
        overhead=overhead,
    )

    # The plan actually fired and the pool healed through it.
    assert r["heals"] >= 1
    assert r["quarantined"] >= 1

    # Healing must not change a single bit of the result.
    assert [
        (h.score, h.index, h.header, h.length) for h in chaos.hits
    ] == [
        (h.score, h.index, h.header, h.length) for h in clean.hits
    ]
    assert chaos.sequences_scanned == clean.sequences_scanned
    assert chaos.cells == clean.cells

    # The price of surviving: pool rebuilds + redone chunks, bounded —
    # a heal must never cost anything like a full rescan (generous
    # ceiling to stay robust on slow shared runners).
    assert overhead < 25.0, (
        f"chaos run took {overhead:.1f}x the clean scan — healing is "
        "costing more than re-running the search"
    )
