"""Extension — the sensitivity/speed trade-off of Section I.

The paper's motivation: heuristics (BLAST) "increase speed at the cost
of reduced sensitivity" while exact SW "guarantees the optimal
alignment".  This bench quantifies both sides on a planted-homolog
database: the heuristic must skip most of the DP work, recover exact
scores on close homologs, and measurably degrade on distant ones —
while the exact engine's scores are optimal at every divergence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import SyntheticSwissProt
from repro.db.mutate import plant_homologs
from repro.heuristic import MiniBlast
from repro.metrics import average_precision, format_table, recall_at_k
from repro.search import SearchPipeline

from conftest import run_once

RATES = [0.1, 0.3, 0.5, 0.7]


@pytest.mark.benchmark(group="ext-sensitivity")
def test_sensitivity_vs_speed(benchmark, show):
    background = SyntheticSwissProt().generate(scale=0.0002)
    rng = np.random.default_rng(2014)
    query = rng.integers(0, 20, 250).astype(np.uint8)
    db, planted = plant_homologs(
        background, {"q": query}, RATES, per_rate=3
    )

    def compute():
        exact = SearchPipeline().search(query, db)
        heuristic = MiniBlast().search(query, db)
        return exact, heuristic

    exact, heuristic = run_once(benchmark, compute)

    rows = []
    recovery = {}
    for rate in RATES:
        idx = [p.index for p in planted if p.rate == rate]
        sw = np.array([exact.scores[i] for i in idx], dtype=float)
        bl = np.array([heuristic.scores[i] for i in idx], dtype=float)
        recovery[rate] = float((bl / sw).mean())
        rows.append((f"{rate:.0%}", sw.mean(), bl.mean(),
                     f"{recovery[rate]:.0%}"))
    show(format_table(
        ["divergence", "mean SW", "mean BLAST", "recovered"],
        rows,
        title="Extension — heuristic score recovery vs divergence",
    ))
    show(
        f"cells: heuristic {heuristic.cells_computed:,} vs exact "
        f"{heuristic.exact_cells:,} ({heuristic.cell_savings:.1%} skipped)"
    )
    benchmark.extra_info["recovery"] = {str(r): v for r, v in recovery.items()}
    benchmark.extra_info["cell_savings"] = heuristic.cell_savings

    # Heuristic never beats exact (it explores a DP subset).
    assert (heuristic.scores <= exact.scores).all()
    # Speed: the whole point — most DP work skipped.
    assert heuristic.cell_savings > 0.5
    # Sensitivity: close homologs nearly fully recovered, distant ones
    # measurably degraded (the paper's trade-off).
    assert recovery[0.1] > 0.8
    assert recovery[0.7] < 0.9
    assert recovery[0.1] > recovery[0.7]
    # Retrieval quality: the exact engine ranks every planted homolog
    # above the background (perfect average precision); the heuristic
    # still finds them all here, but with degraded scores.
    relevant = {p.index for p in planted}
    assert average_precision(exact.scores, relevant) == 1.0
    assert recall_at_k(exact.scores, relevant, k=len(relevant)) == 1.0
    assert recall_at_k(heuristic.scores, relevant, k=len(relevant)) >= 0.9
    benchmark.extra_info["exact_ap"] = average_precision(
        exact.scores, relevant
    )
    benchmark.extra_info["heuristic_ap"] = average_precision(
        heuristic.scores, relevant
    )
