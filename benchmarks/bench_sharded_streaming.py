"""Sharded out-of-core scan: speedup and peak-memory bound vs serial.

The sharded driver's two promises are measured here for real:

* **Bounded memory** — the driver's peak Python heap while streaming a
  FASTA through bounded shards stays a small multiple of the shard
  size, far below what loading and preprocessing the database whole
  costs (measured with ``tracemalloc`` over the same file).
* **Speedup** — with ``workers=2`` the same scan finishes faster than
  the serial in-process one, with bit-identical hits.

Hit identity and the memory bound are asserted on every runner; the
wall-clock speedup assertion is **skipped, not failed**, on single-core
runners where real parallel speedup is impossible by construction.
"""

from __future__ import annotations

import os
import time
import tracemalloc

import pytest

from repro.alphabet import PROTEIN
from repro.db import SequenceDatabase, SyntheticSwissProt, write_fasta
from repro.db.fasta import FastaRecord
from repro.db.preprocess import preprocess_database
from repro.metrics import format_table
from repro.search import SearchOptions, StreamingSearch

from conftest import run_once

SCALE = 0.01
QUERY = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQMTPSRHADSLVKQ"
SHARD_RESIDUES = 50_000
CHUNK_SIZE = 128


@pytest.fixture(scope="module")
def fasta_path(tmp_path_factory):
    db = SyntheticSwissProt(seed=23).generate(scale=SCALE)
    records = [
        FastaRecord(h, PROTEIN.decode(s))
        for h, s in zip(db.headers, db.sequences)
    ]
    path = tmp_path_factory.mktemp("shardbench") / "db.fasta"
    write_fasta(records, path)
    return path, db.total_residues, len(db)


@pytest.mark.benchmark(group="sharded-streaming")
def test_sharded_streaming(benchmark, show, fasta_path):
    path, total_residues, n_records = fasta_path
    cores = os.cpu_count() or 1
    opts = SearchOptions(chunk_size=CHUNK_SIZE, top_k=10)

    def measure() -> dict:
        out: dict = {}

        # Reference: what "just load it" costs in driver memory.
        tracemalloc.start()
        resident = SequenceDatabase.from_fasta(path)
        preprocess_database(resident, lanes=8)
        _, out["resident_peak"] = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del resident

        # Serial out-of-core scan (the baseline the speedup is against).
        serial = StreamingSearch(opts)
        t0 = time.perf_counter()
        out["serial"] = serial.search_fasta(QUERY, path)
        out["serial_wall"] = time.perf_counter() - t0

        # Sharded scan: timed run first (pool warm-up excluded), then a
        # second run under tracemalloc for the driver-side peak.
        with StreamingSearch(
            opts, workers=2, shard_residues=SHARD_RESIDUES
        ) as sharded:
            sharded.search_fasta(QUERY, path)  # warm-up: pool start
            t0 = time.perf_counter()
            out["sharded"] = sharded.search_fasta(QUERY, path)
            out["sharded_wall"] = time.perf_counter() - t0
            tracemalloc.start()
            sharded.search_fasta(QUERY, path)
            _, out["sharded_peak"] = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        return out

    r = run_once(benchmark, measure)
    serial, sharded = r["serial"], r["sharded"]
    speedup = r["serial_wall"] / r["sharded_wall"]

    show(format_table(
        ["path", "wall", "GCUPS", "driver peak"],
        [
            ("serial stream", f"{r['serial_wall']:.3f}s",
             f"{serial.wall_gcups:.4f}", "-"),
            ("sharded x2", f"{r['sharded_wall']:.3f}s",
             f"{sharded.wall_gcups:.4f}",
             f"{r['sharded_peak'] / 1e6:.2f} MB"),
            ("resident load", "-", "-",
             f"{r['resident_peak'] / 1e6:.2f} MB"),
        ],
        title=f"sharded streaming ({n_records} records, "
              f"{total_residues} residues, shard {SHARD_RESIDUES}, "
              f"{cores} cores)",
    ))
    benchmark.extra_info.update(
        cores=cores, speedup=speedup,
        serial_wall=r["serial_wall"], sharded_wall=r["sharded_wall"],
        sharded_peak=r["sharded_peak"], resident_peak=r["resident_peak"],
    )

    # Identity: the whole point of the chunk-aligned merge.
    assert [
        (h.score, h.index, h.header, h.length) for h in sharded.hits
    ] == [
        (h.score, h.index, h.header, h.length) for h in serial.hits
    ]
    assert sharded.corrupted_redone == serial.corrupted_redone
    assert sharded.cells == serial.cells

    # Memory bound: the driver never holds more than a few shards'
    # worth (double buffer + in-flight task copies), nowhere near the
    # fully-resident load of the same file.
    shard_bytes = SHARD_RESIDUES  # uint8 codes: 1 byte per residue
    assert r["sharded_peak"] < 10 * shard_bytes + 2_000_000, (
        f"driver peak {r['sharded_peak']} bytes is not bounded by the "
        f"shard size ({shard_bytes} bytes/shard)"
    )
    assert r["sharded_peak"] < r["resident_peak"] / 2, (
        f"sharded driver peak {r['sharded_peak']} is not clearly below "
        f"the resident-load peak {r['resident_peak']}"
    )

    if cores < 2:
        pytest.skip(
            f"needs a multi-core runner (cpu count {cores}): one core "
            "cannot show real sharded speedup (identity and memory "
            "bound asserted above)"
        )
    assert speedup > 1.0, (
        f"expected >1x sharded speedup on {cores} cores, "
        f"got {speedup:.2f}x"
    )
