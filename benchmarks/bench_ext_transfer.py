"""Extension — host/coprocessor transfer impact on larger databases.

The paper's conclusions: "We are also interested in evaluating the
performance of these algorithms with larger sequences databases, as
UniProt-TrEMBL.  This will allow us to asses the impact of transferences
between host and coprocessor."  This bench runs that assessment on the
model, with the honest headline result: for a single query, the PCIe
transfer *fraction* is independent of database size (compute and
transfer both scale linearly with residues) and is governed instead by
query length — ``transfer/compute ~ rate / (bandwidth * qlen)`` — and by
how many queries one shipment amortises over.
"""

from __future__ import annotations

import pytest

from repro.db import PAPER_QUERIES
from repro.db.synthetic import SWISSPROT_2013_11, TREMBL_2014_07, SyntheticSwissProt
from repro.metrics import format_table
from repro.perfmodel import RunConfig, Workload
from repro.runtime import PCIE_GEN2_X16
from repro.runtime.pipelined import PipelinedOffload

from conftest import run_once

#: TrEMBL is sampled at 1/100 — transfer/compute ratios are
#: scale-invariant, and the full 80 M-entry length array costs ~640 MB.
TREMBL_SAMPLE = 0.01


@pytest.mark.benchmark(group="ext-transfer")
def test_transfer_impact(benchmark, phi_model, show):
    def compute():
        out = {}
        for profile, scale in (
            (SWISSPROT_2013_11, 1.0),
            (TREMBL_2014_07, TREMBL_SAMPLE),
        ):
            lengths = SyntheticSwissProt(profile).lengths(scale=scale)
            wl = Workload.from_lengths(lengths, 16)
            rate = phi_model.rate(wl, RunConfig())
            rows = {}
            for qlen in (144, 1000, 5478):
                compute_s = wl.cells(qlen) / rate
                transfer_s = PCIE_GEN2_X16.transfer_seconds(wl.total_residues)
                rows[qlen] = {
                    "compute": compute_s,
                    "transfer": transfer_s,
                    "fraction_1q": transfer_s / (transfer_s + compute_s),
                    "fraction_20q": transfer_s
                    / (transfer_s + 20 * compute_s),
                }
            out[profile.name] = rows
        return out

    data = run_once(benchmark, compute)

    rows = []
    for db_name, per_q in data.items():
        for qlen, r in per_q.items():
            rows.append((
                db_name, qlen, r["compute"], r["transfer"] * 1000,
                f"{r['fraction_1q']:.2%}", f"{r['fraction_20q']:.3%}",
            ))
    show(format_table(
        ["database", "qlen", "compute s", "transfer ms",
         "transfer share (1 query)", "share (20 queries)"],
        rows,
        title="Extension — PCIe transfer impact (Phi, intrinsic-SP)",
    ))
    benchmark.extra_info["fractions"] = {
        db: {str(q): r["fraction_1q"] for q, r in per_q.items()}
        for db, per_q in data.items()
    }

    sp = data["swissprot-2013_11"]
    tr = data["trembl-2014_07"]
    # Database size does not change the transfer *fraction* (both sides
    # scale with residues) — the future-work question's actual answer.
    for qlen in (144, 1000, 5478):
        assert sp[qlen]["fraction_1q"] == pytest.approx(
            tr[qlen]["fraction_1q"], rel=0.05
        )
    # Query length does: short queries pay ~38x the relative transfer
    # cost of the longest one.
    assert sp[144]["fraction_1q"] > 10 * sp[5478]["fraction_1q"]
    # And batching queries amortises the shipment.
    for qlen in (144, 1000, 5478):
        assert sp[qlen]["fraction_20q"] < sp[qlen]["fraction_1q"] / 10
    # Transfer is a small tax overall at these rates (<5% worst case).
    assert sp[144]["fraction_1q"] < 0.05
    # And double-buffered (pipelined) offload hides most of what is
    # left: the worst case's exposed transfer share drops further.
    pipe = PipelinedOffload(PCIE_GEN2_X16)
    worst = sp[144]
    best = pipe.best_chunk_count(
        192_480_382, worst["compute"]
    )
    exposed = (best.pipelined_seconds - worst["compute"]) / worst["compute"]
    assert best.pipelined_seconds < worst["compute"] + worst["transfer"]
    assert exposed < worst["fraction_1q"]
    benchmark.extra_info["pipelined_exposed_fraction"] = exposed