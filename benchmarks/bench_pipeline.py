"""Real-compute benchmarks of the end-to-end pipelines.

Times the integrated paths (Algorithm 1 pipeline, Algorithm 2 hybrid
pipeline, MiniBlast) on a fixed synthetic workload — regression tracking
for the whole stack rather than individual kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import SyntheticSwissProt
from repro.devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
from repro.heuristic import MiniBlast
from repro.perfmodel import DevicePerformanceModel
from repro.search import SearchOptions, SearchPipeline
from repro.search.hybrid_pipeline import HybridSearchPipeline

DB = SyntheticSwissProt().generate(scale=0.0002)
RNG = np.random.default_rng(7)
QUERY = RNG.integers(0, 20, 200).astype(np.uint8)
CELLS = len(QUERY) * DB.total_residues


@pytest.mark.benchmark(group="pipeline")
@pytest.mark.parametrize("profile", ["sequence", "query"])
def test_search_pipeline(benchmark, profile):
    pipe = SearchPipeline(SearchOptions(profile=profile))
    result = benchmark(lambda: pipe.search(QUERY, DB, top_k=5))
    assert result.cells == CELLS
    benchmark.extra_info["wall_gcups"] = result.wall_gcups


@pytest.mark.benchmark(group="pipeline")
def test_hybrid_pipeline(benchmark):
    pipe = HybridSearchPipeline(
        DevicePerformanceModel(XEON_E5_2670_DUAL),
        DevicePerformanceModel(XEON_PHI_57XX),
    )
    outcome = benchmark(
        lambda: pipe.search(QUERY, DB, device_fraction=0.55, top_k=5)
    )
    assert outcome.result.cells == CELLS
    benchmark.extra_info["modeled_gcups"] = outcome.modeled_gcups


@pytest.mark.benchmark(group="pipeline")
def test_miniblast_pipeline(benchmark):
    blaster = MiniBlast()
    result = benchmark(lambda: blaster.search(QUERY, DB))
    assert result.exact_cells == CELLS
    benchmark.extra_info["cell_savings"] = result.cell_savings
