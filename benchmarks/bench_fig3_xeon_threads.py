"""Figure 3 — Xeon GCUPS vs thread count for all six variants.

Paper series: no-vec (flat, ~1-2 GCUPS), simd-QP/SP and intrinsic-QP/SP
scaling near-linearly to 16 physical cores with a hyper-threading knee
to 32 threads; best result "up-to 30.4 GCUPS with 32 threads"
(intrinsic-SP).  The Fig. 3 run uses a mid-length query; the paper's
Fig. 4 peak of 32 GCUPS corresponds to the longest query.
"""

from __future__ import annotations

import pytest

from repro.metrics import format_table, paper_comparison
from repro.perfmodel import RunConfig, thread_sweep

from conftest import run_once

THREADS = [1, 2, 4, 8, 16, 32]
#: Mid-length paper query (P27895) — a representative Fig. 3 input.
QUERY_LEN = 1000

VARIANTS = [
    RunConfig(vectorization="novec"),
    RunConfig(vectorization="simd", profile="query"),
    RunConfig(vectorization="simd", profile="sequence"),
    RunConfig(vectorization="intrinsic", profile="query"),
    RunConfig(vectorization="intrinsic", profile="sequence"),
]


@pytest.mark.benchmark(group="fig3")
def test_fig3_xeon_thread_scaling(benchmark, xeon_model, xeon_workload, show):
    def compute():
        return {
            cfg.label: thread_sweep(
                xeon_model, xeon_workload, QUERY_LEN, cfg, THREADS
            )
            for cfg in VARIANTS
        }

    series = run_once(benchmark, compute)

    rows = [
        [label] + [series[label][t] for t in THREADS]
        for label in series
    ]
    show(format_table(
        ["variant"] + [f"{t}t" for t in THREADS], rows,
        title=f"Figure 3 — Xeon GCUPS vs threads (query length {QUERY_LEN})",
    ))
    best = series["intrinsic-SP"][32]
    show(paper_comparison(
        [("Fig.3 best (intrinsic-SP @32t)", 30.4, best)],
    ))
    benchmark.extra_info["series"] = {
        k: {str(t): v for t, v in s.items()} for k, s in series.items()
    }

    # Shape assertions from the paper's narrative.
    for t in THREADS:
        assert series["intrinsic-SP"][t] >= series["simd-SP"][t]
        assert series["simd-SP"][t] >= series["simd-QP"][t]
        assert series["no-vec"][t] < 3.0  # "hardly offer performances"
    # Best result within 15% of the quoted 30.4 GCUPS.
    assert best == pytest.approx(30.4, rel=0.15)
    # Near-linear region then HT knee.
    sp = series["intrinsic-SP"]
    assert sp[16] / sp[1] > 12.0
    assert sp[32] / sp[16] < 1.6
