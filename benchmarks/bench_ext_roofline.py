"""Extension — roofline analysis of the SW kernel (explains Fig. 7).

Where does the kernel sit against each device's compute and bandwidth
ceilings?  The structural answer behind the paper's blocking study:

* blocked intrinsic-SP is **compute-bound** on both devices (its DP
  state and profile planes are cache-resident, so DRAM traffic ~0 and
  arithmetic intensity diverges);
* unblocked SP on the Phi slides down the **bandwidth roof** — with no
  L3 behind its 512 KB L2, every spilled byte is a GDDR5 byte, and the
  attainable rate collapses to a fraction of the compute roof;
* on the Xeon the L3 absorbs the L2 spill, so even the unblocked kernel
  stays near its compute roof — which is exactly why Fig. 7's blocking
  gain is modest on the Xeon and dramatic on the Phi.
"""

from __future__ import annotations

import pytest

from repro.metrics import format_table
from repro.perfmodel import RunConfig
from repro.perfmodel.roofline import roofline_analysis

from conftest import run_once


@pytest.mark.benchmark(group="ext-roofline")
def test_roofline(benchmark, xeon_model, phi_model,
                  xeon_workload, phi_workload, show):
    def compute():
        out = {}
        for name, model, wl in (
            ("xeon", xeon_model, xeon_workload),
            ("phi", phi_model, phi_workload),
        ):
            out[name] = roofline_analysis(model, wl)
        return out

    points = run_once(benchmark, compute)

    rows = []
    for device, plist in points.items():
        for p in plist:
            rows.append((
                device, p.label, p.bound,
                "inf" if p.intensity == float("inf") else p.intensity,
                p.attainable_cells_per_s / 1e9,
                p.achieved_cells_per_s / 1e9,
            ))
    show(format_table(
        ["device", "config", "bound", "insns/byte",
         "attainable Gc/s", "achieved Gc/s"],
        rows,
        title="Extension — SW kernel roofline (intrinsic variants)",
    ))
    benchmark.extra_info["bounds"] = {
        f"{d}/{p.label}": p.bound for d, pl in points.items() for p in pl
    }

    by = {
        (d, p.label): p for d, plist in points.items() for p in plist
    }
    # Blocked SP: compute-bound on both devices, under its roof.
    for device in ("xeon", "phi"):
        p = by[(device, "intrinsic-SP+blk")]
        assert p.bound == "compute"
        assert p.roof_fraction <= 1.0
    # Unblocked SP on the Phi: bandwidth-bound, with an attainable rate
    # far below the blocked configuration's achieved rate — the
    # structural cause of Fig. 7's large Phi gap.
    phi_unblk = by[("phi", "intrinsic-SP-blk")]
    phi_blk = by[("phi", "intrinsic-SP+blk")]
    assert phi_unblk.bound == "bandwidth"
    assert phi_unblk.attainable_cells_per_s < 0.5 * phi_blk.achieved_cells_per_s
    # On the Xeon the L3 keeps the unblocked attainable near the compute
    # roof — Fig. 7's gap is small there.
    xeon_unblk = by[("xeon", "intrinsic-SP-blk")]
    xeon_blk = by[("xeon", "intrinsic-SP+blk")]
    assert (
        xeon_unblk.attainable_cells_per_s
        > 0.7 * xeon_blk.attainable_cells_per_s
    )
    # The roofline ratio ranks the devices' blocking sensitivity the
    # same way the paper's Fig. 7 does.
    phi_ratio = phi_unblk.attainable_cells_per_s / phi_blk.attainable_cells_per_s
    xeon_ratio = (
        xeon_unblk.attainable_cells_per_s / xeon_blk.attainable_cells_per_s
    )
    assert phi_ratio < xeon_ratio
