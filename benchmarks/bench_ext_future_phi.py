"""Extension — the paper's "future coprocessors" projection.

Section V-C2: "this figure shows that OpenMP implementations are
scalable with the number of threads.  This fact suggests that future
coprocessors with more cores and threads per core will provide better
GCUPS."  This bench makes the suggestion quantitative: the KNC-calibrated
model is projected (same calibration, same anchor, different structural
spec) onto a Knights Landing-class part and onto simple core-count
scalings of KNC itself.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

import pytest

from repro.devices import XEON_PHI_57XX
from repro.devices.spec import XEON_PHI_KNL_PROJECTION
from repro.metrics import format_table
from repro.perfmodel import RunConfig, Workload

from conftest import run_once

QUERY_LEN = 5478


@pytest.mark.benchmark(group="ext-future")
def test_future_coprocessor_projection(benchmark, phi_model,
                                       swissprot_lengths, show):
    def compute():
        out = {}
        wl16 = Workload.from_lengths(swissprot_lengths, 16)
        out["KNC (measured anchor)"] = (
            XEON_PHI_57XX, phi_model.gcups(wl16, QUERY_LEN, RunConfig())
        )
        # More cores at the same microarchitecture.
        for cores in (80, 120):
            spec = dc_replace(
                XEON_PHI_57XX, name=f"knc-{cores}c", cores=cores
            )
            model = phi_model.project(spec)
            out[f"KNC scaled to {cores} cores"] = (
                spec, model.gcups(wl16, QUERY_LEN, RunConfig())
            )
        # The actual next generation.
        knl = phi_model.project(XEON_PHI_KNL_PROJECTION)
        out["KNL-class projection"] = (
            XEON_PHI_KNL_PROJECTION,
            knl.gcups(wl16, QUERY_LEN, RunConfig()),
        )
        return out

    projections = run_once(benchmark, compute)

    rows = [
        (name, spec.cores, spec.max_threads, spec.clock_ghz, gcups)
        for name, (spec, gcups) in projections.items()
    ]
    show(format_table(
        ["device", "cores", "threads", "GHz", "GCUPS"],
        rows,
        title="Extension — future-coprocessor projections (intrinsic-SP)",
    ))
    benchmark.extra_info["gcups"] = {
        name: gcups for name, (_, gcups) in projections.items()
    }

    base = projections["KNC (measured anchor)"][1]
    # More cores -> more GCUPS, sublinearly (scheduling/contention).
    g80 = projections["KNC scaled to 80 cores"][1]
    g120 = projections["KNC scaled to 120 cores"][1]
    assert base < g80 < g120
    assert g120 / base < 120 / 60  # not perfectly linear
    assert g120 / base > 0.8 * (120 / 60)  # but close — "scalable"
    # The KNL-class part beats KNC (more cores x higher clock), which is
    # the paper's prediction; in reality KNL reached ~50+ GCUPS on SW
    # (Rucci et al.'s later SWIMM work), so the projection should land
    # in that neighbourhood, not at 10x.
    knl = projections["KNL-class projection"][1]
    assert base < knl < 3 * base
