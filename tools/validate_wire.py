#!/usr/bin/env python3
"""Validate repro.serve wire envelopes against the checked-in schema.

The serving-layer sibling of ``tools/validate_trace.py``: the same
deliberately small, dependency-free JSON-Schema subset (``type``,
``const``, ``enum``, ``required``, ``properties``, ``items``,
``oneOf``, ``minimum``) extended with local ``$ref``/``$defs``
resolution, which ``schemas/search_wire.schema.json`` uses to keep one
definition per wire object (options, request, hit, outcome).  CI runs
this against envelopes captured during the serve smoke step.

Usage::

    python tools/validate_wire.py envelope.json [more.json ...] \
        [--schema schemas/search_wire.schema.json]

Exit status 0 when every document conforms, 1 with one error per line
otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, expected: str) -> bool:
    python_type = _TYPES[expected]
    if isinstance(value, bool) and expected in ("integer", "number"):
        return False
    return isinstance(value, python_type)


def _resolve(schema: dict, root: dict) -> dict:
    """Follow a local ``#/$defs/...`` reference (one hop per schema)."""
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not ref.startswith("#/"):
        raise ValueError(f"only local $refs are supported, got {ref!r}")
    target = root
    for part in ref[2:].split("/"):
        target = target[part]
    return target


def validate(value, schema: dict, root: dict, path: str = "$") -> list[str]:
    """All schema violations of ``value`` (empty list == valid)."""
    schema = _resolve(schema, root)
    errors: list[str] = []

    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']!r}")
    if "type" in schema and not _type_ok(value, schema["type"]):
        errors.append(
            f"{path}: expected {schema['type']}, got {type(value).__name__}"
        )
        return errors  # structural checks below assume the right type

    if "minimum" in schema and isinstance(value, (int, float)):
        if not isinstance(value, bool) and value < schema["minimum"]:
            errors.append(f"{path}: {value!r} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in value:
                errors.extend(
                    validate(value[key], subschema, root, f"{path}.{key}")
                )

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            errors.extend(validate(item, schema["items"], root, f"{path}[{i}]"))

    if "oneOf" in schema:
        failures: list[list[str]] = []
        for variant in schema["oneOf"]:
            sub = validate(value, variant, root, path)
            if not sub:
                break
            failures.append(sub)
        else:
            title = ", ".join(
                _resolve(v, root).get("title", f"#{i}")
                for i, v in enumerate(schema["oneOf"])
            )
            errors.append(f"{path}: matches none of: {title}")
            # Report the closest variant's errors to aid debugging.
            closest = min(failures, key=len)
            errors.extend(f"  {e}" for e in closest)

    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate repro.serve wire envelopes."
    )
    parser.add_argument(
        "envelopes", type=Path, nargs="+",
        help="wire envelope JSON file(s) to check",
    )
    parser.add_argument(
        "--schema",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "schemas" / "search_wire.schema.json",
        help="JSON schema to validate against",
    )
    args = parser.parse_args(argv)

    schema = json.loads(args.schema.read_text(encoding="utf-8"))
    status = 0
    for path in args.envelopes:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            print(f"{path}: not valid JSON: {exc}", file=sys.stderr)
            status = 1
            continue
        errors = validate(document, schema, schema)
        if errors:
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
            print(f"{path}: INVALID ({len(errors)} error(s))", file=sys.stderr)
            status = 1
        else:
            kind = document.get("kind", "?")
            print(f"{path}: OK (kind={kind})")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
