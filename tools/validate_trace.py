#!/usr/bin/env python3
"""Validate a `repro trace` export against the checked-in JSON schema.

A deliberately small, dependency-free validator: it implements just the
JSON-Schema subset the schema in ``schemas/chrome_trace.schema.json``
uses (``type``, ``const``, ``enum``, ``required``, ``properties``,
``items``, ``oneOf``, ``minimum``) rather than pulling in the
``jsonschema`` package.  CI runs this against the trace produced by the
``repro trace`` smoke step.

Usage::

    python tools/validate_trace.py trace.json \
        [--schema schemas/chrome_trace.schema.json]

Exit status 0 when the document conforms, 1 with one error per line
otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, expected: str) -> bool:
    python_type = _TYPES[expected]
    if isinstance(value, bool) and expected in ("integer", "number"):
        return False
    return isinstance(value, python_type)


def validate(value, schema: dict, path: str = "$") -> list[str]:
    """All schema violations of ``value`` (empty list == valid)."""
    errors: list[str] = []

    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']!r}")
    if "type" in schema and not _type_ok(value, schema["type"]):
        errors.append(
            f"{path}: expected {schema['type']}, got {type(value).__name__}"
        )
        return errors  # structural checks below assume the right type

    if "minimum" in schema and isinstance(value, (int, float)):
        if not isinstance(value, bool) and value < schema["minimum"]:
            errors.append(f"{path}: {value!r} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in value:
                errors.extend(validate(value[key], subschema, f"{path}.{key}"))

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            errors.extend(validate(item, schema["items"], f"{path}[{i}]"))

    if "oneOf" in schema:
        failures: list[list[str]] = []
        for variant in schema["oneOf"]:
            sub = validate(value, variant, path)
            if not sub:
                break
            failures.append(sub)
        else:
            title = ", ".join(
                v.get("title", f"#{i}") for i, v in enumerate(schema["oneOf"])
            )
            errors.append(f"{path}: matches none of: {title}")
            # Report the closest variant's errors to aid debugging.
            closest = min(failures, key=len)
            errors.extend(f"  {e}" for e in closest)

    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate a repro Chrome trace export."
    )
    parser.add_argument("trace", type=Path, help="trace JSON file to check")
    parser.add_argument(
        "--schema",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "schemas" / "chrome_trace.schema.json",
        help="JSON schema to validate against",
    )
    args = parser.parse_args(argv)

    schema = json.loads(args.schema.read_text(encoding="utf-8"))
    try:
        document = json.loads(args.trace.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        print(f"{args.trace}: not valid JSON: {exc}", file=sys.stderr)
        return 1

    errors = validate(document, schema)
    if errors:
        for error in errors:
            print(f"{args.trace}: {error}", file=sys.stderr)
        print(f"{args.trace}: INVALID ({len(errors)} error(s))",
              file=sys.stderr)
        return 1

    events = document.get("traceEvents", [])
    print(f"{args.trace}: OK ({len(events)} events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
