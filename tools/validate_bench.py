#!/usr/bin/env python3
"""Validate ``repro bench`` snapshots against the checked-in schema.

Reuses the dependency-free mini JSON-Schema validator from
``tools/validate_wire.py`` for the structural checks against
``schemas/bench_trajectory.schema.json``, then adds the two cross-field
rules the subset cannot express:

* a metric with ``skipped: false`` must carry a numeric ``value``;
* a metric with ``skipped: true`` must carry ``value: null`` (a skip is
  visible, never a fabricated number).

Usage::

    python tools/validate_bench.py BENCH_2026-08-08.json [more.json ...] \
        [--schema schemas/bench_trajectory.schema.json]

Exit status 0 when every document conforms, 1 with one error per line
otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from validate_wire import validate  # noqa: E402


def validate_snapshot(document, schema: dict) -> list[str]:
    """All violations of one snapshot document (empty list == valid)."""
    errors = validate(document, schema, schema)
    if errors:
        return errors
    metric_schema = schema["$defs"]["metric"]
    for name, entry in sorted(document["metrics"].items()):
        path = f"$.metrics.{name}"
        errors.extend(validate(entry, metric_schema, schema, path))
        if not isinstance(entry, dict):
            continue
        skipped, value = entry.get("skipped"), entry.get("value")
        if skipped is False and not isinstance(value, (int, float)):
            errors.append(
                f"{path}: non-skipped metric must have a numeric value, "
                f"got {value!r}"
            )
        if skipped is True and value is not None:
            errors.append(
                f"{path}: skipped metric must have value null, "
                f"got {value!r}"
            )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate repro bench trajectory snapshots."
    )
    parser.add_argument(
        "snapshots", type=Path, nargs="+",
        help="BENCH_*.json snapshot file(s) to check",
    )
    parser.add_argument(
        "--schema",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "schemas" / "bench_trajectory.schema.json",
        help="JSON schema to validate against",
    )
    args = parser.parse_args(argv)

    schema = json.loads(args.schema.read_text(encoding="utf-8"))
    status = 0
    for path in args.snapshots:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            print(f"{path}: not valid JSON: {exc}", file=sys.stderr)
            status = 1
            continue
        errors = validate_snapshot(document, schema)
        if errors:
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
            print(f"{path}: INVALID ({len(errors)} error(s))",
                  file=sys.stderr)
            status = 1
        else:
            metrics = document.get("metrics", {})
            skipped = sum(1 for m in metrics.values()
                          if isinstance(m, dict) and m.get("skipped"))
            print(
                f"{path}: OK (mode={document.get('mode', '?')}, "
                f"{len(metrics)} metric(s), {skipped} skipped)"
            )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
