#!/usr/bin/env python3
"""Protein database search — the paper's full 20-query workload.

Recreates the experimental protocol of Section V-B at laptop scale:
the 20 benchmark queries (accessions P02232...Q9UKN1, lengths 144-5478)
against a synthetic Swiss-Prot sample, scored with BLOSUM62 and gap
penalties 10/2, searched with the inter-task engine under a dynamic
OpenMP-style schedule — and reports wall GCUPS next to the *modelled*
GCUPS of the paper's dual-Xeon host for the same workload.

Run:  python examples/protein_search.py [scale]
"""

import sys

from repro import (
    DevicePerformanceModel,
    SearchPipeline,
    SyntheticSwissProt,
    XEON_E5_2670_DUAL,
    make_query_set,
)
from repro.db import PAPER_QUERIES
from repro.metrics import format_table


def main(scale: float = 0.0003) -> None:
    print(f"Synthetic Swiss-Prot at scale {scale} ...")
    db = SyntheticSwissProt().generate(scale=scale)
    print(f"  {len(db)} sequences, {db.total_residues:,} residues, "
          f"longest {db.max_length}")

    queries = make_query_set()
    model = DevicePerformanceModel(XEON_E5_2670_DUAL)
    pipeline = SearchPipeline(
        lanes=8,                 # one AVX register of 32-bit lanes
        profile="sequence",      # the paper's winning SP scheme
        schedule="dynamic",      # the paper's winning policy
        threads=32,
        device_model=model,
    )

    rows = []
    # A representative subset of the sweep keeps the runtime friendly;
    # pass a larger scale to run more.
    subset = [PAPER_QUERIES[i] for i in (0, 4, 9, 14, 19)]
    for spec in subset:
        result = pipeline.search(
            queries[spec.accession], db,
            query_name=spec.accession, top_k=3,
        )
        best = result.hits[0]
        rows.append((
            spec.accession,
            spec.length,
            result.wall_seconds,
            result.wall_gcups,
            result.modeled_gcups,
            f"{best.accession}:{best.score}",
        ))

    print()
    print(format_table(
        ["query", "qlen", "wall s", "wall GCUPS", "modelled GCUPS (Xeon)", "best hit"],
        rows,
        title="20-query benchmark protocol (subset), Section V-B parameters",
    ))
    print(
        "\nThe modelled column is what the paper's 32-thread dual-Xeon "
        "host would sustain on this workload (fixed overheads included); "
        "the wall column is this Python process."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.0003)
