#!/usr/bin/env python3
"""Hybrid workload tuning — Algorithm 2 beyond the paper's Figure 8.

The paper sweeps the static host/coprocessor split and finds the optimum
near 55% on the Phi; its conclusions propose studying the distribution
under *other* criteria ("power consumption, device prices, and so on")
as future work.  This example does both:

* the Figure 8 throughput sweep, at several query lengths (showing how
  the optimum shifts as fixed overheads change weight);
* the proposed power-aware study via :mod:`repro.perfmodel.power`:
  energy, cells/joule and energy-delay product at each split, using the
  TDP figures the paper quotes (120 W per Xeon chip, 240 W for the Phi).

Run:  python examples/hybrid_tuning.py
"""

from repro import (
    DevicePerformanceModel,
    HybridExecutor,
    SyntheticSwissProt,
    XEON_E5_2670_DUAL,
    XEON_PHI_57XX,
)
from repro.metrics import format_table
from repro.perfmodel.power import energy_sweep, optimal_splits


def main() -> None:
    lengths = SyntheticSwissProt().lengths()
    executor = HybridExecutor(
        DevicePerformanceModel(XEON_E5_2670_DUAL),
        DevicePerformanceModel(XEON_PHI_57XX),
    )
    fractions = [round(0.1 * k, 1) for k in range(11)]

    # ------------------------------------------------------------------
    # Throughput optimum vs query length.
    # ------------------------------------------------------------------
    rows = []
    for qlen in (144, 1000, 5478):
        best = executor.best_split(lengths, qlen)
        rows.append((qlen, f"{best.device_fraction:.0%}", best.gcups,
                     f"{best.overlap_efficiency:.0%}"))
    print(format_table(
        ["query len", "optimal phi share", "GCUPS", "overlap"],
        rows,
        title="Throughput-optimal static split (paper Fig. 8: ~55% -> 62.6)",
    ))

    # ------------------------------------------------------------------
    # The power-aware study (paper Section V-C3 future work).
    # ------------------------------------------------------------------
    qlen = 5478
    sweep = energy_sweep(executor, lengths, qlen, fractions)
    print()
    print(format_table(
        ["phi share", "GCUPS", "energy (kJ)", "Mcells/J", "avg W"],
        [
            (f"{f:.0%}", e.gcups, e.joules / 1e3,
             e.cells_per_joule / 1e6, e.average_watts)
            for f, e in sweep.items()
        ],
        title="Energy across the split sweep (TDP model, idle at 35%)",
    ))

    optima = optimal_splits(executor, lengths, qlen)
    print()
    print(format_table(
        ["objective", "phi share", "GCUPS", "Mcells/J", "EDP (kJ*s)"],
        [
            (name, f"{e.result.device_fraction:.0%}", e.gcups,
             e.cells_per_joule / 1e6, e.energy_delay_product / 1e3)
            for name, e in optima.items()
        ],
        title="Optimal splits under three objectives",
    ))
    perf = optima["performance"].result.device_fraction
    energy = optima["energy"].result.device_fraction
    verdict = (
        "coincide for this device pair (both TDPs are 240 W and the "
        "optimum keeps both sides busy)"
        if perf == energy
        else "disagree — idle-power waste moves the energy optimum"
    )
    print(f"\nThroughput optimum {perf:.0%} vs energy optimum "
          f"{energy:.0%}: the objectives {verdict}. This is the study "
          "the paper's conclusions propose as future work.")


if __name__ == "__main__":
    main()
