#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation section in one run.

Prints the modelled series for Figures 3-8 side by side with the numbers
the paper reports.  This is the quick human-readable version of the
benchmark harness (``pytest benchmarks/ --benchmark-only`` runs the same
computations with assertions and timing).

Run:  python examples/reproduce_figures.py
"""

from repro import (
    DevicePerformanceModel,
    HybridExecutor,
    RunConfig,
    SyntheticSwissProt,
    Workload,
    XEON_E5_2670_DUAL,
    XEON_PHI_57XX,
)
from repro.db import PAPER_QUERIES
from repro.metrics import format_series, format_table, paper_comparison
from repro.perfmodel import thread_sweep
from repro.perfmodel.efficiency import efficiency_table, query_length_sweep

VARIANTS = [
    RunConfig(vectorization="novec"),
    RunConfig(vectorization="simd", profile="query"),
    RunConfig(vectorization="simd", profile="sequence"),
    RunConfig(vectorization="intrinsic", profile="query"),
    RunConfig(vectorization="intrinsic", profile="sequence"),
]


def main() -> None:
    print("Building the full-scale Swiss-Prot workload (lengths only)...")
    lengths = SyntheticSwissProt().lengths()
    xeon = DevicePerformanceModel(XEON_E5_2670_DUAL)
    phi = DevicePerformanceModel(XEON_PHI_57XX)
    wx = Workload.from_lengths(lengths, 8)
    wp = Workload.from_lengths(lengths, 16)
    qlens = [q.length for q in PAPER_QUERIES]

    # Figure 3 — Xeon thread scaling.
    threads = [1, 2, 4, 8, 16, 32]
    rows = [
        [cfg.label] + list(thread_sweep(xeon, wx, 1000, cfg, threads).values())
        for cfg in VARIANTS
    ]
    print("\n" + format_table(
        ["variant"] + [f"{t}t" for t in threads], rows,
        title="Figure 3 — Xeon GCUPS vs threads (paper best: 30.4)",
    ))

    # Figure 4 — Xeon query-length sweep.
    rows = [
        [q] + [query_length_sweep(xeon, wx, [q], cfg)[q] for cfg in VARIANTS[1:]]
        for q in qlens[::4] + [5478]
    ]
    print("\n" + format_table(
        ["qlen"] + [cfg.label for cfg in VARIANTS[1:]], rows,
        title="Figure 4 — Xeon GCUPS vs query length (paper: 25.1 simd-SP, 32 intrinsic-SP)",
    ))

    # Figure 5 — Phi thread scaling.
    threads = [30, 60, 120, 240]
    rows = [
        [cfg.label] + list(thread_sweep(phi, wp, 5478, cfg, threads).values())
        for cfg in VARIANTS
    ]
    print("\n" + format_table(
        ["variant"] + [f"{t}t" for t in threads], rows,
        title="Figure 5 — Phi GCUPS vs threads (paper: 13.6/14.5 simd, 27.1/34.9 intrinsic)",
    ))

    # Figure 6 — Phi query-length sweep.
    rows = [
        [q] + [query_length_sweep(phi, wp, [q], cfg)[q] for cfg in VARIANTS[1:]]
        for q in qlens[::4] + [5478]
    ]
    print("\n" + format_table(
        ["qlen"] + [cfg.label for cfg in VARIANTS[1:]], rows,
        title="Figure 6 — Phi GCUPS vs query length (240 threads)",
    ))

    # Figure 7 — blocking study.
    rows = []
    for q in qlens[::6] + [5478]:
        row = [q]
        for model, wl in ((xeon, wx), (phi, wp)):
            for blocking in (True, False):
                row.append(model.gcups(wl, q, RunConfig(blocking=blocking)))
        rows.append(row)
    print("\n" + format_table(
        ["qlen", "xeon-blk", "xeon-noblk", "phi-blk", "phi-noblk"], rows,
        title="Figure 7 — blocking vs non-blocking (intrinsic-SP)",
    ))

    # Figure 8 — hybrid distribution sweep.
    executor = HybridExecutor(xeon, phi)
    fractions = [round(0.1 * k, 1) for k in range(11)]
    sweep = executor.sweep(lengths, 5478, fractions)
    print("\n" + format_series(
        {f: r.gcups for f, r in sweep.items()}, x_label="phi-share",
        title="Figure 8 — hybrid GCUPS vs workload distribution",
    ))
    best = executor.best_split(lengths, 5478)

    # Section V-C1 — efficiency quotes.
    eff = efficiency_table(xeon, wx, 1000, RunConfig(), [4, 16, 32])

    print("\n" + paper_comparison(
        [
            ("Xeon intrinsic-SP peak (Fig.4)", 32.0,
             xeon.gcups(wx, 5478, RunConfig())),
            ("Phi intrinsic-SP peak (Fig.5/6)", 34.9,
             phi.gcups(wp, 5478, RunConfig())),
            ("hybrid peak (Fig.8)", 62.6, best.gcups),
            ("hybrid optimal phi share (Fig.8)", 0.55, best.device_fraction),
            ("Xeon efficiency @4t", 0.99, eff[4]),
            ("Xeon efficiency @16t", 0.88, eff[16]),
            ("Xeon efficiency @32t", 0.70, eff[32]),
        ],
        title="Headline reproduction summary",
    ))


if __name__ == "__main__":
    main()
