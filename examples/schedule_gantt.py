#!/usr/bin/env python3
"""Why dynamic scheduling wins — the paper's Section IV claim, visualised.

"The iterations are distributed according to the selected scheduling
policy ... In our observations, dynamic outperforms static significantly.
The performance difference with guided is slightly minor.  This has
sense taking into account that the workload associated to each iteration
is different."

This example runs the OpenMP scheduler simulation over the real
(length-sorted) Swiss-Prot group workload and draws a Gantt chart per
policy: static's contiguous blocks of the sorted costs leave early
threads idle while one thread chews the longest block; dynamic and
guided stay packed.

Run:  python examples/schedule_gantt.py
"""

from repro.db import SyntheticSwissProt
from repro.devices import ParallelFor, Schedule, ScheduleTrace
from repro.metrics import format_table
from repro.perfmodel import Workload

THREADS = 8  # few threads keep the chart readable


def main() -> None:
    # The real workload shape: lane-group residue counts of the sorted
    # database (scaled down so each bar is visible).
    lengths = SyntheticSwissProt().lengths(scale=0.002)
    workload = Workload.from_lengths(lengths, lanes=8)
    costs = workload.group_residues.astype(float)
    print(f"{len(costs)} loop iterations (lane groups), sorted by length\n")

    rows = []
    for schedule in Schedule:
        result = ParallelFor(THREADS, schedule).run(costs)
        trace = ScheduleTrace(result)
        trace.validate()
        print(trace.gantt(width=64))
        print()
        rows.append((
            schedule.value,
            result.makespan / 1e3,
            f"{result.efficiency:.1%}",
            f"{max(trace.idle_tail(t) for t in range(THREADS)) / 1e3:.1f}k",
        ))

    print(format_table(
        ["schedule", "makespan (kcells)", "efficiency", "worst idle tail"],
        rows,
        title="Section IV — scheduling policies over the sorted workload",
    ))
    print(
        "\nStatic's blocks of the ascending-length database give the last "
        "thread all the longest groups; dynamic (and guided, 'slightly "
        "minor') re-balance on the fly — the paper's observation."
    )


if __name__ == "__main__":
    main()
