#!/usr/bin/env python3
"""Quickstart — pairwise alignment and a small database search.

Demonstrates the core public API in under a minute:

1. score a pair of sequences with the paper's scoring configuration
   (BLOSUM62, gap open 10, gap extend 2);
2. produce a full alignment with traceback (paper Section II step 4);
3. search a small synthetic Swiss-Prot sample and print the top hits.

Run:  python examples/quickstart.py
"""

from repro import (
    BLOSUM62,
    SearchPipeline,
    SyntheticSwissProt,
    align_pair,
    paper_gap_model,
    sw_score,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. One-call pairwise score.
    # ------------------------------------------------------------------
    query = "MKVLILACLVALALARELEELNVPGEIVESLSSSEESITRINKKIE"
    target = "MKVLFLACLVALSLARELEELNVPGEIVESLSSSEESITHINKKIE"
    score = sw_score(query, target)
    print(f"Smith-Waterman score (BLOSUM62, gaps 10/2): {score}")

    # ------------------------------------------------------------------
    # 2. Full alignment with traceback.
    # ------------------------------------------------------------------
    alignment = align_pair(query, target, BLOSUM62, paper_gap_model())
    print(f"\nAlignment ({alignment.identity:.0%} identity, "
          f"CIGAR {alignment.cigar()}):")
    print(alignment.pretty())

    # ------------------------------------------------------------------
    # 3. Database search (Algorithm 1 of the paper).
    # ------------------------------------------------------------------
    print("\nGenerating a synthetic Swiss-Prot sample (0.05% scale)...")
    db = SyntheticSwissProt().generate(scale=0.0005)
    print(f"  {len(db)} sequences, {db.total_residues:,} residues")

    pipeline = SearchPipeline()  # inter-task engine, SP, dynamic schedule
    result = pipeline.search(query, db, query_name="demo-query", top_k=5)
    print()
    print(result.summary())


if __name__ == "__main__":
    main()
