#!/usr/bin/env python3
"""Sensitivity study — exact Smith-Waterman vs seed-and-extend heuristics.

The paper's introduction motivates accelerating *exact* SW: heuristics
like BLAST "increase speed at the cost of reduced sensitivity", yet SW's
guarantee "is essential in some applications".  This example quantifies
that trade-off with the library's own substrates:

1. plant mutated homologs of a query into a synthetic background
   database at increasing divergence (mutation rates 0.1 ... 0.7);
2. search with the exact inter-task engine (SearchPipeline) and with
   MiniBlast (k-mer neighbourhood seeding, X-drop, banded refinement);
3. report, per divergence level: how much of the exact score the
   heuristic recovers, and how much of the DP work it skipped.

Run:  python examples/sensitivity_study.py
"""

import numpy as np

from repro import SearchPipeline, SyntheticSwissProt
from repro.db.mutate import plant_homologs
from repro.heuristic import MiniBlast
from repro.metrics import format_table

RATES = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
PER_RATE = 3


def main() -> None:
    print("Preparing a planted-homolog database...")
    background = SyntheticSwissProt().generate(scale=0.0002)
    rng = np.random.default_rng(2014)
    query = rng.integers(0, 20, 250).astype(np.uint8)
    db, planted = plant_homologs(
        background, {"query": query}, RATES, per_rate=PER_RATE
    )
    print(f"  {len(db)} sequences ({len(planted)} known homologs)")

    print("Exact search (inter-task engine)...")
    exact = SearchPipeline().search(query, db)
    print("Heuristic search (MiniBlast: k=3, T=11, X-drop, banded)...")
    heuristic = MiniBlast().search(query, db)

    rows = []
    for rate in RATES:
        mine = [p.index for p in planted if p.rate == rate]
        sw_scores = [int(exact.scores[i]) for i in mine]
        bl_scores = [int(heuristic.scores[i]) for i in mine]
        recovered = [
            b / s if s else 1.0 for b, s in zip(bl_scores, sw_scores)
        ]
        found = sum(1 for b in bl_scores if b > 0)
        rows.append((
            f"{rate:.0%}",
            float(np.mean(sw_scores)),
            float(np.mean(bl_scores)),
            f"{np.mean(recovered):.0%}",
            f"{found}/{len(mine)}",
        ))
    print()
    print(format_table(
        ["divergence", "mean SW score", "mean BLAST score",
         "score recovered", "seeded"],
        rows,
        title="Sensitivity vs divergence (planted homologs)",
    ))

    print(
        f"\nHeuristic work: {heuristic.cells_computed:,} cells vs "
        f"{heuristic.exact_cells:,} exact "
        f"({heuristic.cell_savings:.1%} skipped; "
        f"{heuristic.seeds_found:,} seeds, "
        f"{heuristic.gapped_extensions} gapped refinements)."
    )
    print(
        "The heuristic matches exact scores on close homologs but loses "
        "score — and eventually whole hits — as divergence grows: the "
        "sensitivity/speed trade-off that motivates accelerating exact "
        "SW (paper Section I)."
    )


if __name__ == "__main__":
    main()
