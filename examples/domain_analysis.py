#!/usr/bin/env python3
"""Domain analysis — suboptimal alignments and hit statistics.

Two post-search capabilities a production SW tool layers on top of the
raw score scan:

1. **Waterman-Eggert suboptimal alignments** — a protein with repeated
   domains matches a single-domain query several times; declumping
   reports each copy as a separate non-overlapping alignment (SSEARCH's
   behaviour).
2. **E-value statistics** — raw scores become significance estimates via
   a Gumbel fit of the database's own score distribution (Karlin-
   Altschul statistics; the ungapped lambda is solved analytically and
   compared).

Run:  python examples/domain_analysis.py
"""

import numpy as np

from repro import BLOSUM62, SearchPipeline, SyntheticSwissProt, paper_gap_model
from repro.core import waterman_eggert
from repro.db import SequenceDatabase
from repro.metrics import format_table
from repro.search.stats import attach_statistics, ungapped_lambda


def main() -> None:
    gaps = paper_gap_model()
    rng = np.random.default_rng(33)

    # ------------------------------------------------------------------
    # 1. A three-domain target vs a single-domain query.
    # ------------------------------------------------------------------
    domain = "".join(
        "ARNDCQEGHILKMFPSTWYV"[i] for i in rng.integers(0, 20, 60)
    )
    linker = "GGGGSGGGGS"
    target = linker.join([domain] * 3)
    print(f"query: one {len(domain)}-residue domain; "
          f"target: three copies + linkers ({len(target)} aa)\n")

    alignments = waterman_eggert(domain, target, BLOSUM62, gaps, k=5,
                                 min_score=50)
    rows = [
        (rank, t.score, f"{t.start_db}-{t.end_db}", f"{t.identity:.0%}")
        for rank, t in enumerate(alignments, start=1)
    ]
    print(format_table(
        ["rank", "score", "target span", "identity"],
        rows,
        title="Waterman-Eggert declumped alignments",
    ))
    print("Each domain copy surfaces as its own alignment — a single "
          "optimal alignment would report only one.\n")

    # ------------------------------------------------------------------
    # 2. Statistics over a database search.
    # ------------------------------------------------------------------
    db = SyntheticSwissProt().generate(scale=0.0005)
    # Plant the multi-domain protein so something is significant.
    db = SequenceDatabase(
        name=db.name,
        sequences=db.sequences + [db.alphabet.encode(target)],
        headers=db.headers + ["TARGET3X planted three-domain protein"],
        alphabet=db.alphabet,
    )
    result = SearchPipeline().search(domain, db, query_name="domain", top_k=6)
    stats = attach_statistics(result)
    print(format_table(
        ["hit", "score", "bits", "E-value"],
        [
            (h.accession, h.score, round(bits, 1), f"{e:.2e}")
            for h, e, bits in stats
        ],
        title="top hits with Gumbel statistics (fit from this search)",
    ))
    lam = ungapped_lambda(BLOSUM62)
    print(f"\nAnalytic ungapped Karlin-Altschul lambda for BLOSUM62: "
          f"{lam:.4f} (literature: 0.3176). The gapped search above uses "
          "an empirical fit instead — no analytic theory exists for "
          "gapped scores.")


if __name__ == "__main__":
    main()
