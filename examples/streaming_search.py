#!/usr/bin/env python3
"""Out-of-core search — streaming a database that never fits in memory.

The paper's future work targets UniProt-TrEMBL (tens of gigabases); real
tools never load such databases whole.  This example shows the
production I/O path end to end:

1. format a synthetic database into the binary ``.npz`` format once
   (the ``makeblastdb`` step) and compare load time vs FASTA parsing;
2. stream a FASTA file chunk-by-chunk through :class:`StreamingSearch`,
   keeping only a bounded top-k heap resident;
3. verify the streamed top hits equal the in-memory pipeline's.

Run:  python examples/streaming_search.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    SearchOptions,
    SearchPipeline,
    StreamingSearch,
    SyntheticSwissProt,
)
from repro.db import write_fasta
from repro.db.fasta import FastaRecord
from repro.db.io_npz import load_npz, save_npz
from repro.metrics import format_table


def main() -> None:
    db = SyntheticSwissProt().generate(scale=0.001)
    rng = np.random.default_rng(12)
    query = rng.integers(0, 20, 180).astype(np.uint8)
    workdir = Path(tempfile.mkdtemp(prefix="repro-stream-"))

    # ------------------------------------------------------------------
    # 1. Format once, reload fast (the makeblastdb step).
    # ------------------------------------------------------------------
    fasta_path = workdir / "db.fasta"
    write_fasta(
        (FastaRecord(h, db.alphabet.decode(s))
         for h, s in zip(db.headers, db.sequences)),
        fasta_path,
    )
    npz_path = workdir / "db.npz"
    nbytes = save_npz(db, npz_path)

    t0 = time.perf_counter()
    from repro.db import SequenceDatabase

    SequenceDatabase.from_fasta(fasta_path)
    t_fasta = time.perf_counter() - t0
    t0 = time.perf_counter()
    load_npz(npz_path)
    t_npz = time.perf_counter() - t0

    print(format_table(
        ["format", "size (kB)", "load time (ms)"],
        [
            ("FASTA", fasta_path.stat().st_size / 1e3, t_fasta * 1e3),
            (".npz", nbytes / 1e3, t_npz * 1e3),
        ],
        title="database formatting (the makeblastdb step)",
    ))

    # ------------------------------------------------------------------
    # 2. Stream the FASTA through a bounded-memory scan.
    # ------------------------------------------------------------------
    streamer = StreamingSearch(SearchOptions(chunk_size=64, top_k=5))
    t0 = time.perf_counter()
    streamed = streamer.search_fasta(query, fasta_path, query_name="demo")
    t_stream = time.perf_counter() - t0
    print(f"\nstreamed {streamed.sequences_scanned} sequences in "
          f"{streamed.chunks} chunks of <=64 "
          f"({t_stream:.2f}s, {streamed.wall_gcups:.4f} GCUPS wall)")
    for rank, hit in enumerate(streamed.hits, start=1):
        print(f"  #{rank} score {hit.score:>5d}  {hit.header.split()[0]}")

    # ------------------------------------------------------------------
    # 3. Cross-check against the in-memory pipeline.
    # ------------------------------------------------------------------
    whole = SearchPipeline().search(query, db, top_k=5)
    match = [h.score for h in streamed.hits] == [h.score for h in whole.hits]
    print(f"\ntop-5 identical to the in-memory pipeline: {match}")
    assert match


if __name__ == "__main__":
    main()
