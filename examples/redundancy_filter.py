#!/usr/bin/env python3
"""Redundancy filtering — all-vs-all SW similarity clustering.

Database curators run exactly this workflow (CD-HIT, UniRef): compute
pairwise similarities within a set, cluster everything above a
threshold, and keep one representative per cluster.  Here the pairwise
kernel is the library's inter-task engine and the similarity is the
self-score-normalised SW score.

A synthetic protein family is built with the homolog mutator: three
"founder" proteins, several mutated descendants each.  Greedy clustering
at 60% similarity must rediscover the three families.

Run:  python examples/redundancy_filter.py
"""

import numpy as np

from repro import BLOSUM62, paper_gap_model
from repro.core import similarity_matrix
from repro.db.mutate import mutate
from repro.metrics import format_table


def greedy_cluster(sim: np.ndarray, threshold: float) -> list[list[int]]:
    """Classic CD-HIT-style greedy clustering by representative."""
    unassigned = set(range(len(sim)))
    clusters: list[list[int]] = []
    while unassigned:
        rep = min(unassigned)  # deterministic representative choice
        members = [k for k in unassigned if sim[rep, k] >= threshold]
        clusters.append(sorted(members))
        unassigned -= set(members)
    return clusters


def main() -> None:
    rng = np.random.default_rng(77)
    founders = {
        f"family{f}": rng.integers(0, 20, 120).astype(np.uint8)
        for f in range(3)
    }
    names: list[str] = []
    seqs: list[np.ndarray] = []
    for fam, founder in founders.items():
        names.append(f"{fam}/founder")
        seqs.append(founder)
        for c in range(4):
            names.append(f"{fam}/mutant{c}")
            seqs.append(mutate(founder, 0.15, rng=rng))
    print(f"{len(seqs)} sequences from {len(founders)} families "
          f"(founders + 15%-divergent mutants)\n")

    sim = similarity_matrix(seqs, BLOSUM62, paper_gap_model())
    clusters = greedy_cluster(sim, threshold=0.6)

    rows = []
    for k, members in enumerate(clusters):
        families = {names[m].split("/")[0] for m in members}
        rows.append((
            k, len(members), ", ".join(sorted(families)),
            f"{min(sim[members[0], m] for m in members):.2f}",
        ))
    print(format_table(
        ["cluster", "size", "families inside", "min sim to rep"],
        rows,
        title="greedy clustering at 60% SW similarity",
    ))

    pure = all(
        len({names[m].split("/")[0] for m in members}) == 1
        for members in clusters
    )
    print(
        f"\n{len(clusters)} clusters, "
        f"{'every cluster is family-pure' if pure else 'IMPURE CLUSTERS'} — "
        "the all-vs-all SW similarity separates the families cleanly."
    )


if __name__ == "__main__":
    main()
