#!/usr/bin/env python3
"""Read mapping — the paper's motivating application, end to end.

Section I: "In high-throughput sequencing, the SW algorithm itself, or
variations of it, are often used to align sequencing reads to reference
sequences."  This example builds that workflow from the library's parts,
on DNA instead of protein (every component is alphabet-generic):

1. a random reference "genome" and error-bearing reads sampled from it;
2. a k-mer index over the reference (the seeding structure of every
   modern mapper);
3. per read: seed lookup, then banded Smith-Waterman around the seed's
   diagonal (the "variation of SW" real mappers run);
4. mapping accuracy and the work saved vs full-matrix alignment.

Run:  python examples/read_mapping.py
"""

import numpy as np

from repro.alphabet import DNA, reverse_complement
from repro.core.banded import BandedEngine
from repro.heuristic import KmerWordCoder
from repro.metrics import format_table
from repro.scoring import GapModel, match_mismatch_matrix

MATRIX = match_mismatch_matrix(2, -3, alphabet=DNA, name="DNA+2-3")
GAPS = GapModel(5, 2)

REFERENCE_LEN = 60_000
N_READS = 60
READ_LEN = 120
ERROR_RATE = 0.03
K = 15
BAND = 12


def sample_reads(rng, reference, n, length, error_rate):
    """Reads from random positions/strands with sub/indel errors."""
    reads = []
    for _ in range(n):
        pos = int(rng.integers(0, len(reference) - length))
        fragment = reference[pos : pos + length]
        strand = "+" if rng.random() < 0.5 else "-"
        if strand == "-":
            fragment = reverse_complement(fragment)
        read = list(fragment)
        i = 0
        while i < len(read):
            if rng.random() < error_rate:
                r = rng.random()
                if r < 0.8:      # substitution
                    read[i] = int(rng.integers(0, 4))
                elif r < 0.9:    # deletion
                    del read[i]
                    continue
                else:            # insertion
                    read.insert(i, int(rng.integers(0, 4)))
                    i += 1
            i += 1
        reads.append((pos, strand, np.asarray(read, dtype=np.uint8)))
    return reads


def main() -> None:
    rng = np.random.default_rng(4)
    reference = rng.integers(0, 4, REFERENCE_LEN).astype(np.uint8)
    reads = sample_reads(rng, reference, N_READS, READ_LEN, ERROR_RATE)
    print(f"reference {REFERENCE_LEN:,} bp; {N_READS} reads of "
          f"{READ_LEN} bp at {ERROR_RATE:.0%} error")

    # ------------------------------------------------------------------
    # Index the reference k-mers (seeding structure).
    # ------------------------------------------------------------------
    coder = KmerWordCoder(K, DNA)
    index: dict[int, list[int]] = {}
    for pos, word in enumerate(coder.words_of(reference)):
        index.setdefault(int(word), []).append(pos)
    print(f"indexed {len(index):,} distinct {K}-mers")

    # ------------------------------------------------------------------
    # Map each read: seed, then banded SW around the seed diagonal.
    # ------------------------------------------------------------------
    mapped = 0
    correct = 0
    strand_right = 0
    banded_cells = 0
    full_cells = N_READS * READ_LEN * REFERENCE_LEN
    for true_pos, true_strand, raw_read in reads:
        # Try both orientations; keep the first that seeds (real mappers
        # seed both and keep the better alignment).
        hit = None
        read = raw_read
        strand = "+"
        for orientation, candidate in (
            ("+", raw_read), ("-", reverse_complement(raw_read)),
        ):
            words = coder.words_of(candidate)
            for offset in range(0, max(len(words), 1), K):
                for ref_pos in index.get(int(words[offset]), []):
                    hit = (offset, ref_pos)
                    break
                if hit:
                    break
            if hit is not None:
                read, strand = candidate, orientation
                break
        if hit is None:
            continue
        mapped += 1
        if strand == true_strand:
            strand_right += 1
        q_off, r_pos = hit
        window_start = max(0, r_pos - q_off - BAND)
        window_end = min(len(reference), r_pos - q_off + len(read) + BAND)
        window = reference[window_start:window_end]
        engine = BandedEngine(alphabet=DNA, width=BAND, offset=0)
        result = engine.score_pair(read, window, MATRIX, GAPS)
        banded_cells += result.cells
        est_pos = window_start + result.end_db - result.end_query
        if abs(est_pos - true_pos) <= BAND:
            correct += 1

    print()
    print(format_table(
        ["metric", "value"],
        [
            ("reads mapped (seed found)", f"{mapped}/{N_READS}"),
            ("strand called correctly", f"{strand_right}/{mapped}"),
            ("mapped to true locus", f"{correct}/{mapped}"),
            ("banded DP cells", f"{banded_cells:,}"),
            ("full-matrix DP cells", f"{full_cells:,}"),
            ("work saved", f"{1 - banded_cells / full_cells:.3%}"),
        ],
        title="seed + banded-SW read mapping",
    ))
    print(
        "\nThe banded kernel is the 'variation of SW' the paper's intro "
        "describes; the full-matrix column is what exact all-vs-all "
        "alignment would cost — the gap the paper's acceleration work "
        "exists to close for the cases that need exactness."
    )


if __name__ == "__main__":
    main()
