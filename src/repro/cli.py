"""Command-line interface: ``repro-sw`` / ``python -m repro``.

Subcommands
-----------
``search``
    Run a Smith-Waterman database search (Algorithm 1) against a FASTA
    file or a synthetic Swiss-Prot sample and print the ranked hits.
    With ``--server URL`` the query goes to a running ``repro serve``
    instance instead and the hits come back bit-identical.
``serve``
    Serve a database over HTTP (:mod:`repro.serve`): versioned JSON
    wire protocol, admission control, typed errors.
``batch``
    Serve many queries through :class:`repro.SearchService` — shared
    pre-processing cache, selectable scheduler (``local``/``static``/
    ``queue``), dynamic-vs-static makespan comparison.
``stream``
    Out-of-core streaming search over a FASTA file: only one chunk (or
    bounded shard, with ``--workers``) is resident at a time, so the
    database never needs to fit in memory.
``align``
    Align two sequences (local / global / semi-global) with traceback.
``trace``
    Run a traced batch and export the span tree as Chrome trace-event
    JSON (loadable in Perfetto / ``chrome://tracing``) and/or JSONL.
``blast``
    Run the seed-and-extend heuristic search and report its work savings.
``model``
    Print the modelled GCUPS grid for the paper's devices and variants.
``hybrid``
    Sweep the host/coprocessor split (Figure 8) and report the optimum.
``bench``
    Run the curated perf suite (:mod:`repro.bench`), write a dated
    ``BENCH_<date>.json`` trajectory snapshot, and optionally gate on
    regressions against a baseline snapshot (``--compare``).
``validate``
    Re-derive every number the paper reports and check it reproduces.
``report``
    Generate the live paper-vs-measured reproduction report (markdown).
``info``
    List bundled matrices, engines and device specifications.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .bench import _NO_COMPARE as _BENCH_NO_COMPARE
from .exceptions import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    p = argparse.ArgumentParser(
        prog="repro-sw",
        description="Smith-Waterman on heterogeneous systems (CLUSTER'14 reproduction)",
    )
    p.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = p.add_subparsers(dest="command", required=True)

    s = sub.add_parser("search", help="run a database search")
    s.add_argument("--query", help="query sequence (residue letters)")
    s.add_argument("--query-fasta", help="FASTA file; first record is the query")
    s.add_argument("--db-fasta", help="database FASTA file")
    s.add_argument(
        "--synthetic-scale", type=float, default=None,
        help="use a synthetic Swiss-Prot at this scale (e.g. 0.0005)",
    )
    s.add_argument("--matrix", default="BLOSUM62")
    s.add_argument("--gap-open", type=int, default=10)
    s.add_argument("--gap-extend", type=int, default=2)
    s.add_argument("--lanes", type=int, default=8)
    s.add_argument("--kernel", choices=("python", "numpy"), default=None,
                   help="inter-task scoring kernel (default: "
                        "$REPRO_KERNEL or python; scores are identical)")
    s.add_argument("--profile", choices=("query", "sequence"), default="sequence")
    s.add_argument("--mode", choices=("exact", "sensitive", "fast"),
                   default="exact",
                   help="search tier: exact = exhaustive SW; sensitive/fast "
                        "= seed + banded verify, exact SW only on survivors "
                        "(returned scores stay bit-identical; distant hits "
                        "may be missed)")
    s.add_argument("--top", type=int, default=10)
    s.add_argument("--traceback", action="store_true",
                   help="print alignments for the top hits")
    s.add_argument("--evalues", action="store_true",
                   help="report E-values and bit scores for the hits")
    s.add_argument("--tsv", action="store_true",
                   help="print hits as tab-separated values (outfmt-6 style)")
    s.add_argument("--fault-plan", metavar="SPEC",
                   help='inject faults, e.g. "seed=7,corrupt=0.2" '
                        "(scores stay exact via the checksum guard)")
    s.add_argument("--metrics", action="store_true",
                   help="print the search's metrics (counters, gauges, "
                        "latency percentiles) from an isolated registry")
    s.add_argument("--workers", type=int, default=1,
                   help="score on a pool of real worker processes "
                        "(scores identical to --workers 1)")
    s.add_argument("--server", metavar="URL",
                   help="query a running 'repro serve' instance instead "
                        "of searching locally (hits are bit-identical); "
                        "the scoring flags above are sent for "
                        "verification and a mismatch is rejected")

    sv = sub.add_parser(
        "serve",
        help="serve a database over HTTP (the repro.serve wire protocol)",
    )
    sv.add_argument("--db-fasta", help="database FASTA file")
    sv.add_argument(
        "--synthetic-scale", type=float, default=None,
        help="use a synthetic Swiss-Prot at this scale (e.g. 0.0005)",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=0,
                    help="bind port (0 = ephemeral; the bound URL is "
                         "printed on startup)")
    sv.add_argument("--matrix", default="BLOSUM62")
    sv.add_argument("--gap-open", type=int, default=10)
    sv.add_argument("--gap-extend", type=int, default=2)
    sv.add_argument("--lanes", type=int, default=8)
    sv.add_argument("--kernel", choices=("python", "numpy"), default=None,
                    help="inter-task scoring kernel (default: "
                         "$REPRO_KERNEL or python; scores are identical)")
    sv.add_argument("--profile", choices=("query", "sequence"),
                    default="sequence")
    sv.add_argument("--mode", choices=("exact", "sensitive", "fast"),
                    default="exact",
                    help="search tier served to every client (clients "
                         "sending options must match it)")
    sv.add_argument("--top", type=int, default=10)
    sv.add_argument("--max-inflight", type=int, default=None,
                    help="admission cap: concurrent requests admitted "
                         "before shedding with HTTP 429 (0 sheds "
                         "everything — a load-shed drill)")
    sv.add_argument("--max-requests", type=int, default=None,
                    help="shut down cleanly after this many API requests "
                         "(CI smoke; default: serve forever)")
    sv.add_argument("--workers", type=int, default=1,
                    help="score on a pool of real worker processes")

    bt = sub.add_parser("batch", help="serve a batch of queries")
    bt.add_argument("--queries", type=int, default=4,
                    help="number of paper benchmark queries to serve")
    bt.add_argument("--query-fasta",
                    help="FASTA file; every record becomes a request")
    bt.add_argument("--db-fasta", help="database FASTA file")
    bt.add_argument(
        "--synthetic-scale", type=float, default=None,
        help="use a synthetic Swiss-Prot at this scale (e.g. 0.0005)",
    )
    bt.add_argument("--scheduler", choices=("local", "static", "queue"),
                    default="local",
                    help="local pipeline, static host/device split, or the "
                         "dynamic work queue")
    bt.add_argument("--matrix", default="BLOSUM62")
    bt.add_argument("--gap-open", type=int, default=10)
    bt.add_argument("--gap-extend", type=int, default=2)
    bt.add_argument("--lanes", type=int, default=None,
                    help="SIMD lanes (default: each device's native width)")
    bt.add_argument("--kernel", choices=("python", "numpy"), default=None,
                    help="inter-task scoring kernel (default: "
                         "$REPRO_KERNEL or python; scores are identical)")
    bt.add_argument("--mode", choices=("exact", "sensitive", "fast"),
                    default="exact",
                    help="search tier (sensitive/fast need the local "
                         "scheduler)")
    bt.add_argument("--top", type=int, default=5)
    bt.add_argument("--chunks", type=int, default=24,
                    help="work-queue granularity (queue scheduler)")
    bt.add_argument("--static-fraction", type=float, default=0.55,
                    help="device share of the static reference split")
    bt.add_argument("--metrics", action="store_true",
                    help="print the batch's metrics (counters, gauges, "
                         "latency percentiles) from an isolated registry")
    bt.add_argument("--workers", type=int, default=1,
                    help="drain the batch on a pool of real worker "
                         "processes (local and queue schedulers)")

    st = sub.add_parser(
        "stream",
        help="out-of-core streaming search (database never fully loaded)",
    )
    st.add_argument("--query", help="query sequence (residue letters)")
    st.add_argument("--query-fasta",
                    help="FASTA file; first record is the query")
    st.add_argument("--db-fasta", required=True,
                    help="database FASTA file to stream")
    st.add_argument("--matrix", default="BLOSUM62")
    st.add_argument("--gap-open", type=int, default=10)
    st.add_argument("--gap-extend", type=int, default=2)
    st.add_argument("--lanes", type=int, default=8)
    st.add_argument("--kernel", choices=("python", "numpy"), default=None,
                    help="inter-task scoring kernel (default: "
                         "$REPRO_KERNEL or python; scores are identical)")
    st.add_argument("--mode", choices=("exact", "sensitive", "fast"),
                    default="exact",
                    help="search tier: exact = exhaustive SW; "
                         "sensitive/fast prune with seeds + banded verify")
    st.add_argument("--chunk-size", type=int, default=512,
                    help="records scored per batch")
    st.add_argument("--top", type=int, default=10,
                    help="ranked hits kept (0 = scores only)")
    st.add_argument("--workers", type=int, default=1,
                    help="score shards on a pool of real worker processes "
                         "(results identical to --workers 1)")
    st.add_argument("--shard-residues", type=int, default=1_000_000,
                    help="max residues resident per shard (--workers > 1)")
    st.add_argument("--shard-records", type=int, default=None,
                    help="max records resident per shard (--workers > 1)")
    st.add_argument("--fault-plan", metavar="SPEC",
                    help='inject faults, e.g. "seed=7,corrupt=0.2" or '
                         '"seed=7,worker-kill=0.1" (scores stay exact: '
                         "checksums catch corruption, the pool self-heals)")
    st.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                    help="wall-clock budget for the whole scan; on expiry "
                         "the merged prefix is reported and the exit "
                         "status is 1")
    st.add_argument("--journal", metavar="PATH",
                    help="journal per-shard merge state here so an "
                         "interrupted scan can be resumed (--workers > 1)")
    st.add_argument("--resume", action="store_true",
                    help="resume a journalled scan instead of restarting")
    st.add_argument("--chunk-timeout", type=float, default=None,
                    help="seconds before an unresponsive worker chunk is "
                         "declared hung and the pool is healed")
    st.add_argument("--metrics", action="store_true",
                    help="print the scan's metrics from an isolated registry")

    t = sub.add_parser(
        "trace",
        help="run a traced batch and export the span tree",
    )
    t.add_argument("--query", help="query sequence (residue letters)")
    t.add_argument("--query-fasta",
                   help="FASTA file; every record becomes a request")
    t.add_argument("--queries", type=int, default=1,
                   help="number of paper benchmark queries to serve "
                        "(when no explicit query is given)")
    t.add_argument("--db-fasta", help="database FASTA file")
    t.add_argument(
        "--synthetic-scale", type=float, default=None,
        help="use a synthetic Swiss-Prot at this scale (e.g. 0.0005)",
    )
    t.add_argument("--scheduler", choices=("local", "static", "queue"),
                   default="local")
    t.add_argument("--matrix", default="BLOSUM62")
    t.add_argument("--gap-open", type=int, default=10)
    t.add_argument("--gap-extend", type=int, default=2)
    t.add_argument("--top", type=int, default=5)
    t.add_argument("--chunks", type=int, default=24,
                   help="work-queue granularity (queue scheduler)")
    t.add_argument("--static-fraction", type=float, default=0.55,
                   help="device share of the static reference split")
    t.add_argument("--output", default="trace.json",
                   help="Chrome trace-event JSON output path "
                        "(open in Perfetto / chrome://tracing)")
    t.add_argument("--jsonl", metavar="PATH",
                   help="also write the flat JSONL span log here")
    t.add_argument("--tree", action="store_true",
                   help="print the span tree to stdout")
    t.add_argument("--metrics", action="store_true",
                   help="print the traced run's metrics")

    a = sub.add_parser("align", help="align two sequences with traceback")
    a.add_argument("sequence_a", help="query residue letters")
    a.add_argument("sequence_b", help="target residue letters")
    a.add_argument("--mode", choices=("local", "global", "semiglobal"),
                   default="local")
    a.add_argument("--matrix", default="BLOSUM62")
    a.add_argument("--gap-open", type=int, default=10)
    a.add_argument("--gap-extend", type=int, default=2)

    b = sub.add_parser("blast", help="seed-and-extend heuristic search")
    b.add_argument("--query", required=True)
    b.add_argument("--db-fasta")
    b.add_argument("--synthetic-scale", type=float, default=None)
    b.add_argument("--word-size", type=int, default=3)
    b.add_argument("--threshold", type=int, default=11)
    b.add_argument("--top", type=int, default=10)

    m = sub.add_parser("model", help="modelled GCUPS for the paper's variant grid")
    m.add_argument("--query-length", type=int, default=5478)
    m.add_argument("--scale", type=float, default=1.0,
                   help="database scale for the length distribution")

    h = sub.add_parser("hybrid", help="Figure 8 hybrid split sweep")
    h.add_argument("--query-length", type=int, default=5478)
    h.add_argument("--step", type=float, default=0.05)
    h.add_argument("--fault-plan", metavar="SPEC",
                   help="run the best split under injected faults, e.g. "
                        '"seed=7,fail=0.15,outage=12"')
    h.add_argument("--retries", type=int, default=3,
                   help="retries per device chunk before host reclaim")
    h.add_argument("--device-timeout", type=float, default=None,
                   help="per-chunk watchdog deadline in virtual seconds")
    h.add_argument("--chunks", type=int, default=8,
                   help="device-share chunks under a fault plan")

    bn = sub.add_parser(
        "bench",
        help="run the curated perf suite and gate on regressions",
    )
    bn.add_argument("--quick", action="store_true",
                    help="shrunken workloads for CI-smoke time; snapshots "
                         "record their mode and only compare like-for-like")
    bn.add_argument("--dir", default="bench_history",
                    help="snapshot directory (default: bench_history/); "
                         "new snapshots land here and --compare without a "
                         "baseline picks the latest one in it")
    bn.add_argument("--out", metavar="PATH", default=None,
                    help="explicit snapshot output path (default: "
                         "<dir>/BENCH_<date>.json)")
    bn.add_argument("--tags", nargs="+", metavar="TAG", default=None,
                    help="run only bench cases carrying any of these tags "
                         "(engine, parallel, memory, sharded, serve)")
    bn.add_argument("--compare", nargs="?", metavar="BASELINE",
                    default=_BENCH_NO_COMPARE,
                    help="gate against BASELINE (or, with no value, the "
                         "latest snapshot in --dir); exit 1 on any metric "
                         "regressing beyond its tolerance")
    bn.add_argument("--candidate", metavar="PATH", default=None,
                    help="compare this existing snapshot instead of "
                         "running the suite")
    bn.add_argument("--benchmarks-dir", metavar="DIR", default=None,
                    help="where the benchmark scripts live (default: "
                         "./benchmarks, falling back to the source tree)")

    v = sub.add_parser("validate",
                       help="check every paper target against the model")

    r = sub.add_parser("report", help="generate the reproduction report")
    r.add_argument("--output", help="write markdown to this file")
    r.add_argument("--query-length", type=int, default=5478)

    sub.add_parser("info", help="list engines, matrices and devices")
    return p


def _cmd_search(args: argparse.Namespace) -> int:
    from .db import SequenceDatabase, SyntheticSwissProt, read_fasta
    from .scoring import GapModel, get_matrix
    from .search import SearchOptions, SearchPipeline

    if args.query:
        query = args.query
        qname = "cmdline-query"
    elif args.query_fasta:
        rec = next(iter(read_fasta(args.query_fasta)))
        query, qname = rec.sequence, rec.accession
    else:
        print("error: provide --query or --query-fasta", file=sys.stderr)
        return 2

    if args.server:
        return _search_remote(args, query, qname)

    if args.db_fasta:
        db = SequenceDatabase.from_fasta(args.db_fasta)
    elif args.synthetic_scale:
        db = SyntheticSwissProt().generate(scale=args.synthetic_scale)
    else:
        print("error: provide --db-fasta or --synthetic-scale", file=sys.stderr)
        return 2

    injector = None
    if args.fault_plan:
        if args.mode != "exact":
            print("error: --fault-plan needs --mode exact (faults target "
                  "the lane groups the tiered path never forms)",
                  file=sys.stderr)
            return 2
        from .faults import FaultInjector, FaultPlan

        injector = FaultInjector(FaultPlan.parse(args.fault_plan))

    registry = None
    if args.metrics:
        from .metrics import MetricsRegistry

        registry = MetricsRegistry()

    if args.workers < 1:
        print("error: --workers must be positive", file=sys.stderr)
        return 2
    pipeline = SearchPipeline(SearchOptions(
        matrix=get_matrix(args.matrix),
        gaps=GapModel(args.gap_open, args.gap_extend),
        lanes=args.lanes,
        kernel=args.kernel,
        profile=args.profile,
        mode=args.mode,
        top_k=args.top,
        injector=injector,
    ), metrics=registry, workers=args.workers)
    try:
        result = pipeline.search(
            query, db, query_name=qname, traceback=args.traceback
        )
    finally:
        pipeline.close()
    if args.tsv:
        print(result.to_tsv())
        return 0
    print(result.summary())
    if injector is not None:
        print(
            f"fault injection: {result.corrupted_redone} corrupted group "
            "transmissions detected by checksum and recomputed; "
            "scores are exact"
        )
    if args.evalues:
        from .metrics import format_table
        from .search.stats import attach_statistics

        stats = attach_statistics(result)
        print()
        print(format_table(
            ["hit", "score", "bits", "E-value"],
            [
                (h.accession, h.score, round(bits, 1), f"{e:.2e}")
                for h, e, bits in stats
            ],
            title="hit statistics (Gumbel fit from the score distribution)",
        ))
    if args.traceback:
        for hit in result.top(args.top):
            if hit.alignment and hit.alignment.score > 0:
                print(f"\n>{hit.header}")
                print(hit.alignment.pretty())
    if registry is not None:
        print("\nmetrics:")
        print(registry.render())
    return 0


def _search_remote(args: argparse.Namespace, query: str, qname: str) -> int:
    """The ``search --server URL`` path: same flags, remote execution."""
    from .scoring import GapModel, get_matrix
    from .search import SearchOptions, SearchRequest
    from .serve import SearchClient

    unsupported = [
        (args.fault_plan, "--fault-plan (fault injection is server-side)"),
        (args.workers > 1, "--workers (scoring happens on the server)"),
        (args.db_fasta or args.synthetic_scale,
         "--db-fasta/--synthetic-scale (the server owns its database)"),
        (args.evalues, "--evalues (needs the full score distribution, "
                       "which stays server-side)"),
        (args.tsv, "--tsv"),
    ]
    for flagged, what in unsupported:
        if flagged:
            print(f"error: {what} cannot be combined with --server",
                  file=sys.stderr)
            return 2

    client = SearchClient(args.server, options=SearchOptions(
        matrix=get_matrix(args.matrix),
        gaps=GapModel(args.gap_open, args.gap_extend),
        lanes=args.lanes,
        kernel=args.kernel,
        profile=args.profile,
        mode=args.mode,
        top_k=args.top,
    ))
    result = client.search(SearchRequest(
        query=query, name=qname, traceback=args.traceback,
    ))
    print(result.summary())
    if args.traceback:
        for hit in result.top(args.top):
            if hit.alignment and hit.alignment.score > 0:
                print(f"\n>{hit.header}")
                print(hit.alignment.pretty())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from .db import SequenceDatabase, SyntheticSwissProt
    from .scoring import GapModel, get_matrix
    from .search import SearchOptions
    from .serve import SearchServer

    if args.db_fasta:
        db = SequenceDatabase.from_fasta(args.db_fasta)
    elif args.synthetic_scale:
        db = SyntheticSwissProt().generate(scale=args.synthetic_scale)
    else:
        print("error: provide --db-fasta or --synthetic-scale", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be positive", file=sys.stderr)
        return 2

    server = SearchServer(
        db,
        SearchOptions(
            matrix=get_matrix(args.matrix),
            gaps=GapModel(args.gap_open, args.gap_extend),
            lanes=args.lanes,
            kernel=args.kernel,
            profile=args.profile,
            mode=args.mode,
            top_k=args.top,
        ),
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        max_requests=args.max_requests,
        workers=args.workers if args.workers > 1 else None,
    )
    # SIGTERM (docker stop, CI kill) shuts down as cleanly as Ctrl-C.
    def _graceful(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _graceful)
    try:
        server._bind()
        limits = []
        if args.max_inflight is not None:
            limits.append(f"max_inflight={args.max_inflight}")
        if args.max_requests is not None:
            limits.append(f"max_requests={args.max_requests}")
        print(
            f"serving {db.name} ({len(db)} sequences) at {server.url}"
            + (f" [{', '.join(limits)}]" if limits else ""),
            flush=True,
        )
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.close()
    print("server stopped")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from .db import (
        PAPER_QUERIES,
        SequenceDatabase,
        SyntheticSwissProt,
        make_query_set,
        read_fasta,
    )
    from .scoring import GapModel, get_matrix
    from .search import SearchOptions, SearchRequest
    from .service import SearchService

    if args.db_fasta:
        db = SequenceDatabase.from_fasta(args.db_fasta)
    elif args.synthetic_scale:
        db = SyntheticSwissProt().generate(scale=args.synthetic_scale)
    else:
        print("error: provide --db-fasta or --synthetic-scale", file=sys.stderr)
        return 2

    if args.query_fasta:
        requests = [
            SearchRequest(query=rec.sequence, name=rec.accession)
            for rec in read_fasta(args.query_fasta)
        ]
    else:
        specs = PAPER_QUERIES[: max(args.queries, 1)]
        queries = make_query_set(specs)
        requests = [
            SearchRequest(query=queries[s.accession], name=s.accession)
            for s in specs
        ]
    if not requests:
        print("error: no queries to serve", file=sys.stderr)
        return 2

    registry = None
    service_kwargs = {}
    if args.metrics:
        from .metrics import MetricsRegistry

        # An isolated registry: every layer the service drives (cache,
        # pipelines, schedulers) reports here, never into the global
        # METRICS — what gets printed is exactly this batch.
        registry = MetricsRegistry()
        service_kwargs["metrics"] = registry

    if args.workers < 1:
        print("error: --workers must be positive", file=sys.stderr)
        return 2
    if args.workers > 1 and args.scheduler == "static":
        print(
            "error: --workers needs the local or queue scheduler "
            "(the static split is purely modelled)",
            file=sys.stderr,
        )
        return 2
    service = SearchService(
        SearchOptions(
            matrix=get_matrix(args.matrix),
            gaps=GapModel(args.gap_open, args.gap_extend),
            lanes=args.lanes,
            kernel=args.kernel,
            mode=args.mode,
            top_k=args.top,
        ),
        scheduler=args.scheduler,
        workers=args.workers if args.workers > 1 else None,
        chunks=args.chunks,
        static_fraction=args.static_fraction,
        **service_kwargs,
    )
    try:
        batch = service.run(requests, db)
    finally:
        service.close()
    print(
        f"served {len(batch)} queries against {db.name} "
        f"({len(db)} sequences) with the {batch.scheduler!r} scheduler:"
    )
    print(batch.summary())
    if args.scheduler == "local":
        cs = batch.cache_stats
        print(
            f"preprocess cache: {cs['hits']} hits / "
            f"{cs['hits'] + cs['misses']} lookups "
            f"(hit rate {cs['hit_rate']:.0%})"
        )
    elif args.scheduler == "queue":
        dyn = sum(o.modeled_makespan for o in batch.outcomes)
        static = sum(o.static_modeled_makespan for o in batch.outcomes)
        print(
            f"modelled makespan: dynamic queue {dyn:.3f}s vs static split "
            f"at {args.static_fraction:.0%} {static:.3f}s "
            f"({static / dyn:.2f}x)" if dyn > 0 else
            "modelled makespan: degenerate (zero-cost workload)"
        )
    if registry is not None:
        print("\nmetrics:")
        print(registry.render())
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .db import read_fasta
    from .faults import Deadline
    from .scoring import GapModel, get_matrix
    from .search import PartialResult, SearchOptions, StreamingSearch

    if args.query:
        query = args.query
        qname = "cmdline-query"
    elif args.query_fasta:
        rec = next(iter(read_fasta(args.query_fasta)))
        query, qname = rec.sequence, rec.accession
    else:
        print("error: provide --query or --query-fasta", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be positive", file=sys.stderr)
        return 2
    if args.resume and not args.journal:
        print("error: --resume needs --journal", file=sys.stderr)
        return 2
    if (args.journal or args.resume) and args.workers == 1:
        print("error: --journal/--resume need --workers > 1 "
              "(only the sharded scan journals its merge state)",
              file=sys.stderr)
        return 2
    if args.deadline is not None and args.deadline <= 0:
        print("error: --deadline must be positive", file=sys.stderr)
        return 2

    injector = None
    if args.fault_plan:
        if args.mode != "exact":
            print("error: --fault-plan needs --mode exact (faults target "
                  "the lane groups the tiered path never forms)",
                  file=sys.stderr)
            return 2
        from .faults import FaultInjector, FaultPlan

        injector = FaultInjector(FaultPlan.parse(args.fault_plan))

    registry = None
    if args.metrics:
        from .metrics import MetricsRegistry

        registry = MetricsRegistry()

    deadline = (
        Deadline.after(args.deadline) if args.deadline is not None else None
    )
    search = StreamingSearch(
        SearchOptions(
            matrix=get_matrix(args.matrix),
            gaps=GapModel(args.gap_open, args.gap_extend),
            lanes=args.lanes,
            kernel=args.kernel,
            mode=args.mode,
            chunk_size=args.chunk_size,
            top_k=args.top,
            injector=injector,
            deadline=deadline,
        ),
        metrics=registry,
        workers=args.workers,
        shard_residues=args.shard_residues,
        shard_records=args.shard_records,
        journal=args.journal,
        resume=args.resume,
        chunk_timeout=args.chunk_timeout,
    )
    try:
        result = search.search_fasta(query, args.db_fasta, query_name=qname)
    finally:
        search.close()
    print(result.summary())
    if injector is not None:
        print(
            f"fault injection: {result.corrupted_redone} corrupted chunk "
            "transmissions detected by checksum and recomputed; "
            "scores are exact"
        )
    if registry is not None:
        print("\nmetrics:")
        print(registry.render())
    if isinstance(result, PartialResult):
        frac = result.completion()
        pct = f" ({frac:.0%} of the scan)" if frac is not None else ""
        where = (
            f"; resume with --journal {args.journal} --resume"
            if args.journal else ""
        )
        print(
            f"error: deadline expired after {result.sequences_scanned} "
            f"sequences{pct}{where}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .db import (
        PAPER_QUERIES,
        SequenceDatabase,
        SyntheticSwissProt,
        make_query_set,
        read_fasta,
    )
    from .metrics import MetricsRegistry
    from .obs import Tracer, write_chrome_trace, write_jsonl
    from .scoring import GapModel, get_matrix
    from .search import SearchOptions, SearchRequest
    from .service import SearchService

    if args.db_fasta:
        db = SequenceDatabase.from_fasta(args.db_fasta)
    elif args.synthetic_scale:
        db = SyntheticSwissProt().generate(scale=args.synthetic_scale)
    else:
        print("error: provide --db-fasta or --synthetic-scale", file=sys.stderr)
        return 2

    if args.query:
        requests = [SearchRequest(query=args.query, name="cmdline-query")]
    elif args.query_fasta:
        requests = [
            SearchRequest(query=rec.sequence, name=rec.accession)
            for rec in read_fasta(args.query_fasta)
        ]
    else:
        specs = PAPER_QUERIES[: max(args.queries, 1)]
        queries = make_query_set(specs)
        requests = [
            SearchRequest(query=queries[s.accession], name=s.accession)
            for s in specs
        ]
    if not requests:
        print("error: no queries to serve", file=sys.stderr)
        return 2

    tracer = Tracer()
    registry = MetricsRegistry()
    service = SearchService(
        SearchOptions(
            matrix=get_matrix(args.matrix),
            gaps=GapModel(args.gap_open, args.gap_extend),
            top_k=args.top,
        ),
        scheduler=args.scheduler,
        chunks=args.chunks,
        static_fraction=args.static_fraction,
        metrics=registry,
        tracer=tracer,
    )
    batch = service.run(requests, db)

    trace = write_chrome_trace(
        tracer.collector, args.output,
        metadata={
            "database": db.name,
            "sequences": len(db),
            "scheduler": args.scheduler,
            "queries": [r.name for r in requests],
        },
    )
    print(
        f"traced {len(batch)} request(s) against {db.name} "
        f"({len(db)} sequences, {args.scheduler!r} scheduler): "
        f"{len(tracer.collector)} spans"
    )
    print(
        f"wrote {len(trace['traceEvents'])} trace events to {args.output} "
        "(open in https://ui.perfetto.dev or chrome://tracing)"
    )
    if args.jsonl:
        count = write_jsonl(tracer.collector, args.jsonl)
        print(f"wrote {count} span records to {args.jsonl}")
    if args.tree:
        print("\nspan tree:")
        print(tracer.collector.render_tree())
    if args.metrics:
        print("\nmetrics:")
        print(registry.render())
    return 0


def _cmd_align(args: argparse.Namespace) -> int:
    from .core import align_pair
    from .core.global_align import global_align, semiglobal_align
    from .scoring import GapModel, get_matrix

    matrix = get_matrix(args.matrix)
    gaps = GapModel(args.gap_open, args.gap_extend)
    mode = {
        "local": align_pair,
        "global": global_align,
        "semiglobal": semiglobal_align,
    }[args.mode]
    tb = mode(args.sequence_a, args.sequence_b, matrix, gaps)
    print(f"{args.mode} alignment ({matrix.name}, gaps "
          f"{args.gap_open}/{args.gap_extend}):")
    if tb.length:
        print(tb.pretty())
        print(f"CIGAR: {tb.cigar()}")
    else:
        print("no alignment with positive score")
    return 0


def _cmd_blast(args: argparse.Namespace) -> int:
    from .db import SequenceDatabase, SyntheticSwissProt
    from .heuristic import MiniBlast

    if args.db_fasta:
        db = SequenceDatabase.from_fasta(args.db_fasta)
    elif args.synthetic_scale:
        db = SyntheticSwissProt().generate(scale=args.synthetic_scale)
    else:
        print("error: provide --db-fasta or --synthetic-scale", file=sys.stderr)
        return 2
    result = MiniBlast(k=args.word_size, threshold=args.threshold).search(
        args.query, db
    )
    print(
        f"heuristic search of {len(db)} sequences: "
        f"{result.seeds_found} seeds, {result.gapped_extensions} gapped "
        f"refinements, {result.cell_savings:.1%} of exact-SW work skipped"
    )
    for rank, hit in enumerate(result.top(args.top), start=1):
        print(f"  #{rank:<2d} score {hit.score:>6d}  {hit.header.split()[0]} "
              f"q[{hit.qstart}-{hit.qend}] d[{hit.dstart}-{hit.dend}]")
    if not result.hits:
        print("  no hits above the seeding threshold")
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    from .db import SyntheticSwissProt
    from .devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
    from .metrics import format_table
    from .perfmodel import DevicePerformanceModel, RunConfig, Workload

    lengths = SyntheticSwissProt().lengths(scale=args.scale)
    rows = []
    for spec in (XEON_E5_2670_DUAL, XEON_PHI_57XX):
        model = DevicePerformanceModel(spec)
        wl = Workload.from_lengths(lengths, spec.lanes32)
        for vec in ("novec", "simd", "intrinsic"):
            profiles = ("sequence",) if vec == "novec" else ("query", "sequence")
            for prof in profiles:
                cfg = RunConfig(vectorization=vec, profile=prof)
                rows.append(
                    (spec.name, cfg.label,
                     model.gcups(wl, args.query_length, cfg))
                )
    print(format_table(
        ["device", "variant", "GCUPS"], rows,
        title=f"modelled GCUPS (query length {args.query_length})",
    ))
    return 0


def _cmd_hybrid(args: argparse.Namespace) -> int:
    from .db import SyntheticSwissProt
    from .devices import XEON_E5_2670_DUAL, XEON_PHI_57XX
    from .metrics import format_series
    from .perfmodel import DevicePerformanceModel
    from .runtime import HybridExecutor

    lengths = SyntheticSwissProt().lengths()
    ex = HybridExecutor(
        DevicePerformanceModel(XEON_E5_2670_DUAL),
        DevicePerformanceModel(XEON_PHI_57XX),
    )
    # Validate fault options up front — the sweep below takes a while
    # and a bad flag should fail before it, not after.
    plan = injector = retry = timeout = None
    if args.fault_plan:
        from .faults import FaultInjector, FaultPlan, RetryPolicy, Timeout

        plan = FaultPlan.parse(args.fault_plan)
        injector = FaultInjector(plan)
        retry = RetryPolicy(max_retries=args.retries)
        timeout = (
            Timeout(args.device_timeout)
            if args.device_timeout is not None else None
        )
    steps = int(round(1.0 / args.step))
    fractions = [round(k * args.step, 4) for k in range(steps + 1)]
    sweep = ex.sweep(lengths, args.query_length, fractions)
    print(format_series(
        {f: r.gcups for f, r in sweep.items()},
        x_label="phi-share", title="hybrid GCUPS vs workload distribution (Fig. 8)",
    ))
    best = max(sweep.values(), key=lambda r: r.gcups)
    print(f"\nbest split: {best.device_fraction:.0%} on the Phi -> "
          f"{best.gcups:.1f} GCUPS (paper: ~55% -> 62.6)")

    if injector is not None:
        from .runtime import ResilientHybridExecutor

        rex = ResilientHybridExecutor(
            ex.host, ex.device,
            injector=injector,
            retry=retry,
            timeout=timeout,
            chunks=args.chunks,
        )
        r = rex.run(lengths, args.query_length, best.device_fraction)
        outcomes: dict[str, int] = {}
        for rec in r.timeline:
            outcomes[rec.outcome] = outcomes.get(rec.outcome, 0) + 1
        print(f"\nresilient run at the best split under plan '{args.fault_plan}':")
        print(f"  mode: {r.mode} (degraded={r.degraded})")
        print(f"  achieved {r.gcups:.1f} GCUPS vs {r.baseline_gcups:.1f} "
              f"fault-free ({r.gcups_lost:.1f} lost to faults)")
        print(f"  chunks: {r.chunks} total, {r.chunks_reclaimed} reclaimed "
              f"by the host ({r.reclaimed_cells / 1e9:.2f} Gcells)")
        print("  attempts: " + ", ".join(
            f"{k}={v}" for k, v in sorted(outcomes.items())
        ))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import run_bench

    return run_bench(args)


def _cmd_validate(_: argparse.Namespace) -> int:
    from .metrics import format_table
    from .perfmodel import validate_against_paper

    record = validate_against_paper()
    rows = [
        (v["section"], v["description"], v["target"], v["measured"],
         "OK" if v["ok"] else "FAIL")
        for v in record.values()
    ]
    print(format_table(
        ["section", "experiment", "paper", "measured", "status"],
        rows,
        title="paper-target validation",
    ))
    failures = sum(1 for v in record.values() if not v["ok"])
    print(f"\n{len(record) - failures}/{len(record)} targets reproduced")
    return 0 if failures == 0 else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .metrics import generate_report

    text = generate_report(query_len=args.query_length)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_info(_: argparse.Namespace) -> int:
    from .core import available_engines
    from .devices import paper_devices
    from .scoring import available_matrices

    print("engines:   " + ", ".join(available_engines()))
    print("matrices:  " + ", ".join(available_matrices()))
    print("devices:")
    for short, spec in paper_devices().items():
        print(
            f"  {short:5s} {spec.name}: {spec.cores} cores x "
            f"{spec.threads_per_core} threads @ {spec.clock_ghz} GHz, "
            f"{spec.isa.register_bits}-bit SIMD"
            f"{' (gather)' if spec.isa.has_gather else ''}, "
            f"TDP {spec.tdp_watts:.0f} W"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "search": _cmd_search,
        "serve": _cmd_serve,
        "batch": _cmd_batch,
        "stream": _cmd_stream,
        "trace": _cmd_trace,
        "align": _cmd_align,
        "blast": _cmd_blast,
        "model": _cmd_model,
        "hybrid": _cmd_hybrid,
        "bench": _cmd_bench,
        "validate": _cmd_validate,
        "report": _cmd_report,
        "info": _cmd_info,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
