"""Shared pre-processing cache for multi-query traffic.

Step 2 of Algorithm 1 (sort by length + lane packing) depends only on
the database and the lane width — never on the query — yet the
single-query pipeline recomputes it per search.  Under multi-query
traffic that is pure waste: this LRU keyed on ``(database fingerprint,
lanes)`` runs the sort/pack once per distinct database and hands every
subsequent query the same :class:`~repro.db.preprocess.PreprocessedDatabase`.

Hit/miss/eviction counts are reported through :mod:`repro.metrics`
(``service.preprocess_cache.*``) so serving deployments can watch the
hit rate.
"""

from __future__ import annotations

from collections import OrderedDict

from ..db.database import SequenceDatabase
from ..db.preprocess import PreprocessedDatabase, preprocess_database
from ..exceptions import PipelineError
from ..metrics.counters import METRICS, MetricsRegistry
from ..obs.tracer import get_tracer

__all__ = ["PreprocessCache"]


class PreprocessCache:
    """LRU of :func:`~repro.db.preprocess_database` results.

    Parameters
    ----------
    capacity:
        Distinct ``(database, lanes)`` combinations kept resident; the
        least-recently-used entry is evicted beyond that.
    metrics:
        Registry receiving ``service.preprocess_cache.{hits,misses,
        evictions}``; defaults to the process-wide one.
    """

    def __init__(
        self, capacity: int = 8, *, metrics: MetricsRegistry = METRICS
    ) -> None:
        if capacity < 1:
            raise PipelineError(
                f"cache capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.metrics = metrics
        self._entries: OrderedDict[tuple[int, int], PreprocessedDatabase] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, database: SequenceDatabase, *, lanes: int
    ) -> PreprocessedDatabase:
        """The sorted/lane-packed form of ``database`` at ``lanes``.

        Computes and caches on first sight of the content; every later
        call with equal content (whatever object carries it) is a hit.
        """
        with get_tracer().span("cache.get") as sp, \
                self.metrics.timer(
                    "service.preprocess_cache.get.seconds"
                ).time():
            key = (database.fingerprint(), int(lanes))
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self.metrics.increment("service.preprocess_cache.hits")
                self._entries.move_to_end(key)
                if sp:
                    sp.set_attributes(hit=True, lanes=int(lanes))
                return entry
            self.misses += 1
            self.metrics.increment("service.preprocess_cache.misses")
            entry = preprocess_database(database, lanes=lanes)
            self._entries[key] = entry
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self.metrics.increment("service.preprocess_cache.evictions")
            if sp:
                sp.set_attributes(hit=False, lanes=int(lanes))
            return entry

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        """Counters plus occupancy, for reports and the CLI."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "size": len(self._entries),
            "capacity": self.capacity,
        }

    def clear(self) -> None:
        """Drop every cached entry (counters keep accumulating)."""
        self._entries.clear()
