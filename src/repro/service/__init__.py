"""Batched search serving: shared pre-processing + dynamic scheduling.

This package layers a service interface over the search pipelines:
:class:`SearchService` accepts batches of
:class:`~repro.search.SearchRequest`, amortises Algorithm 1's
sort/lane-pack step across requests through :class:`PreprocessCache`,
and — in ``queue`` mode — replaces the paper's hand-tuned static
host/device split with :class:`WorkQueueScheduler`, a dynamic
shared-queue distribution whose makespan is reported next to the
static reference.
"""

from .cache import PreprocessCache
from .scheduler import QueueSearchOutcome, WorkQueueScheduler
from .service import SearchService, ServiceBatchResult

__all__ = [
    "PreprocessCache",
    "QueueSearchOutcome",
    "SearchService",
    "ServiceBatchResult",
    "WorkQueueScheduler",
]
