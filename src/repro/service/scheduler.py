"""The executing twin of the work-queue schedule.

:func:`repro.perfmodel.plan_work_queue` decides, in virtual time, which
database chunks each side of the heterogeneous pair pulls;
:class:`WorkQueueScheduler` *runs* that plan: host chunks go through a
host-lane :class:`~repro.search.SearchPipeline`, device chunks through a
device-lane pipeline inside an asynchronous offload region (kernel
deferred to ``wait()``, like every device computation in this library),
and the per-chunk scores scatter back into one ranking.  Because every
path computes exact Smith-Waterman scores, the merged result is
byte-identical to the static split's and to a plain whole-database
search — the schedule only moves *where* and *when* work happens.

The outcome carries the dynamic plan next to the static split's
reference makespan, so the paper's hand-tuned ratio can be compared
against untuned dynamic scheduling on the same search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.engine import as_codes
from ..db.database import SequenceDatabase
from ..exceptions import ParallelError, PipelineError
from ..metrics.counters import METRICS, MetricsRegistry
from ..obs.tracer import get_tracer
from ..perfmodel.model import DevicePerformanceModel
from ..perfmodel.scheduling import WorkQueuePlan, plan_work_queue
from ..runtime.hybrid import HybridExecutor
from ..runtime.offload import OffloadRegion
from ..runtime.pcie import PCIE_GEN2_X16, PCIeLink
from ..search.api import SearchOptions
from ..search.pipeline import SearchPipeline
from ..search.result import Hit, SearchResult

__all__ = ["QueueSearchOutcome", "WorkQueueScheduler"]


@dataclass
class QueueSearchOutcome:
    """A dynamically-scheduled search plus both modelled makespans."""

    result: SearchResult
    plan: WorkQueuePlan
    static_fraction: float
    static_modeled_makespan: float

    @property
    def modeled_makespan(self) -> float:
        """The dynamic schedule's makespan (the slower worker)."""
        return self.plan.makespan

    @property
    def modeled_gcups(self) -> float:
        """Throughput under the dynamic schedule."""
        return self.result.cells / self.plan.makespan / 1e9

    @property
    def static_modeled_gcups(self) -> float:
        """Throughput the static split would have achieved."""
        return self.result.cells / self.static_modeled_makespan / 1e9

    # -- SearchOutcome protocol ----------------------------------------
    @property
    def hits(self) -> list[Hit]:
        """Ranked hits of the merged search."""
        return self.result.hits

    def best_score(self) -> int:
        """Highest alignment score across all chunks."""
        return self.result.best_score()

    @property
    def gcups(self) -> float:
        """Headline throughput: the dynamic schedule's modelled GCUPS."""
        return self.modeled_gcups

    @property
    def provenance(self) -> dict:
        """Identifying fields (:class:`~repro.search.SearchOutcome`)."""
        return {
            **self.result.provenance,
            "kind": "work-queue",
            "scheduler": "queue",
            "chunks": len(self.plan.assignments),
            "device_fraction": self.plan.device_residue_fraction,
        }


class WorkQueueScheduler:
    """Dynamic host/device distribution with real execution.

    Parameters
    ----------
    host_model, device_model:
        The two sides' performance models (paper: dual Xeon + Phi).
    options:
        Shared :class:`~repro.search.SearchOptions`; ``lanes``, when
        set, pins both sides, otherwise each runs its native width.
    link:
        PCIe model device chunks cross (both directions, per chunk).
    chunks:
        Queue granularity — residue-balanced units on the shared queue.
    static_fraction:
        Device share of the *reference* static split reported next to
        the dynamic makespan (the knob the paper hand-tunes; the queue
        itself has no such knob).
    metrics:
        Registry receiving the ``queue.*`` metrics; defaults to the
        process-wide one and is forwarded to both per-side pipelines.
    workers:
        With ``workers > 1``, the planned chunks are drained by a real
        process pool (:class:`repro.parallel.ProcessPoolBackend`): each
        assignment becomes one subset task, re-packed worker-side at its
        side's lane width exactly like the serial per-chunk pipeline, so
        the merged scores — and the fault-injection redo counts — are
        identical to serial draining.  The virtual-time plan (and the
        modelled offload accounting) is unchanged; only the real
        execution moves onto the pool.  Falls back to serial draining if
        the pool cannot run.
    parallel_broadcast:
        Broadcast strategy forwarded to the pool (``"auto"``, ``"shm"``
        or ``"pickle"``).
    """

    def __init__(
        self,
        host_model: DevicePerformanceModel,
        device_model: DevicePerformanceModel,
        options: SearchOptions | None = None,
        *,
        link: PCIeLink = PCIE_GEN2_X16,
        chunks: int = 24,
        static_fraction: float = 0.55,
        metrics: MetricsRegistry | None = None,
        workers: int | None = None,
        parallel_broadcast: str = "auto",
    ) -> None:
        if not 0.0 <= static_fraction <= 1.0:
            raise PipelineError(
                f"static fraction must be within [0, 1], got {static_fraction}"
            )
        if workers is not None and int(workers) < 1:
            raise PipelineError(
                f"worker count must be positive, got {workers}"
            )
        opts = options if options is not None else SearchOptions()
        self.options = opts
        self.host_model = host_model
        self.device_model = device_model
        self.link = link
        self.chunks = chunks
        self.static_fraction = static_fraction
        self.alphabet = opts.alphabet
        self.metrics = metrics if metrics is not None else METRICS
        self._pipes = {
            "host": SearchPipeline(
                opts.merged(
                    lanes=opts.resolved_lanes(host_model.spec.lanes32)
                ),
                metrics=self.metrics,
            ),
            "device": SearchPipeline(
                opts.merged(
                    lanes=opts.resolved_lanes(device_model.spec.lanes32)
                ),
                metrics=self.metrics,
            ),
        }
        self.workers = int(workers) if workers is not None else 1
        self.parallel_broadcast = parallel_broadcast
        self._backend = None
        self._backend_key: tuple | None = None

    # ------------------------------------------------------------------
    def _ensure_backend(self, database: SequenceDatabase):
        """The worker pool bound to ``database`` (re-broadcast on change)."""
        from ..db.preprocess import preprocess_database
        from ..parallel.backend import ProcessPoolBackend

        key = (database.fingerprint(),)
        if (
            self._backend is not None
            and not self._backend.closed
            and self._backend_key == key
        ):
            return self._backend
        self.close()
        # Broadcast lane width is irrelevant for subset tasks (workers
        # re-pack at each task's own width); use the host side's.
        pre = preprocess_database(database, lanes=self._pipes["host"].lanes)
        self._backend = ProcessPoolBackend(
            pre,
            workers=self.workers,
            broadcast=self.parallel_broadcast,
            metrics=self.metrics,
        )
        self._backend_key = key
        return self._backend

    def _drain_parallel(self, q, database: SequenceDatabase, plan, tracer):
        """Drain every planned assignment on the process pool.

        Returns ``(scores, wall_seconds)`` in original database order,
        or ``None`` when the pool cannot run (caller drains serially).
        Each assignment ships its sequences in assignment order, so the
        worker's stable length sort packs the exact lane groups — and
        replays the exact chunk-local fault-unit decisions — of the
        serial per-chunk pipeline.
        """
        from ..parallel.worker import ChunkTask, EngineConfig

        try:
            backend = self._ensure_backend(database)
        except ParallelError as exc:
            self.metrics.increment("parallel.fallback")
            tracer.event(
                "parallel.fallback", reason=f"{type(exc).__name__}: {exc}"
            )
            return None
        order = database.length_order()
        inv = np.empty(len(database), dtype=np.int64)
        inv[order] = np.arange(len(database), dtype=np.int64)
        fault_plan = (
            self.options.injector.plan
            if self.options.injector is not None
            else None
        )
        tasks = []
        for a in plan.assignments:
            pipe = self._pipes[a.worker]
            tasks.append(ChunkTask(
                chunk_id=a.chunk_id,
                kind="subset",
                query=q,
                matrix=pipe.matrix,
                gaps=pipe.gaps,
                engine=EngineConfig(
                    lanes=pipe.lanes,
                    profile=pipe.engine.profile.value,
                    block_cols=pipe.engine.block_cols,
                    saturate_bits=pipe.engine.saturate_bits,
                    kernel=pipe.kernel,
                ),
                positions=tuple(int(p) for p in inv[a.indices]),
                plan=fault_plan,
            ))
        try:
            results = backend.submit_subsets(tasks)
        except ParallelError as exc:
            self.metrics.increment("parallel.fallback")
            tracer.event(
                "parallel.fallback", reason=f"{type(exc).__name__}: {exc}"
            )
            return None
        sorted_scores = np.zeros(len(database), dtype=np.int64)
        wall = 0.0
        for a, res in zip(plan.assignments, results):
            sorted_scores[res.positions] = res.scores
            wall += res.compute_seconds
            with tracer.span("queue.chunk") as sp:
                if sp:
                    sp.set_attributes(
                        chunk=a.chunk_id, worker=a.worker,
                        sequences=len(a.indices), residues=a.residues,
                        worker_pid=res.pid, executor="process",
                    )
                    sp.set_virtual(a.start_seconds, a.end_seconds)
            self.metrics.increment(f"queue.chunks.{a.worker}")
            self.metrics.observe("queue.chunk.seconds", a.seconds)
        scores = np.zeros(len(database), dtype=np.int64)
        scores[order] = sorted_scores
        return scores, wall

    def close(self) -> None:
        """Shut down the parallel worker pool, if one is running."""
        backend, self._backend = self._backend, None
        self._backend_key = None
        if backend is not None:
            backend.close()

    def __enter__(self) -> "WorkQueueScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def plan(self, lengths: np.ndarray, query_len: int) -> WorkQueuePlan:
        """The virtual-time schedule alone (no alignment computed)."""
        return plan_work_queue(
            self.host_model, self.device_model, lengths, query_len,
            chunks=self.chunks, link=self.link,
        )

    def search(
        self,
        query,
        database: SequenceDatabase,
        *,
        query_name: str = "query",
        top_k: int | None = None,
    ) -> QueueSearchOutcome:
        """Plan the queue, execute every chunk on its worker, merge.

        The schedule is deterministic (stable chunking, deterministic
        pulls), so repeated calls assign identical chunks and return
        identical scores.
        """
        if len(database) == 0:
            raise PipelineError("cannot search an empty database")
        if top_k is None:
            top_k = self.options.top_k
        q = as_codes(query, self.alphabet)
        tracer = get_tracer()
        with tracer.span("queue.search") as root:
            if root:
                root.set_attributes(
                    query_name=query_name, database=database.name,
                    scheduler="queue", sequences=len(database),
                )
            with tracer.span("queue.plan") as sp:
                plan = self.plan(database.lengths, len(q))
                if sp:
                    sp.set_attributes(
                        chunks=len(plan.assignments),
                        device_fraction=plan.device_residue_fraction,
                        makespan=plan.makespan,
                    )

            drained = (
                self._drain_parallel(q, database, plan, tracer)
                if self.workers > 1
                else None
            )
            if drained is not None:
                scores, wall = drained
                if root:
                    root.set_attributes(
                        executor="process", workers=self.workers
                    )
                return self._finish(
                    q, database, plan, scores, wall,
                    query_name=query_name, top_k=top_k,
                    tracer=tracer, root=root,
                )

            scores = np.zeros(len(database), dtype=np.int64)
            wall = 0.0
            for a in plan.assignments:
                chunk_db = database.subset(
                    a.indices, name=f"{database.name}-wq{a.chunk_id}"
                )
                pipe = self._pipes[a.worker]
                with tracer.span("queue.chunk") as sp:
                    if sp:
                        sp.set_attributes(
                            chunk=a.chunk_id, worker=a.worker,
                            sequences=len(chunk_db), residues=a.residues,
                        )
                        sp.set_virtual(a.start_seconds, a.end_seconds)
                    if a.worker == "device":
                        region = OffloadRegion(self.link)
                        handle = region.run_async(
                            in_bytes=a.residues + len(q),
                            out_bytes=4 * len(chunk_db),
                            compute_seconds=a.seconds,
                            kernel=lambda cdb=chunk_db: pipe.search(
                                q, cdb, query_name=query_name, top_k=0
                            ),
                            unit=a.chunk_id,
                        )
                        region.wait(handle)
                        part = handle.result
                    else:
                        part = pipe.search(
                            q, chunk_db, query_name=query_name, top_k=0
                        )
                self.metrics.increment(f"queue.chunks.{a.worker}")
                self.metrics.observe("queue.chunk.seconds", a.seconds)
                wall += part.wall_seconds
                # part.scores follow chunk_db order == a.indices order.
                scores[a.indices] = part.scores

            return self._finish(
                q, database, plan, scores, wall,
                query_name=query_name, top_k=top_k,
                tracer=tracer, root=root,
            )

    def _finish(
        self, q, database, plan, scores, wall,
        *, query_name, top_k, tracer, root,
    ) -> QueueSearchOutcome:
        """Rank merged scores and attach the static reference makespan."""
        with tracer.span("queue.merge"):
            ranked = np.argsort(-scores, kind="stable")
            hits = [
                Hit(
                    index=int(i),
                    header=database.headers[int(i)],
                    length=len(database.sequences[int(i)]),
                    score=int(scores[int(i)]),
                )
                for i in ranked[: max(top_k, 0)]
            ]
        static = HybridExecutor(
            self.host_model, self.device_model, link=self.link
        ).run(database.lengths, len(q), self.static_fraction)
        self.metrics.set_gauge(
            "queue.device_fraction", plan.device_residue_fraction
        )
        result = SearchResult(
            query_name=query_name,
            query_length=len(q),
            database_name=database.name,
            scores=scores,
            hits=hits,
            cells=len(q) * database.total_residues,
            wall_seconds=wall,
            modeled_seconds=plan.makespan,
        )
        if root:
            result.trace = {"span_id": root.span_id, "span": root.name}
        return QueueSearchOutcome(
            result=result,
            plan=plan,
            static_fraction=self.static_fraction,
            static_modeled_makespan=static.total_seconds,
        )
