"""The batched search front-end.

One object, one ``run()`` — where callers previously picked between
four entrypoints with inconsistent kwargs, :class:`SearchService`
accepts a batch of :class:`~repro.search.SearchRequest` and routes it
through one of three executors:

``local``
    Algorithm 1 on the host pipeline.  The whole batch shares one
    sort/lane-pack through :class:`~repro.service.PreprocessCache`
    (keyed on database fingerprint + lane count), so N queries pay for
    one ``preprocess_database`` instead of N.
``static``
    Algorithm 2 at a fixed host/device split per query (the paper's
    scheme, ratio hand-tuned via ``static_fraction``).
``queue``
    The dynamic work-queue scheduler — no ratio to tune; each outcome
    reports its makespan next to the static reference.

Every outcome satisfies the :class:`~repro.search.SearchOutcome`
protocol and is score-identical to the corresponding single-query path.
"""

from __future__ import annotations

import os
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..db.database import SequenceDatabase
from ..exceptions import PipelineError, ServiceOverloaded
from ..metrics.counters import METRICS, MetricsRegistry
from ..obs.tracer import Tracer, get_tracer, use_tracer
from ..perfmodel.model import DevicePerformanceModel
from ..runtime.pcie import PCIE_GEN2_X16, PCIeLink
from ..search.api import SearchOptions, SearchOutcome, SearchRequest
from ..search.hybrid_pipeline import HybridSearchPipeline
from ..search.pipeline import SearchPipeline
from ..search.result import Hit
from .cache import PreprocessCache
from .scheduler import WorkQueueScheduler

__all__ = ["ServiceBatchResult", "SearchService"]

SCHEDULERS = ("local", "static", "queue")
EXECUTORS = ("inprocess", "process", "sharded")


@dataclass
class ServiceBatchResult:
    """Outcomes of one batch, in request order, plus serving stats."""

    requests: tuple[SearchRequest, ...]
    outcomes: tuple[SearchOutcome, ...]
    scheduler: str
    database_name: str
    cache_stats: dict

    def __post_init__(self) -> None:
        if len(self.requests) != len(self.outcomes):
            raise PipelineError(
                f"{len(self.requests)} requests but "
                f"{len(self.outcomes)} outcomes"
            )

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @property
    def results(self) -> dict[str, SearchOutcome]:
        """Request name -> outcome (last wins on duplicate names)."""
        return {
            req.name: out for req, out in zip(self.requests, self.outcomes)
        }

    @property
    def total_cells(self) -> int:
        """DP cells across the whole batch."""
        return sum(o.result.cells if hasattr(o, "result") else o.cells
                   for o in self.outcomes)

    # -- SearchOutcome protocol ----------------------------------------
    @property
    def hits(self) -> list[Hit]:
        """All outcomes' hits, re-ranked by score (request order ties)."""
        merged = [
            (hit, k)
            for k, out in enumerate(self.outcomes)
            for hit in out.hits
        ]
        merged.sort(key=lambda pair: (-pair[0].score, pair[1], pair[0].index))
        return [hit for hit, _ in merged]

    def best_score(self) -> int:
        """Highest alignment score across the batch."""
        return max((o.best_score() for o in self.outcomes), default=0)

    @property
    def gcups(self) -> float:
        """Mean of the outcomes' headline throughputs."""
        if not self.outcomes:
            return 0.0
        return sum(o.gcups for o in self.outcomes) / len(self.outcomes)

    @property
    def provenance(self) -> dict:
        """Identifying fields (:class:`~repro.search.SearchOutcome`)."""
        return {
            "kind": "service-batch",
            "scheduler": self.scheduler,
            "database_name": self.database_name,
            "queries": [r.name for r in self.requests],
            "cache": dict(self.cache_stats),
        }

    def summary(self) -> str:
        """One line per request, for the CLI."""
        lines = []
        for req, out in zip(self.requests, self.outcomes):
            top = out.hits[0] if out.hits else None
            lines.append(
                f"  {req.name:<12s} best {out.best_score():>6d}"
                + (f"  {top.accession}" if top else "  (no hits)")
                + f"  {out.gcups:8.2f} GCUPS"
            )
        return "\n".join(lines)


class SearchService:
    """Unified, batched front door over the search entrypoints.

    Parameters
    ----------
    options:
        Shared :class:`~repro.search.SearchOptions` for every request
        (per-request ``top_k``/``traceback`` still apply).
    scheduler:
        ``"local"``, ``"static"`` or ``"queue"`` (see module docstring).
    executor:
        ``"inprocess"`` (default) runs everything on this process;
        ``"process"`` scores on a persistent pool of ``workers`` real
        OS processes (``local`` searches through
        ``SearchPipeline(workers=N)``, ``queue`` drains its chunk queue
        through the same pool).  ``"sharded"`` (``local`` scheduler
        only) streams databases larger than ``shard_residues`` through
        the bounded-memory sharded scan on the worker pool instead of
        preprocessing them whole — the out-of-core path; smaller
        databases (and traceback requests, which need the resident
        pipeline) still take the cached-preprocess route.  Scores are
        identical every way; a pool that cannot start falls back to
        in-process execution.  The ``static`` scheduler is a purely
        modelled split and has no process executor.
    workers:
        Pool size for the process/sharded executors; defaults to the
        CPU count.  Passing ``workers > 1`` implies
        ``executor="process"`` when no executor was chosen.
    shard_residues:
        Sharded-executor knob: databases above this many residues
        stream through shards of (at most) this size; others go
        through the resident pipeline.
    host_model, device_model:
        Device pair for the heterogeneous schedulers; defaults to the
        paper's dual Xeon + Xeon Phi when needed.
    cache_capacity:
        :class:`PreprocessCache` size (local scheduler).
    chunks, static_fraction, link:
        Heterogeneous knobs forwarded to the executor.
    max_queue_depth:
        Admission cap: a batch larger than this is rejected whole with
        :class:`~repro.exceptions.ServiceOverloaded` (counted in
        ``service.load_shed``) before any work starts — shedding load
        early beats missing every deadline in the batch.  ``None``
        (default) admits any batch size.
    metrics:
        Registry every layer under this service reports into — the
        cache *and* the pipelines/schedulers it drives.  Pass an
        isolated :class:`MetricsRegistry` and the process-wide
        :data:`METRICS` stays untouched.
    tracer:
        Optional :class:`~repro.obs.Tracer` activated (via
        :func:`~repro.obs.use_tracer`) for the duration of every
        :meth:`search`/:meth:`run` call, so one batch yields a full
        span tree without touching global tracer state outside the
        call.  ``None`` (default) leaves whatever tracer is already
        active in place.
    """

    def __init__(
        self,
        options: SearchOptions | None = None,
        *,
        scheduler: str = "local",
        executor: str = "inprocess",
        workers: int | None = None,
        host_model: DevicePerformanceModel | None = None,
        device_model: DevicePerformanceModel | None = None,
        cache_capacity: int = 8,
        chunks: int = 24,
        static_fraction: float = 0.55,
        shard_residues: int = 1_000_000,
        max_queue_depth: int | None = None,
        link: PCIeLink = PCIE_GEN2_X16,
        metrics: MetricsRegistry = METRICS,
        tracer: Tracer | None = None,
    ) -> None:
        if scheduler not in SCHEDULERS:
            raise PipelineError(
                f"scheduler must be one of {SCHEDULERS}, got {scheduler!r}"
            )
        if executor not in EXECUTORS:
            raise PipelineError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if workers is not None:
            if int(workers) < 1:
                raise PipelineError(
                    f"worker count must be positive, got {workers}"
                )
            if int(workers) > 1 and executor == "inprocess":
                executor = "process"
        if shard_residues < 1:
            raise PipelineError(
                f"shard_residues must be positive, got {shard_residues}"
            )
        if max_queue_depth is not None and max_queue_depth < 1:
            raise PipelineError(
                f"max_queue_depth must be positive, got {max_queue_depth}"
            )
        if executor == "sharded" and scheduler != "local":
            raise PipelineError(
                "the sharded executor streams through the local pipeline "
                f"only; scheduler {scheduler!r} does not support it"
            )
        if executor in ("process", "sharded"):
            if scheduler == "static":
                raise PipelineError(
                    "the static scheduler is purely modelled and has no "
                    "process executor; use 'local' or 'queue'"
                )
            if workers is None:
                workers = os.cpu_count() or 2
        self.executor = executor
        self.workers = int(workers) if workers is not None else 1
        self.options = options if options is not None else SearchOptions()
        if self.options.mode != "exact" and scheduler != "local":
            raise PipelineError(
                f"tiered mode {self.options.mode!r} runs on the local "
                f"scheduler only; the {scheduler!r} scheduler is a "
                f"modelled heterogeneous split and stays exact"
            )
        self.scheduler = scheduler
        self.metrics = metrics
        self.tracer = tracer
        self.cache = PreprocessCache(cache_capacity, metrics=metrics)
        if scheduler != "local" and (host_model is None or device_model is None):
            from ..devices import XEON_E5_2670_DUAL, XEON_PHI_57XX

            if host_model is None:
                host_model = DevicePerformanceModel(XEON_E5_2670_DUAL)
            if device_model is None:
                device_model = DevicePerformanceModel(XEON_PHI_57XX)
        self.host_model = host_model
        self.device_model = device_model
        self.shard_residues = int(shard_residues)
        self.max_queue_depth = (
            int(max_queue_depth) if max_queue_depth is not None else None
        )
        pool_workers = self.workers if executor == "process" else None
        if scheduler == "local":
            self._pipe = SearchPipeline(
                self.options, metrics=metrics, workers=pool_workers
            )
            if executor == "sharded":
                from ..search.streaming import StreamingSearch

                self._stream = StreamingSearch(
                    self.options, metrics=metrics,
                    workers=self.workers,
                    shard_residues=self.shard_residues,
                )
        elif scheduler == "static":
            self._hybrid = HybridSearchPipeline(
                host_model, device_model, self.options, link=link,
                metrics=metrics,
            )
            self._static_fraction = static_fraction
        else:
            self._queue = WorkQueueScheduler(
                host_model, device_model, self.options,
                link=link, chunks=chunks, static_fraction=static_fraction,
                metrics=metrics, workers=pool_workers,
            )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the process executor's worker pool, if any."""
        pipe = getattr(self, "_pipe", None)
        if pipe is not None:
            pipe.close()
        stream = getattr(self, "_stream", None)
        if stream is not None:
            stream.close()
        queue = getattr(self, "_queue", None)
        if queue is not None:
            queue.close()

    def __enter__(self) -> "SearchService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    @staticmethod
    def _normalize(
        requests: Iterable[SearchRequest | str] | SearchRequest | str,
    ) -> tuple[SearchRequest, ...]:
        """Accept one request, a bare sequence string, or any mix."""
        if isinstance(requests, (SearchRequest, str)):
            requests = [requests]
        out = []
        for k, req in enumerate(requests):
            if isinstance(req, str):
                req = SearchRequest(query=req, name=f"query-{k}")
            out.append(req)
        return tuple(out)

    def _trace_scope(self):
        """Activate this service's tracer, if it has one."""
        return (
            use_tracer(self.tracer) if self.tracer is not None
            else nullcontext()
        )

    def _deadline_targets(self) -> list:
        """Every live executor whose options can carry a deadline."""
        stream = getattr(self, "_stream", None)
        return [
            obj
            for obj in (
                getattr(self, "_pipe", None),
                stream,
                getattr(stream, "_sharded", None),
                getattr(self, "_hybrid", None),
                getattr(self, "_queue", None),
            )
            if obj is not None and hasattr(obj, "options")
        ]

    @contextmanager
    def _deadline_scope(self, deadline):
        """Pin a per-request deadline onto every live executor.

        Executors read :attr:`SearchOptions.deadline` at search time,
        so swapping their (frozen) options object in and back out is
        enough to scope the request's deadline to exactly this call.

        An executor built lazily *during* the scoped call — the sharded
        driver on its first request — is constructed from the
        deadline-bearing options and is not in the entry snapshot, so
        the exit path re-enumerates the executors and strips the scoped
        deadline from any it did not see on entry.  Without that, the
        first deadline-carrying request would pin its (soon expired)
        deadline onto every later request through that executor.
        """
        if deadline is None:
            yield
            return
        targets = self._deadline_targets()
        saved = [(obj, obj.options) for obj in targets]
        for obj in targets:
            obj.options = replace(obj.options, deadline=deadline)
        try:
            yield
        finally:
            entered = {id(obj) for obj, _ in saved}
            for obj, opts in saved:
                obj.options = opts
            for obj in self._deadline_targets():
                if id(obj) not in entered:
                    obj.options = replace(
                        obj.options, deadline=self.options.deadline
                    )

    def _run_one(
        self, req: SearchRequest, database: SequenceDatabase
    ) -> SearchOutcome:
        self.metrics.increment("service.requests")
        with get_tracer().span("service.request") as sp, \
                self.metrics.timer("service.request.seconds").time(), \
                self._deadline_scope(req.deadline):
            if sp:
                sp.set_attributes(
                    request=req.name, scheduler=self.scheduler,
                    database=database.name,
                )
            if self.scheduler == "local":
                if (
                    self.executor == "sharded"
                    and not req.traceback
                    and database.total_residues > self.shard_residues
                ):
                    # Out-of-core route: never preprocess/cache the
                    # whole database, stream it in bounded shards.
                    return self._stream.search_database(
                        req.query, database, query_name=req.name,
                        top_k=req.top_k,
                    )
                # Tiered modes never consume a lane-pack; skip the
                # preprocess cache rather than building an unused one.
                pre = (
                    self.cache.get(database, lanes=self._pipe.lanes)
                    if self.options.mode == "exact" else None
                )
                return self._pipe.search(
                    req.query, database, query_name=req.name,
                    top_k=req.top_k, traceback=req.traceback,
                    preprocessed=pre,
                )
            if self.scheduler == "static":
                return self._hybrid.search(
                    req.query, database, query_name=req.name,
                    top_k=req.top_k,
                    device_fraction=self._static_fraction,
                )
            return self._queue.search(
                req.query, database, query_name=req.name, top_k=req.top_k
            )

    def search(
        self, request: SearchRequest | str, database: SequenceDatabase
    ) -> SearchOutcome:
        """One request through the configured executor."""
        (req,) = self._normalize(request)
        with self._trace_scope():
            return self._run_one(req, database)

    def run(
        self,
        requests: Sequence[SearchRequest | str],
        database: SequenceDatabase,
    ) -> ServiceBatchResult:
        """The whole batch, amortising pre-processing across requests."""
        reqs = self._normalize(requests)
        if not reqs:
            raise PipelineError("the request batch is empty")
        self.metrics.set_gauge("service.queue.depth", float(len(reqs)))
        if (
            self.max_queue_depth is not None
            and len(reqs) > self.max_queue_depth
        ):
            self.metrics.increment("service.load_shed")
            get_tracer().event(
                "service.load_shed", requests=len(reqs),
                max_queue_depth=self.max_queue_depth,
            )
            raise ServiceOverloaded(
                f"batch of {len(reqs)} requests exceeds the admission cap "
                f"of {self.max_queue_depth}; rejected whole (load shed)"
            )
        with self._trace_scope():
            with get_tracer().span("service.batch") as root:
                if root:
                    root.set_attributes(
                        scheduler=self.scheduler, database=database.name,
                        requests=len(reqs),
                    )
                outcomes = tuple(self._run_one(r, database) for r in reqs)
        self.metrics.increment("service.batches")
        return ServiceBatchResult(
            requests=reqs,
            outcomes=outcomes,
            scheduler=self.scheduler,
            database_name=database.name,
            cache_stats=self.cache.stats(),
        )
