"""Protein alphabet handling and sequence encoding.

The library works internally on ``uint8`` numpy arrays of *residue codes*
rather than Python strings: every alignment engine indexes substitution
matrices with these codes, and the SIMD-style engines rely on them being
small dense integers so profile rows can be gathered with a single fancy
index (the numpy analogue of the vector-gather the paper discusses).

The canonical alphabet is the 24-letter NCBI protein alphabet used by the
BLOSUM matrix family::

    A R N D C Q E G H I L K M F P S T W Y V B Z X *

``B`` (Asx), ``Z`` (Glx) and ``X`` (unknown) are ambiguity codes; ``*`` is
the stop/translation-end symbol.  Lower-case input is accepted and folded
to upper case (Swiss-Prot entries are upper case but user input often is
not).  Unknown letters can either raise or be mapped to ``X`` depending on
the chosen :class:`UnknownPolicy`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from .exceptions import AlphabetError, SequenceError

__all__ = [
    "PROTEIN_LETTERS",
    "UnknownPolicy",
    "Alphabet",
    "PROTEIN",
    "DNA",
    "encode",
    "decode",
    "reverse_complement",
]

#: The 24 letters of the canonical protein alphabet, in BLOSUM data order.
PROTEIN_LETTERS = "ARNDCQEGHILKMFPSTWYVBZX*"


class UnknownPolicy(enum.Enum):
    """What to do with a letter outside the alphabet during encoding."""

    #: Raise :class:`~repro.exceptions.AlphabetError`.
    RAISE = "raise"
    #: Replace the letter with the wildcard residue ``X``.
    MAP_TO_X = "map_to_x"


@dataclass(frozen=True)
class Alphabet:
    """An ordered residue alphabet with fast string <-> code translation.

    Parameters
    ----------
    letters:
        The alphabet symbols in matrix order.  Must be unique, single
        characters, upper case.
    wildcard:
        The symbol unknown residues map to under
        :attr:`UnknownPolicy.MAP_TO_X`; must be a member of ``letters``.
    """

    letters: str
    wildcard: str = "X"
    _lut: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(set(self.letters)) != len(self.letters):
            raise AlphabetError(f"duplicate letters in alphabet {self.letters!r}")
        if not self.letters:
            raise AlphabetError("alphabet must contain at least one letter")
        if any(len(c) != 1 for c in self.letters):
            raise AlphabetError("alphabet members must be single characters")
        if self.wildcard not in self.letters:
            raise AlphabetError(
                f"wildcard {self.wildcard!r} is not in alphabet {self.letters!r}"
            )
        # 256-entry lookup table: byte value -> residue code, 255 = invalid.
        lut = np.full(256, 255, dtype=np.uint8)
        for code, letter in enumerate(self.letters):
            lut[ord(letter)] = code
            lut[ord(letter.lower())] = code
        object.__setattr__(self, "_lut", lut)

    @property
    def size(self) -> int:
        """Number of symbols in the alphabet."""
        return len(self.letters)

    @property
    def wildcard_code(self) -> int:
        """Residue code of the wildcard symbol."""
        return self.letters.index(self.wildcard)

    def code_of(self, letter: str) -> int:
        """Return the residue code of a single letter.

        Raises
        ------
        AlphabetError
            If ``letter`` is not a member of the alphabet.
        """
        if len(letter) != 1:
            raise AlphabetError(f"expected a single character, got {letter!r}")
        code = int(self._lut[ord(letter) & 0xFF]) if ord(letter) < 256 else 255
        if code == 255:
            raise AlphabetError(f"letter {letter!r} is not in the alphabet")
        return code

    def encode(
        self,
        sequence: str,
        *,
        unknown: UnknownPolicy = UnknownPolicy.RAISE,
    ) -> np.ndarray:
        """Encode a residue string into a ``uint8`` code array.

        Parameters
        ----------
        sequence:
            Residue letters; lower case is folded to upper case.
        unknown:
            Policy for letters outside the alphabet.

        Returns
        -------
        numpy.ndarray
            ``uint8`` array of residue codes, contiguous.

        Raises
        ------
        SequenceError
            If the sequence is empty.
        AlphabetError
            If an unknown letter is found under :attr:`UnknownPolicy.RAISE`.
        """
        if not sequence:
            raise SequenceError("cannot encode an empty sequence")
        raw = np.frombuffer(sequence.encode("latin-1", "replace"), dtype=np.uint8)
        codes = self._lut[raw]
        bad = codes == 255
        if bad.any():
            if unknown is UnknownPolicy.RAISE:
                pos = int(np.argmax(bad))
                raise AlphabetError(
                    f"unknown residue {sequence[pos]!r} at position {pos}"
                )
            codes = codes.copy()
            codes[bad] = self.wildcard_code
        return np.ascontiguousarray(codes)

    def decode(self, codes: np.ndarray) -> str:
        """Decode a residue-code array back into a string.

        Raises
        ------
        AlphabetError
            If any code is out of range for this alphabet.
        """
        arr = np.asarray(codes)
        if arr.size and int(arr.max(initial=0)) >= self.size:
            raise AlphabetError(
                f"residue code {int(arr.max())} out of range for "
                f"{self.size}-letter alphabet"
            )
        return "".join(self.letters[int(c)] for c in arr)

    def is_valid(self, sequence: str) -> bool:
        """Return True iff every letter of ``sequence`` is in the alphabet."""
        if not sequence:
            return False
        raw = np.frombuffer(sequence.encode("latin-1", "replace"), dtype=np.uint8)
        return bool((self._lut[raw] != 255).all())


#: The canonical protein alphabet instance used throughout the library.
PROTEIN = Alphabet(PROTEIN_LETTERS)

#: Nucleotide alphabet (A, C, G, T plus the N ambiguity code) for the
#: read-mapping workloads the paper's introduction motivates.  Engines,
#: k-mer coders and matrix builders are alphabet-generic; pair this with
#: ``match_mismatch_matrix(..., alphabet=DNA)``.
DNA = Alphabet("ACGTN", wildcard="N")

#: Complement code table for :data:`DNA`: A<->T, C<->G, N->N.
_DNA_COMPLEMENT = np.array([3, 2, 1, 0, 4], dtype=np.uint8)


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Reverse-complement a DNA code array.

    Sequencing reads come off either strand; a mapper (see
    ``examples/read_mapping.py``) tries both orientations.  Accepts
    :data:`DNA` residue codes and returns a fresh contiguous array.

    Raises
    ------
    AlphabetError
        If a code is outside the DNA alphabet.
    """
    arr = np.asarray(codes)
    if arr.size and int(arr.max(initial=0)) >= DNA.size:
        raise AlphabetError(
            f"residue code {int(arr.max())} is not a DNA code"
        )
    return np.ascontiguousarray(_DNA_COMPLEMENT[arr[::-1]])


def encode(sequence: str, *, unknown: UnknownPolicy = UnknownPolicy.RAISE) -> np.ndarray:
    """Encode ``sequence`` with the canonical protein alphabet."""
    return PROTEIN.encode(sequence, unknown=unknown)


def decode(codes: np.ndarray) -> str:
    """Decode residue codes with the canonical protein alphabet."""
    return PROTEIN.decode(codes)
