"""Trace exporters: Chrome trace-event JSON and a flat JSONL span log.

The Chrome export is the trace-event format ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_ load natively: complete events
(``"ph": "X"``) with microsecond timestamps, grouped into two
processes — **wall-clock** (what this Python process actually did, one
track per OS thread) and **virtual-time** (the modelled device timeline
the perf model computed, one track per worker).  Span events ride along
as instant events (``"ph": "i"``) and process/thread names as metadata
events (``"ph": "M"``), so a `repro trace` export opens as a labelled
Gantt chart with zero post-processing.

The JSONL export is one :meth:`~repro.obs.Span.to_dict` record per
line — the grep-able flat log for scripts and log shippers.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from .tracer import Span, TraceCollector

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "write_jsonl",
]

#: Process ids of the two timelines in the Chrome export.
PID_WALL = 1
PID_VIRTUAL = 2


def _as_spans(
    spans: TraceCollector | Iterable[Span],
) -> tuple[Span, ...]:
    if isinstance(spans, TraceCollector):
        return spans.spans()
    return tuple(spans)


def _json_safe(value):
    """Coerce attribute values into something JSON can carry."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _args(span: Span) -> dict:
    args = {k: _json_safe(v) for k, v in span.attributes.items()}
    args["span_id"] = span.span_id
    if span.parent_id is not None:
        args["parent_id"] = span.parent_id
    if span.status != "ok":
        args["status"] = span.status
    return args


def to_chrome_trace(
    spans: TraceCollector | Iterable[Span],
    *,
    metadata: dict | None = None,
) -> dict:
    """Convert spans to a Chrome trace-event JSON object.

    Every finished span becomes a complete event on the wall-clock
    process (timestamps relative to the earliest span, microseconds);
    spans carrying a virtual interval additionally appear on the
    virtual-time process, on a track named after their ``worker``
    attribute (``main`` when unset).  Load the result in
    ``chrome://tracing`` or Perfetto.
    """
    finished = [s for s in _as_spans(spans) if s.finished]
    finished.sort(key=lambda s: (s.start_wall, s.span_id))
    events: list[dict] = [
        {"ph": "M", "pid": PID_WALL, "tid": 0, "name": "process_name",
         "args": {"name": "wall-clock"}},
        {"ph": "M", "pid": PID_VIRTUAL, "tid": 0, "name": "process_name",
         "args": {"name": "virtual-time"}},
    ]
    if not finished:
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": dict(metadata or {}),
        }

    t0 = min(s.start_wall for s in finished)
    # Compact per-thread track ids on the wall-clock process.
    tids: dict[int, int] = {}
    for span in finished:
        tid = tids.setdefault(span.thread_id, len(tids))
        events.append({
            "name": span.name,
            "cat": "span",
            "ph": "X",
            "pid": PID_WALL,
            "tid": tid,
            "ts": (span.start_wall - t0) * 1e6,
            "dur": span.wall_seconds * 1e6,
            "args": _args(span),
        })
        for ev in span.events:
            events.append({
                "name": ev.name,
                "cat": "event",
                "ph": "i",
                "s": "t",
                "pid": PID_WALL,
                "tid": tid,
                "ts": (ev.wall_time - t0) * 1e6,
                "args": {k: _json_safe(v) for k, v in ev.attributes.items()},
            })
    for ident, tid in tids.items():
        events.append({
            "ph": "M", "pid": PID_WALL, "tid": tid, "name": "thread_name",
            "args": {"name": f"thread-{tid}"},
        })

    # Virtual timeline: one track per worker attribute.
    vtids: dict[str, int] = {}
    for span in finished:
        if span.virtual_start is None or span.virtual_end is None:
            continue
        worker = str(span.attributes.get("worker", "main"))
        tid = vtids.setdefault(worker, len(vtids))
        events.append({
            "name": span.name,
            "cat": "virtual",
            "ph": "X",
            "pid": PID_VIRTUAL,
            "tid": tid,
            "ts": span.virtual_start * 1e6,
            "dur": (span.virtual_end - span.virtual_start) * 1e6,
            "args": _args(span),
        })
    for worker, tid in vtids.items():
        events.append({
            "ph": "M", "pid": PID_VIRTUAL, "tid": tid,
            "name": "thread_name", "args": {"name": worker},
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }


def write_chrome_trace(
    spans: TraceCollector | Iterable[Span],
    path,
    *,
    metadata: dict | None = None,
) -> dict:
    """Write the Chrome trace-event export to ``path``; returns it."""
    trace = to_chrome_trace(spans, metadata=metadata)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=None, separators=(",", ":"))
        fh.write("\n")
    return trace


def to_jsonl(spans: TraceCollector | Iterable[Span]) -> str:
    """The flat span log: one JSON object per line, completion order."""
    return "\n".join(
        json.dumps(span.to_dict(), default=str)
        for span in _as_spans(spans)
    )


def write_jsonl(spans: TraceCollector | Iterable[Span], path) -> int:
    """Write the JSONL span log to ``path``; returns the span count."""
    records: Sequence[Span] = _as_spans(spans)
    with open(path, "w", encoding="utf-8") as fh:
        for span in records:
            fh.write(json.dumps(span.to_dict(), default=str))
            fh.write("\n")
    return len(records)
