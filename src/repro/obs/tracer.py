"""Structured tracing: nested spans over wall and virtual time.

The paper's headline numbers (30.4 GCUPS Xeon, 34.9 Phi, 62.6 hybrid)
were only explainable because the authors could *see* where time went —
per-device utilisation, transfer overheads, the idle tail of a bad
static split.  This module is that visibility for the library's whole
request path: a :class:`Tracer` produces nested :class:`Span`\\ s with
wall-clock durations, optional *virtual-time* intervals (the modelled
device timeline the perf model computes), free-form attributes and
point-in-time events, all deposited into a thread-safe
:class:`TraceCollector` for inspection or export
(:mod:`repro.obs.export`).

Tracing is **off by default**: the module-level active tracer is a
:class:`NullTracer` whose spans are a shared falsy singleton — entering
and exiting one allocates nothing, so instrumented hot paths cost a
method call when tracing is disabled (guarded by
``benchmarks/bench_obs_overhead.py``).  Instrumented code follows one
idiom::

    tracer = get_tracer()
    with tracer.span("queue.chunk") as sp:
        if sp:                       # real Span is truthy, null span falsy
            sp.set_attributes(chunk=a.chunk_id, worker=a.worker)
        ...work...

Enable tracing for a region of code with :func:`use_tracer`::

    from repro.obs import Tracer, use_tracer
    tracer = Tracer()
    with use_tracer(tracer):
        pipeline.search(query, db)
    spans = tracer.collector.spans()
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..exceptions import PipelineError

__all__ = [
    "SpanEvent",
    "Span",
    "TraceCollector",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time annotation on a span (fault, retry, cache hit)."""

    name: str
    wall_time: float  # time.perf_counter() at the moment of the event
    attributes: dict = field(default_factory=dict)


class Span:
    """One timed operation of a trace.

    ``start_wall``/``end_wall`` are ``time.perf_counter()`` readings
    (real Python execution).  ``virtual_start``/``virtual_end``, when
    set via :meth:`set_virtual`, carry the *modelled* interval of the
    operation on the paper's hardware — the same virtual clock
    :class:`~repro.devices.trace.ScheduleTrace` renders as a Gantt
    chart.  Exporters can therefore lay the same span tree out on
    either timeline.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "thread_id",
        "start_wall", "end_wall", "virtual_start", "virtual_end",
        "attributes", "events", "status",
    )

    def __init__(
        self, name: str, span_id: int, parent_id: int | None
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = threading.get_ident()
        self.start_wall = 0.0
        self.end_wall: float | None = None
        self.virtual_start: float | None = None
        self.virtual_end: float | None = None
        self.attributes: dict[str, Any] = {}
        self.events: list[SpanEvent] = []
        self.status = "ok"

    # ------------------------------------------------------------------
    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one key/value attribute."""
        self.attributes[key] = value

    def set_attributes(self, **attributes: Any) -> None:
        """Attach several attributes at once."""
        self.attributes.update(attributes)

    def add_event(self, name: str, **attributes: Any) -> None:
        """Record a point-in-time event (fault, retry, cache hit)."""
        self.events.append(
            SpanEvent(name, time.perf_counter(), attributes)
        )

    def set_virtual(self, start: float, end: float) -> None:
        """Attach the modelled (virtual-clock) interval of this span."""
        if end < start:
            raise PipelineError(
                f"virtual interval ends before it starts: [{start}, {end}]"
            )
        self.virtual_start = float(start)
        self.virtual_end = float(end)

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True once the span's context manager has exited."""
        return self.end_wall is not None

    @property
    def wall_seconds(self) -> float:
        """Wall-clock duration (0.0 while still open)."""
        if self.end_wall is None:
            return 0.0
        return self.end_wall - self.start_wall

    @property
    def virtual_seconds(self) -> float | None:
        """Modelled duration, when a virtual interval was attached."""
        if self.virtual_start is None or self.virtual_end is None:
            return None
        return self.virtual_end - self.virtual_start

    def to_dict(self) -> dict:
        """JSON-ready flat record of this span (for the JSONL export)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "wall_seconds": self.wall_seconds,
            "virtual_start": self.virtual_start,
            "virtual_end": self.virtual_end,
            "status": self.status,
            "attributes": dict(self.attributes),
            "events": [
                {"name": e.name, "wall_time": e.wall_time,
                 "attributes": dict(e.attributes)}
                for e in self.events
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.wall_seconds * 1e3:.3f}ms)"
        )


class TraceCollector:
    """Thread-safe sink for finished spans."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    def add(self, span: Span) -> None:
        """Deposit one finished span (called by the tracer)."""
        with self._lock:
            self._spans.append(span)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def spans(self) -> tuple[Span, ...]:
        """Every collected span, in completion order."""
        with self._lock:
            return tuple(self._spans)

    def clear(self) -> None:
        """Drop everything collected so far."""
        with self._lock:
            self._spans.clear()

    # ------------------------------------------------------------------
    def roots(self) -> tuple[Span, ...]:
        """Spans with no parent (one per traced top-level operation)."""
        return tuple(s for s in self.spans() if s.parent_id is None)

    def children(self, span: Span) -> tuple[Span, ...]:
        """Direct children of ``span``, in completion order."""
        return tuple(
            s for s in self.spans() if s.parent_id == span.span_id
        )

    def descendants(self, span: Span) -> tuple[Span, ...]:
        """Every span transitively below ``span``."""
        spans = self.spans()
        by_parent: dict[int, list[Span]] = {}
        for s in spans:
            if s.parent_id is not None:
                by_parent.setdefault(s.parent_id, []).append(s)
        out: list[Span] = []
        frontier = [span.span_id]
        while frontier:
            nxt: list[int] = []
            for pid in frontier:
                for child in by_parent.get(pid, ()):
                    out.append(child)
                    nxt.append(child.span_id)
            frontier = nxt
        return tuple(out)

    def find(self, name: str) -> tuple[Span, ...]:
        """All spans carrying exactly this name."""
        return tuple(s for s in self.spans() if s.name == name)

    def render_tree(self) -> str:
        """Indented text rendering of the span forest (for the CLI)."""
        spans = self.spans()
        by_parent: dict[int | None, list[Span]] = {}
        for s in spans:
            by_parent.setdefault(s.parent_id, []).append(s)
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            extra = ""
            if span.virtual_seconds is not None:
                extra = f"  virtual {span.virtual_seconds:.4f}s"
            if span.events:
                extra += f"  [{len(span.events)} events]"
            lines.append(
                f"{'  ' * depth}{span.name}  "
                f"{span.wall_seconds * 1e3:.2f}ms{extra}"
            )
            for child in by_parent.get(span.span_id, ()):
                walk(child, depth + 1)

        for root in by_parent.get(None, ()):
            walk(root, 0)
        return "\n".join(lines)


class _ActiveSpan:
    """Context manager pairing a span with the tracer's thread stack."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(
        self, tracer: "Tracer", name: str, attributes: dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Span | None = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        stack = tracer._stack()
        parent = stack[-1].span_id if stack else None
        span = Span(self._name, next(tracer._ids), parent)
        if self._attributes:
            span.attributes.update(self._attributes)
        self._span = span
        stack.append(span)
        span.start_wall = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        assert span is not None
        span.end_wall = time.perf_counter()
        if exc_type is not None:
            span.status = f"error:{exc_type.__name__}"
            if exc is not None:
                span.attributes.setdefault("error", str(exc))
        stack = self._tracer._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exit; stay consistent anyway
            stack.remove(span)
        self._tracer.collector.add(span)
        return False


class Tracer:
    """Produces nested spans into a :class:`TraceCollector`.

    Span nesting follows a per-thread stack, so spans opened by code
    called inside a ``with tracer.span(...)`` block become children
    automatically — the service layer's request span contains the
    pipeline's spans contains the offload spans, with no explicit
    parent plumbing.

    Every tracer carries a ``trace_id`` — a short hex string naming the
    whole trace.  It is what crosses process boundaries: a client ships
    it in the ``X-Repro-Trace`` header, the server adopts it for the
    spans it produces on that request, and the two span sets stitch
    into one trace (:mod:`repro.obs.context`).  Pass an explicit
    ``trace_id`` to join an existing trace; the default is a fresh
    random id.
    """

    enabled = True

    def __init__(
        self,
        collector: TraceCollector | None = None,
        *,
        trace_id: str | None = None,
    ) -> None:
        self.collector = collector if collector is not None else TraceCollector()
        self.trace_id = trace_id if trace_id else uuid.uuid4().hex[:16]
        self._local = threading.local()
        self._ids = itertools.count(1)  # next() is atomic in CPython

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def allocate_span_id(self) -> int:
        """Reserve the next span id (used when adopting foreign spans)."""
        return next(self._ids)

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> _ActiveSpan:
        """A context manager opening one nested span."""
        return _ActiveSpan(self, name, attributes)

    def current_span(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def event(self, name: str, **attributes: Any) -> None:
        """Attach an event to the innermost open span (no-op outside)."""
        span = self.current_span()
        if span is not None:
            span.add_event(name, **attributes)


class _NullSpan:
    """Falsy, allocation-free stand-in used when tracing is off."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_attributes(self, **attributes: Any) -> None:
        pass

    def add_event(self, name: str, **attributes: Any) -> None:
        pass

    def set_virtual(self, start: float, end: float) -> None:
        pass


#: The shared span every :class:`NullTracer` hands out.
_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: every operation is a shared no-op.

    ``span()`` returns one process-wide singleton whose ``__enter__`` /
    ``__exit__`` do nothing, so instrumentation costs a method call and
    no allocation when tracing is disabled.
    """

    enabled = False
    collector = None
    trace_id = None

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def current_span(self) -> None:
        return None

    def event(self, name: str, **attributes: Any) -> None:
        pass


#: The process-wide disabled tracer (also the initial active tracer).
NULL_TRACER = NullTracer()

_active: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The currently active tracer (a :class:`NullTracer` by default)."""
    return _active


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` as the active tracer; returns the previous one.

    ``None`` restores the disabled default.  Prefer the
    :func:`use_tracer` context manager, which restores the previous
    tracer automatically.
    """
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Activate ``tracer`` for the enclosed block, then restore."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
