"""Cross-process trace propagation: one trace across client and server.

A remote search is two processes doing one operation, and a trace that
only shows the client half (an opaque multi-millisecond HTTP span) is
useless for the question the paper's whole evaluation revolves around —
*where did the time go?*  This module is the glue that stitches the two
halves back together:

:class:`TraceContext`
    The propagated identity of an in-flight trace — the
    :attr:`~repro.obs.Tracer.trace_id` plus the span id of the caller's
    open span — with a loss-free text encoding for the
    ``X-Repro-Trace`` HTTP header.
:func:`current_context`
    Snapshot the active tracer's context for injection (``None`` when
    tracing is off or no span is open, so the disabled path stays
    allocation-free).
:func:`adopt_spans`
    Graft a peer's exported span tree (``Span.to_dict()`` records that
    rode back on the wire) into a local tracer: span ids are re-issued
    from the local counter, the parent linkage is preserved, the
    foreign roots are parented under the local RPC span, and the
    foreign wall-clock — a different ``perf_counter`` epoch entirely —
    is rebased into the local span's window so the server's work
    renders *inside* the client's call in one Chrome trace.

The header format is deliberately minimal: ``<trace_id>/<span_id>``,
e.g. ``a3f9c2d1b4e8f701/17``.  Malformed values raise
:class:`~repro.exceptions.WireError` — a peer that sends the header at
all is claiming to speak the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..exceptions import WireError
from .tracer import Span, SpanEvent, Tracer, get_tracer

__all__ = [
    "TRACE_HEADER",
    "TraceContext",
    "current_context",
    "adopt_spans",
]

#: HTTP header carrying the trace context; WSGI spells it
#: ``HTTP_X_REPRO_TRACE`` in the environ.
TRACE_HEADER = "X-Repro-Trace"


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of an in-flight trace."""

    trace_id: str
    parent_span_id: int

    def to_header(self) -> str:
        """The ``X-Repro-Trace`` header value (``trace_id/span_id``)."""
        return f"{self.trace_id}/{self.parent_span_id}"

    @classmethod
    def from_header(cls, value: str) -> "TraceContext":
        """Parse a header value; malformed input is a loud WireError."""
        if not isinstance(value, str):
            raise WireError(
                f"trace header must be a string, got {type(value).__name__}"
            )
        trace_id, sep, span_id = value.partition("/")
        if (
            not sep
            or not trace_id
            or not all(c in "0123456789abcdef" for c in trace_id)
            or not span_id.isdigit()
        ):
            raise WireError(
                f"malformed {TRACE_HEADER} header {value!r}; expected "
                "'<hex trace_id>/<span_id>'"
            )
        return cls(trace_id=trace_id, parent_span_id=int(span_id))


def current_context() -> TraceContext | None:
    """The active tracer's context, or ``None`` when not traceable.

    Requires a real (enabled) tracer *and* an open span on this thread:
    the span id is what the callee's spans hang from.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return None
    span = tracer.current_span()
    if span is None:
        return None
    return TraceContext(tracer.trace_id, span.span_id)


def _rebase_offset(
    docs: Sequence[Mapping[str, Any]],
    window: tuple[float, float] | None,
) -> float:
    """Shift that maps the foreign timeline into ``window``.

    The foreign process's ``perf_counter`` epoch is unrelated to ours;
    absolute alignment is impossible without clock sync.  What *is*
    known is causality: everything the server did happened inside the
    client's RPC span.  So the foreign interval is centred in the local
    window (clamped to its start when the server interval is somehow
    longer — timer granularity can do that for microsecond calls).
    """
    if window is None or not docs:
        return 0.0
    t0 = min(d["start_wall"] for d in docs)
    t1 = max(
        (d["end_wall"] if d["end_wall"] is not None else d["start_wall"])
        for d in docs
    )
    lo, hi = window
    slack = max(0.0, ((hi - lo) - (t1 - t0)) / 2.0)
    return lo + slack - t0


def adopt_spans(
    tracer: Tracer,
    span_docs: Sequence[Mapping[str, Any]],
    *,
    parent: Span | None = None,
    window: tuple[float, float] | None = None,
    origin: str = "server",
) -> list[Span]:
    """Graft exported span records into ``tracer``'s collector.

    Parameters
    ----------
    tracer:
        The adopting tracer; every grafted span gets a fresh id from
        its counter (foreign ids would collide with local ones).
    span_docs:
        :meth:`~repro.obs.Span.to_dict` records, any order.
    parent:
        Local span to hang the foreign roots under (typically the RPC
        span that carried the request).  ``None`` leaves them as roots.
    window:
        ``(start, end)`` wall-clock interval (local ``perf_counter``)
        to rebase the foreign timeline into; ``None`` keeps the foreign
        timestamps untouched.
    origin:
        Recorded on every grafted span (``origin=...`` attribute) so
        exports and queries can tell the two halves apart.

    Returns the grafted spans (completion order follows ``span_docs``).
    Each span keeps its original id in the ``remote_span_id``
    attribute, and foreign threads map to fresh negative thread ids so
    the Chrome export lays them out on their own tracks.
    """
    docs = [dict(d) for d in span_docs]
    offset = _rebase_offset(docs, window)
    id_map: dict[int, int] = {
        d["span_id"]: tracer.allocate_span_id() for d in docs
    }
    thread_map: dict[Any, int] = {}
    adopted: list[Span] = []
    for doc in docs:
        old_parent = doc.get("parent_id")
        if old_parent in id_map:
            new_parent = id_map[old_parent]
        else:
            new_parent = parent.span_id if parent is not None else None
        span = Span(doc["name"], id_map[doc["span_id"]], new_parent)
        old_thread = doc.get("thread_id", 0)
        if old_thread not in thread_map:
            thread_map[old_thread] = -(len(thread_map) + 1)
        span.thread_id = thread_map[old_thread]
        span.start_wall = float(doc["start_wall"]) + offset
        end = doc.get("end_wall")
        span.end_wall = None if end is None else float(end) + offset
        if doc.get("virtual_start") is not None:
            span.virtual_start = float(doc["virtual_start"])
            span.virtual_end = float(doc["virtual_end"])
        span.status = doc.get("status", "ok")
        span.attributes.update(doc.get("attributes") or {})
        span.attributes["origin"] = origin
        span.attributes["remote_span_id"] = doc["span_id"]
        for ev in doc.get("events") or ():
            span.events.append(SpanEvent(
                ev["name"],
                float(ev["wall_time"]) + offset,
                dict(ev.get("attributes") or {}),
            ))
        tracer.collector.add(span)
        adopted.append(span)
    return adopted
