"""Observability: structured tracing threaded through the request path.

``repro.obs`` makes every search inspectable: a :class:`Tracer`
produces nested :class:`Span`\\ s (wall-clock *and* modelled
virtual-time durations, attributes, fault/retry events) into a
thread-safe :class:`TraceCollector`; exporters turn the collected tree
into Chrome trace-event JSON (loadable in ``chrome://tracing`` /
Perfetto) or a flat JSONL span log.  Tracing is off by default — the
active tracer is a :class:`NullTracer` whose spans are a shared no-op
singleton, keeping the instrumented hot paths allocation-free.

Typical use::

    from repro.obs import Tracer, use_tracer, write_chrome_trace

    tracer = Tracer()
    with use_tracer(tracer):
        service.run(requests, db)
    write_chrome_trace(tracer.collector, "trace.json")

See DESIGN.md §8 for the span vocabulary and the metric naming
convention this layer shares with :mod:`repro.metrics`.
"""

from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    TraceCollector,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)
from .export import (
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .context import (
    TRACE_HEADER,
    TraceContext,
    adopt_spans,
    current_context,
)

__all__ = [
    "Span",
    "SpanEvent",
    "TraceCollector",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "TRACE_HEADER",
    "TraceContext",
    "adopt_spans",
    "current_context",
]
