"""Worker-process side of the process-parallel backend.

Everything in this module runs inside pool workers.  The database is
broadcast exactly once per worker through :func:`init_worker` (either a
pickled :class:`~repro.parallel.shared.PackedDatabase` or a
shared-memory descriptor that is attached without copying); tasks then
carry only the per-search state — query codes, scoring scheme, engine
configuration, the chunk's group ids — which is tiny next to the
database payload.

The scoring code path is deliberately the same one the serial pipeline
runs: :meth:`InterTaskEngine.score_group` per lane group, exact
:class:`ScanEngine` recompute for saturated lanes, and the checksum
guard (:func:`repro.search.pipeline.guarded_transmit`) when a fault plan
is active.  Fault decisions are a pure function of
``(plan.seed, unit, attempt)`` with ``unit`` being the *global* group
index, so a fault fires (or not) identically whichever worker — or the
serial pipeline itself — executes the group.

Process-level faults (``worker-kill`` / ``worker-hang``) are applied in
:func:`score_chunk` — the pool entry point — *before* any scoring, and
never inside :func:`run_chunk`, the pure scoring body.  The driver runs
:func:`run_chunk` inline to reclaim quarantined poison chunks, so the
inline path replays corruption redo accounting exactly while being
structurally incapable of killing the driver process.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from ..core.intertask import InterTaskEngine, LaneGroup, build_lane_groups
from ..core.scan import ScanEngine
from ..core.vectorized import make_intertask_engine
from ..exceptions import ParallelError, ReproError
from ..faults.injection import FaultInjector, FaultKind, FaultPlan
from ..faults.policy import Deadline
from ..scoring.gaps import GapModel
from ..scoring.matrices import SubstitutionMatrix
from .shared import PackedDatabase, attach_shared_database

__all__ = [
    "EngineConfig",
    "ChunkTask",
    "ChunkResult",
    "init_worker",
    "run_chunk",
    "score_chunk",
    "ping",
]


@dataclass(frozen=True)
class EngineConfig:
    """Inter-task engine construction parameters, picklable.

    ``kernel`` selects the scoring implementation ("python" for the
    SIMD-emulating :class:`InterTaskEngine`, "numpy" for the
    array-vectorised :class:`~repro.core.vectorized.VectorizedEngine`);
    scores are bit-identical either way.
    """

    lanes: int
    profile: str = "sequence"
    block_cols: int | None = None
    saturate_bits: int | None = None
    kernel: str = "python"


@dataclass(frozen=True)
class ChunkTask:
    """One unit of pool work: a slice of the database to score.

    ``kind="groups"`` scores broadcast lane groups ``group_ids`` as-is
    (the plain pipeline's chunking).  ``kind="subset"`` extracts the
    sequences at ``positions`` (sorted-database order) and packs them
    into fresh lane groups at ``engine.lanes`` — the work-queue
    scheduler's arbitrarily-shaped chunks.  ``kind="stream"`` carries
    its own encoded sequences ``seqs`` (one streaming chunk of an
    out-of-core scan — no broadcast database needed) starting at global
    record index ``base_index``; the worker scores it exactly like the
    serial :class:`~repro.search.StreamingSearch` chunk loop does.
    ``fault_unit_base`` offsets the fault-injection unit ids so a chunk
    replays the exact per-unit decisions of its serial counterpart.

    ``attempt`` counts pool *re-submissions* after a lost result (worker
    death, hang heal) — it keys the process-fault draw only, never the
    corruption stream, so redo accounting is identical however many
    times a chunk had to be resent.  ``deadline`` (when set) is checked
    by the worker before scoring starts.
    """

    chunk_id: int
    kind: str
    query: np.ndarray
    matrix: SubstitutionMatrix
    gaps: GapModel
    engine: EngineConfig
    group_ids: tuple[int, ...] = ()
    positions: tuple[int, ...] = ()
    seqs: tuple[np.ndarray, ...] = ()
    base_index: int = 0
    plan: FaultPlan | None = None
    fault_unit_base: int = 0
    submitted_at: float = 0.0
    attempt: int = 0
    deadline: Deadline | None = None


@dataclass(frozen=True)
class ChunkResult:
    """What one chunk sends back: scores plus worker accounting."""

    chunk_id: int
    positions: np.ndarray   # sorted-database positions, parallel to scores
    scores: np.ndarray
    saturated: int
    redone: int
    cells: int
    pid: int
    queue_wait_seconds: float
    compute_seconds: float


#: Per-worker state installed by :func:`init_worker`.
_STATE: dict = {}


def init_worker(payload: tuple[str, object]) -> None:
    """Pool initializer: receive the database broadcast, once.

    ``payload`` is ``("pickle", PackedDatabase)`` — the flat arrays
    arrive pickled with the initializer — or ``("shm", handle)`` — the
    worker maps the owner's shared-memory segments with zero copy — or
    ``("none", None)`` for a streaming pool whose tasks carry their own
    sequences (``kind="stream"``).
    """
    mode, data = payload
    if mode == "shm":
        db = attach_shared_database(data)  # type: ignore[arg-type]
    elif mode == "pickle":
        db = data
        if not isinstance(db, PackedDatabase):
            raise ParallelError(
                f"broadcast payload is {type(data).__name__}, "
                "expected PackedDatabase"
            )
    elif mode == "none":
        db = None
    else:
        raise ParallelError(f"unknown broadcast mode {mode!r}")
    _STATE.clear()
    _STATE["db"] = db
    _STATE["engines"] = {}
    _STATE["pid"] = os.getpid()


def ping() -> int:
    """Liveness probe: confirms the worker initialised, returns its pid."""
    if "db" not in _STATE:
        raise ParallelError("worker has no database broadcast")
    return _STATE["pid"]


def _engine(cfg: EngineConfig, alphabet, engines: dict) -> InterTaskEngine:
    """The engine for this configuration (cached per config in ``engines``)."""
    key = (cfg, alphabet.letters)
    eng = engines.get(key)
    if eng is None:
        eng = make_intertask_engine(
            cfg.kernel,
            alphabet=alphabet,
            lanes=cfg.lanes,
            profile=cfg.profile,
            block_cols=cfg.block_cols,
            saturate_bits=cfg.saturate_bits,
        )
        engines[key] = eng
    return eng


def _score_groups(task: ChunkTask, groups, units, engine, exact):
    """Score lane groups exactly like the serial pipeline's group loop.

    ``groups`` is a list of :class:`LaneGroup`; ``units`` the matching
    fault-injection unit ids.  Returns ``(positions, scores, saturated,
    redone, cells)`` with ``positions`` being each lane's
    ``group.indices`` entry (caller-defined coordinate space).
    """
    from ..search.pipeline import guarded_transmit

    q = task.query
    prepared = engine._prepare(q, task.matrix)
    injector = FaultInjector(task.plan) if task.plan is not None else None
    positions: list[np.ndarray] = []
    scores: list[np.ndarray] = []
    saturated = redone = cells = 0

    for group, unit in zip(groups, units):
        # Saturation count is per *group*, not per compute call: a
        # corruption redo recomputes the same lanes, matching the serial
        # pipeline's assignment (not accumulation) semantics.
        sat_holder = [0]

        def compute(group=group, sat_holder=sat_holder) -> np.ndarray:
            g_scores, g_sat = engine.score_group(
                q, group, task.matrix, task.gaps, _prepared=prepared
            )
            for lane in g_sat:
                seq = np.ascontiguousarray(
                    group.codes[: int(group.lengths[lane]), lane]
                )
                g_scores[lane] = exact.score_pair(
                    q, seq, task.matrix, task.gaps
                ).score
            sat_holder[0] = len(g_sat)
            return g_scores

        if injector is None:
            g_scores = compute()
        else:
            g_scores, redos = guarded_transmit(injector, unit, compute)
            redone += redos
        saturated += sat_holder[0]
        positions.append(np.asarray(group.indices, dtype=np.int64))
        scores.append(np.asarray(g_scores, dtype=np.int64))
        cells += len(q) * int(group.lengths.sum())

    if positions:
        return (
            np.concatenate(positions), np.concatenate(scores),
            saturated, redone, cells,
        )
    empty = np.zeros(0, dtype=np.int64)
    return empty, empty.copy(), saturated, redone, cells


def _score_stream(task: ChunkTask, engine: InterTaskEngine):
    """Score one streaming chunk exactly like the serial streamed scan.

    The whole chunk goes through :meth:`InterTaskEngine.score_batch`
    (saturated lanes recomputed exactly inside, as in the serial path)
    and — under a fault plan — through one checksum-guarded transmit
    whose unit id is the chunk's *global* chunk index
    (``fault_unit_base``), so corruption decisions and redo counts
    replay the serial scan bit for bit.
    """
    from ..search.pipeline import guarded_transmit

    seqs = [np.asarray(s, dtype=np.uint8) for s in task.seqs]
    batch_holder: list = []

    def compute() -> np.ndarray:
        batch = engine.score_batch(task.query, seqs, task.matrix, task.gaps)
        batch_holder.append(batch)
        return batch.scores

    if task.plan is None:
        scores = compute()
        redone = 0
    else:
        injector = FaultInjector(task.plan)
        scores, redone = guarded_transmit(
            injector, task.fault_unit_base, compute
        )
    batch = batch_holder[-1]
    positions = task.base_index + np.arange(len(seqs), dtype=np.int64)
    return (
        positions,
        np.asarray(scores, dtype=np.int64),
        len(batch.saturated),
        redone,
        batch.cells,
    )


def run_chunk(
    task: ChunkTask,
    *,
    db: PackedDatabase | None,
    engines: dict,
    pid: int,
) -> ChunkResult:
    """Score one :class:`ChunkTask` — the pure body, no process faults.

    This is the code path shared by pool workers (via
    :func:`score_chunk`) and the driver's inline reclaim of quarantined
    poison chunks.  Corruption-guard redo accounting (``task.plan``)
    runs identically on both; ``worker-kill`` / ``worker-hang`` faults
    are deliberately *not* applied here.
    """
    started = time.time()
    t0 = time.perf_counter()
    if db is None and task.kind != "stream":
        raise ParallelError(
            f"worker has no database broadcast (required by "
            f"kind={task.kind!r} tasks)"
        )
    alphabet = task.matrix.alphabet
    engine = _engine(task.engine, alphabet, engines)
    exact = ScanEngine(alphabet)

    if task.kind == "stream":
        positions, scores, saturated, redone, cells = _score_stream(
            task, engine
        )
    elif task.kind == "groups":
        groups = [db.group(g) for g in task.group_ids]
        units = list(task.group_ids)
        positions, scores, saturated, redone, cells = _score_groups(
            task, groups, units, engine, exact
        )
    elif task.kind == "subset":
        seqs = [db.sequence(p) for p in task.positions]
        packed = build_lane_groups(seqs, task.engine.lanes)
        groups = []
        # Rebase each group's indices from chunk-local to sorted-database
        # positions so the merge is coordinate-free for the caller.
        pos = np.asarray(task.positions, dtype=np.int64)
        for grp in packed:
            groups.append(LaneGroup(
                codes=grp.codes,
                lengths=grp.lengths,
                indices=pos[grp.indices],
            ))
        units = [task.fault_unit_base + g for g in range(len(groups))]
        positions, scores, saturated, redone, cells = _score_groups(
            task, groups, units, engine, exact
        )
    else:
        raise ParallelError(f"unknown chunk kind {task.kind!r}")

    wait = max(0.0, started - task.submitted_at) if task.submitted_at else 0.0
    return ChunkResult(
        chunk_id=task.chunk_id,
        positions=positions,
        scores=scores,
        saturated=saturated,
        redone=redone,
        cells=cells,
        pid=pid,
        queue_wait_seconds=wait,
        compute_seconds=time.perf_counter() - t0,
    )


def _apply_process_faults(task: ChunkTask) -> None:
    """Fire the chunk's process-level fault, if its plan says so.

    ``worker-kill`` exits the process without cleanup (``os._exit``) —
    exactly what a segfaulting or OOM-killed worker looks like to the
    pool.  ``worker-hang`` sleeps through ``plan.worker_hang_seconds``;
    a driver with a shorter ``chunk_timeout`` declares the worker dead
    and heals, one without simply sees a straggler.
    """
    plan = task.plan
    if plan is None or not plan.has_process_faults:
        return
    decision = FaultInjector(plan).process_decision(
        task.chunk_id, task.attempt
    )
    if decision.kind is FaultKind.WORKER_KILL:
        os._exit(17)
    if decision.kind is FaultKind.WORKER_HANG:
        time.sleep(plan.worker_hang_seconds)


def score_chunk(task: ChunkTask) -> ChunkResult:
    """Pool entry point: deadline check, process faults, then score.

    Non-library exceptions are wrapped into
    :class:`~repro.exceptions.ParallelError` *in the worker*, with the
    worker pid and chunk id in the message — ``__cause__`` chains do not
    survive the result pickle, so the context must ride the message
    itself.
    """
    if "db" not in _STATE:
        raise ParallelError("worker was not initialised")
    if task.deadline is not None:
        task.deadline.check(f"chunk {task.chunk_id}")
    _apply_process_faults(task)
    try:
        return run_chunk(
            task,
            db=_STATE.get("db"),
            engines=_STATE["engines"],
            pid=_STATE["pid"],
        )
    except ReproError:
        raise
    except Exception as exc:
        raise ParallelError(
            f"chunk {task.chunk_id} failed in worker pid {os.getpid()} "
            f"({type(exc).__name__}: {exc})"
        ) from exc
