"""Shareable flat views of a pre-processed database.

A :class:`~repro.db.preprocess.PreprocessedDatabase` is a Python list of
per-group ``(n_max, L)`` arrays — convenient for the serial pipeline,
wasteful to ship to worker processes one task at a time.  This module
re-expresses the same data as a handful of flat numpy arrays
(:class:`PackedDatabase`) that can be broadcast to a worker pool exactly
once: either pickled into each worker's initializer (cheap — a single
contiguous buffer per field) or placed in
:mod:`multiprocessing.shared_memory` segments that every worker maps
without any copy at all (:class:`SharedDatabaseBroadcast`).

Workers reconstruct zero-copy :class:`~repro.core.intertask.LaneGroup`
views from the flat arrays, so the scoring kernels are byte-for-byte the
same computation the serial pipeline performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..core.intertask import LaneGroup
from ..exceptions import ParallelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..db.preprocess import PreprocessedDatabase

__all__ = [
    "PackedDatabase",
    "SharedArrayHandle",
    "SharedDatabaseBroadcast",
    "attach_shared_database",
]

#: The array fields of a :class:`PackedDatabase`, in broadcast order.
_ARRAY_FIELDS = (
    "codes", "lengths", "indices",
    "group_offsets", "lane_offsets", "group_nmax",
)


@dataclass
class PackedDatabase:
    """A lane-packed database flattened into shareable arrays.

    Attributes
    ----------
    lanes:
        Lane width the groups were packed at.
    n_sequences:
        Number of database sequences (sum of real lanes).
    codes:
        1-D ``uint8``: every group's ``(n_max, L)`` code plane,
        C-order flattened and concatenated.
    lengths, indices:
        1-D ``int64``: per-lane true lengths and sorted-database
        positions, concatenated across groups.
    group_offsets:
        ``(G + 1,)`` offsets into :attr:`codes` per group.
    lane_offsets:
        ``(G + 1,)`` offsets into :attr:`lengths`/:attr:`indices`.
    group_nmax:
        ``(G,)`` padded common length of each group.
    """

    lanes: int
    n_sequences: int
    codes: np.ndarray
    lengths: np.ndarray
    indices: np.ndarray
    group_offsets: np.ndarray
    lane_offsets: np.ndarray
    group_nmax: np.ndarray
    #: Keeps attached SharedMemory segments alive for view-backed
    #: instances; never pickled with the data (see ``__getstate__``).
    _keepalive: tuple = field(default=(), repr=False, compare=False)

    # ------------------------------------------------------------------
    @classmethod
    def from_preprocessed(cls, pre: "PreprocessedDatabase") -> "PackedDatabase":
        """Flatten a pre-processed database into shareable arrays."""
        groups = pre.groups
        group_offsets = np.zeros(len(groups) + 1, dtype=np.int64)
        lane_offsets = np.zeros(len(groups) + 1, dtype=np.int64)
        group_nmax = np.zeros(len(groups), dtype=np.int64)
        for g, grp in enumerate(groups):
            group_offsets[g + 1] = group_offsets[g] + grp.codes.size
            lane_offsets[g + 1] = lane_offsets[g] + grp.lanes
            group_nmax[g] = grp.n_max
        codes = np.empty(int(group_offsets[-1]), dtype=np.uint8)
        lengths = np.empty(int(lane_offsets[-1]), dtype=np.int64)
        indices = np.empty(int(lane_offsets[-1]), dtype=np.int64)
        for g, grp in enumerate(groups):
            codes[group_offsets[g]:group_offsets[g + 1]] = (
                np.ascontiguousarray(grp.codes).reshape(-1)
            )
            lengths[lane_offsets[g]:lane_offsets[g + 1]] = grp.lengths
            indices[lane_offsets[g]:lane_offsets[g + 1]] = grp.indices
        return cls(
            lanes=pre.lanes,
            n_sequences=len(pre.database),
            codes=codes,
            lengths=lengths,
            indices=indices,
            group_offsets=group_offsets,
            lane_offsets=lane_offsets,
            group_nmax=group_nmax,
        )

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        """Number of lane groups."""
        return int(self.group_nmax.shape[0])

    def group(self, g: int) -> LaneGroup:
        """Zero-copy :class:`LaneGroup` view of group ``g``."""
        if not 0 <= g < self.n_groups:
            raise ParallelError(f"group {g} out of range [0, {self.n_groups})")
        lanes = int(self.lane_offsets[g + 1] - self.lane_offsets[g])
        n_max = int(self.group_nmax[g])
        codes = self.codes[
            self.group_offsets[g]:self.group_offsets[g + 1]
        ].reshape(n_max, lanes)
        return LaneGroup(
            codes=codes,
            lengths=self.lengths[self.lane_offsets[g]:self.lane_offsets[g + 1]],
            indices=self.indices[self.lane_offsets[g]:self.lane_offsets[g + 1]],
        )

    def sequence(self, sorted_pos: int) -> np.ndarray:
        """Unpadded codes of the sequence at ``sorted_pos`` (sorted order)."""
        if not 0 <= sorted_pos < self.n_sequences:
            raise ParallelError(
                f"sequence {sorted_pos} out of range [0, {self.n_sequences})"
            )
        # Groups pack consecutive sorted positions; locate by lane offset.
        g = int(np.searchsorted(self.lane_offsets, sorted_pos, side="right")) - 1
        lane = sorted_pos - int(self.lane_offsets[g])
        grp = self.group(g)
        return np.ascontiguousarray(grp.codes[: int(grp.lengths[lane]), lane])

    def arrays(self) -> dict[str, np.ndarray]:
        """The flat array fields, by name (broadcast payload)."""
        return {name: getattr(self, name) for name in _ARRAY_FIELDS}

    def nbytes(self) -> int:
        """Total payload size of the flat arrays."""
        return int(sum(a.nbytes for a in self.arrays().values()))

    def __getstate__(self) -> dict:
        # Shared-memory keepalives must never ride along a pickle: the
        # receiving process attaches its own segments (or gets plain
        # copies).  Materialise views so the payload is self-contained.
        state = {
            "lanes": self.lanes,
            "n_sequences": self.n_sequences,
            "_keepalive": (),
        }
        for name in _ARRAY_FIELDS:
            state[name] = np.ascontiguousarray(getattr(self, name))
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable descriptor of one shared-memory backed array."""

    shm_name: str
    shape: tuple[int, ...]
    dtype: str


class SharedDatabaseBroadcast:
    """Owner side of a shared-memory database broadcast.

    Copies a :class:`PackedDatabase`'s flat arrays into
    :class:`multiprocessing.shared_memory.SharedMemory` segments once;
    :meth:`handle` returns a tiny picklable descriptor workers attach to
    with :func:`attach_shared_database` — no per-worker copy of the
    database payload at all.  The creating process must keep this object
    alive until the pool is done, then :meth:`close` (which unlinks).
    """

    def __init__(self, packed: PackedDatabase) -> None:
        from multiprocessing import shared_memory

        self._segments: list = []
        self._handles: dict[str, SharedArrayHandle] = {}
        self.lanes = packed.lanes
        self.n_sequences = packed.n_sequences
        try:
            for name, arr in packed.arrays().items():
                arr = np.ascontiguousarray(arr)
                shm = shared_memory.SharedMemory(
                    create=True, size=max(arr.nbytes, 1)
                )
                self._segments.append(shm)
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
                self._handles[name] = SharedArrayHandle(
                    shm_name=shm.name,
                    shape=tuple(arr.shape),
                    dtype=arr.dtype.str,
                )
        except Exception:
            self.close()
            raise

    def handle(self) -> dict:
        """The picklable broadcast descriptor workers attach to."""
        return {
            "lanes": self.lanes,
            "n_sequences": self.n_sequences,
            "arrays": dict(self._handles),
        }

    def close(self) -> None:
        """Release and unlink every segment (idempotent)."""
        segments, self._segments = self._segments, []
        for shm in segments:
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass


def attach_shared_database(handle: dict) -> PackedDatabase:
    """Worker-side attach: map the broadcast segments as array views.

    The returned :class:`PackedDatabase` keeps the mapped segments alive
    through ``_keepalive``.  Attaching deliberately bypasses the
    resource tracker: the broadcasting process owns the segments'
    lifetime and unlinks them on pool shutdown; a worker registering
    (and later auto-unlinking) them would tear the database down under
    its siblings — and, with a fork-shared tracker, clobber the owner's
    own registration.
    """
    from multiprocessing import resource_tracker, shared_memory

    arrays: dict[str, np.ndarray] = {}
    segments = []
    original_register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        for name, h in handle["arrays"].items():
            shm = shared_memory.SharedMemory(name=h.shm_name)
            segments.append(shm)
            arrays[name] = np.ndarray(
                h.shape, dtype=np.dtype(h.dtype), buffer=shm.buf
            )
    finally:
        resource_tracker.register = original_register
    return PackedDatabase(
        lanes=handle["lanes"],
        n_sequences=handle["n_sequences"],
        _keepalive=tuple(segments),
        **arrays,
    )
