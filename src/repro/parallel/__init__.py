"""Real process-parallel execution of database searches.

Where :class:`~repro.devices.openmp.ParallelFor` *simulates* the
paper's OpenMP schedule in virtual time on one OS process, this package
executes the same inter-task chunk parallelism on real cores: a
persistent worker pool (:class:`ProcessPoolBackend`) receives the
pre-processed database once per worker — pickled into the initializer
or mapped as zero-copy shared-memory views — and drains chunked
lane-group tasks whose merged scores are bit-identical to the serial
pipeline's.

Entry points a caller normally uses instead of this package directly:
``SearchPipeline(workers=N)``, ``SearchService(executor="process")``,
``WorkQueueScheduler(workers=N)``, and the CLI's ``--workers`` flag.
"""

from .backend import ProcessPoolBackend, WorkerStats, default_chunk_size
from .shared import PackedDatabase, SharedDatabaseBroadcast
from .worker import ChunkResult, ChunkTask, EngineConfig

__all__ = [
    "ProcessPoolBackend",
    "WorkerStats",
    "default_chunk_size",
    "PackedDatabase",
    "SharedDatabaseBroadcast",
    "ChunkResult",
    "ChunkTask",
    "EngineConfig",
]
