"""The process-parallel execution backend: a persistent worker pool.

The paper's throughput comes from keeping many real cores fed with
independent database chunks (SWIPE-style inter-task parallelism).  The
simulated :class:`~repro.devices.openmp.ParallelFor` models that
schedule in virtual time on one OS process; this backend runs it for
real: a :class:`concurrent.futures.ProcessPoolExecutor` whose workers
receive the pre-processed database exactly once (init-time broadcast,
or zero-copy :mod:`multiprocessing.shared_memory` views), then drain
chunked group tasks whose arguments are tiny.

Guarantees:

* **Score identity** — workers run the very same kernels as the serial
  pipeline over the very same lane groups; the merge scatters disjoint
  index ranges, so results are bit-identical whatever the worker count,
  chunk size, or completion order.
* **Fault determinism** — fault-injection units are global group ids
  and decisions are pure functions of ``(seed, unit, attempt)``, so a
  plan misbehaves identically under any placement.
* **Graceful degradation** — pool startup is verified with a ping; any
  failure raises :class:`~repro.exceptions.ParallelError`, which the
  pipeline converts into an in-process fallback.
* **Self-healing** — a worker death mid-search (``BrokenProcessPool``,
  or a hang detected by ``chunk_timeout``) rebuilds the pool,
  re-broadcasts the database if the shared segments died with it, and
  re-submits only the in-flight chunks whose results were lost.  The
  heal budget (``max_heals``) bounds how many rebuilds one pool will
  attempt; a chunk that keeps killing workers is quarantined after
  ``poison_threshold`` losses and reclaimed *inline* in the driver
  (where process faults are never applied), so results — including
  corruption-redo accounting — stay bit-identical to serial.
* **Deadlines** — :meth:`collect` bounds every wait by the caller's
  :class:`~repro.faults.Deadline`; on expiry it cancels the outstanding
  futures and raises :class:`~repro.exceptions.DeadlineExceeded` for
  the streaming layer to convert into a partial result.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace

import numpy as np

from ..db.preprocess import PreprocessedDatabase
from ..exceptions import DeadlineExceeded, ParallelError
from ..faults.policy import Deadline
from ..metrics.counters import MetricsRegistry
from ..obs.tracer import get_tracer
from .shared import PackedDatabase, SharedDatabaseBroadcast
from .worker import (
    ChunkResult,
    ChunkTask,
    EngineConfig,
    init_worker,
    ping,
    run_chunk,
    score_chunk,
)

__all__ = ["WorkerStats", "ProcessPoolBackend", "default_chunk_size"]

#: Ceiling on how long pool startup verification may take.
_STARTUP_TIMEOUT_SECONDS = 60.0

#: How long :meth:`close` waits for a terminated worker to reap.
_REAP_TIMEOUT_SECONDS = 5.0


def default_chunk_size(n_groups: int, workers: int) -> int:
    """Groups per task when the caller does not pin a chunk size.

    Four chunks per worker balances scheduling slack (stragglers can be
    absorbed) against per-task dispatch overhead — the same trade the
    paper's dynamic OpenMP schedule makes with its chunk parameter.
    """
    return max(1, -(-n_groups // max(1, workers * 4)))


@dataclass
class WorkerStats:
    """Per-worker accounting aggregated from chunk results."""

    pid: int
    tasks: int = 0
    cells: int = 0
    queue_wait_seconds: float = 0.0
    compute_seconds: float = 0.0


class ProcessPoolBackend:
    """Persistent worker pool bound to one broadcast database.

    Parameters
    ----------
    preprocessed:
        The lane-packed database every worker receives once.  Accepts a
        :class:`PreprocessedDatabase`, an already-flattened
        :class:`PackedDatabase`, or ``None`` for a *streaming* pool:
        workers then hold no resident database and only accept
        ``kind="stream"`` tasks that carry their own sequences (the
        sharded out-of-core scan).
    workers:
        Pool size (real OS processes).
    chunk_size:
        Lane groups per task; ``None`` picks
        :func:`default_chunk_size`.  The merge is chunking-invariant.
    broadcast:
        ``"shm"`` — shared-memory views, zero copies per worker;
        ``"pickle"`` — the flat arrays ride the worker initializer once;
        ``"auto"`` (default) — try shared memory, fall back to pickle.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        where available (cheapest startup) and falls back to the
        platform default otherwise.
    max_heals:
        How many pool rebuilds (worker deaths or hang timeouts) this
        backend will absorb over its lifetime before giving up with
        :class:`~repro.exceptions.ParallelError`.
    poison_threshold:
        After this many lost results *without an intervening
        completion*, a chunk is declared poison: it is quarantined
        (recorded in :attr:`quarantined`) and reclaimed inline in the
        driver instead of being retried forever.  A heal charges every
        in-flight chunk (the pool cannot tell culprit from bystander),
        but a chunk's loss counter resets once it completes.
    chunk_timeout:
        Hang watchdog for :meth:`collect`: if no in-flight chunk
        completes within this many seconds, the pool is declared hung
        and healed.  ``None`` (default) disables hang detection; set it
        comfortably above the worst-case single-chunk compute time.
    metrics:
        Optional registry receiving ``parallel.*`` counters, queue-wait
        observations, per-worker stats, and ``pool.heal.*`` /
        ``deadline.*`` resilience counters.
    """

    def __init__(
        self,
        preprocessed: PreprocessedDatabase | PackedDatabase | None,
        *,
        workers: int,
        chunk_size: int | None = None,
        broadcast: str = "auto",
        start_method: str | None = None,
        max_heals: int = 8,
        poison_threshold: int = 3,
        chunk_timeout: float | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if workers < 1:
            raise ParallelError(f"worker count must be positive, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ParallelError(
                f"chunk size must be positive, got {chunk_size}"
            )
        if broadcast not in ("auto", "shm", "pickle"):
            raise ParallelError(
                f"broadcast must be 'auto', 'shm' or 'pickle', got {broadcast!r}"
            )
        if max_heals < 0:
            raise ParallelError(
                f"heal budget must be non-negative, got {max_heals}"
            )
        if poison_threshold < 1:
            raise ParallelError(
                f"poison threshold must be >= 1, got {poison_threshold}"
            )
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ParallelError(
                f"chunk timeout must be positive, got {chunk_timeout}"
            )
        if preprocessed is None:
            packed = None
        elif isinstance(preprocessed, PackedDatabase):
            packed = preprocessed
        else:
            packed = PackedDatabase.from_preprocessed(preprocessed)
        self.packed = packed
        self.workers = workers
        self.chunk_size = chunk_size
        self.max_heals = max_heals
        self.poison_threshold = poison_threshold
        self.chunk_timeout = chunk_timeout
        self.metrics = metrics
        self.worker_stats: dict[int, WorkerStats] = {}
        self.heals = 0
        self.quarantined: list[int] = []
        self._broadcast_pref = broadcast
        self._pool: ProcessPoolExecutor | None = None
        self._broadcast_owner: SharedDatabaseBroadcast | None = None
        self._closed = False
        self._generation = 0
        self._inflight: dict = {}          # future -> (task, generation)
        self._chunk_failures: dict[int, int] = {}  # chunk_id -> lost results
        self._driver_engines: dict = {}    # engine cache for inline reclaim

        self._payload, self.broadcast_mode = self._build_payload(
            packed, broadcast
        )
        try:
            self._ctx = self._context(start_method)
            self._pool = self._spawn_pool()
        except ParallelError:
            self.close()
            raise
        except Exception as exc:
            self.close()
            raise ParallelError(
                f"worker pool failed to start ({type(exc).__name__}: {exc})"
            ) from exc
        if self.metrics is not None:
            self.metrics.set_gauge("parallel.workers", float(workers))
            if packed is not None:
                self.metrics.increment("parallel.broadcasts")
                self.metrics.set_gauge(
                    "parallel.broadcast.bytes", float(packed.nbytes())
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _context(start_method: str | None):
        if start_method is not None:
            return multiprocessing.get_context(start_method)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    def _build_payload(
        self, packed: PackedDatabase | None, broadcast: str
    ) -> tuple[tuple[str, object], str]:
        if packed is None:
            return ("none", None), "none"
        if broadcast in ("auto", "shm"):
            try:
                self._broadcast_owner = SharedDatabaseBroadcast(packed)
                return ("shm", self._broadcast_owner.handle()), "shm"
            except Exception:
                if broadcast == "shm":
                    raise
                self._broadcast_owner = None
        return ("pickle", packed), "pickle"

    def _spawn_pool(self) -> ProcessPoolExecutor:
        """Start a pool on the current payload; ping-verify it."""
        pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._ctx,
            initializer=init_worker,
            initargs=(self._payload,),
        )
        # Force worker startup now: a broken initializer (or an
        # unpicklable payload) must surface here — where the caller
        # can fall back to in-process execution — not mid-search.
        try:
            pool.submit(ping).result(timeout=_STARTUP_TIMEOUT_SECONDS)
        except Exception:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        return pool

    def _terminate_pool(self, pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting on hung or dead workers.

        There is no public API for the executor's worker handles, so
        termination walks the private ``_processes`` map.  If a future
        CPython renames it, fall back to a plain non-blocking shutdown
        and record the degradation (``pool.terminate.opaque`` counter
        and tracer event) — hung workers may then outlive the pool, but
        never silently.
        """
        proc_map = getattr(pool, "_processes", None)
        if proc_map is None:
            if self.metrics is not None:
                self.metrics.increment("pool.terminate.opaque")
            get_tracer().event(
                "pool.terminate.opaque",
                reason="ProcessPoolExecutor._processes is unavailable",
            )
            pool.shutdown(wait=False, cancel_futures=True)
            return
        procs = [p for p in proc_map.values() if p]
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=_REAP_TIMEOUT_SECONDS)

    # ------------------------------------------------------------------
    # Self-healing
    # ------------------------------------------------------------------
    def _heal(self, reason: str) -> None:
        """Replace the broken pool with a fresh, ping-verified one.

        Only the pool is rebuilt; results already harvested and the
        broadcast stay.  If the fresh pool cannot start — the shared
        segments may have died with the workers — the broadcast is
        rebuilt once and the spawn retried ("re-broadcast if needed").
        Raises :class:`~repro.exceptions.ParallelError` once the heal
        budget is spent.
        """
        self.heals += 1
        if self.metrics is not None:
            self.metrics.increment("pool.heal.count")
        get_tracer().event("pool.heal", reason=reason, heal=self.heals)
        if self.heals > self.max_heals:
            raise ParallelError(
                f"worker pool heal budget exhausted after "
                f"{self.max_heals} heals (last reason: {reason})"
            )
        old, self._pool = self._pool, None
        if old is not None:
            self._terminate_pool(old)
        # Futures of the dead pool can no longer produce results.
        self._generation += 1
        try:
            self._pool = self._spawn_pool()
        except Exception:
            owner, self._broadcast_owner = self._broadcast_owner, None
            if owner is not None:
                try:
                    owner.close()
                except Exception:
                    pass
            self._payload, self.broadcast_mode = self._build_payload(
                self.packed, self._broadcast_pref
            )
            if self.metrics is not None:
                self.metrics.increment("pool.heal.rebroadcasts")
            try:
                self._pool = self._spawn_pool()
            except Exception as exc:
                raise ParallelError(
                    f"worker pool failed to heal after {reason} "
                    f"({type(exc).__name__}: {exc})"
                ) from exc

    def _redo(self, task: ChunkTask):
        """Re-run a chunk whose result was lost with its worker.

        Returns a fresh future — or, once the chunk has crossed
        ``poison_threshold`` losses, a :class:`ChunkResult` computed
        *inline* in the driver: a poison chunk keeps killing whatever
        worker touches it, so the only safe executor is the one process
        whose fault hooks never fire.

        Attribution caveat: a heal loses *every* in-flight chunk, so a
        hang or worker death charges innocent chunks that merely shared
        the pool with the culprit.  The counter is therefore reset the
        moment a chunk completes (see :meth:`collect`) — only a chunk
        that keeps failing without ever completing accumulates toward
        quarantine.
        """
        failures = self._chunk_failures.get(task.chunk_id, 0) + 1
        self._chunk_failures[task.chunk_id] = failures
        if self.metrics is not None:
            self.metrics.increment("pool.heal.resubmitted")
        if failures >= self.poison_threshold:
            self.quarantined.append(task.chunk_id)
            if self.metrics is not None:
                self.metrics.increment("pool.heal.quarantined")
            get_tracer().event(
                "pool.quarantine", chunk=task.chunk_id, failures=failures
            )
            if task.deadline is not None:
                task.deadline.check(f"quarantined chunk {task.chunk_id}")
            return run_chunk(
                replace(task, submitted_at=time.time()),
                db=self.packed,
                engines=self._driver_engines,
                pid=os.getpid(),
            )
        return self._submit_one(replace(task, attempt=task.attempt + 1))

    def _cancel_pending(self, pending) -> None:
        for fut in pending:
            fut.cancel()
            self._inflight.pop(fut, None)

    def cancel(self, futures) -> None:
        """Abandon outstanding futures (deadline expiry, aborted scan)."""
        self._cancel_pending(list(futures))

    # ------------------------------------------------------------------
    def _require_db(self) -> PackedDatabase:
        if self.packed is None:
            raise ParallelError(
                "this pool has no broadcast database (it was started for "
                "streaming tasks only)"
            )
        return self.packed

    @property
    def n_groups(self) -> int:
        """Lane groups available in the broadcast database."""
        return self._require_db().n_groups

    def group_chunks(self, chunk_size: int | None = None) -> list[tuple[int, ...]]:
        """Deterministic chunking of the group ids into task-sized runs."""
        size = chunk_size or self.chunk_size or default_chunk_size(
            self.n_groups, self.workers
        )
        ids = range(self.n_groups)
        return [tuple(ids[k:k + size]) for k in range(0, self.n_groups, size)]

    def _submit_one(self, task: ChunkTask):
        """Submit one task, healing the pool if submission finds it dead."""
        task = replace(task, submitted_at=time.time())
        while True:
            if self._pool is None:
                raise ParallelError("worker pool is closed")
            try:
                fut = self._pool.submit(score_chunk, task)
            except BrokenProcessPool:
                self._heal("broken pool on submit")
                continue
            except ParallelError:
                raise
            except Exception as exc:
                raise ParallelError(
                    f"parallel task submission failed "
                    f"({type(exc).__name__}: {exc})"
                ) from exc
            self._inflight[fut] = (task, self._generation)
            return fut

    def submit_tasks_async(self, tasks: list[ChunkTask]):
        """Enqueue chunk tasks; return their futures without waiting.

        The driver of the sharded out-of-core scan uses this to keep
        the workers busy on shard *k* while it reads and encodes shard
        *k + 1* (double buffering); pass the futures to
        :meth:`collect` to harvest results.
        """
        if self._pool is None:
            raise ParallelError("worker pool is closed")
        return [self._submit_one(task) for task in tasks]

    def collect(
        self, futures, *, deadline: Deadline | None = None
    ) -> list[ChunkResult]:
        """Wait for futures from :meth:`submit_tasks_async`, in order.

        This is the resilience core: worker deaths
        (``BrokenProcessPool``) trigger a heal and the re-submission of
        exactly the chunks whose results were lost; a silent pool
        (nothing completes within ``chunk_timeout``) is declared hung
        and healed the same way; a chunk that keeps killing workers is
        quarantined and reclaimed inline.  An expired ``deadline``
        cancels everything still outstanding and raises
        :class:`~repro.exceptions.DeadlineExceeded`.
        """
        order: list[int] = []
        pending = set()
        for fut in futures:
            entry = self._inflight.get(fut)
            if entry is None:
                raise ParallelError(
                    "collect() was passed a future this pool does not own"
                )
            order.append(entry[0].chunk_id)
            pending.add(fut)
        results: dict[int, ChunkResult] = {}

        def absorb(redone) -> None:
            # _redo yields either a replacement future or an inline
            # result for a quarantined chunk.
            if isinstance(redone, ChunkResult):
                results[redone.chunk_id] = redone
            else:
                pending.add(redone)

        try:
            while pending:
                if deadline is not None:
                    deadline.check("parallel chunk collection")
                timeout = self.chunk_timeout
                if deadline is not None:
                    remaining = deadline.remaining()
                    timeout = (
                        remaining if timeout is None
                        else min(timeout, remaining)
                    )
                t0 = time.perf_counter()
                done, _ = futures_wait(
                    pending, timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    waited = time.perf_counter() - t0
                    if (
                        self.chunk_timeout is not None
                        and waited >= self.chunk_timeout - 1e-3
                        and (deadline is None or not deadline.expired)
                    ):
                        # Nothing finished inside the watchdog window:
                        # the pool is hung.  Everything in flight is
                        # lost; heal once and redo the lot.
                        lost = [
                            self._inflight.pop(f)[0]
                            for f in pending if f in self._inflight
                        ]
                        for fut in pending:
                            fut.cancel()
                        pending.clear()
                        self._heal("chunk timeout (hung worker)")
                        for task in lost:
                            absorb(self._redo(task))
                    continue
                for fut in done:
                    pending.discard(fut)
                    task, generation = self._inflight.pop(
                        fut, (None, None)
                    )
                    try:
                        res = fut.result()
                    except BrokenProcessPool:
                        if generation == self._generation:
                            self._heal("worker death")
                        if task is not None:
                            absorb(self._redo(task))
                    else:
                        results[res.chunk_id] = res
                        # A completed chunk is proven innocent: losses
                        # it was charged while co-resident with a hung
                        # or crashing chunk no longer count toward
                        # quarantine.
                        self._chunk_failures.pop(res.chunk_id, None)
        except DeadlineExceeded:
            self._cancel_pending(pending)
            if self.metrics is not None:
                self.metrics.increment("deadline.pool.expired")
            get_tracer().event(
                "deadline.expired", where="pool.collect",
                outstanding=len(pending),
            )
            raise
        except ParallelError:
            self._cancel_pending(pending)
            raise
        except Exception as exc:
            self._cancel_pending(pending)
            raise ParallelError(
                f"parallel chunk execution failed "
                f"({type(exc).__name__}: {exc})"
            ) from exc

        ordered = [results[chunk_id] for chunk_id in order]
        self._observe(ordered)
        return ordered

    def submit_tasks(
        self, tasks: list[ChunkTask], *, deadline: Deadline | None = None
    ) -> list[ChunkResult]:
        """Run chunk tasks on the pool; results in task order.

        The merge downstream scatters disjoint positions, so result
        order does not affect scores — task order is kept purely so the
        accounting (metrics, traces) is reproducible.
        """
        return self.collect(self.submit_tasks_async(tasks), deadline=deadline)

    def score_groups(
        self,
        query: np.ndarray,
        matrix,
        gaps,
        engine: EngineConfig,
        *,
        plan=None,
        chunk_size: int | None = None,
        deadline: Deadline | None = None,
    ) -> tuple[np.ndarray, int, int, list[ChunkResult]]:
        """Score every broadcast lane group; merge deterministically.

        Returns ``(sorted_scores, saturated, redone, chunk_results)``
        where ``sorted_scores`` follows the sorted-database order (the
        same array the serial group loop fills in).
        """
        packed = self._require_db()
        tasks = [
            ChunkTask(
                chunk_id=k,
                kind="groups",
                query=query,
                matrix=matrix,
                gaps=gaps,
                engine=engine,
                group_ids=chunk,
                plan=plan,
                deadline=deadline,
            )
            for k, chunk in enumerate(self.group_chunks(chunk_size))
        ]
        results = self.submit_tasks(tasks, deadline=deadline)
        scores = np.zeros(packed.n_sequences, dtype=np.int64)
        saturated = redone = 0
        for res in results:
            scores[res.positions] = res.scores
            saturated += res.saturated
            redone += res.redone
        return scores, saturated, redone, results

    def score_subset(
        self,
        query: np.ndarray,
        positions: np.ndarray,
        matrix,
        gaps,
        engine: EngineConfig,
        *,
        chunk_id: int = 0,
        plan=None,
        fault_unit_base: int = 0,
    ) -> ChunkResult:
        """Score an arbitrary subset of sequences as one pool task.

        ``positions`` are sorted-database positions; the worker re-packs
        the subset into lane groups at ``engine.lanes`` exactly like a
        standalone pipeline over that sub-database would.
        """
        task = ChunkTask(
            chunk_id=chunk_id,
            kind="subset",
            query=query,
            matrix=matrix,
            gaps=gaps,
            engine=engine,
            positions=tuple(int(p) for p in positions),
            plan=plan,
            fault_unit_base=fault_unit_base,
        )
        return self.submit_tasks([task])[0]

    def submit_subsets(self, tasks: list[ChunkTask]) -> list[ChunkResult]:
        """Run many prepared subset tasks concurrently (queue draining)."""
        return self.submit_tasks(tasks)

    # ------------------------------------------------------------------
    def _observe(self, results: list[ChunkResult]) -> None:
        for res in results:
            stats = self.worker_stats.get(res.pid)
            if stats is None:
                stats = self.worker_stats[res.pid] = WorkerStats(res.pid)
            stats.tasks += 1
            stats.cells += res.cells
            stats.queue_wait_seconds += res.queue_wait_seconds
            stats.compute_seconds += res.compute_seconds
        if self.metrics is None:
            return
        self.metrics.increment("parallel.chunks", len(results))
        self.metrics.increment(
            "parallel.cells", sum(r.cells for r in results)
        )
        for res in results:
            self.metrics.observe(
                "parallel.chunk.queue_wait.seconds", res.queue_wait_seconds
            )
            self.metrics.observe(
                "parallel.chunk.compute.seconds", res.compute_seconds
            )
        # Per-worker rollups under stable slot names (sorted by pid so
        # repeated renders are comparable across runs).
        for slot, pid in enumerate(sorted(self.worker_stats)):
            stats = self.worker_stats[pid]
            self.metrics.set_gauge(f"parallel.worker.{slot}.tasks", stats.tasks)
            self.metrics.set_gauge(f"parallel.worker.{slot}.cells", stats.cells)
            self.metrics.set_gauge(
                f"parallel.worker.{slot}.queue_wait.seconds",
                stats.queue_wait_seconds,
            )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and release the broadcast (idempotent).

        Teardown terminates rather than joins the workers: results are
        always harvested before close, and a pool being closed because
        a worker hung must not block on that worker forever.
        """
        self._closed = True
        self._inflight.clear()
        pool, self._pool = self._pool, None
        if pool is not None:
            self._terminate_pool(pool)
        owner, self._broadcast_owner = self._broadcast_owner, None
        if owner is not None:
            owner.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._closed

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        groups = self.packed.n_groups if self.packed is not None else "none"
        return (
            f"<ProcessPoolBackend workers={self.workers} "
            f"groups={groups} broadcast={self.broadcast_mode!r} "
            f"{state}>"
        )
