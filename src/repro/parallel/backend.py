"""The process-parallel execution backend: a persistent worker pool.

The paper's throughput comes from keeping many real cores fed with
independent database chunks (SWIPE-style inter-task parallelism).  The
simulated :class:`~repro.devices.openmp.ParallelFor` models that
schedule in virtual time on one OS process; this backend runs it for
real: a :class:`concurrent.futures.ProcessPoolExecutor` whose workers
receive the pre-processed database exactly once (init-time broadcast,
or zero-copy :mod:`multiprocessing.shared_memory` views), then drain
chunked group tasks whose arguments are tiny.

Guarantees:

* **Score identity** — workers run the very same kernels as the serial
  pipeline over the very same lane groups; the merge scatters disjoint
  index ranges, so results are bit-identical whatever the worker count,
  chunk size, or completion order.
* **Fault determinism** — fault-injection units are global group ids
  and decisions are pure functions of ``(seed, unit, attempt)``, so a
  plan misbehaves identically under any placement.
* **Graceful degradation** — pool startup is verified with a ping; any
  failure raises :class:`~repro.exceptions.ParallelError`, which the
  pipeline converts into an in-process fallback.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace

import numpy as np

from ..db.preprocess import PreprocessedDatabase
from ..exceptions import ParallelError
from ..metrics.counters import MetricsRegistry
from .shared import PackedDatabase, SharedDatabaseBroadcast
from .worker import ChunkResult, ChunkTask, EngineConfig, init_worker, ping, score_chunk

__all__ = ["WorkerStats", "ProcessPoolBackend", "default_chunk_size"]

#: Ceiling on how long pool startup verification may take.
_STARTUP_TIMEOUT_SECONDS = 60.0


def default_chunk_size(n_groups: int, workers: int) -> int:
    """Groups per task when the caller does not pin a chunk size.

    Four chunks per worker balances scheduling slack (stragglers can be
    absorbed) against per-task dispatch overhead — the same trade the
    paper's dynamic OpenMP schedule makes with its chunk parameter.
    """
    return max(1, -(-n_groups // max(1, workers * 4)))


@dataclass
class WorkerStats:
    """Per-worker accounting aggregated from chunk results."""

    pid: int
    tasks: int = 0
    cells: int = 0
    queue_wait_seconds: float = 0.0
    compute_seconds: float = 0.0


class ProcessPoolBackend:
    """Persistent worker pool bound to one broadcast database.

    Parameters
    ----------
    preprocessed:
        The lane-packed database every worker receives once.  Accepts a
        :class:`PreprocessedDatabase`, an already-flattened
        :class:`PackedDatabase`, or ``None`` for a *streaming* pool:
        workers then hold no resident database and only accept
        ``kind="stream"`` tasks that carry their own sequences (the
        sharded out-of-core scan).
    workers:
        Pool size (real OS processes).
    chunk_size:
        Lane groups per task; ``None`` picks
        :func:`default_chunk_size`.  The merge is chunking-invariant.
    broadcast:
        ``"shm"`` — shared-memory views, zero copies per worker;
        ``"pickle"`` — the flat arrays ride the worker initializer once;
        ``"auto"`` (default) — try shared memory, fall back to pickle.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        where available (cheapest startup) and falls back to the
        platform default otherwise.
    metrics:
        Optional registry receiving ``parallel.*`` counters, queue-wait
        observations and per-worker stats.
    """

    def __init__(
        self,
        preprocessed: PreprocessedDatabase | PackedDatabase | None,
        *,
        workers: int,
        chunk_size: int | None = None,
        broadcast: str = "auto",
        start_method: str | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if workers < 1:
            raise ParallelError(f"worker count must be positive, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ParallelError(
                f"chunk size must be positive, got {chunk_size}"
            )
        if broadcast not in ("auto", "shm", "pickle"):
            raise ParallelError(
                f"broadcast must be 'auto', 'shm' or 'pickle', got {broadcast!r}"
            )
        if preprocessed is None:
            packed = None
        elif isinstance(preprocessed, PackedDatabase):
            packed = preprocessed
        else:
            packed = PackedDatabase.from_preprocessed(preprocessed)
        self.packed = packed
        self.workers = workers
        self.chunk_size = chunk_size
        self.metrics = metrics
        self.worker_stats: dict[int, WorkerStats] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._broadcast_owner: SharedDatabaseBroadcast | None = None
        self._closed = False

        payload, self.broadcast_mode = self._build_payload(packed, broadcast)
        try:
            ctx = self._context(start_method)
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=ctx,
                initializer=init_worker,
                initargs=(payload,),
            )
            # Force worker startup now: a broken initializer (or an
            # unpicklable payload) must surface here — where the caller
            # can fall back to in-process execution — not mid-search.
            self._pool.submit(ping).result(timeout=_STARTUP_TIMEOUT_SECONDS)
        except ParallelError:
            self.close()
            raise
        except Exception as exc:
            self.close()
            raise ParallelError(
                f"worker pool failed to start ({type(exc).__name__}: {exc})"
            ) from exc
        if self.metrics is not None:
            self.metrics.set_gauge("parallel.workers", float(workers))
            if packed is not None:
                self.metrics.increment("parallel.broadcasts")
                self.metrics.set_gauge(
                    "parallel.broadcast.bytes", float(packed.nbytes())
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _context(start_method: str | None):
        if start_method is not None:
            return multiprocessing.get_context(start_method)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    def _build_payload(
        self, packed: PackedDatabase | None, broadcast: str
    ) -> tuple[tuple[str, object], str]:
        if packed is None:
            return ("none", None), "none"
        if broadcast in ("auto", "shm"):
            try:
                self._broadcast_owner = SharedDatabaseBroadcast(packed)
                return ("shm", self._broadcast_owner.handle()), "shm"
            except Exception:
                if broadcast == "shm":
                    raise
                self._broadcast_owner = None
        return ("pickle", packed), "pickle"

    # ------------------------------------------------------------------
    def _require_db(self) -> PackedDatabase:
        if self.packed is None:
            raise ParallelError(
                "this pool has no broadcast database (it was started for "
                "streaming tasks only)"
            )
        return self.packed

    @property
    def n_groups(self) -> int:
        """Lane groups available in the broadcast database."""
        return self._require_db().n_groups

    def group_chunks(self, chunk_size: int | None = None) -> list[tuple[int, ...]]:
        """Deterministic chunking of the group ids into task-sized runs."""
        size = chunk_size or self.chunk_size or default_chunk_size(
            self.n_groups, self.workers
        )
        ids = range(self.n_groups)
        return [tuple(ids[k:k + size]) for k in range(0, self.n_groups, size)]

    def submit_tasks_async(self, tasks: list[ChunkTask]):
        """Enqueue chunk tasks; return their futures without waiting.

        The driver of the sharded out-of-core scan uses this to keep
        the workers busy on shard *k* while it reads and encodes shard
        *k + 1* (double buffering); pass the futures to
        :meth:`collect` to harvest results.
        """
        if self._pool is None:
            raise ParallelError("worker pool is closed")
        try:
            return [
                self._pool.submit(
                    score_chunk, replace(task, submitted_at=time.time())
                )
                for task in tasks
            ]
        except BrokenProcessPool as exc:
            raise ParallelError(
                f"worker pool died on submit ({exc})"
            ) from exc
        except Exception as exc:
            raise ParallelError(
                f"parallel task submission failed "
                f"({type(exc).__name__}: {exc})"
            ) from exc

    def collect(self, futures) -> list[ChunkResult]:
        """Wait for futures from :meth:`submit_tasks_async`, in order."""
        try:
            results = [f.result() for f in futures]
        except ParallelError:
            raise
        except BrokenProcessPool as exc:
            raise ParallelError(
                f"worker pool died mid-search ({exc})"
            ) from exc
        except Exception as exc:
            raise ParallelError(
                f"parallel chunk execution failed "
                f"({type(exc).__name__}: {exc})"
            ) from exc
        self._observe(results)
        return results

    def submit_tasks(self, tasks: list[ChunkTask]) -> list[ChunkResult]:
        """Run chunk tasks on the pool; results in task order.

        The merge downstream scatters disjoint positions, so result
        order does not affect scores — task order is kept purely so the
        accounting (metrics, traces) is reproducible.
        """
        return self.collect(self.submit_tasks_async(tasks))

    def score_groups(
        self,
        query: np.ndarray,
        matrix,
        gaps,
        engine: EngineConfig,
        *,
        plan=None,
        chunk_size: int | None = None,
    ) -> tuple[np.ndarray, int, int, list[ChunkResult]]:
        """Score every broadcast lane group; merge deterministically.

        Returns ``(sorted_scores, saturated, redone, chunk_results)``
        where ``sorted_scores`` follows the sorted-database order (the
        same array the serial group loop fills in).
        """
        packed = self._require_db()
        tasks = [
            ChunkTask(
                chunk_id=k,
                kind="groups",
                query=query,
                matrix=matrix,
                gaps=gaps,
                engine=engine,
                group_ids=chunk,
                plan=plan,
            )
            for k, chunk in enumerate(self.group_chunks(chunk_size))
        ]
        results = self.submit_tasks(tasks)
        scores = np.zeros(packed.n_sequences, dtype=np.int64)
        saturated = redone = 0
        for res in results:
            scores[res.positions] = res.scores
            saturated += res.saturated
            redone += res.redone
        return scores, saturated, redone, results

    def score_subset(
        self,
        query: np.ndarray,
        positions: np.ndarray,
        matrix,
        gaps,
        engine: EngineConfig,
        *,
        chunk_id: int = 0,
        plan=None,
        fault_unit_base: int = 0,
    ) -> ChunkResult:
        """Score an arbitrary subset of sequences as one pool task.

        ``positions`` are sorted-database positions; the worker re-packs
        the subset into lane groups at ``engine.lanes`` exactly like a
        standalone pipeline over that sub-database would.
        """
        task = ChunkTask(
            chunk_id=chunk_id,
            kind="subset",
            query=query,
            matrix=matrix,
            gaps=gaps,
            engine=engine,
            positions=tuple(int(p) for p in positions),
            plan=plan,
            fault_unit_base=fault_unit_base,
        )
        return self.submit_tasks([task])[0]

    def submit_subsets(self, tasks: list[ChunkTask]) -> list[ChunkResult]:
        """Run many prepared subset tasks concurrently (queue draining)."""
        return self.submit_tasks(tasks)

    # ------------------------------------------------------------------
    def _observe(self, results: list[ChunkResult]) -> None:
        for res in results:
            stats = self.worker_stats.get(res.pid)
            if stats is None:
                stats = self.worker_stats[res.pid] = WorkerStats(res.pid)
            stats.tasks += 1
            stats.cells += res.cells
            stats.queue_wait_seconds += res.queue_wait_seconds
            stats.compute_seconds += res.compute_seconds
        if self.metrics is None:
            return
        self.metrics.increment("parallel.chunks", len(results))
        self.metrics.increment(
            "parallel.cells", sum(r.cells for r in results)
        )
        for res in results:
            self.metrics.observe(
                "parallel.chunk.queue_wait.seconds", res.queue_wait_seconds
            )
            self.metrics.observe(
                "parallel.chunk.compute.seconds", res.compute_seconds
            )
        # Per-worker rollups under stable slot names (sorted by pid so
        # repeated renders are comparable across runs).
        for slot, pid in enumerate(sorted(self.worker_stats)):
            stats = self.worker_stats[pid]
            self.metrics.set_gauge(f"parallel.worker.{slot}.tasks", stats.tasks)
            self.metrics.set_gauge(f"parallel.worker.{slot}.cells", stats.cells)
            self.metrics.set_gauge(
                f"parallel.worker.{slot}.queue_wait.seconds",
                stats.queue_wait_seconds,
            )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and release the broadcast (idempotent)."""
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        owner, self._broadcast_owner = self._broadcast_owner, None
        if owner is not None:
            owner.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._closed

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        groups = self.packed.n_groups if self.packed is not None else "none"
        return (
            f"<ProcessPoolBackend workers={self.workers} "
            f"groups={groups} broadcast={self.broadcast_mode!r} "
            f"{state}>"
        )

