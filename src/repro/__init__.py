"""repro — Smith-Waterman on heterogeneous systems, reproduced in Python.

A full reproduction of *"Smith-Waterman Algorithm on Heterogeneous
Systems: A Case Study"* (Rucci, De Giusti, Naiouf, Botella, García,
Prieto-Matías — IEEE CLUSTER 2014): five cross-validated affine-gap
Smith-Waterman engines (including the paper's inter-task lane-parallel
scheme with query/sequence profiles and cache blocking), a simulated
hardware substrate (AVX-256 vs MIC-512 vector units with instruction
accounting, OpenMP scheduling, SMT and cache models for the dual
Xeon E5-2670 host and the 60-core Xeon Phi), an offload/hybrid runtime,
and a calibrated performance model that regenerates every figure of the
paper's evaluation.

Quick start::

    >>> from repro import sw_score
    >>> sw_score("HEAGAWGHEE", "PAWHEAE")
    17

Database search::

    >>> from repro import SearchPipeline, SyntheticSwissProt
    >>> db = SyntheticSwissProt().generate(scale=0.0001)
    >>> result = SearchPipeline().search("MKTAYIAKQR" * 10, db)
    >>> result.hits[0].score >= result.hits[-1].score
    True

Batched serving with shared options::

    >>> from repro import SearchOptions, SearchRequest, SearchService
    >>> service = SearchService(SearchOptions(top_k=3))
    >>> batch = service.run([SearchRequest(query="MKTAYIAKQR" * 10)], db)
    >>> len(batch.outcomes)
    1
"""

from .alphabet import DNA, PROTEIN, Alphabet, encode, decode
from .core import (
    AdaptivePrecisionEngine,
    AlignmentEngine,
    BandedEngine,
    AlignmentResult,
    BatchResult,
    DiagonalEngine,
    InterTaskEngine,
    LaneGroup,
    ScalarEngine,
    ScanEngine,
    StripedEngine,
    VectorizedEngine,
    Traceback,
    align_pair,
    available_engines,
    build_lane_groups,
    get_engine,
    global_align,
    semiglobal_align,
    sw_score,
    waterman_eggert,
)
from .heuristic import MiniBlast
from .db import (
    PAPER_QUERIES,
    SequenceDatabase,
    SyntheticSwissProt,
    ShardSpec,
    iter_shards,
    make_query_set,
    preprocess_database,
    read_fasta,
    split_database,
    write_fasta,
)
from .devices import (
    XEON_E5_2670_DUAL,
    XEON_PHI_57XX,
    DeviceSpec,
    ParallelFor,
    Schedule,
)
from .exceptions import ReproError
from .faults import (
    CircuitBreaker,
    Deadline,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    Timeout,
)
from .metrics import (
    METRICS,
    MetricsRegistry,
    StatsdEmitter,
    append_jsonl_snapshot,
    read_jsonl_snapshots,
    to_prometheus,
)
from .obs import (
    TRACE_HEADER,
    NullTracer,
    Span,
    TraceCollector,
    TraceContext,
    Tracer,
    adopt_spans,
    current_context,
    get_tracer,
    set_tracer,
    to_chrome_trace,
    to_jsonl,
    use_tracer,
    write_chrome_trace,
    write_jsonl,
)
from .parallel import PackedDatabase, ProcessPoolBackend
from .perfmodel import DevicePerformanceModel, RunConfig, Workload
from .runtime import (
    HybridExecutor,
    PCIE_GEN2_X16,
    ResilientHybridExecutor,
    ResilientResult,
)
from .scoring import (
    BLOSUM45,
    BLOSUM50,
    BLOSUM62,
    BLOSUM80,
    BLOSUM90,
    PAM30,
    PAM70,
    PAM250,
    GapModel,
    SubstitutionMatrix,
    get_matrix,
    paper_gap_model,
)
from .serve import (
    WIRE_SCHEMA_VERSION,
    RemoteSearchResult,
    SearchClient,
    SearchServer,
)
from .search import (
    HybridSearchPipeline,
    HybridSearchResult,
    MultiQueryExecutor,
    MultiQueryOutcome,
    PartialResult,
    ScanJournal,
    ScanState,
    SearchOptions,
    SearchOutcome,
    SearchPipeline,
    SearchRequest,
    SearchResult,
    ShardedStreamingSearch,
    StreamingResult,
    StreamingSearch,
    TieredSearch,
    TieredSearchResult,
    gcups,
)
from .service import (
    PreprocessCache,
    QueueSearchOutcome,
    SearchService,
    ServiceBatchResult,
    WorkQueueScheduler,
)

__version__ = "1.0.0"

__all__ = [
    # alphabet
    "PROTEIN", "DNA", "Alphabet", "encode", "decode",
    # engines
    "AlignmentEngine", "AlignmentResult", "BatchResult", "Traceback",
    "ScalarEngine", "ScanEngine", "DiagonalEngine", "StripedEngine",
    "InterTaskEngine", "VectorizedEngine", "BandedEngine",
    "AdaptivePrecisionEngine",
    "LaneGroup", "build_lane_groups",
    "global_align", "semiglobal_align", "MiniBlast",
    "available_engines", "get_engine", "sw_score", "align_pair",
    # scoring
    "SubstitutionMatrix", "GapModel", "paper_gap_model", "get_matrix",
    "BLOSUM45", "BLOSUM50", "BLOSUM62", "BLOSUM80", "BLOSUM90",
    "PAM30", "PAM70", "PAM250",
    # db
    "SequenceDatabase", "SyntheticSwissProt", "PAPER_QUERIES",
    "make_query_set", "read_fasta", "write_fasta",
    "preprocess_database", "split_database",
    "ShardSpec", "iter_shards",
    # devices / model / runtime
    "DeviceSpec", "XEON_E5_2670_DUAL", "XEON_PHI_57XX",
    "ParallelFor", "Schedule",
    "DevicePerformanceModel", "RunConfig", "Workload",
    "HybridExecutor", "PCIE_GEN2_X16",
    # faults / resilience
    "FaultPlan", "FaultInjector", "RetryPolicy", "Timeout", "Deadline",
    "CircuitBreaker", "ResilientHybridExecutor", "ResilientResult",
    # search
    "SearchOptions", "SearchRequest", "SearchOutcome",
    "SearchPipeline", "SearchResult", "gcups",
    "StreamingSearch", "StreamingResult", "ShardedStreamingSearch",
    "TieredSearch", "TieredSearchResult",
    "PartialResult", "ScanJournal", "ScanState",
    "HybridSearchPipeline", "HybridSearchResult",
    "MultiQueryExecutor", "MultiQueryOutcome", "waterman_eggert",
    # service
    "SearchService", "ServiceBatchResult",
    "WorkQueueScheduler", "QueueSearchOutcome", "PreprocessCache",
    # serving layer
    "SearchServer", "SearchClient", "RemoteSearchResult",
    "WIRE_SCHEMA_VERSION",
    # parallel execution
    "ProcessPoolBackend", "PackedDatabase",
    # observability
    "Tracer", "NullTracer", "Span", "TraceCollector",
    "get_tracer", "set_tracer", "use_tracer",
    "to_chrome_trace", "write_chrome_trace", "to_jsonl", "write_jsonl",
    "TraceContext", "TRACE_HEADER", "current_context", "adopt_spans",
    "MetricsRegistry", "METRICS",
    "to_prometheus", "StatsdEmitter",
    "append_jsonl_snapshot", "read_jsonl_snapshots",
    # errors
    "ReproError",
    "__version__",
]
