"""Alignment score statistics: Karlin-Altschul / Gumbel E-values.

A database search is only useful if hit scores can be judged against
chance, so production SW tools (SSEARCH, SWIPE) report E-values next to
raw scores.  Local alignment scores of unrelated sequences follow an
extreme-value (Gumbel) law

    P(S >= x)  ~  1 - exp(-K * m * n * exp(-lambda * x)),

with ``lambda`` and ``K`` depending on the scoring system.  Two ways to
obtain them are implemented:

* :func:`ungapped_lambda` — the analytic Karlin-Altschul solution for
  ungapped scoring: the unique positive root of
  ``sum_ij p_i p_j exp(lambda * s_ij) = 1``;
* :meth:`GumbelFit.from_scores` — the empirical route used for *gapped*
  scoring (no analytic theory exists): fit the Gumbel location/scale to
  a sample of background scores by the method of moments, exactly how
  SSEARCH calibrates its statistics from the database scores themselves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import ModelError
from ..scoring.matrices import SubstitutionMatrix

__all__ = [
    "ungapped_lambda",
    "GumbelFit",
    "evalue",
    "bitscore",
    "attach_statistics",
]

#: Euler-Mascheroni constant (Gumbel mean offset).
_EULER_GAMMA = 0.5772156649015329


def ungapped_lambda(
    matrix: SubstitutionMatrix,
    frequencies: np.ndarray | None = None,
    *,
    tolerance: float = 1e-9,
) -> float:
    """Karlin-Altschul lambda for ungapped scoring.

    ``frequencies`` are the background residue probabilities over the 20
    standard residues (Robinson-Robinson by default).  The scoring
    system must have a negative expected score and a positive maximum —
    both required by the theory and validated here.
    """
    if frequencies is None:
        from ..db.synthetic import ROBINSON_FREQUENCIES

        frequencies = ROBINSON_FREQUENCIES
    p = np.asarray(frequencies, dtype=np.float64)
    p = p / p.sum()
    if p.shape != (20,):
        raise ModelError("frequencies must cover the 20 standard residues")
    s = matrix.data[:20, :20].astype(np.float64)
    pp = np.outer(p, p)
    expected = float((pp * s).sum())
    if expected >= 0:
        raise ModelError(
            "expected pair score must be negative for local alignment "
            f"statistics (got {expected:.4f})"
        )
    if s.max() <= 0:
        raise ModelError("matrix must have a positive maximum score")

    def f(lam: float) -> float:
        return float((pp * np.exp(lam * s)).sum()) - 1.0

    # Bracket the positive root: f(0) = 0 and f'(0) = E[s] < 0, so f dips
    # negative then grows; find hi with f(hi) > 0.
    lo, hi = 0.0, 0.5
    while f(hi) < 0:
        hi *= 2.0
        if hi > 100:
            raise ModelError("failed to bracket lambda")
    # Move lo off the trivial root at 0.
    lo = hi / 2 ** 20
    while f(lo) > 0:
        lo /= 2.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if f(mid) > 0:
            hi = mid
        else:
            lo = mid
        if hi - lo < tolerance:
            break
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class GumbelFit:
    """Fitted extreme-value parameters ``(lambda, K)``."""

    lam: float
    k: float
    samples: int = 0

    def __post_init__(self) -> None:
        if self.lam <= 0 or self.k <= 0:
            raise ModelError(
                f"Gumbel parameters must be positive (lambda={self.lam}, "
                f"K={self.k})"
            )

    @classmethod
    def from_scores(
        cls,
        scores: np.ndarray,
        query_len: int,
        db_residues: int,
    ) -> "GumbelFit":
        """Method-of-moments fit from background (unrelated) scores.

        With per-pair search space ``m*n_mean``, the Gumbel moments give
        ``lambda = pi / (std * sqrt(6))`` and
        ``mu = mean - gamma / lambda``; then ``K = exp(lambda*mu)/(m*n)``
        where ``m*n`` is the mean per-sequence search space the sampled
        scores come from.
        """
        arr = np.asarray(scores, dtype=np.float64)
        if arr.size < 10:
            raise ModelError(
                f"need at least 10 background scores to fit, got {arr.size}"
            )
        if query_len < 1 or db_residues < 1:
            raise ModelError("search space dimensions must be positive")
        std = float(arr.std(ddof=1))
        if std <= 0:
            raise ModelError("background scores are degenerate (zero spread)")
        lam = math.pi / (std * math.sqrt(6.0))
        mu = float(arr.mean()) - _EULER_GAMMA / lam
        space = query_len * (db_residues / max(len(arr), 1))
        k = math.exp(lam * mu) / space
        return cls(lam=lam, k=k, samples=int(arr.size))


def evalue(
    score: float, query_len: int, db_residues: int, fit: GumbelFit
) -> float:
    """Expected number of chance hits at or above ``score``.

    ``E = K * m * N * exp(-lambda * S)`` over the whole database search
    space (query length x total database residues).
    """
    if query_len < 1 or db_residues < 1:
        raise ModelError("search space dimensions must be positive")
    return fit.k * query_len * db_residues * math.exp(-fit.lam * score)


def bitscore(score: float, fit: GumbelFit) -> float:
    """Normalised bit score ``(lambda*S - ln K) / ln 2``."""
    return (fit.lam * score - math.log(fit.k)) / math.log(2.0)


def attach_statistics(result, fit: GumbelFit | None = None):
    """E-values and bit scores for a :class:`SearchResult`'s hits.

    Without an explicit ``fit``, the result's own score distribution
    calibrates the statistics (SSEARCH-style): the bulk of database
    scores are unrelated-sequence noise, so the top 1% is trimmed before
    fitting.  Returns ``[(hit, evalue, bitscore), ...]`` in hit order.
    """
    if fit is None:
        scores = np.sort(np.asarray(result.scores, dtype=np.float64))
        cut = max(10, int(len(scores) * 0.99))
        background = scores[:cut]
        db_residues = max(
            int(result.cells // max(result.query_length, 1)), 1
        )
        fit = GumbelFit.from_scores(
            background, result.query_length, db_residues
        )
    db_residues = max(int(result.cells // max(result.query_length, 1)), 1)
    return [
        (
            hit,
            evalue(hit.score, result.query_length, db_residues, fit),
            bitscore(hit.score, fit),
        )
        for hit in result.hits
    ]
