"""Database-search pipeline — the paper's Algorithm 1 end to end.

(1) load query and database, (2) pre-process (sort by length, pack lane
groups), (3) align every group in parallel under a simulated OpenMP
schedule, (4) sort scores descending.  Alignments are computed for real
by the engines; time is accounted both as wall clock and as modelled
device time when a :class:`~repro.perfmodel.DevicePerformanceModel` is
attached.
"""

from .api import SearchOptions, SearchOutcome, SearchRequest, unify_options
from .result import Hit, SearchResult
from .pipeline import SearchPipeline
from .gcups import gcups, Stopwatch
from .journal import ScanJournal, ScanState
from .streaming import PartialResult, StreamingSearch, StreamingResult
from .sharded import ShardedStreamingSearch
from .tiered import (
    TIER_PRESETS,
    TieredFilter,
    TieredSearch,
    TieredSearchResult,
    TierPreset,
    TierStats,
)
from .multiquery import MultiQueryExecutor, MultiQueryOutcome
from .hybrid_pipeline import HybridSearchPipeline, HybridSearchResult
from .stats import (
    GumbelFit,
    attach_statistics,
    bitscore,
    evalue,
    ungapped_lambda,
)

__all__ = [
    "SearchOptions",
    "SearchOutcome",
    "SearchRequest",
    "unify_options",
    "Hit",
    "SearchResult",
    "SearchPipeline",
    "gcups",
    "Stopwatch",
    "GumbelFit",
    "attach_statistics",
    "bitscore",
    "evalue",
    "ungapped_lambda",
    "StreamingSearch",
    "StreamingResult",
    "PartialResult",
    "ShardedStreamingSearch",
    "TIER_PRESETS",
    "TierPreset",
    "TierStats",
    "TieredFilter",
    "TieredSearch",
    "TieredSearchResult",
    "ScanJournal",
    "ScanState",
    "MultiQueryExecutor",
    "MultiQueryOutcome",
    "HybridSearchPipeline",
    "HybridSearchResult",
]
