"""Resumable-scan journal: per-shard merge state on disk.

A sharded out-of-core scan over a multi-gigabase database can run for
hours; losing the whole merge to a crash or an expired deadline means
paying the full scan again.  :class:`ScanJournal` makes the scan
restartable: after every merged shard the driver writes a small JSON
snapshot — records consumed, accounting counters, and the top-k heap —
atomically (temp file + ``os.replace``) next to where it will be read
back.

Correctness rests on two facts:

* **Aligned prefix** — shard boundaries are multiples of the streaming
  ``chunk_size`` (``align_records``), so the journalled prefix always
  covers whole serial chunks.  Re-slicing the *remaining* records with
  the same :class:`~repro.db.ShardSpec` reproduces the uninterrupted
  run's shard layout, global record indices, and fault-injection units
  exactly — which is what makes a resumed scan bit-identical.
* **Fingerprint keying** — the snapshot is keyed by a digest of the
  query codes and *every* scan parameter that shapes scores or
  accounting: database name, top-k, chunk size, shard bounds,
  substitution matrix (name and cell values), gap penalties, alphabet,
  and the fault plan.  A journal written by a different query,
  database, or configuration is treated as absent, never silently
  merged.
* **Prefix checksum** — the fingerprint cannot see the stream's
  *content* (two different streams can share the default
  ``database_name``), so the snapshot also carries a chained digest of
  every record merged so far.  ``resume`` re-hashes the records it
  skips and refuses to continue over a stream whose prefix does not
  match — a wrong stream is an error, never a silently corrupted
  merge.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..exceptions import PipelineError
from .result import Hit

__all__ = ["ScanJournal", "ScanState", "chain_record_digest"]

#: On-disk format version; bump on incompatible layout changes.
#: v2 added the chained ``prefix_digest`` over merged records.
_VERSION = 2


def chain_record_digest(digest: str, header: str, codes) -> str:
    """Fold one record into a chained stream digest.

    ``digest`` is the hex digest covering every earlier record (``""``
    for the first).  Each record is framed (length-prefixed header
    bytes, then length-prefixed encoded residues) so no two distinct
    streams can collide by shifting bytes between header and sequence,
    and the chain is independent of shard or chunk boundaries — only
    record order and content matter.
    """
    h = hashlib.blake2b(digest_size=16)
    if digest:
        h.update(bytes.fromhex(digest))
    head = str(header).encode()
    h.update(len(head).to_bytes(4, "little"))
    h.update(head)
    body = np.asarray(codes, dtype=np.uint8).tobytes()
    h.update(len(body).to_bytes(8, "little"))
    h.update(body)
    return h.hexdigest()


@dataclass
class ScanState:
    """Everything needed to continue a sharded scan mid-stream."""

    records_done: int = 0        # records fully merged (whole shards)
    shards_merged: int = 0
    scanned: int = 0
    cells: int = 0
    chunks: int = 0
    corrupted_redone: int = 0
    #: Chained :func:`chain_record_digest` over the merged prefix —
    #: lets ``resume`` verify it was handed the *same* stream.
    prefix_digest: str = ""
    #: Serialized top-k heap entries ``(score, -index, hit)`` in heap
    #: order — a list that *is* a valid heap can be reloaded verbatim.
    heap: list = field(default_factory=list)

    def heap_entries(self) -> list:
        """The heap as live ``(score, -index, Hit)`` tuples."""
        return [
            (
                int(score),
                int(neg_idx),
                Hit(
                    index=int(h["index"]),
                    header=h["header"],
                    length=int(h["length"]),
                    score=int(h["score"]),
                ),
            )
            for score, neg_idx, h in self.heap
        ]

    @staticmethod
    def pack_heap(heap) -> list:
        """Serialize live heap entries (JSON-safe, order-preserving)."""
        return [
            [
                int(score),
                int(neg_idx),
                {
                    "index": int(hit.index),
                    "header": hit.header,
                    "length": int(hit.length),
                    "score": int(hit.score),
                },
            ]
            for score, neg_idx, hit in heap
        ]


class ScanJournal:
    """Fingerprint-keyed, atomically written scan snapshot."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(
        query_codes: np.ndarray,
        *,
        database_name: str,
        top_k: int,
        chunk_size: int,
        max_residues: int | None,
        max_records: int | None,
        matrix=None,
        gaps=None,
        alphabet=None,
        plan=None,
    ) -> str:
        """Digest of everything that shapes the merge state.

        Beyond the stream layout parameters, the digest covers the
        scoring configuration — substitution ``matrix`` (name *and*
        cell values), ``gaps``, ``alphabet`` — and the fault ``plan``,
        because all of them shape scores and ``corrupted_redone``
        accounting: resuming a journal written under any different
        value would silently merge incompatible heap state.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(np.asarray(query_codes, dtype=np.uint8).tobytes())
        digest.update(
            f"|{database_name}|{top_k}|{chunk_size}"
            f"|{max_residues}|{max_records}".encode()
        )
        if matrix is None:
            digest.update(b"|matrix:none")
        else:
            digest.update(f"|matrix:{matrix.name}".encode())
            digest.update(
                np.ascontiguousarray(matrix.data, dtype=np.int32).tobytes()
            )
        if gaps is None:
            digest.update(b"|gaps:none")
        else:
            digest.update(f"|gaps:{gaps.open},{gaps.extend}".encode())
        if alphabet is None:
            digest.update(b"|alphabet:none")
        else:
            digest.update(
                f"|alphabet:{alphabet.letters}:{alphabet.wildcard}".encode()
            )
        # FaultPlan is a frozen dataclass of scalars/tuples: its repr is
        # a stable, total serialization of the plan.
        digest.update(f"|plan:{plan!r}".encode())
        return digest.hexdigest()

    @property
    def exists(self) -> bool:
        return self.path.exists()

    # ------------------------------------------------------------------
    def save(self, fingerprint: str, state: ScanState) -> None:
        """Write the snapshot atomically (crash leaves old state intact)."""
        payload = {
            "version": _VERSION,
            "fingerprint": fingerprint,
            "records_done": state.records_done,
            "shards_merged": state.shards_merged,
            "scanned": state.scanned,
            "cells": state.cells,
            "chunks": state.chunks,
            "corrupted_redone": state.corrupted_redone,
            "prefix_digest": state.prefix_digest,
            "heap": state.heap,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, self.path)

    def load(self, fingerprint: str) -> ScanState | None:
        """The journalled state, or ``None`` when there is nothing usable.

        Missing file, unreadable JSON, a version from the future, or a
        fingerprint written by a different scan all mean "start from the
        beginning" — never an exception, because a stale journal must
        not be able to block a fresh scan.
        """
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != _VERSION:
            return None
        if payload.get("fingerprint") != fingerprint:
            return None
        try:
            return ScanState(
                records_done=int(payload["records_done"]),
                shards_merged=int(payload["shards_merged"]),
                scanned=int(payload["scanned"]),
                cells=int(payload["cells"]),
                chunks=int(payload["chunks"]),
                corrupted_redone=int(payload["corrupted_redone"]),
                prefix_digest=str(payload["prefix_digest"]),
                heap=list(payload["heap"]),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def clear(self) -> None:
        """Remove the snapshot (a completed scan needs no resume)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        except OSError as exc:  # pragma: no cover - permission races
            raise PipelineError(
                f"could not remove scan journal {self.path}: {exc}"
            ) from exc
