"""Heterogeneous search pipeline — Algorithm 2 with real alignments.

Where :class:`repro.runtime.HybridExecutor` models Algorithm 2's *timing*
over bare length distributions, this pipeline *executes* it: the
database is split at the workload fraction (step 2), the device share
runs through an asynchronous offload region carrying a real inter-task
kernel at the device's lane width (step 3, MIC side), the host share
runs concurrently in host lane width (step 3, CPU side), and the two
score sets merge into one ranking (step 4).  Wall time is real Python;
device time is modelled per side — so the result both *is* a correct
search and *says* what the paper's machine would have taken.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.engine import as_codes
from ..db.database import SequenceDatabase
from ..db.preprocess import split_database
from ..exceptions import PipelineError
from ..metrics.counters import MetricsRegistry
from ..obs.tracer import get_tracer
from ..perfmodel.model import DevicePerformanceModel, RunConfig, Workload
from ..runtime.offload import OffloadRegion
from ..runtime.pcie import PCIE_GEN2_X16, PCIeLink
from .api import SearchOptions, unify_options
from .pipeline import SearchPipeline
from .result import Hit, SearchResult

__all__ = ["HybridSearchResult", "HybridSearchPipeline"]


@dataclass
class HybridSearchResult:
    """A merged search result plus the per-side modelled timing."""

    result: SearchResult
    device_fraction: float
    host_modeled_seconds: float
    device_modeled_seconds: float  # transfers included
    scheduler: str = "static"
    #: Static-split reference makespan, set when the dynamic work-queue
    #: scheduler produced this result (for tuned-vs-untuned comparison).
    static_modeled_makespan: float | None = None

    @property
    def modeled_makespan(self) -> float:
        """Algorithm 2's wall time: the slower of the two sides."""
        return max(self.host_modeled_seconds, self.device_modeled_seconds)

    @property
    def modeled_gcups(self) -> float:
        """Combined modelled throughput (the paper's Fig. 8 quantity)."""
        return self.result.cells / self.modeled_makespan / 1e9

    # -- SearchOutcome protocol ----------------------------------------
    @property
    def hits(self) -> list[Hit]:
        """Ranked hits of the merged search."""
        return self.result.hits

    def best_score(self) -> int:
        """Highest alignment score across both sides."""
        return self.result.best_score()

    @property
    def gcups(self) -> float:
        """Headline throughput: the modelled heterogeneous GCUPS."""
        return self.modeled_gcups

    @property
    def provenance(self) -> dict:
        """Identifying fields (:class:`~repro.search.SearchOutcome`)."""
        return {
            **self.result.provenance,
            "kind": "hybrid",
            "scheduler": self.scheduler,
            "device_fraction": self.device_fraction,
        }


class HybridSearchPipeline:
    """Runs Algorithm 2 for real across two modelled devices.

    ``scheduler`` selects how the database is distributed: ``"static"``
    is the paper's fixed split at ``device_fraction``; ``"queue"``
    replaces it with the dynamic work-queue scheduler
    (:class:`repro.service.WorkQueueScheduler`) — chunks are pulled by
    whichever side is free, no per-workload ratio tuning, and
    ``device_fraction`` only positions the static reference makespan
    reported next to the dynamic one.  Scores are identical either way.
    """

    def __init__(
        self,
        host_model: DevicePerformanceModel,
        device_model: DevicePerformanceModel,
        options: SearchOptions | None = None,
        *,
        link: PCIeLink = PCIE_GEN2_X16,
        scheduler: str = "static",
        chunks: int = 24,
        metrics: MetricsRegistry | None = None,
        **legacy,
    ) -> None:
        opts = unify_options(options, legacy, owner="HybridSearchPipeline")
        if scheduler not in ("static", "queue"):
            raise PipelineError(
                f"scheduler must be 'static' or 'queue', got {scheduler!r}"
            )
        self.options = opts
        self.host_model = host_model
        self.device_model = device_model
        self.link = link
        self.scheduler = scheduler
        self.chunks = chunks
        self.alphabet = opts.alphabet
        self.metrics = metrics
        # One real pipeline per side, each at its device's lane width
        # (unless the options pin an explicit width).
        self._host_pipe = SearchPipeline(
            opts.merged(lanes=opts.resolved_lanes(host_model.spec.lanes32)),
            metrics=metrics,
        )
        self._device_pipe = SearchPipeline(
            opts.merged(lanes=opts.resolved_lanes(device_model.spec.lanes32)),
            metrics=metrics,
        )

    def search(
        self,
        query,
        database: SequenceDatabase,
        *,
        device_fraction: float = 0.55,
        query_name: str = "query",
        top_k: int | None = None,
    ) -> HybridSearchResult:
        """One Algorithm 2 execution: split, offload, compute, merge."""
        if len(database) == 0:
            raise PipelineError("cannot search an empty database")
        if top_k is None:
            top_k = self.options.top_k
        if self.scheduler == "queue":
            return self._search_queue(
                query, database, device_fraction=device_fraction,
                query_name=query_name, top_k=top_k,
            )
        q = as_codes(query, self.alphabet)
        tracer = get_tracer()
        with tracer.span("hybrid.search") as root:
            if root:
                root.set_attributes(
                    query_name=query_name, database=database.name,
                    scheduler="static", device_fraction=device_fraction,
                )
            host_db, dev_db = split_database(database, device_fraction)

            # --- device side: async offload region with a real kernel -
            dev_seconds = 0.0
            dev_result: SearchResult | None = None
            if len(dev_db):
                with tracer.span(
                    "hybrid.offload", worker="device"
                ) as sp:
                    wl = Workload.from_lengths(
                        dev_db.lengths, self.device_model.spec.lanes32
                    )
                    compute = self.device_model.run_seconds(
                        wl, len(q), RunConfig()
                    )
                    region = OffloadRegion(self.link)
                    handle = region.run_async(
                        in_bytes=dev_db.total_residues + len(q),
                        out_bytes=4 * len(dev_db),
                        compute_seconds=compute,
                        kernel=lambda: self._device_pipe.search(
                            q, dev_db, query_name=query_name, top_k=0
                        ),
                    )
                    dev_seconds = region.wait(handle)
                    dev_result = handle.result
                    if sp:
                        sp.set_attributes(
                            sequences=len(dev_db),
                            modeled_seconds=dev_seconds,
                        )
                        sp.set_virtual(0.0, dev_seconds)

            # --- host side (overlapped in Algorithm 2) ----------------
            host_seconds = 0.0
            host_result: SearchResult | None = None
            if len(host_db):
                with tracer.span("hybrid.host", worker="host") as sp:
                    wl = Workload.from_lengths(
                        host_db.lengths, self.host_model.spec.lanes32
                    )
                    host_seconds = self.host_model.run_seconds(
                        wl, len(q), RunConfig()
                    )
                    host_result = self._host_pipe.search(
                        q, host_db, query_name=query_name, top_k=0
                    )
                    if sp:
                        sp.set_attributes(
                            sequences=len(host_db),
                            modeled_seconds=host_seconds,
                        )
                        sp.set_virtual(0.0, host_seconds)

            # --- merge (step 4) ---------------------------------------
            with tracer.span("hybrid.merge"):
                merged = self._merge(
                    query_name, q, database, host_db, dev_db,
                    host_result, dev_result, top_k,
                )
            if root:
                merged.trace = {"span_id": root.span_id, "span": root.name}
            return HybridSearchResult(
                result=merged,
                device_fraction=device_fraction,
                host_modeled_seconds=host_seconds,
                device_modeled_seconds=dev_seconds,
            )

    # ------------------------------------------------------------------
    def _search_queue(
        self, query, database, *, device_fraction, query_name, top_k,
    ) -> HybridSearchResult:
        """Dynamic path: delegate to the work-queue scheduler."""
        # Imported lazily: repro.service builds on this module.
        from ..service.scheduler import WorkQueueScheduler

        outcome = WorkQueueScheduler(
            self.host_model, self.device_model,
            options=self.options, link=self.link, chunks=self.chunks,
            static_fraction=device_fraction, metrics=self.metrics,
        ).search(query, database, query_name=query_name, top_k=top_k)
        return HybridSearchResult(
            result=outcome.result,
            device_fraction=outcome.plan.device_residue_fraction,
            host_modeled_seconds=outcome.plan.host_seconds,
            device_modeled_seconds=outcome.plan.device_seconds,
            scheduler="queue",
            static_modeled_makespan=outcome.static_modeled_makespan,
        )

    # ------------------------------------------------------------------
    def _merge(
        self, query_name, q, database, host_db, dev_db,
        host_result, dev_result, top_k,
    ) -> SearchResult:
        scores = np.zeros(len(database), dtype=np.int64)
        # Scores come back in each part's order; map through headers,
        # which are unique per entry in all the library's databases.
        index_of = {h: i for i, h in enumerate(database.headers)}
        if len(index_of) != len(database):
            raise PipelineError(
                "hybrid merge requires unique database headers"
            )
        wall = 0.0
        for part_db, part_result in (
            (host_db, host_result), (dev_db, dev_result),
        ):
            if part_result is None:
                continue
            wall += part_result.wall_seconds
            for h, s in zip(part_db.headers, part_result.scores):
                scores[index_of[h]] = s
        ranked = np.argsort(-scores, kind="stable")
        hits = [
            Hit(
                index=int(i),
                header=database.headers[int(i)],
                length=len(database.sequences[int(i)]),
                score=int(scores[int(i)]),
            )
            for i in ranked[: max(top_k, 0)]
        ]
        return SearchResult(
            query_name=query_name,
            query_length=len(q),
            database_name=database.name,
            scores=scores,
            hits=hits,
            cells=len(q) * database.total_residues,
            wall_seconds=wall,
        )
