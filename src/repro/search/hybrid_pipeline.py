"""Heterogeneous search pipeline — Algorithm 2 with real alignments.

Where :class:`repro.runtime.HybridExecutor` models Algorithm 2's *timing*
over bare length distributions, this pipeline *executes* it: the
database is split at the workload fraction (step 2), the device share
runs through an asynchronous offload region carrying a real inter-task
kernel at the device's lane width (step 3, MIC side), the host share
runs concurrently in host lane width (step 3, CPU side), and the two
score sets merge into one ranking (step 4).  Wall time is real Python;
device time is modelled per side — so the result both *is* a correct
search and *says* what the paper's machine would have taken.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..alphabet import PROTEIN, Alphabet
from ..core.engine import as_codes
from ..db.database import SequenceDatabase
from ..db.preprocess import split_database
from ..exceptions import PipelineError
from ..perfmodel.model import DevicePerformanceModel, RunConfig, Workload
from ..runtime.offload import OffloadRegion
from ..runtime.pcie import PCIE_GEN2_X16, PCIeLink
from .pipeline import SearchPipeline
from .result import Hit, SearchResult

__all__ = ["HybridSearchResult", "HybridSearchPipeline"]


@dataclass
class HybridSearchResult:
    """A merged search result plus the per-side modelled timing."""

    result: SearchResult
    device_fraction: float
    host_modeled_seconds: float
    device_modeled_seconds: float  # transfers included

    @property
    def modeled_makespan(self) -> float:
        """Algorithm 2's wall time: the slower of the two sides."""
        return max(self.host_modeled_seconds, self.device_modeled_seconds)

    @property
    def modeled_gcups(self) -> float:
        """Combined modelled throughput (the paper's Fig. 8 quantity)."""
        return self.result.cells / self.modeled_makespan / 1e9


class HybridSearchPipeline:
    """Runs Algorithm 2 for real across two modelled devices."""

    def __init__(
        self,
        host_model: DevicePerformanceModel,
        device_model: DevicePerformanceModel,
        *,
        matrix=None,
        gaps=None,
        link: PCIeLink = PCIE_GEN2_X16,
        alphabet: Alphabet = PROTEIN,
    ) -> None:
        self.host_model = host_model
        self.device_model = device_model
        self.link = link
        self.alphabet = alphabet
        # One real pipeline per side, each at its device's lane width.
        self._host_pipe = SearchPipeline(
            matrix=matrix, gaps=gaps,
            lanes=host_model.spec.lanes32, alphabet=alphabet,
        )
        self._device_pipe = SearchPipeline(
            matrix=matrix, gaps=gaps,
            lanes=device_model.spec.lanes32, alphabet=alphabet,
        )

    def search(
        self,
        query,
        database: SequenceDatabase,
        *,
        device_fraction: float = 0.55,
        query_name: str = "query",
        top_k: int = 10,
    ) -> HybridSearchResult:
        """One Algorithm 2 execution: split, offload, compute, merge."""
        if len(database) == 0:
            raise PipelineError("cannot search an empty database")
        q = as_codes(query, self.alphabet)
        host_db, dev_db = split_database(database, device_fraction)

        # --- device side: async offload region with a real kernel ----
        dev_seconds = 0.0
        dev_result: SearchResult | None = None
        if len(dev_db):
            wl = Workload.from_lengths(
                dev_db.lengths, self.device_model.spec.lanes32
            )
            compute = self.device_model.run_seconds(wl, len(q), RunConfig())
            region = OffloadRegion(self.link)
            handle = region.run_async(
                in_bytes=dev_db.total_residues + len(q),
                out_bytes=4 * len(dev_db),
                compute_seconds=compute,
                kernel=lambda: self._device_pipe.search(
                    q, dev_db, query_name=query_name, top_k=0
                ),
            )
            dev_seconds = region.wait(handle)
            dev_result = handle.result

        # --- host side (overlapped in Algorithm 2) -------------------
        host_seconds = 0.0
        host_result: SearchResult | None = None
        if len(host_db):
            wl = Workload.from_lengths(
                host_db.lengths, self.host_model.spec.lanes32
            )
            host_seconds = self.host_model.run_seconds(wl, len(q), RunConfig())
            host_result = self._host_pipe.search(
                q, host_db, query_name=query_name, top_k=0
            )

        # --- merge (step 4) -------------------------------------------
        merged = self._merge(
            query_name, q, database, host_db, dev_db,
            host_result, dev_result, top_k,
        )
        return HybridSearchResult(
            result=merged,
            device_fraction=device_fraction,
            host_modeled_seconds=host_seconds,
            device_modeled_seconds=dev_seconds,
        )

    # ------------------------------------------------------------------
    def _merge(
        self, query_name, q, database, host_db, dev_db,
        host_result, dev_result, top_k,
    ) -> SearchResult:
        scores = np.zeros(len(database), dtype=np.int64)
        # Scores come back in each part's order; map through headers,
        # which are unique per entry in all the library's databases.
        index_of = {h: i for i, h in enumerate(database.headers)}
        if len(index_of) != len(database):
            raise PipelineError(
                "hybrid merge requires unique database headers"
            )
        wall = 0.0
        for part_db, part_result in (
            (host_db, host_result), (dev_db, dev_result),
        ):
            if part_result is None:
                continue
            wall += part_result.wall_seconds
            for h, s in zip(part_db.headers, part_result.scores):
                scores[index_of[h]] = s
        ranked = np.argsort(-scores, kind="stable")
        hits = [
            Hit(
                index=int(i),
                header=database.headers[int(i)],
                length=len(database.sequences[int(i)]),
                score=int(scores[int(i)]),
            )
            for i in ranked[: max(top_k, 0)]
        ]
        return SearchResult(
            query_name=query_name,
            query_length=len(q),
            database_name=database.name,
            scores=scores,
            hits=hits,
            cells=len(q) * database.total_residues,
            wall_seconds=wall,
        )
