"""Sharded out-of-core parallel search — streaming meets the pool.

Before this module the library could search databases bigger than
memory (:class:`~repro.search.StreamingSearch`, strictly serial) or
search on many real cores (:class:`~repro.parallel.ProcessPoolBackend`,
fully-resident databases only) — but not both at once.  This driver
composes them, SWAPHI-style: the record stream is split into
bounded-memory *shards* (:mod:`repro.db.shards`), every shard's chunks
are scored on the persistent worker pool, and a single bounded top-k
heap merges the results.

Determinism and fault guarantees match the serial scan exactly:

* **Chunk alignment** — shard boundaries fall on multiples of the
  streaming ``chunk_size``, so every pool task is one *serial* chunk
  and its fault-injection unit is the global chunk index.  Corruption
  decisions (and therefore ``corrupted_redone``) replay bit for bit.
* **Order-free merge** — heap entries are totally ordered by
  ``(score, -global index)``; the k largest under a total order do not
  depend on insertion order, so ties still resolve toward the earlier
  database record and the ranked hits are bit-identical to the serial
  scan whatever the worker count or completion order.
* **Double buffering** — shard *k* executes on the pool while the
  driver reads and encodes shard *k + 1*; at most two shards (plus the
  heap) are ever resident in the driver, which is what bounds peak
  memory by shard size rather than database size.

Resilience (this is the layer long scans ride on):

* **Self-healing execution** — worker deaths and hangs are absorbed by
  the pool (:class:`~repro.parallel.ProcessPoolBackend`): it heals,
  re-submits only the lost chunks, and quarantines poison chunks, so a
  mid-scan crash costs one heal, not the scan.
* **Deadlines** — an :attr:`SearchOptions.deadline` bounds the scan
  end-to-end; on expiry the driver cancels the in-flight shard and
  returns a typed :class:`~repro.search.PartialResult` whose hits are
  exactly the scan of the merged prefix (whole shards only).
* **Resumable scans** — with a ``journal`` path, the merge state is
  snapshotted after every shard (:class:`~repro.search.ScanJournal`);
  :meth:`resume` (or ``resume=True``) continues a crashed or
  deadline-killed scan from the last merged shard, producing output
  bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import heapq
from itertools import islice
from pathlib import Path
from typing import Iterable, Iterator

from ..core.engine import as_codes
from ..db.shards import Shard, ShardSpec, encode_record, iter_shards
from ..exceptions import DeadlineExceeded, PipelineError
from ..metrics.counters import METRICS, MetricsRegistry
from ..obs.tracer import get_tracer
from .api import SearchOptions
from .gcups import Stopwatch
from .journal import ScanJournal, ScanState, chain_record_digest
from .result import Hit
from .streaming import PartialResult, StreamingResult

__all__ = ["DEFAULT_SHARD_RESIDUES", "ShardedStreamingSearch"]

#: Default residue bound per shard — a few thousand typical protein
#: sequences: big enough to keep a small pool saturated, small enough
#: that two resident shards stay far below any realistic database.
DEFAULT_SHARD_RESIDUES = 1_000_000


class ShardedStreamingSearch:
    """Out-of-core top-k scan executed on a persistent worker pool.

    Parameters
    ----------
    options:
        Shared :class:`~repro.search.SearchOptions`; ``chunk_size`` is
        the per-task record batch (identical meaning to the serial
        :class:`~repro.search.StreamingSearch`), ``top_k`` the hits
        retained (``0`` = scores-only accounting, no hits), and
        ``deadline`` (when set) bounds the scan end-to-end.
    workers:
        Real worker processes scoring chunks concurrently.
    shard_residues, shard_records:
        Bounds of one shard (:class:`~repro.db.shards.ShardSpec`);
        defaults to :data:`DEFAULT_SHARD_RESIDUES` residues when
        neither is given.
    journal:
        Path for the scan journal.  When set, the merge state is
        snapshotted after every shard, a completed scan removes the
        file, and a :class:`~repro.search.PartialResult` points at it.
    resume:
        Continue from a matching journal instead of starting over
        (also available per-call via :meth:`resume`).  A journal whose
        fingerprint does not match this scan is ignored.
    chunk_timeout:
        Pool hang watchdog (seconds without any chunk completing);
        forwarded to :class:`~repro.parallel.ProcessPoolBackend`.
    max_heals, poison_threshold:
        Pool self-healing budget and poison-chunk quarantine bound;
        forwarded to the backend.
    metrics:
        Registry receiving ``streaming.*``, ``streaming.shard.*``,
        ``resume.*`` and ``deadline.*`` metrics (defaults to the
        process-wide one).

    The pool starts lazily on the first search (or via :meth:`start`)
    and persists across searches; :meth:`close` shuts it down.
    """

    def __init__(
        self,
        options: SearchOptions | None = None,
        *,
        workers: int,
        shard_residues: int | None = None,
        shard_records: int | None = None,
        journal: str | Path | None = None,
        resume: bool = False,
        chunk_timeout: float | None = None,
        max_heals: int = 8,
        poison_threshold: int = 3,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if int(workers) < 1:
            raise PipelineError(
                f"worker count must be positive, got {workers}"
            )
        opts = options if options is not None else SearchOptions()
        self.options = opts
        self.matrix = opts.resolved_matrix()
        self.gaps = opts.resolved_gaps()
        self.chunk_size = opts.chunk_size
        self.top_k = opts.top_k
        self.alphabet = opts.alphabet
        self.injector = opts.injector
        self.workers = int(workers)
        if shard_residues is None and shard_records is None:
            shard_residues = DEFAULT_SHARD_RESIDUES
        self.spec = ShardSpec(
            max_residues=shard_residues, max_records=shard_records
        )
        self.journal = ScanJournal(journal) if journal is not None else None
        self.resume_enabled = bool(resume)
        self.chunk_timeout = chunk_timeout
        self.max_heals = max_heals
        self.poison_threshold = poison_threshold
        self.metrics = metrics if metrics is not None else METRICS
        from ..core.vectorized import DEFAULT_LANES
        from ..parallel.worker import EngineConfig

        # The serial streamed scan runs a default-profile, unblocked
        # engine at the options' lane width — mirror it exactly,
        # including the kernel and its kernel-specific default width.
        kernel = opts.resolved_kernel()
        self._engine_cfg = EngineConfig(
            lanes=opts.resolved_lanes(DEFAULT_LANES[kernel]), kernel=kernel
        )
        self._backend = None

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Start (or return) the streaming worker pool.

        Raises :class:`~repro.exceptions.ParallelError` when the pool
        cannot come up — deliberately *before* any record is consumed,
        so callers can still fall back to the serial scan over the very
        same stream.
        """
        from ..parallel.backend import ProcessPoolBackend

        if self._backend is None or self._backend.closed:
            self._backend = ProcessPoolBackend(
                None,
                workers=self.workers,
                chunk_timeout=self.chunk_timeout,
                max_heals=self.max_heals,
                poison_threshold=self.poison_threshold,
                metrics=self.metrics,
            )
        return self._backend

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        backend, self._backend = self._backend, None
        if backend is not None:
            backend.close()

    def __enter__(self) -> "ShardedStreamingSearch":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # the sharded scan
    # ------------------------------------------------------------------
    def _read_shards(self, records: Iterable, tracer) -> Iterator[Shard]:
        """Yield shards, timing each read/encode leg (`shard.read`)."""
        source = iter_shards(
            records, self.spec,
            alphabet=self.alphabet, align_records=self.chunk_size,
        )
        while True:
            watch = Stopwatch()
            with tracer.span("shard.read") as sp, watch:
                shard = next(source, None)
                if sp and shard is not None:
                    sp.set_attributes(
                        shard=shard.shard_id,
                        records=shard.n_records,
                        residues=shard.residues,
                    )
            if shard is None:
                return
            self.metrics.increment("streaming.shard.count")
            self.metrics.increment("streaming.shard.records", shard.n_records)
            self.metrics.increment("streaming.shard.residues", shard.residues)
            self.metrics.observe("streaming.shard.read.seconds", watch.seconds)
            yield shard

    def _submit(self, backend, q, shard: Shard, deadline):
        """One pool task per serial chunk of ``shard`` (non-blocking)."""
        from ..parallel.worker import ChunkTask

        plan = self.injector.plan if self.injector is not None else None
        tasks = []
        for off in range(0, shard.n_records, self.chunk_size):
            base = shard.base_index + off
            unit = base // self.chunk_size  # global serial chunk index
            tasks.append(ChunkTask(
                chunk_id=unit,
                kind="stream",
                query=q,
                matrix=self.matrix,
                gaps=self.gaps,
                engine=self._engine_cfg,
                seqs=tuple(shard.sequences[off:off + self.chunk_size]),
                base_index=base,
                plan=plan,
                fault_unit_base=unit,
                deadline=deadline,
            ))
        return backend.submit_tasks_async(tasks), len(tasks)

    def _merge(
        self, backend, shard: Shard, futures, heap, tracer, deadline
    ) -> tuple:
        """Harvest ``shard``'s results and fold them into the heap."""
        watch = Stopwatch()
        with tracer.span("shard.score") as sp, watch:
            results = backend.collect(futures, deadline=deadline)
            if sp:
                sp.set_attributes(
                    shard=shard.shard_id, chunks=len(results),
                    workers=len({r.pid for r in results}),
                )
        self.metrics.observe("streaming.shard.score.seconds", watch.seconds)

        scanned = cells = redone = 0
        merge_watch = Stopwatch()
        with tracer.span("shard.merge") as sp, merge_watch:
            if sp:
                sp.set_attributes(shard=shard.shard_id)
            for res in results:
                cells += res.cells
                redone += res.redone
                for pos, score in zip(res.positions, res.scores):
                    idx = int(pos)
                    scanned += 1
                    local = idx - shard.base_index
                    hit = Hit(
                        index=idx,
                        header=shard.headers[local],
                        length=len(shard.sequences[local]),
                        score=int(score),
                    )
                    entry = (int(score), -idx, hit)
                    if len(heap) < self.top_k:
                        heapq.heappush(heap, entry)
                    elif heap and entry > heap[0]:
                        heapq.heapreplace(heap, entry)
        self.metrics.observe(
            "streaming.shard.merge.seconds", merge_watch.seconds
        )
        return scanned, cells, redone

    def _load_state(self, fingerprint: str | None) -> ScanState:
        """The resume snapshot when enabled and matching, else fresh."""
        if (
            self.journal is None
            or not self.resume_enabled
            or fingerprint is None
        ):
            return ScanState()
        state = self.journal.load(fingerprint)
        if state is None:
            return ScanState()
        self.metrics.increment("resume.loaded")
        self.metrics.increment("resume.records_skipped", state.records_done)
        get_tracer().event(
            "resume.loaded", records_done=state.records_done,
            shards_merged=state.shards_merged,
        )
        return state

    def search_records(
        self,
        query,
        records: Iterable,
        *,
        query_name: str = "query",
        database_name: str = "<stream>",
        top_k: int | None = None,
        total_records: int | None = None,
    ) -> StreamingResult:
        """Stream records through the pool; return the serial top-k.

        ``records`` may be :class:`~repro.db.fasta.FastaRecord` objects
        or ``(header, sequence)`` pairs (sequences as residue letters or
        encoded arrays).  Hits, tie order and ``corrupted_redone`` are
        bit-identical to :class:`~repro.search.StreamingSearch` over the
        same stream — including when the pool healed worker deaths
        mid-scan, and including a resumed scan continuing a journal.
        On deadline expiry a :class:`~repro.search.PartialResult` is
        returned instead (``total_records``, when known, gives it a
        completion fraction).
        """
        if self.options.mode != "exact":
            # Tiered modes prune the stream before exact scoring; what
            # survives is too little work to shard across a pool, so
            # the scan routes to the in-driver tiered driver (survivor
            # sets are chunking- and sharding-invariant).
            from .tiered import TieredSearch

            return TieredSearch(
                self.options, metrics=self.metrics
            ).search_records(
                query, records, query_name=query_name,
                database_name=database_name, top_k=top_k,
                total_records=total_records,
            )
        q = as_codes(query, self.alphabet)
        if top_k is None:
            top_k = self.top_k
        deadline = self.options.deadline
        backend = self.start()
        fingerprint = None
        if self.journal is not None:
            fingerprint = ScanJournal.fingerprint(
                q,
                database_name=database_name,
                top_k=top_k,
                chunk_size=self.chunk_size,
                max_residues=self.spec.max_residues,
                max_records=self.spec.max_records,
                matrix=self.matrix,
                gaps=self.gaps,
                alphabet=self.alphabet,
                plan=(
                    self.injector.plan if self.injector is not None else None
                ),
            )
        state = self._load_state(fingerprint)
        resume_records = state.records_done
        resume_shards = state.shards_merged
        heap: list[tuple[int, int, Hit]] = state.heap_entries()
        records = iter(records)
        if resume_records:
            # Skip the journalled prefix, re-hashing it on the way: the
            # fingerprint keys the scan *parameters* but cannot see the
            # stream's content, so the chained record digest is what
            # proves this is the same stream the journal came from.
            consumed = 0
            digest = ""
            for item in islice(records, resume_records):
                header, codes = encode_record(item, self.alphabet)
                digest = chain_record_digest(digest, header, codes)
                consumed += 1
            if consumed < resume_records:
                raise PipelineError(
                    f"scan journal covers {resume_records} records but the "
                    f"stream only provided {consumed} — wrong stream for "
                    f"this journal"
                )
            if digest != state.prefix_digest:
                raise PipelineError(
                    f"scan journal prefix checksum does not match the "
                    f"first {resume_records} records of this stream — "
                    f"wrong stream for this journal"
                )
        watch = Stopwatch()
        tracer = get_tracer()
        expired = False

        # Temporarily pin the heap bound for _merge (kept on self to
        # avoid threading it through every helper).
        saved_top_k, self.top_k = self.top_k, top_k
        try:
            with tracer.span("streaming.search") as root:
                if root:
                    root.set_attributes(
                        query_name=query_name, query_length=len(q),
                        database=database_name, chunk_size=self.chunk_size,
                        top_k=top_k, executor="sharded",
                        workers=self.workers,
                        shard_residues=self.spec.max_residues,
                        shard_records=self.spec.max_records,
                        resumed_records=resume_records,
                    )

                def fold(done_shard, futures, n_tasks):
                    s, c, r = self._merge(
                        backend, done_shard, futures, heap, tracer, deadline
                    )
                    state.scanned += s
                    state.cells += c
                    state.corrupted_redone += r
                    state.chunks += n_tasks
                    state.records_done += done_shard.n_records
                    state.shards_merged += 1
                    if self.journal is not None:
                        digest = state.prefix_digest
                        for header, codes in zip(
                            done_shard.headers, done_shard.sequences
                        ):
                            digest = chain_record_digest(
                                digest, header, codes
                            )
                        state.prefix_digest = digest
                        state.heap = ScanState.pack_heap(heap)
                        self.journal.save(fingerprint, state)
                        self.metrics.increment("resume.saved")

                with watch:
                    pending: tuple | None = None
                    try:
                        # Double buffer: while shard k executes on the
                        # pool, the loop header reads/encodes shard k+1.
                        for shard in self._read_shards(records, tracer):
                            # Rebase a resumed stream to global
                            # coordinates: record indices, shard ids and
                            # fault units must match the uninterrupted
                            # scan exactly.
                            shard.shard_id += resume_shards
                            shard.base_index += resume_records
                            if pending is not None:
                                fold(*pending)
                            if deadline is not None:
                                deadline.check("shard submission")
                            futures, n_tasks = self._submit(
                                backend, q, shard, deadline
                            )
                            pending = (shard, futures, n_tasks)
                        if pending is not None:
                            fold(*pending)
                    except DeadlineExceeded:
                        expired = True
                        if pending is not None:
                            backend.cancel(pending[1])

                if state.scanned == 0 and not expired:
                    raise PipelineError("the record stream was empty")
                if root:
                    root.set_attributes(
                        chunks=state.chunks, sequences=state.scanned,
                        shards=state.shards_merged, partial=expired,
                    )
                self.metrics.increment("streaming.searches")
                self.metrics.increment("streaming.chunks", state.chunks)
                self.metrics.observe(
                    "streaming.search.seconds", watch.seconds
                )
                ranked = sorted(heap, key=lambda e: (-e[0], -e[1]))
                common = dict(
                    query_name=query_name,
                    query_length=len(q),
                    hits=[h for _, _, h in ranked],
                    sequences_scanned=state.scanned,
                    cells=state.cells,
                    chunks=state.chunks,
                    wall_seconds=watch.seconds,
                    corrupted_redone=state.corrupted_redone,
                    database_name=database_name,
                )
                if expired:
                    self.metrics.increment("deadline.partial")
                    tracer.event(
                        "deadline.expired", where="streaming.sharded",
                        scanned=state.scanned,
                        shards_merged=state.shards_merged,
                    )
                    return PartialResult(
                        **common,
                        total_records=total_records,
                        shards_merged=state.shards_merged,
                        journal_path=(
                            str(self.journal.path)
                            if self.journal is not None else None
                        ),
                    )
                if self.journal is not None:
                    self.journal.clear()
                return StreamingResult(**common)
        finally:
            self.top_k = saved_top_k

    def resume(
        self,
        query,
        records: Iterable,
        **kwargs,
    ) -> StreamingResult:
        """Continue a journalled scan over the same stream.

        Equivalent to :meth:`search_records` with resume forced on for
        this one call: the journal's merged prefix is skipped and the
        scan continues from the last merged shard.  The final result is
        bit-identical to an uninterrupted run.  Requires a ``journal``
        path; a missing or mismatching journal simply scans from the
        start.
        """
        if self.journal is None:
            raise PipelineError(
                "resume() requires this search to be built with a "
                "journal path"
            )
        saved, self.resume_enabled = self.resume_enabled, True
        try:
            return self.search_records(query, records, **kwargs)
        finally:
            self.resume_enabled = saved

    def search_fasta(
        self, query, path, *, query_name: str = "query",
        top_k: int | None = None,
    ) -> StreamingResult:
        """Stream a FASTA file from disk (never fully loaded)."""
        from pathlib import Path

        from ..db.fasta import read_fasta

        return self.search_records(
            query, read_fasta(path), query_name=query_name,
            database_name=Path(path).stem, top_k=top_k,
        )

    def search_database(
        self, query, database, *, query_name: str = "query",
        top_k: int | None = None,
    ) -> StreamingResult:
        """Scan a resident :class:`~repro.db.SequenceDatabase`.

        The entries stream through the shard pipeline in database
        order without re-encoding; useful when a database object is
        too large to preprocess/broadcast whole but already loaded.
        """
        return self.search_records(
            query,
            zip(database.headers, database.sequences),
            query_name=query_name,
            database_name=database.name,
            top_k=top_k,
            total_records=len(database),
        )
