"""The unified search API: options, requests, and the outcome protocol.

Four entrypoints grew out of the paper's algorithms —``SearchPipeline``
(Algorithm 1), ``StreamingSearch`` (out-of-core Algorithm 1),
``HybridSearchPipeline`` (Algorithm 2) and ``MultiQueryExecutor`` (the
query-distribution extension) — and each accreted its own overlapping
keyword surface.  This module is the single vocabulary they all share:

* :class:`SearchOptions` — every search-semantic knob (scoring scheme,
  lane width, schedule, fault injector, ...) in one frozen dataclass.
  All four entrypoints accept it as their ``options`` argument — the
  *only* spelling of search semantics; the old per-class keywords are
  rejected with a ``TypeError`` naming the migration (see
  :func:`unify_options`), because the wire schema of
  :mod:`repro.serve` requires exactly one spelling of every option.
* :class:`SearchRequest` — one query of a batch, as consumed by
  :class:`repro.service.SearchService`.
* :class:`SearchOutcome` — the structural protocol every result type
  satisfies (``hits``, ``best_score()``, ``gcups``, ``provenance``), so
  callers can rank/report without caring which engine produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping, Protocol, Sequence, runtime_checkable

from ..alphabet import PROTEIN, Alphabet
from ..devices.openmp import Schedule
from ..exceptions import PipelineError
from ..faults.injection import FaultInjector
from ..faults.policy import Deadline
from ..scoring.gaps import GapModel, paper_gap_model
from ..scoring.matrices import SubstitutionMatrix

__all__ = [
    "UNSET",
    "SearchOptions",
    "SearchRequest",
    "SearchOutcome",
    "unify_options",
]


class _Unset:
    """Sentinel distinguishing "not passed" from an explicit ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UNSET"


#: "Not passed" marker for :meth:`SearchOptions.merged` overrides —
#: UNSET entries are dropped instead of overwriting the field.
UNSET = _Unset()


@dataclass(frozen=True)
class SearchOptions:
    """Search semantics shared by every entrypoint.

    ``None`` fields mean "the library default": BLOSUM62, the paper's
    10/2 gap model, and a lane width chosen by the consumer (8 for the
    plain pipeline, the device's native width in hybrid paths).

    Parameters
    ----------
    matrix, gaps:
        Scoring scheme.
    lanes:
        Inter-task vector width; ``None`` lets each consumer pick (the
        chosen kernel's default width).
    kernel:
        Scoring kernel for the inter-task engine: ``"python"`` (the
        instruction-faithful SIMD emulation), ``"numpy"`` (the
        array-vectorised kernel of :mod:`repro.core.vectorized`), or
        ``None`` to follow the ``REPRO_KERNEL`` environment variable
        (default ``"python"``).  Scores, hit order and cell accounting
        are bit-identical across kernels.
    profile:
        ``"sequence"`` (SP) or ``"query"`` (QP) score addressing.
    schedule:
        OpenMP policy for the simulated group loop.
    threads:
        Virtual thread count for the schedule simulation.
    mode:
        Search tier: ``"exact"`` (the default — exhaustive SW over
        every sequence, bit-identical to every release so far),
        ``"sensitive"`` or ``"fast"`` (the tiered heuristic path of
        :mod:`repro.search.tiered`: k-mer seeding prunes candidates,
        the banded engine verifies survivors, and only the final
        candidate set is rescored with exact SW — so every *reported*
        score is an exact SW score, but low-similarity sequences may
        be pruned before rescoring and miss the ranking).
    top_k:
        Default number of ranked hits returned; ``0`` means scores
        only — the search still runs and accounts, but keeps no
        ranked hits (the work-queue scheduler uses this internally).
    chunk_size:
        Streaming batch size (records per chunk).
    alphabet:
        Residue alphabet.
    injector:
        Optional fault injector; payloads then cross a checksum guard.
    deadline:
        Optional end-to-end :class:`~repro.faults.Deadline`.  The
        resident pipeline raises
        :class:`~repro.exceptions.DeadlineExceeded` on expiry; the
        streaming entry points return a typed
        :class:`~repro.search.PartialResult` carrying the hits merged
        so far instead.
    """

    matrix: SubstitutionMatrix | None = None
    gaps: GapModel | None = None
    lanes: int | None = None
    kernel: str | None = None
    profile: str = "sequence"
    mode: str = "exact"
    schedule: Schedule | str = Schedule.DYNAMIC
    threads: int = 4
    top_k: int = 10
    chunk_size: int = 512
    alphabet: Alphabet = field(default_factory=lambda: PROTEIN)
    injector: FaultInjector | None = None
    deadline: Deadline | None = None

    def __post_init__(self) -> None:
        if self.lanes is not None and self.lanes < 1:
            raise PipelineError(f"lanes must be positive, got {self.lanes}")
        if self.threads < 1:
            raise PipelineError(f"threads must be positive, got {self.threads}")
        if self.top_k < 0:
            raise PipelineError(
                f"top_k must be non-negative, got {self.top_k}"
            )
        if self.chunk_size < 1:
            raise PipelineError(
                f"chunk size must be positive, got {self.chunk_size}"
            )
        if self.profile not in ("sequence", "query"):
            raise PipelineError(
                f"profile must be 'sequence' or 'query', got {self.profile!r}"
            )
        if self.kernel is not None and self.kernel not in ("python", "numpy"):
            raise PipelineError(
                f"kernel must be 'python' or 'numpy', got {self.kernel!r}"
            )
        if self.mode not in ("exact", "sensitive", "fast"):
            raise PipelineError(
                f"mode must be 'exact', 'sensitive' or 'fast', "
                f"got {self.mode!r}"
            )
        Schedule.parse(self.schedule)  # fail fast on bad schedule specs

    # ------------------------------------------------------------------
    def resolved_matrix(self) -> SubstitutionMatrix:
        """The substitution matrix, defaulting to the paper's BLOSUM62."""
        if self.matrix is not None:
            return self.matrix
        from ..scoring.data_blosum import BLOSUM62

        return BLOSUM62

    def resolved_gaps(self) -> GapModel:
        """The gap model, defaulting to the paper's 10/2."""
        return self.gaps if self.gaps is not None else paper_gap_model()

    def resolved_lanes(self, default: int = 8) -> int:
        """The lane width, falling back to the consumer's ``default``."""
        return self.lanes if self.lanes is not None else default

    def resolved_kernel(self) -> str:
        """The scoring kernel, falling back to ``REPRO_KERNEL`` or python.

        The environment hook lets CI force the whole tier-1 suite through
        the numpy kernel without touching any call site.
        """
        if self.kernel is not None:
            return self.kernel
        import os

        env = os.environ.get("REPRO_KERNEL", "python")
        if env not in ("python", "numpy"):
            raise PipelineError(
                f"REPRO_KERNEL must be 'python' or 'numpy', got {env!r}"
            )
        return env

    def merged(self, **overrides: Any) -> "SearchOptions":
        """A copy with ``overrides`` applied (UNSET entries dropped)."""
        present = {k: v for k, v in overrides.items() if v is not UNSET}
        return replace(self, **present) if present else self

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """The unified option vocabulary (used by the API-surface test)."""
        return tuple(f.name for f in fields(cls))


@dataclass(frozen=True)
class SearchRequest:
    """One query of a service batch.

    ``top_k`` overrides the batch-wide :attr:`SearchOptions.top_k` for
    this request only; ``None`` inherits it.  ``deadline`` likewise
    overrides the batch-wide :attr:`SearchOptions.deadline` for this
    request.
    """

    query: Any  # residue string or encoded uint8 array
    name: str = "query"
    top_k: int | None = None
    traceback: bool = False
    deadline: Deadline | None = None

    def __post_init__(self) -> None:
        if self.top_k is not None and self.top_k < 0:
            raise PipelineError(f"top_k must be non-negative, got {self.top_k}")


@runtime_checkable
class SearchOutcome(Protocol):
    """What every search result type exposes, whatever produced it.

    ``gcups`` is the outcome's *headline* throughput: wall-clock GCUPS
    for the real-compute types (:class:`~repro.search.SearchResult`,
    :class:`~repro.search.StreamingResult`), modelled-makespan GCUPS for
    the heterogeneous types whose reason to exist is the timing model.
    ``provenance`` carries the identifying fields (query, database,
    executor kind) for reports and logs.
    """

    @property
    def hits(self) -> Sequence[Any]: ...

    def best_score(self) -> int: ...

    @property
    def gcups(self) -> float: ...

    @property
    def provenance(self) -> Mapping[str, Any]: ...


def unify_options(
    options: Any,
    legacy: Mapping[str, Any] | None = None,
    *,
    owner: str,
) -> SearchOptions:
    """Resolve an entrypoint's ``options`` argument — one spelling only.

    ``options`` must be a :class:`SearchOptions` or ``None`` (library
    defaults).  ``legacy`` carries an entrypoint's ``**legacy``
    catch-all: any old per-class keyword (``SearchPipeline(lanes=16)``,
    ``StreamingSearch(chunk_size=32)``) raises a hard ``TypeError``
    naming the one-line migration.  The deprecation shim that used to
    merge-and-warn is gone — the versioned wire schema of
    :mod:`repro.serve` requires exactly one spelling of every option,
    so the in-process API has exactly one too.
    """
    if legacy:
        names = sorted(legacy)
        known = [k for k in names if k in SearchOptions.field_names()]
        if known:
            spelled = ", ".join(f"{k}=..." for k in known)
            raise TypeError(
                f"{owner}({spelled}) per-class keyword arguments were "
                f"removed; pass repro.SearchOptions({spelled}) as the "
                f"'options' argument instead"
            )
        raise TypeError(
            f"{owner}() got an unexpected keyword argument {names[0]!r}"
        )
    if options is None:
        return SearchOptions()
    if isinstance(options, SearchOptions):
        return options
    if isinstance(options, SubstitutionMatrix):
        # The pre-unification positional call: SearchPipeline(BLOSUM62).
        raise TypeError(
            f"{owner}(matrix) positional substitution matrices were "
            f"removed; pass repro.SearchOptions(matrix=...) instead"
        )
    raise PipelineError(
        f"{owner}: expected SearchOptions, got {type(options).__name__}"
    )
