"""Tiered heuristic search: seed -> banded verify -> exact SW rescore.

The exhaustive scan pays ``O(m * n)`` for every database sequence; at
"millions of users" scale that asymptotic is the bottleneck, not the
constant.  This module composes the existing building blocks into the
index-then-verify architecture of the INRIA fine-grained similarity
search report (PAPERS.md): a k-mer/neighbourhood seed stage
(:mod:`repro.heuristic.kmer`) prunes the candidate set, the banded
engine (:mod:`repro.core.banded`, via
:func:`repro.heuristic.extend.gapped_extend`) verifies survivors, and
only the final candidates are rescored with the exact kernel-selected
Smith-Waterman engines.

The contract: every *reported* score is an exact SW score — stage 3
rescoring is per-sequence independent, so a returned hit's score is
bit-identical to what the exhaustive scan reports for that sequence —
but low-similarity sequences can be pruned before rescoring and miss
the ranking.  The sensitivity/speed trade is selected with
``SearchOptions.mode``:

========== ===================================================
mode       semantics
========== ===================================================
exact      exhaustive scan (the default; no tiering at all)
sensitive  classic BLASTP-flavoured seeding, wide verify band
fast       two-hit seeding, stricter thresholds, narrow band
========== ===================================================

Recall of each mode versus exhaustive search is a *measured* quantity:
``benchmarks/bench_tiered_recall.py`` sweeps mutated-homolog databases
(:mod:`repro.db.mutate`) across divergence levels and records recall@k
with GCUPS-equivalent throughput.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..core.engine import as_codes
from ..core.traceback import align_pair
from ..core.vectorized import DEFAULT_LANES, make_intertask_engine
from ..db.database import SequenceDatabase
from ..db.shards import encode_record
from ..exceptions import PipelineError
from ..heuristic.extend import Seed, gapped_extend, ungapped_extend
from ..heuristic.kmer import KmerWordCoder, build_query_word_table
from ..metrics.counters import METRICS, MetricsRegistry
from ..obs.tracer import get_tracer
from .api import SearchOptions, unify_options
from .gcups import Stopwatch
from .result import Hit, SearchResult
from .streaming import PartialResult, StreamingResult, _chunked

__all__ = [
    "TIER_PRESETS",
    "TierPreset",
    "TierStats",
    "TieredFilter",
    "TieredSearch",
    "TieredSearchResult",
]


@dataclass(frozen=True)
class TierPreset:
    """Stage thresholds realising one ``SearchOptions.mode``.

    Stage 1 (seed): neighbourhood word hits (word size ``k``, score
    threshold ``threshold``) are extended ungapped with X-drop
    ``x_drop``; a sequence survives when its best ungapped HSP reaches
    ``seed_min_score``.  ``two_hit`` gates extension on a second
    non-overlapping same-diagonal hit within ``two_hit_window``.

    Stage 2 (verify): the best HSP is refined with a banded gapped
    extension (half-width ``band``, window ``window``); survivors need
    ``verify_min_score``.

    Stage 3 (rescore) has no knobs: survivors get full exact SW.
    """

    k: int = 3
    threshold: int = 11
    x_drop: int = 16
    two_hit: bool = False
    two_hit_window: int = 40
    seed_min_score: int = 20
    band: int = 12
    window: int = 64
    verify_min_score: int = 42


#: The measured sensitivity/speed points behind ``SearchOptions.mode``.
#: "sensitive" keeps the classic BLASTP seeding surface (k=3, T=11) and
#: a wide verify band; "fast" demands two-hit diagonals and prunes much
#: harder before paying for verification.
TIER_PRESETS: dict[str, TierPreset] = {
    "sensitive": TierPreset(
        k=3, threshold=11, x_drop=16, two_hit=False,
        seed_min_score=20, band=12, window=64, verify_min_score=42,
    ),
    "fast": TierPreset(
        k=3, threshold=12, x_drop=16, two_hit=True, two_hit_window=40,
        seed_min_score=24, band=6, window=48, verify_min_score=45,
    ),
}


@dataclass
class TierStats:
    """Per-stage funnel and cell accounting of one tiered search."""

    mode: str
    candidates: int = 0         # sequences entering stage 1
    seed_survivors: int = 0     # sequences passing the seed stage
    verify_survivors: int = 0   # sequences rescored with exact SW
    seed_cells: int = 0         # ungapped-extension DP cells
    verify_cells: int = 0       # banded-verification DP cells
    rescore_cells: int = 0      # exact SW cells actually computed
    exhaustive_cells: int = 0   # what a full exact scan would compute

    @property
    def total_cells(self) -> int:
        """All DP cells the tiered search computed, every stage."""
        return self.seed_cells + self.verify_cells + self.rescore_cells

    @property
    def exact_cell_reduction(self) -> float:
        """Exhaustive exact-SW cells per exact-SW cell actually paid."""
        if self.rescore_cells == 0:
            return float("inf") if self.exhaustive_cells else 1.0
        return self.exhaustive_cells / self.rescore_cells

    @property
    def cells_saved(self) -> float:
        """Fraction of the exhaustive scan's work skipped (all stages)."""
        if self.exhaustive_cells == 0:
            return 0.0
        return 1.0 - self.total_cells / self.exhaustive_cells

    def to_dict(self) -> dict:
        """Plain-JSON form (rides in result provenance and the wire)."""
        return {
            "mode": self.mode,
            "candidates": self.candidates,
            "seed_survivors": self.seed_survivors,
            "verify_survivors": self.verify_survivors,
            "seed_cells": self.seed_cells,
            "verify_cells": self.verify_cells,
            "rescore_cells": self.rescore_cells,
            "exhaustive_cells": self.exhaustive_cells,
            "exact_cell_reduction": (
                None if self.rescore_cells == 0
                else round(self.exact_cell_reduction, 3)
            ),
            "cells_saved": round(self.cells_saved, 6),
        }


@dataclass
class TieredSearchResult(SearchResult):
    """A :class:`SearchResult` whose ranking came from the tiered path.

    ``scores`` holds the exact SW score for every rescored survivor and
    0 for pruned sequences; ``hits`` contains only rescored sequences,
    so every reported score is exact.  ``cells`` counts the cells
    actually computed across all three stages (honest GCUPS);
    :attr:`tier` breaks the funnel down per stage.
    """

    mode: str = "sensitive"
    tier: TierStats | None = None

    @property
    def provenance(self) -> dict:
        prov = SearchResult.provenance.fget(self)  # type: ignore[attr-defined]
        prov["mode"] = self.mode
        if self.tier is not None:
            prov["tiered"] = self.tier.to_dict()
        return prov


class TieredFilter:
    """Stages 1 and 2 for one query: deterministic per sequence.

    The query word table (with neighbourhoods) is built once; each
    database sequence is then classified independently — the filter
    decision for a sequence never depends on its neighbours, so any
    chunking or sharding of the stream leaves the survivor set (and
    therefore the final ranking) unchanged.
    """

    def __init__(
        self,
        query: np.ndarray,
        matrix,
        gaps,
        preset: TierPreset,
        *,
        alphabet,
    ) -> None:
        if len(query) < preset.k:
            raise PipelineError(
                f"query shorter than the tiered word size "
                f"({len(query)} < {preset.k}) — use mode='exact'"
            )
        self.query = query
        self.matrix = matrix
        self.gaps = gaps
        self.preset = preset
        self.alphabet = alphabet
        self.table = build_query_word_table(
            query, matrix, k=preset.k, threshold=preset.threshold
        )
        self.coder = KmerWordCoder(preset.k, alphabet)

    # ------------------------------------------------------------------
    def seed(self, seq: np.ndarray) -> tuple[object | None, Seed | None, int]:
        """Stage 1: best ungapped HSP of ``seq`` (or ``None``), plus cells.

        Mirrors :class:`~repro.heuristic.MiniBlast` seeding: per-diagonal
        de-duplication, optional two-hit gating, X-drop extension of
        every qualifying seed.
        """
        p = self.preset
        q = self.query
        words = self.coder.words_of(seq)
        best = None
        best_seed = None
        cells = 0
        covered: dict[int, int] = {}
        last_hit: dict[int, int] = {}
        for j in range(len(words)):
            qpos_list = self.table.get(int(words[j]))
            if not qpos_list:
                continue
            for i in qpos_list:
                diag = j - i
                if covered.get(diag, -1) >= j:
                    continue
                if p.two_hit:
                    prev = last_hit.get(diag)
                    last_hit[diag] = j
                    if prev is None or not (
                        p.k <= j - prev <= p.two_hit_window
                    ):
                        continue
                seed = Seed(qpos=i, dpos=j, length=p.k)
                ext = ungapped_extend(q, seq, seed, self.matrix,
                                      x_drop=p.x_drop)
                cells += ext.cells
                covered[diag] = ext.dend
                if best is None or ext.score > best.score:
                    best = ext
                    best_seed = seed
        if best is not None and best.score < p.seed_min_score:
            best = best_seed = None
        return best, best_seed, cells

    def verify(self, seq: np.ndarray, seed: Seed, ungapped) -> tuple[int, int]:
        """Stage 2: banded gapped score around the best HSP, plus cells."""
        p = self.preset
        window = max(p.window, ungapped.length + 2 * p.band)
        ext = gapped_extend(
            self.query, seq, seed, self.matrix, self.gaps,
            window=window, band=p.band,
        )
        return ext.score, ext.cells

    def survives(self, seq: np.ndarray) -> tuple[bool, int, int]:
        """Both stages for one sequence.

        Returns ``(rescore?, seed_cells, verify_cells)`` — the one-call
        form the streaming drivers use per record.
        """
        best, best_seed, seed_cells = self.seed(seq)
        if best is None:
            return False, seed_cells, 0
        score, verify_cells = self.verify(seq, best_seed, best)
        return score >= self.preset.verify_min_score, seed_cells, verify_cells


class TieredSearch:
    """The tiered executor behind ``SearchOptions.mode != "exact"``.

    Accepts the same :class:`~repro.search.SearchOptions` vocabulary as
    every other entrypoint; ``mode`` selects the preset.  Fault
    injection is an exhaustive-path feature (faults are keyed on lane
    groups the tiered path never forms) and is rejected up front.
    """

    def __init__(
        self,
        options: SearchOptions | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        **legacy,
    ) -> None:
        opts = unify_options(options, legacy, owner="TieredSearch")
        if opts.mode == "exact":
            raise PipelineError(
                "TieredSearch requires mode='sensitive' or 'fast'; "
                "mode='exact' is the exhaustive SearchPipeline"
            )
        if opts.injector is not None:
            raise PipelineError(
                "fault injection is not supported on the tiered path — "
                "use mode='exact'"
            )
        self.options = opts
        self.mode = opts.mode
        self.preset = TIER_PRESETS[opts.mode]
        self.matrix = opts.resolved_matrix()
        self.gaps = opts.resolved_gaps()
        self.alphabet = opts.alphabet
        self.kernel = opts.resolved_kernel()
        self.metrics = metrics if metrics is not None else METRICS
        self.engine = make_intertask_engine(
            self.kernel,
            alphabet=opts.alphabet,
            lanes=opts.resolved_lanes(DEFAULT_LANES[self.kernel]),
            profile=opts.profile,
        )

    # ------------------------------------------------------------------
    def _filter_for(self, q: np.ndarray) -> TieredFilter:
        return TieredFilter(
            q, self.matrix, self.gaps, self.preset, alphabet=self.alphabet
        )

    def _record_metrics(self, stats: TierStats, seconds: float) -> None:
        m = self.metrics
        m.increment("tiered.searches")
        m.increment("tiered.candidates", stats.candidates)
        m.increment("tiered.seed.survivors", stats.seed_survivors)
        m.increment("tiered.verify.survivors", stats.verify_survivors)
        m.increment("tiered.seed.cells", stats.seed_cells)
        m.increment("tiered.verify.cells", stats.verify_cells)
        m.increment("tiered.rescore.cells", stats.rescore_cells)
        m.observe("tiered.search.seconds", seconds)
        m.set_gauge("tiered.last.cells_saved", stats.cells_saved)

    # ------------------------------------------------------------------
    def search(
        self,
        query,
        database: SequenceDatabase,
        *,
        query_name: str = "query",
        top_k: int | None = None,
        traceback: bool = False,
    ) -> TieredSearchResult:
        """Tiered scan of a resident database.

        Ranking uses the same stable descending argsort as the
        exhaustive pipeline, so two sequences that both survive to
        rescoring order exactly as they would in the exhaustive
        ranking (score ties break toward the earlier database record).
        ``hits`` contains only rescored survivors — never a fabricated
        score for a pruned sequence.
        """
        if len(database) == 0:
            raise PipelineError("cannot search an empty database")
        if top_k is None:
            top_k = self.options.top_k
        q = as_codes(query, self.alphabet)
        filt = self._filter_for(q)
        deadline = self.options.deadline
        stats = TierStats(mode=self.mode, candidates=len(database))
        stats.exhaustive_cells = len(q) * database.total_residues
        tracer = get_tracer()
        watch = Stopwatch()

        with tracer.span("tiered.search") as root:
            if root:
                root.set_attributes(
                    query_name=query_name, query_length=len(q),
                    database=database.name, sequences=len(database),
                    mode=self.mode,
                )
            with watch:
                # Stage 1: seed every sequence.
                survivors: list[tuple[int, Seed, object]] = []
                with tracer.span("tiered.seed") as sp:
                    for idx, seq in enumerate(database.sequences):
                        if deadline is not None and idx % 256 == 0:
                            deadline.check("tiered seed stage")
                        best, best_seed, cells = filt.seed(seq)
                        stats.seed_cells += cells
                        if best is not None:
                            survivors.append((idx, best_seed, best))
                    stats.seed_survivors = len(survivors)
                    if sp:
                        sp.set_attributes(
                            candidates=stats.candidates,
                            survivors=stats.seed_survivors,
                            cells=stats.seed_cells,
                        )
                # Stage 2: banded verification of seed survivors.
                finalists: list[int] = []
                with tracer.span("tiered.verify") as sp:
                    for idx, seed, best in survivors:
                        if deadline is not None:
                            deadline.check("tiered verify stage")
                        score, cells = filt.verify(
                            database.sequences[idx], seed, best
                        )
                        stats.verify_cells += cells
                        if score >= self.preset.verify_min_score:
                            finalists.append(idx)
                    stats.verify_survivors = len(finalists)
                    if sp:
                        sp.set_attributes(
                            candidates=stats.seed_survivors,
                            survivors=stats.verify_survivors,
                            cells=stats.verify_cells,
                        )
                # Stage 3: exact SW rescoring of the final candidates.
                scores = np.zeros(len(database), dtype=np.int64)
                with tracer.span("tiered.rescore") as sp:
                    if finalists:
                        if deadline is not None:
                            deadline.check("tiered rescore stage")
                        batch = self.engine.score_batch(
                            q,
                            [database.sequences[i] for i in finalists],
                            self.matrix, self.gaps,
                        )
                        scores[finalists] = batch.scores
                        stats.rescore_cells = batch.cells
                    if sp:
                        sp.set_attributes(
                            candidates=stats.verify_survivors,
                            cells=stats.rescore_cells,
                        )

                # Rank exactly like the exhaustive pipeline (stable ->
                # ties toward the earlier record), but only rescored
                # sequences may appear as hits.
                ranked = np.argsort(-scores, kind="stable")
                final_set = set(finalists)
                hits: list[Hit] = []
                for idx in ranked:
                    if len(hits) >= max(top_k, 0):
                        break
                    idx = int(idx)
                    if idx not in final_set:
                        continue
                    alignment = (
                        align_pair(
                            q, database.sequences[idx], self.matrix,
                            self.gaps, alphabet=self.alphabet,
                        )
                        if traceback
                        else None
                    )
                    hits.append(
                        Hit(
                            index=idx,
                            header=database.headers[idx],
                            length=len(database.sequences[idx]),
                            score=int(scores[idx]),
                            alignment=alignment,
                        )
                    )

            self._record_metrics(stats, watch.seconds)
            result = TieredSearchResult(
                query_name=query_name,
                query_length=len(q),
                database_name=database.name,
                scores=scores,
                hits=hits,
                cells=stats.total_cells,
                wall_seconds=watch.seconds,
                mode=self.mode,
                tier=stats,
            )
            if root:
                root.set_attributes(
                    seed_survivors=stats.seed_survivors,
                    verify_survivors=stats.verify_survivors,
                    cells_saved=round(stats.cells_saved, 4),
                    best_score=result.best_score(),
                )
                result.trace = {"span_id": root.span_id, "span": root.name}
            return result

    # ------------------------------------------------------------------
    def search_records(
        self,
        query,
        records: Iterable,
        *,
        query_name: str = "query",
        database_name: str = "<stream>",
        top_k: int | None = None,
        total_records: int | None = None,
    ) -> StreamingResult:
        """Tiered scan over a record stream (bounded memory).

        Chunking mirrors :class:`~repro.search.StreamingSearch`; because
        the filter is per-sequence deterministic the survivor set — and
        so the top-k — is chunking- and sharding-invariant.  Survivor
        density after verification is typically a few percent, so the
        exact rescoring batches are small and run in-driver; a worker
        pool would idle on the pruned 90+%.  On deadline expiry a
        :class:`~repro.search.PartialResult` over the merged prefix is
        returned, exactly like the exhaustive streaming drivers.
        """
        if top_k is None:
            top_k = self.options.top_k
        deadline = self.options.deadline
        q = as_codes(query, self.alphabet)
        filt = self._filter_for(q)
        chunk_size = self.options.chunk_size
        stats = TierStats(mode=self.mode)
        heap: list[tuple[int, int, Hit]] = []
        scanned = 0
        chunks = 0
        watch = Stopwatch()
        tracer = get_tracer()

        with tracer.span("tiered.streaming.search") as root:
            if root:
                root.set_attributes(
                    query_name=query_name, query_length=len(q),
                    database=database_name, chunk_size=chunk_size,
                    top_k=top_k, mode=self.mode,
                )
            expired = False
            with watch:
                for chunk in _chunked(records, chunk_size):
                    if deadline is not None and deadline.expired:
                        expired = True
                        break
                    chunks += 1
                    with tracer.span("tiered.chunk") as sp:
                        pairs = [
                            encode_record(item, self.alphabet)
                            for item in chunk
                        ]
                        base = scanned
                        scanned += len(pairs)
                        stats.candidates += len(pairs)
                        finalists: list[int] = []
                        for off, (_, seq) in enumerate(pairs):
                            ok, seed_cells, verify_cells = filt.survives(seq)
                            stats.seed_cells += seed_cells
                            if verify_cells:
                                stats.seed_survivors += 1
                                stats.verify_cells += verify_cells
                            if ok:
                                finalists.append(off)
                        stats.verify_survivors += len(finalists)
                        if finalists:
                            batch = self.engine.score_batch(
                                q, [pairs[off][1] for off in finalists],
                                self.matrix, self.gaps,
                            )
                            stats.rescore_cells += batch.cells
                            for off, score in zip(finalists, batch.scores):
                                idx = base + off
                                hit = Hit(
                                    index=idx,
                                    header=pairs[off][0],
                                    length=len(pairs[off][1]),
                                    score=int(score),
                                )
                                entry = (int(score), -idx, hit)
                                if len(heap) < top_k:
                                    heapq.heappush(heap, entry)
                                elif heap and entry > heap[0]:
                                    heapq.heapreplace(heap, entry)
                        stats.exhaustive_cells += len(q) * sum(
                            len(s) for _, s in pairs
                        )
                        if sp:
                            sp.set_attributes(
                                chunk=chunks - 1, records=len(pairs),
                                rescored=len(finalists),
                            )

            if scanned == 0 and not expired:
                raise PipelineError("the record stream was empty")
            if root:
                root.set_attributes(
                    chunks=chunks, sequences=scanned, partial=expired,
                    seed_survivors=stats.seed_survivors,
                    verify_survivors=stats.verify_survivors,
                    cells_saved=round(stats.cells_saved, 4),
                )
            self._record_metrics(stats, watch.seconds)
            self.metrics.increment("streaming.searches")
            self.metrics.increment("streaming.chunks", chunks)
            ranked = sorted(heap, key=lambda e: (-e[0], -e[1]))
            common = dict(
                query_name=query_name,
                query_length=len(q),
                hits=[h for _, _, h in ranked],
                sequences_scanned=scanned,
                cells=stats.total_cells,
                chunks=chunks,
                wall_seconds=watch.seconds,
                database_name=database_name,
            )
            if expired:
                self.metrics.increment("deadline.partial")
                tracer.event(
                    "deadline.expired", where="streaming.tiered",
                    scanned=scanned,
                )
                return PartialResult(**common, total_records=total_records)
            return StreamingResult(**common)

    def search_database(
        self, query, database, *, query_name: str = "query",
        top_k: int | None = None,
    ) -> StreamingResult:
        """Tiered streamed scan of a resident database."""
        return self.search_records(
            query,
            zip(database.headers, database.sequences),
            query_name=query_name,
            database_name=database.name,
            top_k=top_k,
            total_records=len(database),
        )
