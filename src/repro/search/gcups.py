"""GCUPS metric and timing helpers.

GCUPS — giga cell updates per second — is "a widely used metric by the
scientific community" (paper Section V-C) precisely because it is
input-normalised: cells are ``|query| x |database residue|`` products, so
two runs over different databases are comparable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..exceptions import PipelineError

__all__ = ["gcups", "Stopwatch"]


def gcups(cells: int, seconds: float) -> float:
    """Giga cell updates per second.

    A zero-duration measurement — tiny inputs under a coarse clock —
    degrades to ``0.0`` rather than raising: throughput is simply
    unmeasurable there, and result properties consumed after the fact
    (``summary()``, service accounting) must not blow up a search that
    already succeeded.

    Raises
    ------
    PipelineError
        On negative time or negative cell counts, which would silently
        report nonsense throughput.
    """
    if seconds < 0:
        raise PipelineError(
            f"elapsed time must be non-negative, got {seconds}"
        )
    if cells < 0:
        raise PipelineError(f"cell count must be non-negative, got {cells}")
    if seconds == 0:
        return 0.0
    return cells / seconds / 1e9


@dataclass
class Stopwatch:
    """Context-manager wall timer with an accumulating total.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.seconds >= 0
    True
    """

    seconds: float = 0.0
    _t0: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds += time.perf_counter() - self._t0

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.seconds = 0.0
