"""The search pipeline (paper Algorithm 1, hybrid variant Algorithm 2).

Wires the substrates together: the database is pre-processed into lane
groups (step 2), the group loop runs under a simulated OpenMP schedule
while computing *real* alignments with the inter-task engine (step 3),
and scores are ranked (step 4).  Attaching a device model adds modelled
wall time, so the same pipeline object produces both correctness results
and the paper's GCUPS accounting.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.engine import as_codes
from ..core.traceback import align_pair
from ..core.vectorized import DEFAULT_LANES, make_intertask_engine
from ..db.database import SequenceDatabase
from ..db.preprocess import PreprocessedDatabase, preprocess_database
from ..devices.openmp import ParallelFor, Schedule
from ..exceptions import FaultInjected, ParallelError, PipelineError
from ..faults.injection import FaultInjector, payload_checksum
from ..metrics.counters import METRICS, MetricsRegistry
from ..obs.tracer import get_tracer
from ..perfmodel.model import DevicePerformanceModel, RunConfig, Workload
from .api import SearchOptions, unify_options
from .gcups import Stopwatch
from .result import Hit, SearchResult

__all__ = ["SearchPipeline"]

#: Recomputations allowed per work unit before a persistent corruption
#: is treated as unrecoverable.
MAX_CORRUPTION_REDOS = 8


def guarded_transmit(
    injector: FaultInjector,
    unit: int,
    compute: Callable[[], np.ndarray],
) -> tuple[np.ndarray, int]:
    """Score a unit, ship it through the injector, verify the checksum.

    Each payload carries the checksum computed at its source; a mismatch
    on receipt means the transmission was corrupted, and the unit is
    *recomputed* (never patched from the tainted copy) and re-shipped.
    Returns ``(verified_scores, redo_count)``; raises
    :class:`~repro.exceptions.FaultInjected` if corruption persists past
    ``MAX_CORRUPTION_REDOS`` recomputations.
    """
    attempt = 0
    received, declared = injector.transmit(unit, attempt, compute())
    while payload_checksum(received) != declared:
        attempt += 1
        if attempt > MAX_CORRUPTION_REDOS:
            raise FaultInjected(
                f"unit {unit} still corrupted after "
                f"{MAX_CORRUPTION_REDOS} recomputations",
                kind="corrupt",
            )
        get_tracer().event(
            "fault.corrupt.redo", kind="corrupt", unit=unit, attempt=attempt
        )
        received, declared = injector.transmit(unit, attempt, compute())
    return received, attempt


class SearchPipeline:
    """Configurable Smith-Waterman database search.

    Parameters
    ----------
    options:
        A :class:`~repro.search.SearchOptions` carrying the search
        semantics (scoring scheme, lanes, profile, schedule, threads,
        alphabet, fault injector) — the only spelling of search
        semantics.  The removed per-class keywords (``matrix``,
        ``gaps``, ``lanes``, ...) raise a ``TypeError`` naming the
        migration.
    device_model:
        Optional :class:`DevicePerformanceModel`; adds modelled GCUPS.
    block_cols:
        Cache-blocking tile width forwarded to the engine.
    saturate_bits:
        Narrow-score saturation width forwarded to the engine.
    workers:
        Real OS processes scoring lane-group chunks concurrently
        (:class:`repro.parallel.ProcessPoolBackend`).  ``1`` (default)
        keeps the in-process group loop under the simulated OpenMP
        schedule.  The pool persists across searches of the same
        database, the database is broadcast to it once, and merged
        scores are bit-identical to the serial path; if the pool cannot
        start, the pipeline falls back to in-process execution (counted
        in ``parallel.fallback``).
    parallel_chunk_size:
        Lane groups per worker task; ``None`` lets the backend pick.
        Scores are chunking-invariant.
    parallel_broadcast:
        Database sharing strategy: ``"shm"`` (shared-memory views),
        ``"pickle"`` (init-time broadcast) or ``"auto"``.

    With a fault injector set, per-group score payloads are shipped
    through it with a checksum guard: a corrupted group is detected and
    recomputed, so the returned scores always match the fault-free run
    exactly — under either executor, because fault decisions are keyed
    on the global group id, not the worker that runs it.
    """

    def __init__(
        self,
        options: SearchOptions | None = None,
        *,
        device_model: DevicePerformanceModel | None = None,
        block_cols: int | None = None,
        saturate_bits: int | None = None,
        metrics: MetricsRegistry | None = None,
        workers: int | None = None,
        parallel_chunk_size: int | None = None,
        parallel_broadcast: str = "auto",
        **legacy,
    ) -> None:
        opts = unify_options(options, legacy, owner="SearchPipeline")
        self.options = opts
        self.matrix = opts.resolved_matrix()
        self.gaps = opts.resolved_gaps()
        self.kernel = opts.resolved_kernel()
        self.lanes = opts.resolved_lanes(DEFAULT_LANES[self.kernel])
        self.schedule = Schedule.parse(opts.schedule)
        self.threads = opts.threads
        self.device_model = device_model
        self.alphabet = opts.alphabet
        self.injector = opts.injector
        self.metrics = metrics if metrics is not None else METRICS
        self.engine = make_intertask_engine(
            self.kernel,
            alphabet=opts.alphabet,
            lanes=self.lanes,
            profile=opts.profile,
            block_cols=block_cols,
            saturate_bits=saturate_bits,
        )
        if workers is not None and int(workers) < 1:
            raise PipelineError(
                f"worker count must be positive, got {workers}"
            )
        self.workers = int(workers) if workers is not None else 1
        self.parallel_chunk_size = parallel_chunk_size
        self.parallel_broadcast = parallel_broadcast
        self._backend = None
        self._backend_key: tuple | None = None
        self._tiered = None

    # ------------------------------------------------------------------
    def _tiered_executor(self):
        """The lazily built tiered executor (``mode != "exact"`` only)."""
        if self._tiered is None:
            from .tiered import TieredSearch

            self._tiered = TieredSearch(self.options, metrics=self.metrics)
        return self._tiered

    # ------------------------------------------------------------------
    def _ensure_backend(self, database: SequenceDatabase, pre):
        """The worker pool bound to ``database``, (re)created on change.

        The pool — and its one-time database broadcast — persists across
        searches; a different database (or lane width) tears it down and
        broadcasts afresh.
        """
        from ..parallel.backend import ProcessPoolBackend

        key = (database.fingerprint(), self.lanes)
        if (
            self._backend is not None
            and not self._backend.closed
            and self._backend_key == key
        ):
            return self._backend
        self.close()
        self._backend = ProcessPoolBackend(
            pre,
            workers=self.workers,
            chunk_size=self.parallel_chunk_size,
            broadcast=self.parallel_broadcast,
            metrics=self.metrics,
        )
        self._backend_key = key
        return self._backend

    def _note_fallback(self, tracer, exc: Exception) -> None:
        self.metrics.increment("parallel.fallback")
        tracer.event(
            "parallel.fallback", reason=f"{type(exc).__name__}: {exc}"
        )

    def _score_parallel(self, q, database, pre, tracer):
        """Score every group on the process pool.

        Returns ``(sorted_scores, saturated, redone, chunk_results)`` or
        ``None`` when the pool cannot run — the caller then falls back
        to the in-process group loop, which computes identical scores.
        """
        from ..parallel.worker import EngineConfig

        try:
            backend = self._ensure_backend(database, pre)
        except ParallelError as exc:
            self._note_fallback(tracer, exc)
            return None
        cfg = EngineConfig(
            lanes=self.lanes,
            profile=self.engine.profile.value,
            block_cols=self.engine.block_cols,
            saturate_bits=self.engine.saturate_bits,
            kernel=self.kernel,
        )
        plan = self.injector.plan if self.injector is not None else None
        try:
            # DeadlineExceeded deliberately propagates: an expired
            # deadline must never trigger the in-process fallback (it
            # would just blow the deadline further).
            scores, saturated, redone, results = backend.score_groups(
                q, self.matrix, self.gaps, cfg,
                plan=plan, chunk_size=self.parallel_chunk_size,
                deadline=self.options.deadline,
            )
        except ParallelError as exc:
            self._note_fallback(tracer, exc)
            return None
        for res in results:
            with tracer.span("parallel.chunk") as cp:
                if cp:
                    cp.set_attributes(
                        chunk=res.chunk_id,
                        worker_pid=res.pid,
                        sequences=int(res.positions.shape[0]),
                        cells=res.cells,
                        queue_wait_seconds=round(res.queue_wait_seconds, 6),
                        compute_seconds=round(res.compute_seconds, 6),
                    )
        return scores, saturated, redone, results

    def close(self) -> None:
        """Shut down the parallel worker pool, if one is running.

        Safe to call repeatedly; the pipeline keeps working afterwards
        (a later ``workers > 1`` search simply starts a fresh pool).
        """
        backend, self._backend = self._backend, None
        self._backend_key = None
        if backend is not None:
            backend.close()

    def __enter__(self) -> "SearchPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def search(
        self,
        query: str | np.ndarray,
        database: SequenceDatabase,
        *,
        query_name: str = "query",
        top_k: int | None = None,
        traceback: bool = False,
        preprocessed: PreprocessedDatabase | None = None,
    ) -> SearchResult:
        """Run Algorithm 1 and return ranked hits.

        With ``traceback=True`` the top ``top_k`` hits get a full
        alignment (paper Section II step 4) — done only for the top
        hits, as real tools do, because traceback needs the O(m*n)
        matrices.  ``top_k=None`` falls back to the pipeline's
        :attr:`SearchOptions.top_k`.

        ``preprocessed`` reuses an existing sort/lane-pack of this exact
        ``database`` at this pipeline's lane width (from
        :meth:`search_many` or :class:`repro.service.PreprocessCache`),
        skipping step 2; scores are identical either way.
        """
        if len(database) == 0:
            raise PipelineError("cannot search an empty database")
        if self.options.mode != "exact":
            # The tiered path neither sorts nor lane-packs the whole
            # database, so a handed-in preprocess is simply unused.
            return self._tiered_executor().search(
                query, database, query_name=query_name, top_k=top_k,
                traceback=traceback,
            )
        if top_k is None:
            top_k = self.options.top_k
        q = as_codes(query, self.alphabet)
        if preprocessed is not None:
            if preprocessed.lanes != self.lanes:
                raise PipelineError(
                    f"preprocessed database was packed at {preprocessed.lanes} "
                    f"lanes but this pipeline runs {self.lanes}"
                )
            if len(preprocessed.database) != len(database):
                raise PipelineError(
                    "preprocessed database does not match the search database "
                    f"({len(preprocessed.database)} vs {len(database)} entries)"
                )
            # Same shape is not same content: a stale preprocess of a
            # different database would silently score the wrong
            # sequences.  The source fingerprint pins the original
            # (pre-sort) database this preprocess came from.
            src_fp = preprocessed.source_fingerprint
            if src_fp is not None and src_fp != database.fingerprint():
                raise PipelineError(
                    "preprocessed database content does not match the "
                    "search database (fingerprint mismatch) — it was "
                    "built from a different database"
                )

        tracer = get_tracer()
        with tracer.span("pipeline.search") as root:
            if root:
                root.set_attributes(
                    query_name=query_name, query_length=len(q),
                    database=database.name, sequences=len(database),
                    lanes=self.lanes,
                )
            watch = Stopwatch()
            with watch:
                # Step 2: sort + lane packing (skipped when a matching
                # pre-processed database was handed in).
                with tracer.span("pipeline.preprocess") as sp:
                    pre = (
                        preprocessed if preprocessed is not None
                        else preprocess_database(database, lanes=self.lanes)
                    )
                    if sp:
                        sp.set_attributes(
                            groups=len(pre.groups),
                            reused=preprocessed is not None,
                        )
                groups = pre.groups
                # Step 3: the parallel group loop.  ParallelFor simulates
                # the OpenMP schedule (and its makespan) while the work
                # callback computes real scores.
                sorted_scores = np.zeros(len(pre.database), dtype=np.int64)
                sat_counts: dict[int, int] = {}
                corrupted_redone = 0
                prepared = self.engine._prepare(q, self.matrix)

                def compute_group(g: int) -> np.ndarray:
                    scores, sat = self.engine.score_group(
                        q, groups[g], self.matrix, self.gaps,
                        _prepared=prepared,
                    )
                    if sat:
                        from ..core.scan import ScanEngine

                        exact = ScanEngine(self.alphabet)
                        for lane in sat:
                            idx = int(groups[g].indices[lane])
                            scores[lane] = exact.score_pair(
                                q, pre.database.sequences[idx],
                                self.matrix, self.gaps,
                            ).score
                    sat_counts[g] = len(sat)
                    return scores

                deadline = self.options.deadline

                def work(g: int) -> None:
                    nonlocal corrupted_redone
                    if deadline is not None:
                        deadline.check(f"group {g}")
                    if self.injector is None:
                        scores = compute_group(g)
                    else:
                        scores, redos = guarded_transmit(
                            self.injector, g, lambda: compute_group(g)
                        )
                        corrupted_redone += redos
                    sorted_scores[groups[g].indices] = scores

                with tracer.span("pipeline.score") as sp:
                    par = (
                        self._score_parallel(q, database, pre, tracer)
                        if self.workers > 1
                        else None
                    )
                    if par is not None:
                        par_scores, sat_total, corrupted_redone, chunks = par
                        sorted_scores[:] = par_scores
                        if sp:
                            sp.set_attributes(
                                groups=len(groups),
                                executor="process",
                                workers=self.workers,
                                chunks=len(chunks),
                                saturated_recomputed=sat_total,
                                corrupted_redone=corrupted_redone,
                            )
                    else:
                        costs = pre.group_cells(len(q)).astype(np.float64)
                        ParallelFor(self.threads, self.schedule).run(
                            costs, work
                        )
                        sat_total = sum(sat_counts.values())
                        if sp:
                            sp.set_attributes(
                                groups=len(groups),
                                executor="inprocess",
                                saturated_recomputed=sat_total,
                                corrupted_redone=corrupted_redone,
                            )

                with tracer.span("pipeline.rank"):
                    # Scatter back to the caller's original database order.
                    order = database.length_order()
                    scores = np.zeros(len(database), dtype=np.int64)
                    scores[order] = sorted_scores
                    # Step 4: rank descending (stable -> ties by database
                    # order).
                    ranked = np.argsort(-scores, kind="stable")

            cells = len(q) * database.total_residues
            hits: list[Hit] = []
            for idx in ranked[: max(top_k, 0)]:
                idx = int(idx)
                alignment = (
                    align_pair(
                        q, database.sequences[idx], self.matrix, self.gaps,
                        alphabet=self.alphabet,
                    )
                    if traceback
                    else None
                )
                hits.append(
                    Hit(
                        index=idx,
                        header=database.headers[idx],
                        length=len(database.sequences[idx]),
                        score=int(scores[idx]),
                        alignment=alignment,
                    )
                )

            modeled = None
            if self.device_model is not None:
                # The model emulates the device's SIMD units: its lane
                # count is capped at the device's native vector width.
                # Software lane widths above that (the numpy kernel
                # defaults to 128 for array efficiency) are a host-side
                # batching choice, not extra modeled hardware.
                wl = Workload.from_lengths(
                    database.lengths,
                    min(self.lanes, self.device_model.spec.lanes32),
                )
                cfg = RunConfig(
                    vectorization="intrinsic",
                    profile=self.engine.profile.value,
                    threads=min(
                        self.threads, self.device_model.spec.max_threads
                    ),
                    schedule=self.schedule,
                    blocking=self.engine.block_cols is not None,
                )
                modeled = self.device_model.run_seconds(wl, len(q), cfg)

            metrics = self.metrics
            metrics.increment("pipeline.searches")
            metrics.observe("pipeline.search.seconds", watch.seconds)
            if watch.seconds > 0:
                metrics.set_gauge(
                    "pipeline.last.gcups", cells / watch.seconds / 1e9
                )
            if sat_total:
                metrics.increment(
                    "pipeline.saturated.recomputed", sat_total
                )
            if corrupted_redone:
                metrics.increment("pipeline.corrupt.redone", corrupted_redone)

            result = SearchResult(
                query_name=query_name,
                query_length=len(q),
                database_name=database.name,
                scores=scores,
                hits=hits,
                cells=cells,
                wall_seconds=watch.seconds,
                modeled_seconds=modeled,
                saturated_recomputed=sat_total,
                corrupted_redone=corrupted_redone,
            )
            if root:
                root.set_attribute("best_score", result.best_score())
                result.trace = {"span_id": root.span_id, "span": root.name}
            return result

    # ------------------------------------------------------------------
    def search_many(
        self,
        queries: dict[str, np.ndarray],
        database: SequenceDatabase,
        *,
        top_k: int | None = None,
    ) -> dict[str, SearchResult]:
        """Run one search per named query (the paper's 20-query sweep).

        The database is sorted and lane-packed **once** and reused for
        every query — preprocessing is query-independent, so N queries
        pay for one :func:`~repro.db.preprocess_database`, not N.
        """
        if not queries:
            return {}
        # The tiered path never consumes a lane-pack; skip the build.
        pre = (
            preprocess_database(database, lanes=self.lanes)
            if self.options.mode == "exact" else None
        )
        return {
            name: self.search(
                q, database, query_name=name, top_k=top_k, preprocessed=pre
            )
            for name, q in queries.items()
        }
