"""Search results: ranked hits plus timing/throughput accounting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.types import Traceback
from ..exceptions import PipelineError
from .gcups import gcups

__all__ = ["Hit", "SearchResult"]


@dataclass(frozen=True)
class Hit:
    """One database hit of a search."""

    index: int          # position in the (original-order) database
    header: str
    length: int
    score: int
    alignment: Traceback | None = None

    @property
    def accession(self) -> str:
        """First token of the FASTA header.

        Empty or whitespace-only headers (programmatically built
        databases can carry them) yield the stable placeholder
        ``"<unnamed>"`` rather than crashing report formatting.
        """
        parts = self.header.split()
        return parts[0] if parts else "<unnamed>"


@dataclass
class SearchResult:
    """Outcome of one query-vs-database search (Algorithm 1 step 4).

    ``hits`` is sorted by descending score (ties broken by database
    order, matching the deterministic sort the paper's step 4 implies).
    """

    query_name: str
    query_length: int
    database_name: str
    scores: np.ndarray          # all scores, original database order
    hits: list[Hit]             # ranked
    cells: int
    wall_seconds: float
    modeled_seconds: float | None = None
    saturated_recomputed: int = 0
    corrupted_redone: int = 0  # groups recomputed after a checksum mismatch
    #: Trace provenance, set when the search ran under an active tracer:
    #: the root span's id and name, linking this outcome to the exported
    #: span tree (:mod:`repro.obs`).
    trace: dict | None = None

    def __post_init__(self) -> None:
        if self.cells < 0:
            raise PipelineError("cell count cannot be negative")
        for a, b in zip(self.hits, self.hits[1:]):
            if b.score > a.score:
                raise PipelineError("hits must be sorted by descending score")

    @property
    def wall_gcups(self) -> float:
        """Throughput of this Python run (for pytest-benchmark tracking)."""
        return gcups(self.cells, self.wall_seconds)

    @property
    def gcups(self) -> float:
        """Headline throughput (:class:`~repro.search.SearchOutcome`).

        For this real-compute result that is the wall-clock GCUPS.
        """
        return self.wall_gcups

    @property
    def provenance(self) -> dict:
        """Identifying fields (:class:`~repro.search.SearchOutcome`)."""
        prov = {
            "kind": "search",
            "query_name": self.query_name,
            "query_length": self.query_length,
            "database_name": self.database_name,
            "sequences": len(self.scores),
        }
        if self.trace is not None:
            prov["trace"] = dict(self.trace)
        return prov

    @property
    def modeled_gcups(self) -> float | None:
        """Modelled device throughput, when a device model was attached."""
        if self.modeled_seconds is None:
            return None
        return gcups(self.cells, self.modeled_seconds)

    def top(self, k: int = 10) -> list[Hit]:
        """The best ``k`` hits."""
        if k < 0:
            raise PipelineError(f"k must be non-negative, got {k}")
        return self.hits[:k]

    def best_score(self) -> int:
        """Highest alignment score found (0 for an empty database)."""
        return int(self.scores.max()) if self.scores.size else 0

    def to_tsv(self, *, stats=None) -> str:
        """Tabular hit report (BLAST outfmt-6 flavoured).

        Columns: query, subject accession, score, subject length, and —
        when alignments were computed — identity %, alignment length,
        and the aligned coordinate ranges.  With ``stats`` (a
        :class:`~repro.search.stats.GumbelFit`) two more columns carry
        bit score and E-value.  One line per ranked hit.
        """
        from .stats import bitscore, evalue

        db_residues = max(self.cells // max(self.query_length, 1), 1)
        lines = []
        for hit in self.hits:
            fields = [self.query_name, hit.accession, str(hit.score),
                      str(hit.length)]
            if hit.alignment is not None and hit.alignment.length:
                a = hit.alignment
                fields += [
                    f"{a.identity * 100:.1f}", str(a.length),
                    str(a.start_query), str(a.end_query),
                    str(a.start_db), str(a.end_db),
                ]
            if stats is not None:
                fields += [
                    f"{bitscore(hit.score, stats):.1f}",
                    f"{evalue(hit.score, self.query_length, db_residues, stats):.2e}",
                ]
            lines.append("\t".join(fields))
        return "\n".join(lines)

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        lines = [
            f"query {self.query_name} (len {self.query_length}) vs "
            f"{self.database_name}: {len(self.scores)} sequences, "
            f"{self.cells / 1e9:.3f} Gcells in {self.wall_seconds:.3f}s "
            f"({self.wall_gcups:.4f} GCUPS wall"
            + (
                f", {self.modeled_gcups:.1f} GCUPS modelled"
                if self.modeled_seconds is not None
                else ""
            )
            + ")"
        ]
        for rank, hit in enumerate(self.top(10), start=1):
            lines.append(
                f"  #{rank:<2d} score {hit.score:>6d}  {hit.accession} "
                f"(len {hit.length})"
            )
        return "\n".join(lines)
