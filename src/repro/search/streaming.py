"""Streaming database search — out-of-core Algorithm 1.

The paper's future-work databases (TrEMBL, tens of gigabases) do not fit
comfortably in memory.  Real tools stream: read a chunk of FASTA
records, align, keep the running top-k, discard the chunk.  This module
is that driver over the library's engines — only the current chunk and
the hit heap are ever resident.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..alphabet import PROTEIN, Alphabet, UnknownPolicy
from ..core.engine import as_codes
from ..core.intertask import InterTaskEngine
from ..db.fasta import FastaRecord
from ..exceptions import PipelineError
from ..faults.injection import FaultInjector
from ..scoring.gaps import GapModel, paper_gap_model
from ..scoring.matrices import SubstitutionMatrix
from .gcups import Stopwatch
from .result import Hit

__all__ = ["StreamingResult", "StreamingSearch"]


@dataclass
class StreamingResult:
    """Top hits and accounting of one streamed search."""

    query_name: str
    query_length: int
    hits: list[Hit]            # best first
    sequences_scanned: int
    cells: int
    chunks: int
    wall_seconds: float
    corrupted_redone: int = 0  # chunks recomputed after a checksum mismatch

    @property
    def wall_gcups(self) -> float:
        """Python throughput of the streamed scan."""
        if self.wall_seconds <= 0:
            raise PipelineError("wall time must be positive")
        return self.cells / self.wall_seconds / 1e9

    def best_score(self) -> int:
        """Highest score seen (0 when nothing scored)."""
        return self.hits[0].score if self.hits else 0


class StreamingSearch:
    """Chunked scan keeping a bounded top-k heap.

    Parameters
    ----------
    chunk_size:
        Records aligned per batch; bounds peak memory.
    top_k:
        Hits retained.  Ties at the heap boundary are resolved toward
        the earlier database record (deterministic).
    injector:
        Optional :class:`~repro.faults.FaultInjector`.  Each chunk's
        score payload then crosses a checksum guard; corrupted chunks
        are recomputed, so the top-k matches the fault-free scan.
    """

    def __init__(
        self,
        matrix: SubstitutionMatrix | None = None,
        gaps: GapModel | None = None,
        *,
        lanes: int = 8,
        chunk_size: int = 512,
        top_k: int = 10,
        alphabet: Alphabet = PROTEIN,
        injector: FaultInjector | None = None,
    ) -> None:
        if chunk_size < 1:
            raise PipelineError(f"chunk size must be positive, got {chunk_size}")
        if top_k < 1:
            raise PipelineError(f"top_k must be positive, got {top_k}")
        if matrix is None:
            from ..scoring.data_blosum import BLOSUM62

            matrix = BLOSUM62
        self.matrix = matrix
        self.gaps = gaps if gaps is not None else paper_gap_model()
        self.chunk_size = chunk_size
        self.top_k = top_k
        self.alphabet = alphabet
        self.injector = injector
        self.engine = InterTaskEngine(alphabet=alphabet, lanes=lanes)

    # ------------------------------------------------------------------
    def search_records(
        self,
        query,
        records: Iterable[FastaRecord],
        *,
        query_name: str = "query",
    ) -> StreamingResult:
        """Stream FASTA records through the engine; return the top-k."""
        q = as_codes(query, self.alphabet)
        # Min-heap of (score, -index, hit): smallest retained hit on top;
        # on score ties the later record loses.
        heap: list[tuple[int, int, Hit]] = []
        scanned = 0
        cells = 0
        chunks = 0
        corrupted_redone = 0
        batch = None
        watch = Stopwatch()

        with watch:
            for chunk in _chunked(records, self.chunk_size):
                chunks += 1
                seqs = [
                    self.alphabet.encode(
                        r.sequence, unknown=UnknownPolicy.MAP_TO_X
                    )
                    for r in chunk
                ]
                if self.injector is None:
                    batch = self.engine.score_batch(
                        q, seqs, self.matrix, self.gaps
                    )
                    scores = batch.scores
                else:
                    from .pipeline import guarded_transmit

                    def compute(seqs=seqs):
                        nonlocal batch
                        batch = self.engine.score_batch(
                            q, seqs, self.matrix, self.gaps
                        )
                        return batch.scores

                    scores, redos = guarded_transmit(
                        self.injector, chunks - 1, compute
                    )
                    corrupted_redone += redos
                cells += batch.cells
                for rec, seq, score in zip(chunk, seqs, scores):
                    idx = scanned
                    scanned += 1
                    hit = Hit(
                        index=idx, header=rec.header,
                        length=len(seq), score=int(score),
                    )
                    entry = (int(score), -idx, hit)
                    if len(heap) < self.top_k:
                        heapq.heappush(heap, entry)
                    elif entry > heap[0]:
                        heapq.heapreplace(heap, entry)

        if scanned == 0:
            raise PipelineError("the record stream was empty")
        ranked = sorted(heap, key=lambda e: (-e[0], -e[1]))
        return StreamingResult(
            query_name=query_name,
            query_length=len(q),
            hits=[h for _, _, h in ranked],
            sequences_scanned=scanned,
            cells=cells,
            chunks=chunks,
            wall_seconds=watch.seconds,
            corrupted_redone=corrupted_redone,
        )

    def search_fasta(
        self, query, path, *, query_name: str = "query"
    ) -> StreamingResult:
        """Stream a FASTA file from disk (never fully loaded)."""
        from ..db.fasta import read_fasta

        return self.search_records(
            query, read_fasta(path), query_name=query_name
        )


def _chunked(
    records: Iterable[FastaRecord], size: int
) -> Iterator[list[FastaRecord]]:
    chunk: list[FastaRecord] = []
    for rec in records:
        chunk.append(rec)
        if len(chunk) == size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
